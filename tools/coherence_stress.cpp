/**
 * @file
 * Randomized multi-node coherence stress driver.
 *
 * Builds a whole machine per model (all five by default) with the
 * coherence checker at full strength, runs seeded random memory-op
 * streams from every hardware thread against a small pool of hot lines
 * (deliberately contended, with conflict-heavy small L2s), and fails if
 * the checker flags a single invariant violation or the machine wedges.
 *
 *   coherence_stress [--models=base,smtp,...] [--nodes=N] [--threads=W]
 *                    [--seed=S] [--ops=K] [--check=off|asserts|full]
 *                    [--protocol=NAME] [--quick] [--shrink] [--abort-off]
 *
 * Every run prints its own repro command line; --shrink bisects a
 * failing op count down to the smallest stream that still fails (see
 * docs/debugging.md).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "machine/machine.hpp"
#include "workload/app.hpp"
#include "workload/gen.hpp"

namespace smtp
{
namespace
{

struct StressOptions
{
    std::vector<MachineModel> models{
        MachineModel::Base, MachineModel::IntPerfect,
        MachineModel::Int512KB, MachineModel::Int64KB,
        MachineModel::SMTp};
    unsigned nodes = 4;
    unsigned threads = 1; ///< App threads per node.
    std::uint64_t seed = 1;
    unsigned ops = 6000; ///< Memory-op iterations per thread.
    check::CheckLevel level = check::CheckLevel::FullMirror;
    proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;
    bool quick = false;
    bool shrink = false;
    bool abortOnViolation = true;
    /** Minimum protocol-handler dispatches a model must exercise. */
    std::uint64_t minDispatches = 10000;
};

const char *
levelName(check::CheckLevel l)
{
    switch (l) {
      case check::CheckLevel::Off: return "off";
      case check::CheckLevel::Asserts: return "asserts";
      default: return "full";
    }
}

bool
parseModel(const std::string &s, MachineModel &out)
{
    if (s == "base") out = MachineModel::Base;
    else if (s == "intperfect") out = MachineModel::IntPerfect;
    else if (s == "int512kb") out = MachineModel::Int512KB;
    else if (s == "int64kb") out = MachineModel::Int64KB;
    else if (s == "smtp") out = MachineModel::SMTp;
    else return false;
    return true;
}

/**
 * One thread's random op stream over the shared hot-line pool. The
 * loopBegin/loopEnd pair replays the same virtual PCs each iteration so
 * the front-end sees a faithful static code image.
 */
Task
stressTask(ThreadCtx &c, std::uint64_t seed, unsigned ops,
           const std::vector<Addr> *pool)
{
    Rng rng(seed);
    auto loop = c.loopBegin();
    for (unsigned i = 0; i < ops; ++i) {
        Addr line = (*pool)[rng.below(pool->size())];
        Addr addr = line + rng.below(16) * 8;
        std::uint64_t pick = rng.below(100);
        if (pick < 40) {
            (void)co_await c.load(addr);
        } else if (pick < 72) {
            co_await c.store(addr, (seed << 20) ^ i);
        } else if (pick < 80) {
            (void)co_await c.swap(addr, i);
        } else if (pick < 90) {
            co_await c.prefetch(addr, rng.chance(0.5));
        } else {
            co_await c.intOps(4);
        }
        co_await c.loopEnd(loop, i + 1 < ops);
    }
}

struct ModelResult
{
    MachineModel model{};
    std::uint64_t dispatches = 0;
    std::uint64_t lineEvents = 0;
    std::size_t violations = 0;
    bool enoughWork = true;
};

ModelResult
runModel(MachineModel model, const StressOptions &o)
{
    MachineParams mp;
    mp.model = model;
    mp.nodes = o.nodes;
    mp.appThreadsPerNode = o.threads;
    mp.l2Bytes = 32 * 1024; ///< Small: conflict evictions race freely.
    mp.protocol = o.protocol;
    mp.checkLevel = o.level;
    mp.checkAbortOnViolation = o.abortOnViolation;
    Machine m(mp);

    // A hot pool of lines spread over every home node: small enough to
    // stay contended, large enough to mix 3-hop, shared, and writeback
    // races.
    FuncMem mem;
    workload::Alloc alloc(m.addressMap());
    std::vector<Addr> pool;
    for (unsigned n = 0; n < o.nodes; ++n) {
        for (unsigned i = 0; i < 6; ++i)
            pool.push_back(alloc.allocLine(static_cast<NodeId>(n)));
    }

    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    unsigned total = o.nodes * o.threads;
    for (unsigned t = 0; t < total; ++t) {
        NodeId node = static_cast<NodeId>(t / o.threads);
        std::uint64_t pc_base =
            0x4000'0000ULL +
            static_cast<std::uint64_t>(node) * 0x0100'0000ULL;
        auto ctx = std::make_unique<ThreadCtx>(mem, node, pc_base);
        ctx->run(stressTask(*ctx,
                            o.seed ^ (t + 1) * 0x9e3779b97f4a7c15ULL,
                            o.ops, &pool));
        m.setGlobalSource(t, ctx.get());
        ctxs.push_back(std::move(ctx));
    }
    // Per-node text pages so instruction fetch hits local memory.
    for (unsigned n = 0; n < o.nodes; ++n) {
        Addr text = 0x4000'0000ULL +
                    static_cast<std::uint64_t>(n) * 0x0100'0000ULL;
        for (unsigned p = 0; p < 16; ++p) {
            m.addressMap().place(text + static_cast<Addr>(p) * pageBytes,
                                 static_cast<NodeId>(n));
        }
    }

    m.run();
    m.quiesce();

    ModelResult r;
    r.model = model;
    if (auto *chk = m.checker()) {
        r.dispatches = chk->dispatches.value();
        r.lineEvents = chk->lineEvents.value();
        r.violations = chk->violationCount();
        for (const auto &v : chk->violations())
            std::fprintf(stderr, "  violation: %s\n", v.c_str());
    }
    r.enoughWork = o.level == check::CheckLevel::Off ||
                   r.dispatches >= o.minDispatches;
    return r;
}

void
printRepro(const StressOptions &o, MachineModel model, std::FILE *out)
{
    std::string name(modelName(model));
    for (auto &ch : name)
        ch = static_cast<char>(std::tolower(ch));
    std::fprintf(out,
                 "  repro: coherence_stress --models=%s --nodes=%u "
                 "--threads=%u --seed=%llu --ops=%u --check=%s "
                 "--protocol=%s%s\n",
                 name.c_str(), o.nodes, o.threads,
                 static_cast<unsigned long long>(o.seed), o.ops,
                 levelName(o.level),
                 std::string(proto::protocolName(o.protocol)).c_str(),
                 o.abortOnViolation ? "" : " --abort-off");
}

/** Bisect the op count down to the smallest stream that still fails. */
void
shrinkFailure(MachineModel model, const StressOptions &base)
{
    StressOptions o = base;
    o.abortOnViolation = false; // latch so we can observe and continue
    o.minDispatches = 0;
    unsigned failing = o.ops;
    unsigned lo = 1, hi = o.ops;
    while (lo < hi) {
        unsigned mid = lo + (hi - lo) / 2;
        o.ops = mid;
        std::fprintf(stderr, "shrink: trying ops=%u ...\n", mid);
        if (runModel(model, o).violations > 0) {
            failing = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    o.ops = failing;
    std::fprintf(stderr, "shrink: minimal failing op count is %u\n",
                 failing);
    printRepro(o, model, stderr);
}

int
stressMain(int argc, char **argv)
{
    StressOptions o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--models=", 0) == 0) {
            o.models.clear();
            std::string csv = value();
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = csv.find(',', pos);
                std::string tok = csv.substr(
                    pos, comma == std::string::npos ? comma : comma - pos);
                MachineModel model;
                if (!parseModel(tok, model)) {
                    std::fprintf(stderr, "unknown model '%s'\n",
                                 tok.c_str());
                    return 2;
                }
                o.models.push_back(model);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg.rfind("--nodes=", 0) == 0) {
            o.nodes = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--threads=", 0) == 0) {
            o.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--seed=", 0) == 0) {
            o.seed = std::stoull(value());
        } else if (arg.rfind("--ops=", 0) == 0) {
            o.ops = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--check=", 0) == 0) {
            std::string l = value();
            if (l == "off") o.level = check::CheckLevel::Off;
            else if (l == "asserts") o.level = check::CheckLevel::Asserts;
            else if (l == "full") o.level = check::CheckLevel::FullMirror;
            else {
                std::fprintf(stderr, "unknown check level '%s'\n",
                             l.c_str());
                return 2;
            }
        } else if (arg.rfind("--protocol=", 0) == 0) {
            if (!proto::protocolFromName(value(), o.protocol)) {
                std::fprintf(
                    stderr, "unknown protocol '%s' (expected %s)\n",
                    value().c_str(),
                    std::string(proto::protocolNameList()).c_str());
                return 2;
            }
        } else if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--shrink") {
            o.shrink = true;
        } else if (arg == "--abort-off") {
            o.abortOnViolation = false;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (o.quick) {
        // CI mode: fewer ops, two models covering both protocol agents
        // (off-chip pengine and the SMTp protocol thread), still past
        // the 10k-dispatch floor.
        o.ops = std::min(o.ops, 3000u);
        if (o.models.size() == 5) {
            o.models = {MachineModel::Base, MachineModel::SMTp};
        }
    }

    int rc = 0;
    for (auto model : o.models) {
        std::fprintf(stderr, "=== %s: nodes=%u threads=%u seed=%llu "
                             "ops=%u check=%s\n",
                     std::string(modelName(model)).c_str(), o.nodes,
                     o.threads, static_cast<unsigned long long>(o.seed),
                     o.ops, levelName(o.level));
        auto r = runModel(model, o);
        std::fprintf(stderr,
                     "    %llu handler dispatches, %llu line events, "
                     "%zu violation(s)\n",
                     static_cast<unsigned long long>(r.dispatches),
                     static_cast<unsigned long long>(r.lineEvents),
                     r.violations);
        bool failed = r.violations > 0 || !r.enoughWork;
        if (!r.enoughWork) {
            std::fprintf(stderr,
                         "    FAIL: under the %llu-dispatch floor — the "
                         "stream is not stressing the protocol\n",
                         static_cast<unsigned long long>(
                             o.minDispatches));
        }
        if (failed) {
            rc = 1;
            printRepro(o, model, stderr);
            if (r.violations > 0 && o.shrink)
                shrinkFailure(model, o);
        }
    }
    std::fprintf(stderr, rc == 0 ? "stress: all models clean\n"
                                 : "stress: FAILURES\n");
    return rc;
}

} // namespace
} // namespace smtp

int
main(int argc, char **argv)
{
    return smtp::stressMain(argc, argv);
}
