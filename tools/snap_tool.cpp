/**
 * @file
 * Snapshot inspection CLI (docs/debugging.md):
 *
 *   snap_tool inspect FILE     header + section table
 *   snap_tool validate FILE    container-level integrity check
 *   snap_tool diff A B         first state divergence, per section
 *
 * `diff` is the state-divergence debugger: snapshot two machines that
 * should agree (e.g. an uninterrupted run vs. a restored one at the
 * same tick, or wheel vs. heap kernels) and it names the first
 * component section whose bytes differ and the offset of the first
 * differing byte, with a hex context window — narrowing "the machines
 * diverged somewhere" to "node1.cpu, byte 4132".
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "snap/snapfile.hpp"

namespace
{

using smtp::snap::SnapReader;

int
usage()
{
    std::fprintf(stderr,
                 "usage: snap_tool inspect FILE\n"
                 "       snap_tool validate FILE\n"
                 "       snap_tool diff A B\n");
    return 2;
}

bool
loadOrComplain(SnapReader &r, const std::string &path)
{
    if (r.load(path))
        return true;
    std::fprintf(stderr, "%s: %s\n", path.c_str(), r.error().c_str());
    return false;
}

int
inspect(const std::string &path)
{
    SnapReader r;
    if (!loadOrComplain(r, path))
        return 1;
    std::printf("%s\n", path.c_str());
    std::printf("  format version : %u\n", r.formatVersion());
    std::printf("  config hash    : %016llx\n",
                static_cast<unsigned long long>(r.configHash()));
    std::printf("  sections       : %zu\n", r.sections().size());
    std::size_t total = 0;
    for (const auto &s : r.sections()) {
        std::printf("    %-24s %10zu bytes @ %zu\n", s.name.c_str(),
                    s.length, s.offset);
        total += s.length;
    }
    std::printf("  payload total  : %zu bytes\n", total);
    return 0;
}

int
validate(const std::string &path)
{
    SnapReader r;
    if (!loadOrComplain(r, path))
        return 1;
    // The container parse already validated magic, version, and that
    // every section's framing lies inside the file; per-component
    // payload decoding additionally requires a matching machine, which
    // Machine::restore performs. Report what can be proven here.
    std::printf("%s: ok (version %u, %zu sections, config %016llx)\n",
                path.c_str(), r.formatVersion(), r.sections().size(),
                static_cast<unsigned long long>(r.configHash()));
    return 0;
}

void
hexContext(const std::vector<std::uint8_t> &img, std::size_t begin,
           std::size_t end, std::size_t mark)
{
    for (std::size_t i = begin; i < end; ++i)
        std::printf(i == mark ? "[%02x]" : " %02x ", img[i]);
    std::printf("\n");
}

int
diff(const std::string &pa, const std::string &pb)
{
    SnapReader a, b;
    if (!loadOrComplain(a, pa) || !loadOrComplain(b, pb))
        return 1;
    int divergences = 0;
    if (a.configHash() != b.configHash()) {
        std::printf("config hash differs: %016llx vs %016llx "
                    "(different machine configurations)\n",
                    static_cast<unsigned long long>(a.configHash()),
                    static_cast<unsigned long long>(b.configHash()));
        ++divergences;
    }
    // Compare section by section, in A's order, so the report reads in
    // restore order (workload, cpus, controllers, caches, ...).
    for (const auto &sa : a.sections()) {
        if (!b.hasSection(sa.name)) {
            std::printf("%-24s only in %s\n", sa.name.c_str(),
                        pa.c_str());
            ++divergences;
            continue;
        }
        const SnapReader::Section *sb = nullptr;
        for (const auto &s : b.sections())
            if (s.name == sa.name)
                sb = &s;
        smtp::snap::Des da = a.section(sa.name);
        smtp::snap::Des db = b.section(sa.name);
        // Des exposes only typed reads; compare via the raw images.
        std::vector<std::uint8_t> ia(sa.length), ib(sb->length);
        da.read(ia.data(), ia.size());
        db.read(ib.data(), ib.size());
        std::size_t n = std::min(ia.size(), ib.size());
        std::size_t at = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (ia[i] != ib[i]) {
                at = i;
                break;
            }
        }
        if (at == n && ia.size() == ib.size())
            continue; // identical
        ++divergences;
        if (at == n) {
            std::printf("%-24s sizes differ: %zu vs %zu bytes "
                        "(common prefix identical)\n",
                        sa.name.c_str(), ia.size(), ib.size());
            continue;
        }
        std::printf("%-24s first divergence at byte %zu of %zu\n",
                    sa.name.c_str(), at, n);
        std::size_t lo = at >= 8 ? at - 8 : 0;
        std::size_t hi = std::min(at + 9, n);
        std::printf("  %-12s", pa.size() <= 12 ? pa.c_str() : "A:");
        hexContext(ia, lo, hi, at);
        std::printf("  %-12s", pb.size() <= 12 ? pb.c_str() : "B:");
        hexContext(ib, lo, hi, at);
    }
    for (const auto &sb : b.sections()) {
        if (!a.hasSection(sb.name)) {
            std::printf("%-24s only in %s\n", sb.name.c_str(),
                        pb.c_str());
            ++divergences;
        }
    }
    if (divergences == 0) {
        std::printf("identical: %zu sections, config %016llx\n",
                    a.sections().size(),
                    static_cast<unsigned long long>(a.configHash()));
        return 0;
    }
    std::printf("%d diverging section(s)\n", divergences);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "inspect")
        return inspect(argv[2]);
    if (cmd == "validate")
        return validate(argv[2]);
    if (cmd == "diff" && argc >= 4)
        return diff(argv[2], argv[3]);
    return usage();
}
