/**
 * @file
 * serve_chaos — service-level chaos harness for the smtpd daemon
 * (docs/service.md, "Failure model").
 *
 *   serve_chaos [--quick] [--scenarios=a,b,...] [--verbose]
 *
 * Boots a real in-process daemon per scenario and attacks it the way
 * production would: workers killed mid-job, wedged simulations, a
 * corrupted result cache, hostile client connections, admission floods,
 * and cancel races. Each scenario asserts the service-level contract:
 *
 *   - the daemon never dies with a client-visible tear: every accepted
 *     job receives exactly one frame per cell (result or structured
 *     failure), then "done";
 *   - every *successful* record is byte-identical (mod wall_ms) to the
 *     record a clean local runOnce() of the same cell produces —
 *     including records recomputed after crashes, deadline kills, and
 *     cache fsck;
 *   - failures are structured and bounded: crash/wedge cells are
 *     retried and then quarantined with error/detail/attempts, shed
 *     cells say so, floods get an explicit "overloaded" reply.
 *
 * Scenarios (all run by default; --quick = crash,wedge,corrupt,hostile):
 *   crash    worker abort()s mid-cell (env hook), retry succeeds
 *   wedge    worker wedges, deadline-killed, retried, quarantined
 *   corrupt  cache files truncated/bit-flipped/zeroed; fsck + recompute
 *   hostile  garbage frames, half-closed peers, slow-loris readers
 *   flood    admission limit: overload reply + priority shedding
 *   cancel   cancelling a dispatched job kills the worker promptly
 *
 * Chaos is injected through env hooks the worker child reads per cell
 * (serve/worker.cpp): SMTPD_CHAOS_ABORT_APP / SMTPD_CHAOS_ABORT_TIMES
 * abort attempts <= TIMES (default 1) of the named app, and
 * SMTPD_CHAOS_WEDGE_APP / SMTPD_CHAOS_WEDGE_TIMES wedge them forever.
 * The hooks live in the worker binary (not the daemon), cost one
 * getenv per cell, and are inert unless the variables are set.
 *
 * Exit status: 0 if every scenario held, 1 otherwise, 2 on usage.
 */

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace
{

using namespace smtp;
using namespace smtp::serve;

int g_failures = 0;
bool g_verbose = false;

#define CHECK(cond, msg)                                                \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr, "serve_chaos: FAIL %s:%d: %s\n",       \
                         __FILE__, __LINE__, msg);                      \
            ++g_failures;                                               \
        }                                                               \
    } while (0)

/** An in-process smtpd on its own thread. */
struct Daemon
{
    std::string dir;
    std::string sock;
    Server *server = nullptr;
    std::thread thread;

    explicit Daemon(const std::string &tag, ServerOptions opt = {})
    {
        dir = "serve_chaos_" + tag;
        std::string cmd = "rm -rf '" + dir + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
        sock = dir + "/smtpd.sock";
        opt.socketPath = sock;
        opt.stateDir = dir;
        opt.verbose = g_verbose;
        start(opt);
    }

    bool
    start(ServerOptions opt)
    {
        opt.socketPath = sock;
        opt.stateDir = dir;
        server = new Server(std::move(opt));
        thread = std::thread([this] { server->run(); });
        Client probe;
        for (int i = 0; i < 500; ++i) {
            if (probe.connect(sock) && probe.ping())
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        CHECK(false, "daemon did not come up");
        return false;
    }

    void
    stop()
    {
        if (server == nullptr)
            return;
        server->requestStop();
        thread.join();
        delete server;
        server = nullptr;
    }

    ~Daemon()
    {
        stop();
        std::string cmd = "rm -rf '" + dir + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
};

RunConfig
cell(const char *app, unsigned nodes = 2)
{
    RunConfig cfg;
    cfg.model = MachineModel::SMTp;
    cfg.app = app;
    cfg.nodes = nodes;
    cfg.scale = 0.05;
    return cfg;
}

/** Strip the host-time field so records are byte-comparable. */
std::string
stripWall(const std::string &record)
{
    std::size_t pos = record.find(",\"wall_ms\"");
    return pos == std::string::npos ? record : record.substr(0, pos);
}

/** The record a clean local run of @p cfg produces (own ckpt dir). */
std::string
localRecord(RunConfig cfg, const std::string &tag)
{
    std::string dir = "serve_chaos_local_" + tag;
    std::string cmd = "rm -rf '" + dir + "'";
    [[maybe_unused]] int rc = std::system(cmd.c_str());
    ::mkdir(dir.c_str(), 0777);
    cfg.ckptDir = dir + "/ckpt";
    RunResult res = runOnce(cfg);
    std::string record = jsonRecord(cfg, res);
    rc = std::system(cmd.c_str());
    return record;
}

double
statNum(const std::string &sock, const char *key)
{
    Client c;
    if (!c.connect(sock))
        return -1.0;
    JsonValue v;
    if (!c.stats(v))
        return -1.0;
    return v.getNumber(key, -1.0);
}

/** Poll stats until key >= want (daemon-side state is async). */
bool
awaitStat(const std::string &sock, const char *key, double want,
          int tries = 500)
{
    for (int i = 0; i < tries; ++i) {
        if (statNum(sock, key) >= want)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
}

// ---------------------------------------------------------- scenarios

/**
 * A worker abort()s mid-simulation (first attempt only). The daemon
 * must survive, retry the cell, and serve a record byte-identical to a
 * clean local run — and the sibling cell must be untouched.
 */
void
scenarioCrash()
{
    std::printf("scenario crash: worker abort -> retry -> identical record\n");
    ::setenv("SMTPD_CHAOS_ABORT_APP", "fft", 1);
    {
        ServerOptions opt;
        opt.jobs = 2;
        Daemon d("crash", opt);
        std::vector<RunConfig> cells{cell("fft"), cell("lu")};
        std::vector<std::string> recs(cells.size());
        Client c;
        CHECK(c.connect(d.sock), "connect");
        std::size_t failed = 0;
        bool ok = c.submit(
            cells, 0,
            [&](const CellReply &cr) {
                recs[cr.index] = cr.record;
                CHECK(!cr.failed, "no cell may fail in crash scenario");
            },
            nullptr, &failed);
        CHECK(ok, "job must complete despite the worker crash");
        CHECK(failed == 0, "no quarantines expected");
        CHECK(statNum(d.sock, "workers_crashed") >= 1,
              "daemon must have observed >= 1 worker crash");
        CHECK(statNum(d.sock, "cells_retried") >= 1,
              "crashed cell must have been retried");
        d.stop();
        ::unsetenv("SMTPD_CHAOS_ABORT_APP");
        CHECK(stripWall(recs[0]) == stripWall(localRecord(cells[0], "crash_fft")),
              "post-crash record must be byte-identical to a local run");
        CHECK(stripWall(recs[1]) == stripWall(localRecord(cells[1], "crash_lu")),
              "sibling record must be byte-identical to a local run");
    }
    ::unsetenv("SMTPD_CHAOS_ABORT_APP");
}

/**
 * A worker wedges forever. The deadline must kill it, the retry must
 * wedge again, and after maxAttempts the cell must be quarantined with
 * a structured failure record — while an undamaged cell still runs.
 */
void
scenarioWedge()
{
    std::printf("scenario wedge: deadline kill -> retry -> quarantine\n");
    ::setenv("SMTPD_CHAOS_WEDGE_APP", "fft", 1);
    {
        // No daemon-wide deadline: the wedged *job* asks for its own
        // (a wedged worker never computes, so the deadline is pure
        // kill latency and safe under sanitizer slowdowns — while the
        // healthy sibling job stays unbounded).
        ServerOptions opt;
        opt.jobs = 2;
        opt.maxAttempts = 2;
        opt.retry.kind = fault::RetryKind::Immediate;
        Daemon d("wedge", opt);
        std::vector<RunConfig> cells{cell("fft"), cell("lu")};
        std::vector<std::string> recs(cells.size());
        unsigned sawFailed = 0, attempts = 0;
        std::string reason;
        Client healthy;
        CHECK(healthy.connect(d.sock), "connect");
        CHECK(healthy.submit({cells[1]}, 0,
                             [&](const CellReply &cr) {
                                 recs[1] = cr.record;
                                 CHECK(!cr.failed,
                                       "healthy cell must succeed");
                             }),
              "healthy job must complete");
        Client c;
        CHECK(c.connect(d.sock), "connect");
        std::size_t failed = 0;
        bool ok = c.submit(
            {cells[0]}, 0,
            [&](const CellReply &cr) {
                recs[0] = cr.record;
                if (cr.failed) {
                    ++sawFailed;
                    attempts = cr.attempts;
                    reason = cr.errReason;
                }
            },
            nullptr, &failed, /*deadlineMs=*/500);
        CHECK(!ok, "submit must report the quarantined cell");
        CHECK(failed == 1 && sawFailed == 1,
              "exactly one cell quarantined");
        CHECK(reason == "deadline", "failure reason must be 'deadline'");
        CHECK(attempts == 2, "quarantine after maxAttempts=2 attempts");
        CHECK(statNum(d.sock, "workers_deadline_killed") >= 2,
              "both attempts must have been deadline-killed");
        CHECK(statNum(d.sock, "cells_quarantined") == 1,
              "exactly one quarantined cell");
        // The structured failure record is parseable and self-describing.
        JsonValue rec;
        CHECK(JsonValue::parse(recs[0], rec), "failure record parses");
        CHECK(rec.getBool("failed"), "failure record says failed:true");
        CHECK(rec.getString("error") == "deadline",
              "failure record carries the reason");
        CHECK(static_cast<unsigned>(rec.getNumber("attempts")) == 2,
              "failure record carries the attempt count");
        d.stop();
        ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
        CHECK(stripWall(recs[1]) == stripWall(localRecord(cells[1], "wedge_lu")),
              "healthy sibling record must be byte-identical");
    }
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
}

/**
 * Kill -9 the daemon's cache integrity: truncate one result file, bit-
 * flip another, zero a third. A restarted daemon must quarantine all
 * three at fsck, recompute on demand, and the recomputed records must
 * be byte-identical to the originals.
 */
void
scenarioCorrupt()
{
    std::printf("scenario corrupt: cache fsck -> quarantine -> recompute\n");
    std::vector<RunConfig> cells{cell("fft"), cell("lu"), cell("radix")};
    std::vector<std::string> before(cells.size());
    std::string dir;
    {
        Daemon d("corrupt");
        dir = d.dir;
        Client c;
        CHECK(c.connect(d.sock), "connect");
        bool ok = c.submit(cells, 0, [&](const CellReply &cr) {
            before[cr.index] = cr.record;
        });
        CHECK(ok, "baseline sweep must succeed");
        d.stop();

        // Vandalize results/: one truncated, one bit-flipped, one zeroed.
        std::vector<std::string> files;
        std::string lsCmd = "ls '" + dir + "/results'";
        if (std::FILE *ls = ::popen(lsCmd.c_str(), "r")) {
            char line[256];
            while (std::fgets(line, sizeof line, ls) != nullptr) {
                std::string f = line;
                while (!f.empty() && (f.back() == '\n' || f.back() == '\r'))
                    f.pop_back();
                if (!f.empty())
                    files.push_back(dir + "/results/" + f);
            }
            ::pclose(ls);
        }
        CHECK(files.size() == 3, "three cached result files expected");
        if (files.size() == 3) {
            // Truncate to half.
            if (std::FILE *f = std::fopen(files[0].c_str(), "r+")) {
                std::fseek(f, 0, SEEK_END);
                long half = std::ftell(f) / 2;
                std::fclose(f);
                [[maybe_unused]] int rc =
                    ::truncate(files[0].c_str(), half);
            }
            // Flip one bit mid-file (may still be valid JSON text; the
            // content checksum is what must catch it).
            if (std::FILE *f = std::fopen(files[1].c_str(), "r+")) {
                std::fseek(f, 0, SEEK_END);
                long mid = std::ftell(f) / 2;
                std::fseek(f, mid, SEEK_SET);
                int ch = std::fgetc(f);
                std::fseek(f, mid, SEEK_SET);
                std::fputc(ch ^ 0x01, f);
                std::fclose(f);
            }
            // Zero-length.
            if (std::FILE *f = std::fopen(files[2].c_str(), "w"))
                std::fclose(f);
        }

        // Restart on the vandalized state dir.
        CHECK(d.start(ServerOptions{}), "restart on corrupt state dir");
        CHECK(statNum(d.sock, "fsck_quarantined") == 3,
              "fsck must quarantine all three corrupt files");
        std::vector<std::string> after(cells.size());
        Client c2;
        CHECK(c2.connect(d.sock), "reconnect");
        bool ok2 = c2.submit(cells, 0, [&](const CellReply &cr) {
            after[cr.index] = cr.record;
            CHECK(!cr.failed, "recompute must succeed");
        });
        CHECK(ok2, "post-fsck sweep must succeed");
        CHECK(statNum(d.sock, "disk_hits") == 0,
              "no corrupt file may be served as a cache hit");
        for (std::size_t i = 0; i < cells.size(); ++i)
            CHECK(stripWall(before[i]) == stripWall(after[i]),
                  "recomputed record must match the original");
        // The quarantine dir actually holds the three rejects.
        std::string cnt = "ls '" + dir + "/quarantine' | wc -l";
        if (std::FILE *wc = ::popen(cnt.c_str(), "r")) {
            int n = -1;
            if (std::fscanf(wc, "%d", &n) == 1)
                CHECK(n == 3, "quarantine/ must hold the three files");
            ::pclose(wc);
        }
    }
}

/**
 * Hostile clients: a garbage frame, a half-closed peer, a slow-loris
 * that submits work and never reads, and a connect-and-slam. None may
 * affect a well-behaved client on the same daemon.
 */
void
scenarioHostile()
{
    std::printf("scenario hostile: garbage, half-closed, slow-loris\n");
    ServerOptions opt;
    opt.jobs = 2;
    Daemon d("hostile", opt);

    // 1. Garbage bytes that parse as a frame header promising 16 MiB,
    //    then silence: the daemon must not block on it.
    {
        std::string err;
        int fd = connectSocket(d.sock, &err);
        CHECK(fd >= 0, "hostile connect");
        if (fd >= 0) {
            const unsigned char hdr[4] = {0xff, 0xff, 0xff, 0x00};
            [[maybe_unused]] ssize_t n = ::send(fd, hdr, 4, MSG_NOSIGNAL);
            ::close(fd);
        }
    }
    // 2. A complete frame of non-JSON garbage: error reply, not death.
    {
        std::string err;
        int fd = connectSocket(d.sock, &err);
        CHECK(fd >= 0, "hostile connect");
        if (fd >= 0) {
            CHECK(writeFrame(fd, "not json at all {{{", &err),
                  "garbage frame send");
            std::string payload;
            int r = readFrame(fd, payload, &err);
            CHECK(r == 1 && payload.find("error") != std::string::npos,
                  "daemon must answer garbage with an error frame");
            ::close(fd);
        }
    }
    // 3. Half-closed peer: shut down our read side, then make the
    //    daemon produce output for us. Its writes must not wedge or
    //    kill it (EPIPE is a client problem).
    {
        std::string err;
        int fd = connectSocket(d.sock, &err);
        CHECK(fd >= 0, "hostile connect");
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RD);
            JsonValue req = JsonValue::makeObject();
            req.set("op", JsonValue::makeString("stats"));
            req.set("proto", JsonValue::makeNumber(kProtoVersion));
            [[maybe_unused]] bool sent = writeFrame(fd, req.dump(), &err);
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            ::close(fd);
        }
    }
    // 4. Slow-loris: submit a real job, never read a byte, hold the
    //    socket open. The daemon's bounded out-buffer and dead-conn
    //    sweep must contain it.
    int lorisFd = -1;
    {
        std::string err;
        lorisFd = connectSocket(d.sock, &err);
        CHECK(lorisFd >= 0, "loris connect");
        if (lorisFd >= 0) {
            JsonValue req = JsonValue::makeObject();
            req.set("op", JsonValue::makeString("submit"));
            req.set("proto", JsonValue::makeNumber(kProtoVersion));
            req.set("priority", JsonValue::makeNumber(0));
            JsonValue arr = JsonValue::makeArray();
            arr.append(cellToJson(cell("fft")));
            req.set("cells", std::move(arr));
            CHECK(writeFrame(lorisFd, req.dump(), &err), "loris submit");
            // Deliberately never read.
        }
    }

    // The well-behaved client still gets full service.
    std::vector<RunConfig> cells{cell("lu")};
    std::vector<std::string> recs(cells.size());
    Client c;
    CHECK(c.connect(d.sock), "good-client connect");
    bool ok = c.submit(cells, 0, [&](const CellReply &cr) {
        recs[cr.index] = cr.record;
    });
    CHECK(ok, "good client must be served amid hostile peers");
    CHECK(c.ping(), "daemon must still answer pings");
    if (lorisFd >= 0)
        ::close(lorisFd);
    d.stop();
    CHECK(stripWall(recs[0]) == stripWall(localRecord(cells[0], "hostile_lu")),
          "record served amid chaos must be byte-identical");
}

/**
 * Flood past the admission limit: a too-large job gets an explicit
 * "overloaded" reply on a connection that stays usable, and a high-
 * priority job sheds queued low-priority cells rather than waiting.
 */
void
scenarioFlood()
{
    std::printf("scenario flood: overload reply + priority shedding\n");
    ::setenv("SMTPD_CHAOS_WEDGE_APP", "ocean", 1);
    {
        ServerOptions opt;
        opt.jobs = 1;
        opt.maxQueuedCells = 2;
        Daemon d("flood", opt);

        // Oversized job: 4 distinct cells against a backlog limit of 2.
        {
            Client c;
            CHECK(c.connect(d.sock), "connect");
            std::vector<RunConfig> big{cell("fft", 2), cell("fft", 4),
                                       cell("lu", 2), cell("lu", 4)};
            bool ok = c.submit(big, 0, nullptr);
            CHECK(!ok && c.overloaded(),
                  "oversized job must be refused as overloaded");
            CHECK(c.ping(), "connection must survive the refusal");
            CHECK(statNum(d.sock, "jobs_rejected") == 1,
                  "refusal must be counted");
        }

        // Occupy the only worker with a wedge cell (no deadline), so
        // queued cells stay queued.
        std::thread wedgeThread;
        {
            Client probe;
            CHECK(probe.connect(d.sock), "connect");
            wedgeThread = std::thread([&d] {
                Client c;
                if (!c.connect(d.sock))
                    return;
                std::vector<RunConfig> w{cell("ocean")};
                c.submit(w, 0, nullptr); // Blocks until cancel below.
            });
            CHECK(awaitStat(d.sock, "cells_running", 1),
                  "wedge cell must occupy the worker");
        }

        // Low-priority job fills the queue...
        std::size_t lowFailed = 0;
        bool lowOk = true;
        std::thread lowThread([&] {
            Client c;
            if (!c.connect(d.sock))
                return;
            std::vector<RunConfig> low{cell("fft", 2), cell("fft", 4)};
            lowOk = c.submit(low, /*priority=*/0, nullptr, nullptr,
                             &lowFailed);
        });
        CHECK(awaitStat(d.sock, "cells_queued", 2),
              "low-priority cells must be queued");

        // ...and a high-priority job sheds one of them to get in.
        std::vector<RunConfig> high{cell("lu", 2)};
        std::vector<std::string> highRecs(high.size());
        Client hc;
        CHECK(hc.connect(d.sock), "connect");
        std::size_t highFailed = 0;
        std::thread highThread([&] {
            bool ok = hc.submit(
                high, /*priority=*/5,
                [&](const CellReply &cr) {
                    highRecs[cr.index] = cr.record;
                    CHECK(!cr.failed, "high-priority cell must succeed");
                },
                nullptr, &highFailed);
            CHECK(ok, "high-priority job must complete");
        });
        CHECK(awaitStat(d.sock, "cells_shed", 1),
              "one low-priority cell must be shed");

        // Free the worker: cancel the wedge job (job id 1 was the
        // rejected submit — ids are only assigned on acceptance, so
        // the wedge job is id 1).
        Client killer;
        CHECK(killer.connect(d.sock), "connect");
        CHECK(killer.cancel(1), "cancel the wedge job");
        wedgeThread.join();
        lowThread.join();
        highThread.join();
        CHECK(!lowOk && lowFailed == 1,
              "low-priority job must report its shed cell");
        CHECK(highFailed == 0, "high-priority job must be unharmed");
        CHECK(statNum(d.sock, "workers_cancel_killed") >= 1,
              "cancel must have killed the wedged worker");
        d.stop();
        ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
        CHECK(stripWall(highRecs[0]) ==
                  stripWall(localRecord(high[0], "flood_lu")),
              "record produced under flood must be byte-identical");
    }
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
}

/**
 * Cancel race: a dispatched (running) cell whose job is cancelled must
 * have its worker killed promptly and the slot reusable immediately —
 * not leak a wedged worker until daemon shutdown.
 */
void
scenarioCancel()
{
    std::printf("scenario cancel: kill dispatched worker, reuse slot\n");
    ::setenv("SMTPD_CHAOS_WEDGE_APP", "fft", 1);
    {
        ServerOptions opt;
        opt.jobs = 1; // One slot: leak detection is structural.
        Daemon d("cancel", opt);
        std::thread wedgeThread([&d] {
            Client c;
            if (!c.connect(d.sock))
                return;
            std::vector<RunConfig> w{cell("fft")};
            c.submit(w, 0, nullptr);
        });
        CHECK(awaitStat(d.sock, "cells_running", 1),
              "wedge cell must be dispatched");
        Client killer;
        CHECK(killer.connect(d.sock), "connect");
        std::size_t removed = 0;
        CHECK(killer.cancel(1, &removed), "cancel");
        CHECK(removed == 1, "cancel must report the removed cell");
        wedgeThread.join();
        CHECK(awaitStat(d.sock, "workers_cancel_killed", 1),
              "worker must be killed by the cancel");
        // The single slot must be free: a fresh job completes.
        std::vector<RunConfig> cells{cell("lu")};
        std::vector<std::string> recs(cells.size());
        Client c;
        CHECK(c.connect(d.sock), "connect");
        bool ok = c.submit(cells, 0, [&](const CellReply &cr) {
            recs[cr.index] = cr.record;
        });
        CHECK(ok, "slot must be reusable right after cancel");
        d.stop();
        ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
        CHECK(stripWall(recs[0]) == stripWall(localRecord(cells[0], "cancel_lu")),
              "post-cancel record must be byte-identical");
    }
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
}

struct Scenario
{
    const char *name;
    void (*fn)();
    bool quick; ///< Included in --quick.
};

const Scenario kScenarios[] = {
    {"crash", scenarioCrash, true},
    {"wedge", scenarioWedge, true},
    {"corrupt", scenarioCorrupt, true},
    {"hostile", scenarioHostile, true},
    {"flood", scenarioFlood, false},
    {"cancel", scenarioCancel, false},
};

} // namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string only;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg.rfind("--scenarios=", 0) == 0) {
            only = arg.substr(std::strlen("--scenarios="));
        } else if (arg == "--verbose") {
            g_verbose = true;
        } else {
            std::fprintf(stderr,
                         "usage: serve_chaos [--quick] "
                         "[--scenarios=a,b,...] [--verbose]\n");
            return 2;
        }
    }
    // The chaos env hooks must not leak in from the caller.
    ::unsetenv("SMTPD_CHAOS_ABORT_APP");
    ::unsetenv("SMTPD_CHAOS_ABORT_TIMES");
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
    ::unsetenv("SMTPD_CHAOS_WEDGE_TIMES");

    int ran = 0;
    for (const Scenario &s : kScenarios) {
        if (quick && !s.quick)
            continue;
        if (!only.empty() &&
            ("," + only + ",").find("," + std::string(s.name) + ",") ==
                std::string::npos)
            continue;
        int before = g_failures;
        s.fn();
        ++ran;
        std::printf("scenario %s: %s\n", s.name,
                    g_failures == before ? "OK" : "FAILED");
    }
    if (ran == 0) {
        std::fprintf(stderr, "serve_chaos: no scenario selected\n");
        return 2;
    }
    std::printf("serve_chaos: %d scenario(s), %d failure(s)\n", ran,
                g_failures);
    return g_failures == 0 ? 0 : 1;
}
