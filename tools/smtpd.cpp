/**
 * @file
 * smtpd — the sweep-service daemon (docs/service.md).
 *
 *   smtpd --socket=PATH --state-dir=DIR [--jobs=N] [--verbose]
 *
 * Listens on a local UNIX socket for sweep jobs (see smtpctl and the
 * bench binaries' --server mode), simulates each distinct cell once on
 * a shared worker pool, streams records back as they complete, and
 * keeps a warm checkpoint farm plus an on-disk result cache under
 * --state-dir so identical work is never paid for twice — not even
 * across daemon restarts. SIGINT/SIGTERM (or a client "shutdown"
 * request) stops cleanly: running cells finish and land in the cache,
 * queued ones are skipped.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace
{

smtp::serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtpd --socket=PATH --state-dir=DIR [options]\n"
        "  --socket=PATH     UNIX socket to listen on (required)\n"
        "  --state-dir=DIR   checkpoint farm + result cache + traces\n"
        "  --jobs=N          simulation workers (default: "
        "SMTP_SWEEP_JOBS or hardware)\n"
        "  --verbose         per-connection and per-cell progress\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    smtp::serve::ServerOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = value("--socket=")) {
            opt.socketPath = v;
        } else if (const char *v = value("--state-dir=")) {
            opt.stateDir = v;
        } else if (const char *v = value("--jobs=")) {
            long n = std::atol(v);
            if (n < 1) {
                std::fprintf(stderr, "smtpd: bad --jobs=%s\n", v);
                return 2;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "smtpd: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (opt.socketPath.empty() || opt.stateDir.empty())
        return usage();

    smtp::serve::Server server(std::move(opt));
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);
    int rc = server.run();
    g_server = nullptr;
    return rc;
}
