/**
 * @file
 * smtpd — the sweep-service daemon (docs/service.md).
 *
 *   smtpd --socket=PATH --state-dir=DIR [--jobs=N] [--verbose]
 *         [--deadline-ms=MS] [--max-attempts=N] [--max-queue=N]
 *         [--retry-policy=SPEC] [--retry-seed=S]
 *
 * Listens on a local UNIX socket for sweep jobs (see smtpctl and the
 * bench binaries' --server mode), simulates each distinct cell once —
 * in a crash-isolated worker *process* — streams records back as they
 * complete, and keeps a warm checkpoint farm plus an on-disk result
 * cache under --state-dir so identical work is never paid for twice,
 * not even across daemon restarts. A crashing or wedged simulation
 * kills only its worker: the cell is retried on a jittered backoff and
 * quarantined with a structured failure record after --max-attempts.
 * SIGINT/SIGTERM (or a client "shutdown" request) stops cleanly:
 * running cells finish and land in the cache, queued ones are skipped.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/server.hpp"

namespace
{

smtp::serve::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtpd --socket=PATH --state-dir=DIR [options]\n"
        "  --socket=PATH       UNIX socket to listen on (required)\n"
        "  --state-dir=DIR     checkpoint farm + result cache + traces\n"
        "  --jobs=N            worker processes (default: 2)\n"
        "  --deadline-ms=MS    default per-cell deadline; overdue\n"
        "                      workers are killed and retried (0 = off)\n"
        "  --max-attempts=N    attempts before a failing cell is\n"
        "                      quarantined (default: 3)\n"
        "  --max-queue=N       admission limit on queued cells\n"
        "                      (default: 1024)\n"
        "  --retry-policy=SPEC immediate | fixed[:ms] | exp[:ms[:ms]]\n"
        "                      between attempts (default: exp:100:5000)\n"
        "  --retry-seed=S      retry-jitter seed (default: 1)\n"
        "  --verbose           per-connection and per-cell progress\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    smtp::serve::ServerOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (const char *v = value("--socket=")) {
            opt.socketPath = v;
        } else if (const char *v = value("--state-dir=")) {
            opt.stateDir = v;
        } else if (const char *v = value("--jobs=")) {
            long n = std::atol(v);
            if (n < 1) {
                std::fprintf(stderr, "smtpd: bad --jobs=%s\n", v);
                return 2;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (const char *v = value("--deadline-ms=")) {
            long n = std::atol(v);
            if (n < 0) {
                std::fprintf(stderr, "smtpd: bad --deadline-ms=%s\n", v);
                return 2;
            }
            opt.deadlineMs = static_cast<std::uint64_t>(n);
        } else if (const char *v = value("--max-attempts=")) {
            long n = std::atol(v);
            if (n < 1) {
                std::fprintf(stderr, "smtpd: bad --max-attempts=%s\n",
                             v);
                return 2;
            }
            opt.maxAttempts = static_cast<unsigned>(n);
        } else if (const char *v = value("--max-queue=")) {
            long n = std::atol(v);
            if (n < 1) {
                std::fprintf(stderr, "smtpd: bad --max-queue=%s\n", v);
                return 2;
            }
            opt.maxQueuedCells = static_cast<std::size_t>(n);
        } else if (const char *v = value("--retry-policy=")) {
            std::string err;
            // Fault-layer grammar; the serve layer reads the numbers
            // as milliseconds (docs/service.md).
            if (!smtp::fault::parseRetryPolicy(v, opt.retry, &err)) {
                std::fprintf(stderr, "smtpd: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--retry-seed=")) {
            opt.retrySeed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            std::fprintf(stderr, "smtpd: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (opt.socketPath.empty() || opt.stateDir.empty())
        return usage();

    smtp::serve::Server server(std::move(opt));
    g_server = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);
    int rc = server.run();
    g_server = nullptr;
    return rc;
}
