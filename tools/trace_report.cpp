/**
 * @file
 * Offline analysis CLI for .smtptrace telemetry captures.
 *
 * Reads the binary container written by a traced run (bench --trace,
 * run_benches.sh --trace, or Machine::writeTraceFiles) and prints the
 * paper-shaped analyses:
 *
 *   - protocol-agent occupancy per node (Table 7 style): busy time
 *     reconstructed from ProtoBusyBegin/End windows over exec time;
 *   - handler service latency per message type (from McHandlerDone),
 *     with histogram-based p50/p95/p99;
 *   - network end-to-end latency per message type, stitched by the
 *     traceId stamped at injection (NetInject -> NetDeliver);
 *   - CPU memory-stall breakdown by cause per node (Figure 5/7 style)
 *     from ThreadStallBegin/End windows;
 *   - back-pressure and fetch-steal summaries.
 *
 * The ring buffers keep the newest events, so counts reflect the
 * stored tail; the report prints recorded-vs-stored so drops are
 * visible. --perfetto / --csv re-export the capture without rerunning
 * the simulation; --dump decodes every stored event.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hpp"
#include "trace/events.hpp"
#include "trace/export.hpp"

namespace
{

using namespace smtp;
using trace::EventId;

double
us(Tick t)
{
    return static_cast<double>(t) / tickPerUs;
}

/** Per-type latency accumulation with exact-max histogram percentiles. */
struct LatencyTable
{
    std::map<std::uint8_t, std::vector<Tick>> byType;

    void
    add(std::uint8_t type, Tick latency)
    {
        byType[type].push_back(latency);
    }

    void
    print(const char *caption) const
    {
        printNamed(caption, [](std::uint8_t type) {
            return std::string(
                proto::msgTypeName(static_cast<proto::MsgType>(type)));
        });
    }

    /** Same table, with the row label supplied by @p nameOf. */
    template <typename NameFn>
    void
    printNamed(const char *caption, NameFn nameOf) const
    {
        if (byType.empty()) {
            std::printf("%s: no samples in stored tail\n", caption);
            return;
        }
        std::printf("%s\n", caption);
        std::printf("  %-14s %8s %10s %10s %10s %10s %10s\n", "type", "count",
                    "mean_us", "p50_us", "p95_us", "p99_us", "max_us");
        for (const auto &[type, lats] : byType) {
            Tick maxLat = 0;
            for (Tick l : lats)
                maxLat = std::max(maxLat, l);
            Distribution d;
            d.enableHistogram(0.0, static_cast<double>(maxLat) + 1.0, 64);
            for (Tick l : lats)
                d.sample(static_cast<double>(l));
            std::printf(
                "  %-14s %8zu %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                nameOf(type).c_str(), lats.size(), d.mean() / tickPerUs,
                d.percentile(50.0) / tickPerUs, d.percentile(95.0) / tickPerUs,
                d.percentile(99.0) / tickPerUs, d.max() / tickPerUs);
        }
    }
};

struct NodeOccupancy
{
    Tick busy = 0;
    std::uint64_t windows = 0;
    std::uint64_t handlers = 0;
    std::uint64_t recorded = 0;
    std::uint64_t stored = 0;
    bool present = false;
};

struct StallAccum
{
    Tick loadTicks = 0;
    Tick storeTicks = 0;
    std::uint64_t fetchSteals = 0;
    std::uint64_t stolenOps = 0;
    unsigned threads = 0;
};

void
reportFile(const trace::TraceData &data, bool dump)
{
    std::printf("nodes=%u exec=%.3fus interval=%.3fus rows=%zu "
                "series=%zu buffers=%zu\n",
                data.nodes, us(data.execTicks), us(data.intervalTicks),
                data.sampleTicks.size(), data.seriesNames.size(),
                data.buffers.size());

    if (dump) {
        for (const auto &b : data.buffers) {
            std::printf("-- n%u.%s (%llu recorded, %zu stored) --\n", b.node,
                        b.name.c_str(),
                        static_cast<unsigned long long>(b.recorded),
                        b.events.size());
            for (const auto &e : b.events)
                trace::printEvent(stdout, e);
        }
        return;
    }

    struct FaultAccum
    {
        bool present = false;
        std::uint64_t drops = 0, dups = 0, delays = 0, reorders = 0;
        std::uint64_t lost = 0, eccCorrect = 0, eccDetect = 0;
        std::uint64_t forcedNaks = 0, retryBackoffs = 0, starvations = 0;
        unsigned maxRetries = 0;
    };

    struct ExecAccum
    {
        bool present = false;
        std::uint64_t windows = 0;
        std::uint64_t events = 0;
        std::uint64_t waitNs = 0;
    };

    std::vector<NodeOccupancy> occ(data.nodes);
    std::vector<StallAccum> stalls(data.nodes);
    std::vector<ExecAccum> exec(data.nodes);
    struct TxnAccum
    {
        bool present = false;
        std::uint64_t commits = 0;
        std::uint64_t aborts = 0;
        std::uint64_t maxRetries = 0; ///< aborts preceding one commit
    };

    FaultAccum faults;
    LatencyTable handlerLat;
    LatencyTable netLat;
    LatencyTable reqLat;
    TxnAccum txn;
    std::unordered_map<std::uint32_t, Tick> injectTick;
    std::uint64_t deliversUnmatched = 0;
    std::uint64_t backpressure = 0;
    unsigned bpMaxDepth = 0;

    // Pass 1: injection times, so delivery matching is order-independent
    // across per-node buffers.
    for (const auto &b : data.buffers)
        for (const auto &e : b.events)
            if (e.id() == EventId::NetInject)
                injectTick.emplace(trace::netTraceId(e.arg), e.tick());

    for (const auto &b : data.buffers) {
        if (b.node >= data.nodes)
            continue;
        auto cat = static_cast<trace::Category>(b.category);
        if (cat == trace::Category::Protocol) {
            NodeOccupancy &o = occ[b.node];
            o.present = true;
            o.recorded += b.recorded;
            o.stored += b.events.size();
            Tick busyStart = 0;
            bool busy = false;
            for (const auto &e : b.events) {
                switch (e.id()) {
                  case EventId::ProtoBusyBegin:
                    busyStart = e.tick();
                    busy = true;
                    break;
                  case EventId::ProtoBusyEnd:
                    if (busy) {
                        o.busy += e.tick() - busyStart;
                        ++o.windows;
                        busy = false;
                    }
                    break;
                  case EventId::HandlerRetire:
                    ++o.handlers;
                    break;
                  default:
                    break;
                }
            }
            if (busy && data.execTicks > busyStart) {
                // Trailing open window: agent still busy at snapshot.
                o.busy += data.execTicks - busyStart;
                ++o.windows;
            }
        } else if (cat == trace::Category::Cpu) {
            StallAccum &s = stalls[b.node];
            // Per-thread open-window tracking; tids are small ints.
            std::map<unsigned, std::pair<Tick, std::uint8_t>> open;
            std::map<unsigned, bool> seen;
            for (const auto &e : b.events) {
                unsigned tid = trace::stallTid(e.arg);
                switch (e.id()) {
                  case EventId::ThreadStallBegin:
                    seen[tid] = true;
                    open[tid] = {e.tick(), trace::stallCause(e.arg)};
                    break;
                  case EventId::ThreadStallEnd: {
                    seen[tid] = true;
                    auto it = open.find(tid);
                    if (it != open.end()) {
                        Tick dur = e.tick() - it->second.first;
                        if (it->second.second == trace::stallStore)
                            s.storeTicks += dur;
                        else
                            s.loadTicks += dur;
                        open.erase(it);
                    }
                    break;
                  }
                  case EventId::FetchSteal:
                    ++s.fetchSteals;
                    s.stolenOps += trace::stallCause(e.arg); // ops count
                    break;
                  default:
                    break;
                }
            }
            for (const auto &[tid, w] : open) {
                if (data.execTicks > w.first) {
                    Tick dur = data.execTicks - w.first;
                    if (w.second == trace::stallStore)
                        s.storeTicks += dur;
                    else
                        s.loadTicks += dur;
                }
            }
            s.threads = static_cast<unsigned>(seen.size());
        } else if (cat == trace::Category::Mem) {
            for (const auto &e : b.events)
                if (e.id() == EventId::McHandlerDone)
                    handlerLat.add(
                        static_cast<std::uint8_t>(trace::doneType(e.arg)),
                        trace::doneLatency(e.arg));
        } else if (cat == trace::Category::Fault) {
            faults.present = true;
            for (const auto &e : b.events) {
                switch (e.id()) {
                  case EventId::FaultNetDrop: ++faults.drops; break;
                  case EventId::FaultNetDup: ++faults.dups; break;
                  case EventId::FaultNetDelay: ++faults.delays; break;
                  case EventId::FaultNetReorder: ++faults.reorders; break;
                  case EventId::FaultNetLost: ++faults.lost; break;
                  case EventId::FaultEccCorrect: ++faults.eccCorrect; break;
                  case EventId::FaultEccDetect: ++faults.eccDetect; break;
                  case EventId::FaultForcedNak: ++faults.forcedNaks; break;
                  case EventId::FaultRetryBackoff:
                    ++faults.retryBackoffs;
                    faults.maxRetries = std::max(
                        faults.maxRetries, trace::retryCount(e.arg));
                    break;
                  case EventId::FaultStarvation: ++faults.starvations; break;
                  default: break;
                }
            }
        } else if (cat == trace::Category::Exec) {
            for (const auto &e : b.events) {
                unsigned s = trace::windowShard(e.arg);
                if (s >= exec.size())
                    continue;
                exec[s].present = true;
                if (e.id() == EventId::WindowAdvance) {
                    ++exec[s].windows;
                    exec[s].events += trace::windowValue(e.arg);
                } else if (e.id() == EventId::BarrierWait) {
                    exec[s].waitNs += trace::windowValue(e.arg);
                }
            }
        } else if (cat == trace::Category::Workload) {
            for (const auto &e : b.events) {
                switch (e.id()) {
                  case EventId::ReqRetire:
                    reqLat.add(static_cast<std::uint8_t>(
                                   trace::reqKind(e.arg)),
                               trace::reqLatency(e.arg));
                    break;
                  case EventId::TxnCommit:
                    txn.present = true;
                    ++txn.commits;
                    txn.maxRetries =
                        std::max(txn.maxRetries, trace::txnAborts(e.arg));
                    break;
                  case EventId::TxnAbort:
                    txn.present = true;
                    ++txn.aborts;
                    break;
                  default:
                    break;
                }
            }
        } else if (cat == trace::Category::Network) {
            for (const auto &e : b.events) {
                if (e.id() == EventId::NetDeliver) {
                    auto it = injectTick.find(trace::netTraceId(e.arg));
                    if (it == injectTick.end() || e.tick() < it->second) {
                        ++deliversUnmatched;
                    } else {
                        netLat.add(
                            static_cast<std::uint8_t>(trace::netType(e.arg)),
                            e.tick() - it->second);
                    }
                } else if (e.id() == EventId::NetBackpressure) {
                    ++backpressure;
                    bpMaxDepth = std::max(bpMaxDepth, trace::bpDepth(e.arg));
                }
            }
        }
    }

    // Empty protocol = a v1 capture from before the variant subsystem,
    // which could only ever have been the default bitvector protocol.
    const char *protoName =
        data.protocol.empty() ? "bitvector" : data.protocol.c_str();
    std::printf("\nprotocol occupancy (Table 7 style; busy/exec from stored "
                "busy windows)\n");
    std::printf("  %-6s %-14s %10s %10s %10s %10s %12s\n", "node",
                "protocol", "busy_us", "occupancy", "windows", "handlers",
                "rec/stored");
    for (unsigned n = 0; n < data.nodes; ++n) {
        const NodeOccupancy &o = occ[n];
        if (!o.present)
            continue;
        double frac = data.execTicks
                          ? static_cast<double>(o.busy) /
                                static_cast<double>(data.execTicks)
                          : 0.0;
        char rs[32];
        std::snprintf(rs, sizeof(rs), "%llu/%llu",
                      static_cast<unsigned long long>(o.recorded),
                      static_cast<unsigned long long>(o.stored));
        std::printf("  n%-5u %-14s %10.3f %10.3f %10llu %10llu %12s\n", n,
                    protoName, us(o.busy), frac,
                    static_cast<unsigned long long>(o.windows),
                    static_cast<unsigned long long>(o.handlers), rs);
    }

    std::printf("\n");
    handlerLat.print("handler service latency by message type "
                     "(dispatch -> handlerDone)");

    std::printf("\n");
    netLat.print("network end-to-end latency by message type "
                 "(inject -> deliver, traceId-stitched)");
    if (deliversUnmatched)
        std::printf("  (%llu deliveries unmatched: injection aged out of "
                    "the ring)\n",
                    static_cast<unsigned long long>(deliversUnmatched));

    if (!reqLat.byType.empty() || txn.present) {
        std::printf("\n");
        reqLat.printNamed("request latency by workload class (birth -> "
                          "retire; window granularity)",
                          [](std::uint8_t kind) {
                              return std::string(trace::reqKindName(
                                  static_cast<trace::ReqKind>(kind)));
                          });
        if (txn.present) {
            double total = static_cast<double>(txn.commits + txn.aborts);
            std::printf("speculative transactions: %llu commit(s), %llu "
                        "abort(s) (%.1f%% abort rate), max %llu "
                        "retries before a commit\n",
                        static_cast<unsigned long long>(txn.commits),
                        static_cast<unsigned long long>(txn.aborts),
                        total ? 100.0 * static_cast<double>(txn.aborts) /
                                    total
                              : 0.0,
                        static_cast<unsigned long long>(txn.maxRetries));
        }
    }

    std::printf("\nmemory-stall breakdown (Figure 5/7 style; per-node "
                "stall time from stored windows)\n");
    std::printf("  %-6s %8s %12s %12s %12s %12s\n", "node", "threads",
                "load_us", "store_us", "stall_frac", "fetch_steals");
    for (unsigned n = 0; n < data.nodes; ++n) {
        const StallAccum &s = stalls[n];
        double denom = static_cast<double>(data.execTicks) *
                       std::max(1u, s.threads);
        double frac = denom ? static_cast<double>(s.loadTicks + s.storeTicks) /
                                  denom
                            : 0.0;
        std::printf("  n%-5u %8u %12.3f %12.3f %12.3f %12llu\n", n, s.threads,
                    us(s.loadTicks), us(s.storeTicks), frac,
                    static_cast<unsigned long long>(s.fetchSteals));
    }

    std::printf("\nback-pressure: %llu event(s), max landing-queue depth "
                "%u\n",
                static_cast<unsigned long long>(backpressure), bpMaxDepth);

    bool anyExec = false;
    std::uint64_t totalEvents = 0;
    for (const ExecAccum &x : exec) {
        anyExec = anyExec || x.present;
        totalEvents += x.events;
    }
    if (anyExec) {
        // Host-time utilization of the parallel kernel (Exec category;
        // opt-in, excluded from default exports because barrier waits
        // are host-nondeterministic). events_share shows load balance
        // across shards; wait_ms is time the shard's host thread spent
        // parked at window barriers while a slower shard caught up.
        std::printf("\nshard executor utilization (stored tail of the "
                    "exec buffers; host time, not simulated)\n");
        std::printf("  %-6s %10s %14s %12s %12s\n", "shard", "windows",
                    "events", "events_share", "wait_ms");
        for (unsigned s = 0; s < static_cast<unsigned>(exec.size()); ++s) {
            const ExecAccum &x = exec[s];
            if (!x.present)
                continue;
            double share = totalEvents ? static_cast<double>(x.events) /
                                             static_cast<double>(totalEvents)
                                       : 0.0;
            std::printf("  s%-5u %10llu %14llu %12.3f %12.3f\n", s,
                        static_cast<unsigned long long>(x.windows),
                        static_cast<unsigned long long>(x.events), share,
                        static_cast<double>(x.waitNs) / 1e6);
        }
    }

    if (faults.present) {
        auto u64 = [](std::uint64_t v) {
            return static_cast<unsigned long long>(v);
        };
        std::uint64_t injected = faults.drops + faults.dups + faults.delays +
                                 faults.reorders + faults.eccCorrect +
                                 faults.eccDetect + faults.forcedNaks;
        std::uint64_t recovered = (faults.drops - faults.lost) + faults.dups +
                                  faults.eccCorrect + faults.eccDetect;
        std::printf("\nfault injection (stored tail of the fault buffer)\n");
        std::printf("  net: %llu drop(s) retransmitted, %llu duplicate(s) "
                    "filtered, %llu delayed, %llu reordered\n",
                    u64(faults.drops - faults.lost), u64(faults.dups),
                    u64(faults.delays), u64(faults.reorders));
        if (faults.lost)
            std::printf("  net: %llu message(s) LOST "
                        "(drop-without-retransmit bug hook)\n",
                        u64(faults.lost));
        std::printf("  ecc: %llu single-bit corrected, %llu double-bit "
                    "detected+refetched\n",
                    u64(faults.eccCorrect), u64(faults.eccDetect));
        std::printf("  protocol: %llu forced NAK(s), %llu retry "
                    "backoff(s), max retry count %u\n",
                    u64(faults.forcedNaks), u64(faults.retryBackoffs),
                    faults.maxRetries);
        if (faults.starvations)
            std::printf("  protocol: %llu starvation flag(s)\n",
                        u64(faults.starvations));
        std::printf("  injected=%llu recovered=%llu\n", u64(injected),
                    u64(recovered));
    }
}

/** Occupancy/handler-latency extraction shared by report and compare. */
struct OccupancySummary
{
    std::vector<NodeOccupancy> occ;
    /** Mean handler service latency and count per message type. */
    std::map<std::uint8_t, std::pair<double, std::uint64_t>> handlerLat;
    std::string protocol;
    Tick execTicks = 0;
};

OccupancySummary
summarize(const trace::TraceData &data)
{
    OccupancySummary s;
    s.occ.resize(data.nodes);
    s.protocol = data.protocol.empty() ? "bitvector" : data.protocol;
    s.execTicks = data.execTicks;
    std::map<std::uint8_t, std::pair<double, std::uint64_t>> acc;
    for (const auto &b : data.buffers) {
        if (b.node >= data.nodes)
            continue;
        auto cat = static_cast<trace::Category>(b.category);
        if (cat == trace::Category::Protocol) {
            NodeOccupancy &o = s.occ[b.node];
            o.present = true;
            Tick busyStart = 0;
            bool busy = false;
            for (const auto &e : b.events) {
                if (e.id() == EventId::ProtoBusyBegin) {
                    busyStart = e.tick();
                    busy = true;
                } else if (e.id() == EventId::ProtoBusyEnd) {
                    if (busy) {
                        o.busy += e.tick() - busyStart;
                        ++o.windows;
                        busy = false;
                    }
                } else if (e.id() == EventId::HandlerRetire) {
                    ++o.handlers;
                }
            }
            if (busy && data.execTicks > busyStart) {
                o.busy += data.execTicks - busyStart;
                ++o.windows;
            }
        } else if (cat == trace::Category::Mem) {
            for (const auto &e : b.events) {
                if (e.id() == EventId::McHandlerDone) {
                    auto &slot = acc[static_cast<std::uint8_t>(
                        trace::doneType(e.arg))];
                    slot.first +=
                        static_cast<double>(trace::doneLatency(e.arg));
                    ++slot.second;
                }
            }
        }
    }
    for (auto &[type, slot] : acc) {
        if (slot.second)
            slot.first /= static_cast<double>(slot.second);
        s.handlerLat.emplace(type, slot);
    }
    return s;
}

/**
 * Handler-occupancy comparison of two captures (--compare): per-node
 * busy fraction and handler-count deltas, then per-message-type mean
 * service latency deltas. Made for A = one protocol, B = another over
 * the same workload, but any two captures with equal node counts work.
 */
int
compareFiles(const trace::TraceData &da, const std::string &pa,
             const trace::TraceData &db, const std::string &pb)
{
    if (da.nodes != db.nodes) {
        std::fprintf(stderr,
                     "--compare: node counts differ (%u vs %u)\n",
                     da.nodes, db.nodes);
        return 1;
    }
    OccupancySummary a = summarize(da);
    OccupancySummary b = summarize(db);
    std::printf("A: %s (protocol %s, exec %.3fus)\n", pa.c_str(),
                a.protocol.c_str(), us(a.execTicks));
    std::printf("B: %s (protocol %s, exec %.3fus)\n", pb.c_str(),
                b.protocol.c_str(), us(b.execTicks));

    std::printf("\nhandler occupancy delta (B - A)\n");
    std::printf("  %-6s %10s %10s %10s %10s %10s\n", "node", "occ_A",
                "occ_B", "delta", "handl_A", "handl_B");
    for (unsigned n = 0; n < da.nodes; ++n) {
        const NodeOccupancy &oa = a.occ[n];
        const NodeOccupancy &ob = b.occ[n];
        if (!oa.present && !ob.present)
            continue;
        double fa = a.execTicks ? static_cast<double>(oa.busy) /
                                      static_cast<double>(a.execTicks)
                                : 0.0;
        double fb = b.execTicks ? static_cast<double>(ob.busy) /
                                      static_cast<double>(b.execTicks)
                                : 0.0;
        std::printf("  n%-5u %10.4f %10.4f %+10.4f %10llu %10llu\n", n,
                    fa, fb, fb - fa,
                    static_cast<unsigned long long>(oa.handlers),
                    static_cast<unsigned long long>(ob.handlers));
    }

    std::printf("\nhandler service latency delta by message type "
                "(mean_us; B - A)\n");
    std::printf("  %-14s %10s %10s %10s %10s %10s\n", "type", "mean_A",
                "mean_B", "delta", "count_A", "count_B");
    std::map<std::uint8_t, bool> types;
    for (const auto &[t, v] : a.handlerLat)
        types[t] = true;
    for (const auto &[t, v] : b.handlerLat)
        types[t] = true;
    for (const auto &[t, unused] : types) {
        auto ia = a.handlerLat.find(t);
        auto ib = b.handlerLat.find(t);
        double ma = ia != a.handlerLat.end() ? ia->second.first : 0.0;
        double mb = ib != b.handlerLat.end() ? ib->second.first : 0.0;
        std::uint64_t ca =
            ia != a.handlerLat.end() ? ia->second.second : 0;
        std::uint64_t cb =
            ib != b.handlerLat.end() ? ib->second.second : 0;
        std::printf(
            "  %-14s %10.3f %10.3f %+10.3f %10llu %10llu\n",
            std::string(
                proto::msgTypeName(static_cast<proto::MsgType>(t)))
                .c_str(),
            ma / tickPerUs, mb / tickPerUs, (mb - ma) / tickPerUs,
            static_cast<unsigned long long>(ca),
            static_cast<unsigned long long>(cb));
    }
    return 0;
}

int
usage(const char *argv0, int rc)
{
    std::FILE *out = rc == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s [options] FILE.smtptrace [FILE2 ...]\n"
                 "  (default)        print the analysis report\n"
                 "  --dump           decode every stored event\n"
                 "  --perfetto=PATH  re-export as Chrome trace-event JSON\n"
                 "  --csv=PATH       re-export the interval series as CSV\n"
                 "  --compare        take exactly two inputs A B and print\n"
                 "                   per-node handler-occupancy and handler-\n"
                 "                   latency deltas (B - A), labeled with\n"
                 "                   each capture's protocol\n"
                 "  --perfetto/--csv need exactly one input file\n",
                 argv0);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    bool dump = false;
    bool compare = false;
    std::string perfettoPath, csvPath;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--dump")
            dump = true;
        else if (arg == "--compare")
            compare = true;
        else if (arg.rfind("--perfetto=", 0) == 0)
            perfettoPath = arg.substr(std::strlen("--perfetto="));
        else if (arg.rfind("--csv=", 0) == 0)
            csvPath = arg.substr(std::strlen("--csv="));
        else if (arg == "--help")
            return usage(argv[0], 0);
        else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return usage(argv[0], 2);
        } else
            files.push_back(arg);
    }
    if (files.empty())
        return usage(argv[0], 2);
    if ((!perfettoPath.empty() || !csvPath.empty()) && files.size() != 1) {
        std::fprintf(stderr, "--perfetto/--csv need exactly one input\n");
        return 2;
    }
    if (compare) {
        if (files.size() != 2) {
            std::fprintf(stderr,
                         "--compare needs exactly two inputs (A B)\n");
            return 2;
        }
        trace::TraceData da, db;
        std::string err;
        if (!trace::readTrace(files[0], da, err)) {
            std::fprintf(stderr, "%s: %s\n", files[0].c_str(), err.c_str());
            return 1;
        }
        if (!trace::readTrace(files[1], db, err)) {
            std::fprintf(stderr, "%s: %s\n", files[1].c_str(), err.c_str());
            return 1;
        }
        return compareFiles(da, files[0], db, files[1]);
    }

    for (const auto &path : files) {
        trace::TraceData data;
        std::string err;
        if (!trace::readTrace(path, data, err)) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
            return 1;
        }
        if (!perfettoPath.empty()) {
            std::ofstream os(perfettoPath, std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot write '%s'\n",
                             perfettoPath.c_str());
                return 1;
            }
            trace::writePerfetto(data, os);
        }
        if (!csvPath.empty()) {
            std::ofstream os(csvPath, std::ios::binary);
            if (!os) {
                std::fprintf(stderr, "cannot write '%s'\n", csvPath.c_str());
                return 1;
            }
            trace::writeIntervalCsv(data, os);
        }
        if (!perfettoPath.empty() || !csvPath.empty())
            continue;
        std::printf("==== %s ====\n", path.c_str());
        reportFile(data, dump);
        std::printf("\n");
    }
    return 0;
}
