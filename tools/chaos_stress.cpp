/**
 * @file
 * Chaos stress driver: the coherence_stress workload run under an
 * active fault plan.
 *
 * Builds a whole machine per model (all five by default) with the
 * full-mirror coherence checker on AND a seeded fault plan injecting
 * link drops (recovered by retransmit), duplicates (filtered by link
 * sequence), delay jitter, bounded reordering, SDRAM ECC bit flips and
 * forced protocol NAKs — then demands a completely clean run: no
 * checker violation, full quiescence, zero starvation flags, and a
 * nonzero injected/recovered fault count (proof the plan actually
 * fired).
 *
 *   chaos_stress [--models=base,smtp,...] [--nodes=N] [--threads=W]
 *                [--seed=S] [--ops=K] [--faults=PLAN] [--retry=SPEC]
 *                [--trace=DIR] [--report=PATH] [--wedge-snap=PATH]
 *                [--quick] [--shrink] [--abort-off] [--bug=droploss]
 *
 * --bug=droploss flips the deliberate drop-without-retransmit bug hook
 * on and inverts the pass criterion: the run must NOT survive — the
 * watchdog has to catch the lost messages and latch a violation, and
 * the wedge report is written to --report (default
 * chaos_wedge_report.txt). Every run prints its own repro command
 * line; --shrink bisects a failing op count down (docs/debugging.md).
 *
 * When the deadlock watchdog trips, the wedged machine is additionally
 * snapshotted to --wedge-snap (default chaos_wedge.smtpsnap, empty
 * disables) for post-mortem with snap_tool inspect/diff.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "machine/machine.hpp"
#include "workload/app.hpp"
#include "workload/gen.hpp"

namespace smtp
{
namespace
{

struct ChaosOptions
{
    std::vector<MachineModel> models{
        MachineModel::Base, MachineModel::IntPerfect,
        MachineModel::Int512KB, MachineModel::Int64KB,
        MachineModel::SMTp};
    unsigned nodes = 4;
    unsigned threads = 1; ///< App threads per node.
    std::uint64_t seed = 1;
    unsigned ops = 4000; ///< Memory-op iterations per thread.
    std::string faultSpec; ///< Empty = the default moderate plan.
    fault::RetryPolicyConfig retry{fault::RetryKind::ExpBackoff,
                                   100 * tickPerNs, 6400 * tickPerNs, 32};
    std::string traceDir;  ///< Per-model trace files (empty = off).
    std::string reportPath = "chaos_wedge_report.txt";
    /**
     * Where the watchdog auto-saves a machine snapshot when it trips
     * (--wedge-snap=PATH, empty disables). The snapshot captures the
     * wedged machine exactly; inspect it with snap_tool, or diff it
     * against a healthy run's snapshot to localize the divergent
     * component (docs/debugging.md).
     */
    std::string wedgeSnapPath = "chaos_wedge.smtpsnap";
    /** Directory-protocol variant under chaos (docs/protocols.md). */
    proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;
    bool quick = false;
    bool shrink = false;
    bool abortOnViolation = true;
    bool bugDroploss = false;
    /** Minimum injected faults a model must see (plan sanity floor). */
    std::uint64_t minInjected = 10;
};

bool
parseModel(const std::string &s, MachineModel &out)
{
    if (s == "base") out = MachineModel::Base;
    else if (s == "intperfect") out = MachineModel::IntPerfect;
    else if (s == "int512kb") out = MachineModel::Int512KB;
    else if (s == "int64kb") out = MachineModel::Int64KB;
    else if (s == "smtp") out = MachineModel::SMTp;
    else return false;
    return true;
}

/**
 * The default chaos plan: every fault class on at a rate that fires
 * hundreds of times per run yet leaves the workload able to finish.
 */
fault::FaultPlan
defaultPlan(std::uint64_t seed)
{
    fault::FaultPlan p;
    p.seed = seed;
    p.netDrop = 0.02;
    p.netDup = 0.02;
    p.netDelay = 0.05;
    p.netReorder = 0.05;
    p.memFlipSingle = 0.002;
    p.memFlipDouble = 0.0005;
    p.forceNak = 0.02;
    return p;
}

fault::FaultPlan
resolvePlan(const ChaosOptions &o)
{
    if (o.faultSpec.empty()) {
        fault::FaultPlan p = defaultPlan(o.seed);
        p.injectDropWithoutRetransmit = o.bugDroploss;
        return p;
    }
    fault::FaultPlan p;
    std::string err;
    if (!fault::FaultPlan::parse(o.faultSpec, p, &err)) {
        std::fprintf(stderr, "--faults: %s\n", err.c_str());
        std::exit(2);
    }
    // --seed names the run; an explicit seed= inside the spec wins.
    if (o.faultSpec.find("seed=") == std::string::npos)
        p.seed = o.seed;
    if (o.bugDroploss)
        p.injectDropWithoutRetransmit = true;
    return p;
}

/** Same op mix as coherence_stress: contended loads/stores/swaps. */
Task
chaosTask(ThreadCtx &c, std::uint64_t seed, unsigned ops,
          const std::vector<Addr> *pool)
{
    Rng rng(seed);
    auto loop = c.loopBegin();
    for (unsigned i = 0; i < ops; ++i) {
        Addr line = (*pool)[rng.below(pool->size())];
        Addr addr = line + rng.below(16) * 8;
        std::uint64_t pick = rng.below(100);
        if (pick < 40) {
            (void)co_await c.load(addr);
        } else if (pick < 72) {
            co_await c.store(addr, (seed << 20) ^ i);
        } else if (pick < 80) {
            (void)co_await c.swap(addr, i);
        } else if (pick < 90) {
            co_await c.prefetch(addr, rng.chance(0.5));
        } else {
            co_await c.intOps(4);
        }
        co_await c.loopEnd(loop, i + 1 < ops);
    }
}

struct ModelResult
{
    MachineModel model{};
    std::uint64_t dispatches = 0;
    std::uint64_t injected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t lost = 0;
    std::uint64_t starvationFlags = 0;
    std::size_t violations = 0;
};

ModelResult
runModel(MachineModel model, const ChaosOptions &o)
{
    fault::FaultPlan plan = resolvePlan(o);

    MachineParams mp;
    mp.model = model;
    mp.nodes = o.nodes;
    mp.appThreadsPerNode = o.threads;
    mp.l2Bytes = 32 * 1024; ///< Small: conflict evictions race freely.
    mp.checkLevel = check::CheckLevel::FullMirror;
    mp.checkAbortOnViolation = o.abortOnViolation && !o.bugDroploss;
    mp.protocol = o.protocol;
    mp.faults = plan;
    mp.retryPolicy = o.retry;
    mp.trace.enabled = !o.traceDir.empty();
    mp.wedgeSnapshotPath = o.wedgeSnapPath;
    if (o.bugDroploss) {
        // Lost messages must be caught quickly, not after the default
        // 2 ms bound.
        mp.checkWatchdogMaxAge = 200 * tickPerUs;
    }
    Machine m(mp);

    FuncMem mem;
    workload::Alloc alloc(m.addressMap());
    std::vector<Addr> pool;
    for (unsigned n = 0; n < o.nodes; ++n) {
        for (unsigned i = 0; i < 6; ++i)
            pool.push_back(alloc.allocLine(static_cast<NodeId>(n)));
    }

    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    unsigned total = o.nodes * o.threads;
    for (unsigned t = 0; t < total; ++t) {
        NodeId node = static_cast<NodeId>(t / o.threads);
        std::uint64_t pc_base =
            0x4000'0000ULL +
            static_cast<std::uint64_t>(node) * 0x0100'0000ULL;
        auto ctx = std::make_unique<ThreadCtx>(mem, node, pc_base);
        ctx->run(chaosTask(*ctx,
                           o.seed ^ (t + 1) * 0x9e3779b97f4a7c15ULL,
                           o.ops, &pool));
        m.setGlobalSource(t, ctx.get());
        ctxs.push_back(std::move(ctx));
    }
    for (unsigned n = 0; n < o.nodes; ++n) {
        Addr text = 0x4000'0000ULL +
                    static_cast<std::uint64_t>(n) * 0x0100'0000ULL;
        for (unsigned p = 0; p < 16; ++p) {
            m.addressMap().place(text + static_cast<Addr>(p) * pageBytes,
                                 static_cast<NodeId>(n));
        }
    }

    if (o.bugDroploss) {
        // The lost messages wedge the workload, so Machine::run()'s
        // all-threads-finished contract cannot hold. Advance in
        // bounded runUntil() slices (which never assert on an
        // unfinished workload) and let the watchdog catch the wedge.
        auto &eq = m.eventQueue();
        const Tick deadline = eq.curTick() + 20 * tickPerMs;
        const Tick slice = tickPerMs / 10;
        while (eq.curTick() < deadline &&
               m.checker()->violationCount() == 0) {
            Tick target = std::min(deadline, eq.curTick() + slice);
            if (m.runUntil(target))
                break;
            if (eq.curTick() < target)
                break; // wedged with idle queues; nothing left to run
        }
    } else {
        m.run();
        m.quiesce(); // Panics if recovery left residual traffic.
    }

    ModelResult r;
    r.model = model;
    auto *chk = m.checker();
    r.dispatches = chk->dispatches.value();
    r.violations = chk->violationCount();
    for (const auto &v : chk->violations())
        std::fprintf(stderr, "  violation: %s\n", v.c_str());
    if (const auto *fi = m.faultInjector()) {
        r.injected = fi->injectedTotal();
        r.recovered = fi->recoveredTotal();
        r.lost = fi->netLost();
    }
    for (unsigned n = 0; n < o.nodes; ++n)
        r.starvationFlags += m.node(n).mc->starvationFlags.value();

    if (r.violations > 0 && !o.reportPath.empty()) {
        if (std::FILE *f = std::fopen(o.reportPath.c_str(), "w")) {
            std::fprintf(f, "==== chaos wedge report: %s ====\n",
                         std::string(modelName(model)).c_str());
            chk->dumpReport(f);
            std::fclose(f);
            std::fprintf(stderr, "  wedge report written to %s\n",
                         o.reportPath.c_str());
        }
    }
    if (!o.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(o.traceDir, ec);
        std::string stem = o.traceDir + "/chaos_" +
                           std::string(modelName(model));
        std::string err;
        if (!m.writeTraceFiles(stem, &err))
            std::fprintf(stderr, "  trace export failed: %s\n",
                         err.c_str());
    }
    return r;
}

void
printRepro(const ChaosOptions &o, MachineModel model, std::FILE *out)
{
    std::string name(modelName(model));
    for (auto &ch : name)
        ch = static_cast<char>(std::tolower(ch));
    std::string protoFlag;
    if (o.protocol != proto::ProtocolKind::Bitvector)
        protoFlag = " --protocol=" +
                    std::string(proto::protocolName(o.protocol));
    std::fprintf(out,
                 "  repro: chaos_stress --models=%s --nodes=%u "
                 "--threads=%u --seed=%llu --ops=%u --faults=%s "
                 "--retry=%s%s%s%s\n",
                 name.c_str(), o.nodes, o.threads,
                 static_cast<unsigned long long>(o.seed), o.ops,
                 resolvePlan(o).toString().c_str(),
                 fault::retryPolicyToString(o.retry).c_str(),
                 o.abortOnViolation ? "" : " --abort-off",
                 o.bugDroploss ? " --bug=droploss" : "",
                 protoFlag.c_str());
}

/** Bisect the op count down to the smallest stream that still fails. */
void
shrinkFailure(MachineModel model, const ChaosOptions &base)
{
    ChaosOptions o = base;
    o.abortOnViolation = false; // latch so we can observe and continue
    o.minInjected = 0;
    unsigned failing = o.ops;
    unsigned lo = 1, hi = o.ops;
    while (lo < hi) {
        unsigned mid = lo + (hi - lo) / 2;
        o.ops = mid;
        std::fprintf(stderr, "shrink: trying ops=%u ...\n", mid);
        if (runModel(model, o).violations > 0) {
            failing = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    o.ops = failing;
    std::fprintf(stderr, "shrink: minimal failing op count is %u\n",
                 failing);
    printRepro(o, model, stderr);
}

int
chaosMain(int argc, char **argv)
{
    ChaosOptions o;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--models=", 0) == 0) {
            o.models.clear();
            std::string csv = value();
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                std::size_t comma = csv.find(',', pos);
                std::string tok = csv.substr(
                    pos, comma == std::string::npos ? comma : comma - pos);
                MachineModel model;
                if (!parseModel(tok, model)) {
                    std::fprintf(stderr, "unknown model '%s'\n",
                                 tok.c_str());
                    return 2;
                }
                o.models.push_back(model);
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg.rfind("--nodes=", 0) == 0) {
            o.nodes = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--threads=", 0) == 0) {
            o.threads = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--seed=", 0) == 0) {
            o.seed = std::stoull(value());
        } else if (arg.rfind("--ops=", 0) == 0) {
            o.ops = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--faults=", 0) == 0) {
            o.faultSpec = value();
        } else if (arg.rfind("--retry=", 0) == 0) {
            std::string err;
            if (!fault::parseRetryPolicy(value(), o.retry, &err)) {
                std::fprintf(stderr, "--retry: %s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--trace=", 0) == 0) {
            o.traceDir = value();
        } else if (arg.rfind("--report=", 0) == 0) {
            o.reportPath = value();
        } else if (arg.rfind("--wedge-snap=", 0) == 0) {
            o.wedgeSnapPath = value();
        } else if (arg.rfind("--protocol=", 0) == 0) {
            if (!proto::protocolFromName(value(), o.protocol)) {
                std::fprintf(stderr, "--protocol: unknown '%s' (valid: %s)\n",
                             value().c_str(),
                             std::string(proto::protocolNameList()).c_str());
                return 2;
            }
        } else if (arg == "--bug=droploss") {
            o.bugDroploss = true;
        } else if (arg == "--quick") {
            o.quick = true;
        } else if (arg == "--shrink") {
            o.shrink = true;
        } else if (arg == "--abort-off") {
            o.abortOnViolation = false;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (o.quick) {
        // CI mode: fewer ops but still every machine model — chaos
        // coverage is about the protocol agents' recovery paths, and
        // each model has its own.
        o.ops = std::min(o.ops, 1500u);
    }

    int rc = 0;
    for (auto model : o.models) {
        std::fprintf(stderr,
                     "=== %s: nodes=%u threads=%u seed=%llu ops=%u "
                     "faults=%s retry=%s%s\n",
                     std::string(modelName(model)).c_str(), o.nodes,
                     o.threads, static_cast<unsigned long long>(o.seed),
                     o.ops, resolvePlan(o).toString().c_str(),
                     fault::retryPolicyToString(o.retry).c_str(),
                     o.bugDroploss ? " bug=droploss" : "");
        auto r = runModel(model, o);
        std::fprintf(stderr,
                     "    %llu dispatches, %llu fault(s) injected, "
                     "%llu recovered, %llu lost, %llu starvation "
                     "flag(s), %zu violation(s)\n",
                     static_cast<unsigned long long>(r.dispatches),
                     static_cast<unsigned long long>(r.injected),
                     static_cast<unsigned long long>(r.recovered),
                     static_cast<unsigned long long>(r.lost),
                     static_cast<unsigned long long>(r.starvationFlags),
                     r.violations);
        bool failed;
        if (o.bugDroploss) {
            // Inverted criterion: the deliberate bug must be CAUGHT.
            failed = r.violations == 0 || r.lost == 0;
            if (failed)
                std::fprintf(stderr,
                             "    FAIL: drop-without-retransmit bug was "
                             "not detected (lost=%llu violations=%zu)\n",
                             static_cast<unsigned long long>(r.lost),
                             r.violations);
        } else {
            failed = r.violations > 0 || r.starvationFlags > 0 ||
                     r.injected < o.minInjected ||
                     r.recovered == 0;
            if (r.injected < o.minInjected)
                std::fprintf(stderr,
                             "    FAIL: only %llu fault(s) injected — "
                             "the plan is not exercising the machine\n",
                             static_cast<unsigned long long>(r.injected));
            if (r.starvationFlags > 0)
                std::fprintf(stderr,
                             "    FAIL: %llu transaction(s) crossed the "
                             "starvation retry threshold\n",
                             static_cast<unsigned long long>(
                                 r.starvationFlags));
        }
        if (failed) {
            rc = 1;
            printRepro(o, model, stderr);
            if (r.violations > 0 && o.shrink && !o.bugDroploss)
                shrinkFailure(model, o);
        }
    }
    if (rc != 0)
        std::fprintf(stderr, "chaos: FAILURES\n");
    else if (o.bugDroploss)
        std::fprintf(stderr, "chaos: bug caught on every model\n");
    else
        std::fprintf(stderr, "chaos: all models clean\n");
    return rc;
}

} // namespace
} // namespace smtp

int
main(int argc, char **argv)
{
    return smtp::chaosMain(argc, argv);
}
