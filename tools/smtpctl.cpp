/**
 * @file
 * smtpctl — command-line client for the smtpd sweep daemon.
 *
 *   smtpctl --socket=PATH ping
 *   smtpctl --socket=PATH stats
 *   smtpctl --socket=PATH shutdown
 *   smtpctl --socket=PATH run [cell options]
 *
 * `run` submits a cross-product sweep (models x apps x node counts)
 * as one job and streams results as the daemon completes them: a
 * human-readable table line per cell on stdout, and — with --json=FILE
 * — the daemon's verbatim JSON-Lines records appended to FILE, in
 * submission order, byte-identical (mod wall_ms) to what the same
 * bench run would have written locally.
 *
 * Exit codes are script-stable:
 *   0  success (every requested cell produced a record)
 *   1  connection, protocol, or daemon error (refused socket,
 *      malformed reply, daemon overloaded, ...)
 *   2  usage error (bad flags, unknown command)
 *   3  the job ran but one or more cells FAILED — quarantined after
 *      repeated crashes/deadline kills, or shed by admission control;
 *      each failure is diagnosed on stderr
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/proto.hpp"

namespace
{

using namespace smtp;
using namespace smtp::serve;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: smtpctl --socket=PATH COMMAND [options]\n"
        "commands:\n"
        "  ping                  liveness round-trip\n"
        "  stats                 print daemon counters\n"
        "  health                worker/queue/cache health snapshot\n"
        "  shutdown              ask the daemon to exit cleanly\n"
        "  run                   submit a sweep and stream results\n"
        "run options (defaults in parentheses):\n"
        "  --models=A,B          machine models (SMTp)\n"
        "  --apps=a,b            applications (fft)\n"
        "  --nodes=N,M           node counts (8)\n"
        "  --ways=N              SMT contexts per CPU (1)\n"
        "  --scale=F             problem scale factor (0.05)\n"
        "  --exec=MODE           serial | parallel[:T] (serial)\n"
        "  --check=LEVEL         off | asserts | full (off)\n"
        "  --protocol=NAME       bitvector | migratory | phase-priority\n"
        "  --sample=W:M:K        sampled measurement spec\n"
        "  --faults=PLAN         fault-injection plan\n"
        "  --retry=SPEC          NAK retry policy\n"
        "  --trace               request server-side trace artifacts\n"
        "  --priority=N          job priority, higher first (0)\n"
        "  --deadline=MS         per-cell deadline (0 = daemon default)\n"
        "  --json=FILE           append the daemon's records to FILE\n"
        "exit codes: 0 ok, 1 connection/daemon error, 2 usage, "
        "3 cells failed\n");
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

int
runStats(Client &client)
{
    JsonValue v;
    if (!client.stats(v)) {
        std::fprintf(stderr, "smtpctl: %s\n", client.error().c_str());
        return 1;
    }
    for (const auto &[key, value] : v.members()) {
        if (key == "type" || key == "proto")
            continue;
        std::printf("%-24s %.0f\n", key.c_str(), value.number());
    }
    return 0;
}

int
runHealth(Client &client)
{
    JsonValue v;
    if (!client.health(v)) {
        std::fprintf(stderr, "smtpctl: %s\n", client.error().c_str());
        return 1;
    }
    for (const auto &[key, value] : v.members()) {
        if (key == "type" || key == "proto")
            continue;
        if (value.isNumber()) {
            std::printf("%-24s %.0f\n", key.c_str(), value.number());
        } else if (value.isString()) {
            std::printf("%-24s %s\n", key.c_str(), value.str().c_str());
        } else if (value.isArray()) {
            std::printf("%-24s", key.c_str());
            for (const JsonValue &e : value.array())
                std::printf(" %.0f", e.number());
            std::printf("\n");
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    std::string command;
    std::string models = "SMTp";
    std::string apps = "fft";
    std::string nodesList = "8";
    RunConfig base;
    base.scale = 0.05;
    int priority = 0;
    std::uint64_t deadlineMs = 0;
    std::string jsonPath;
    bool trace = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        std::string err;
        if (const char *v = value("--socket=")) {
            socketPath = v;
        } else if (const char *v = value("--models=")) {
            models = v;
        } else if (const char *v = value("--apps=")) {
            apps = v;
        } else if (const char *v = value("--nodes=")) {
            nodesList = v;
        } else if (const char *v = value("--ways=")) {
            base.ways = static_cast<unsigned>(std::atoi(v));
        } else if (const char *v = value("--scale=")) {
            base.scale = std::atof(v);
        } else if (const char *v = value("--exec=")) {
            if (!ExecParams::parse(v, base.exec, &err)) {
                std::fprintf(stderr, "smtpctl: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--check=")) {
            if (!parseCheckLevel(v, base.checkLevel, &err)) {
                std::fprintf(stderr, "smtpctl: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--protocol=")) {
            if (!proto::protocolFromName(v, base.protocol)) {
                std::fprintf(
                    stderr, "smtpctl: unknown protocol '%s' (expected %s)\n",
                    v, std::string(proto::protocolNameList()).c_str());
                return 2;
            }
        } else if (const char *v = value("--sample=")) {
            if (!SampleSpec::parse(v, base.sample, &err)) {
                std::fprintf(stderr, "smtpctl: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--faults=")) {
            if (!fault::FaultPlan::parse(v, base.faults, &err)) {
                std::fprintf(stderr, "smtpctl: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--retry=")) {
            if (!fault::parseRetryPolicy(v, base.retryPolicy, &err)) {
                std::fprintf(stderr, "smtpctl: %s\n", err.c_str());
                return 2;
            }
        } else if (const char *v = value("--priority=")) {
            priority = std::atoi(v);
        } else if (const char *v = value("--deadline=")) {
            long ms = std::atol(v);
            if (ms < 0) {
                std::fprintf(stderr, "smtpctl: bad --deadline=%s\n", v);
                return 2;
            }
            deadlineMs = static_cast<std::uint64_t>(ms);
        } else if (const char *v = value("--json=")) {
            jsonPath = v;
        } else if (arg == "--trace") {
            trace = true;
        } else if (!arg.empty() && arg[0] != '-' && command.empty()) {
            command = arg;
        } else {
            std::fprintf(stderr, "smtpctl: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (socketPath.empty() || command.empty())
        return usage();
    if (command != "ping" && command != "stats" &&
        command != "health" && command != "shutdown" &&
        command != "run") {
        std::fprintf(stderr, "smtpctl: unknown command '%s'\n",
                     command.c_str());
        return usage();
    }

    // Build the cell list before connecting, so flag mistakes are
    // usage errors (2) even when the daemon is down (1).
    std::vector<RunConfig> cells;
    if (command == "run") {
        for (const std::string &modelStr : splitCommas(models)) {
            MachineModel model;
            if (!modelFromName(modelStr, model)) {
                std::fprintf(stderr, "smtpctl: unknown model '%s'\n",
                             modelStr.c_str());
                return 2;
            }
            for (const std::string &app : splitCommas(apps)) {
                for (const std::string &n : splitCommas(nodesList)) {
                    RunConfig cfg = base;
                    cfg.model = model;
                    cfg.app = app;
                    cfg.nodes =
                        static_cast<unsigned>(std::atoi(n.c_str()));
                    if (cfg.nodes == 0) {
                        std::fprintf(stderr,
                                     "smtpctl: bad node count '%s'\n",
                                     n.c_str());
                        return 2;
                    }
                    if (trace)
                        cfg.traceStem = "?"; // Daemon assigns the stem.
                    cells.push_back(std::move(cfg));
                }
            }
        }
        if (cells.empty()) {
            std::fprintf(stderr, "smtpctl: nothing to run\n");
            return 2;
        }
    }

    Client client;
    if (!client.connect(socketPath)) {
        std::fprintf(stderr, "smtpctl: %s\n", client.error().c_str());
        return 1;
    }

    if (command == "ping") {
        if (!client.ping()) {
            std::fprintf(stderr, "smtpctl: %s\n",
                         client.error().c_str());
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }
    if (command == "stats")
        return runStats(client);
    if (command == "health")
        return runHealth(client);
    if (command == "shutdown") {
        if (!client.shutdown()) {
            std::fprintf(stderr, "smtpctl: %s\n",
                         client.error().c_str());
            return 1;
        }
        std::printf("shutting down\n");
        return 0;
    }
    std::FILE *json = nullptr;
    if (!jsonPath.empty()) {
        json = std::fopen(jsonPath.c_str(), "a");
        if (json == nullptr) {
            std::fprintf(stderr, "smtpctl: cannot open %s\n",
                         jsonPath.c_str());
            return 1;
        }
    }

    // Records are buffered by submission index and flushed in order, so
    // the JSON file matches a local sweep's ordering exactly even
    // though the daemon streams in completion order.
    std::vector<std::string> records(cells.size());
    std::size_t received = 0;
    std::size_t failedCells = 0;
    std::size_t skipped = 0, failed = 0;
    bool ok = client.submit(
        cells, priority,
        [&](const CellReply &cr) {
            records[cr.index] = cr.record;
            ++received;
            if (cr.failed) {
                ++failedCells;
                std::fprintf(stderr,
                             "smtpctl: cell %zu (%s n%u) FAILED after "
                             "%u attempt(s): %s (%s)\n",
                             cr.index, cells[cr.index].app.c_str(),
                             cells[cr.index].nodes, cr.attempts,
                             cr.errReason.c_str(),
                             cr.errDetail.c_str());
                return;
            }
            JsonValue rec;
            if (JsonValue::parse(cr.record, rec)) {
                std::printf("%-10s %-10s n%-4.0f w%-3.0f exec_ticks "
                            "%13.0f mem_stall %.4f%s%s\n",
                            rec.getString("app").c_str(),
                            rec.getString("model").c_str(),
                            rec.getNumber("nodes"),
                            rec.getNumber("ways"),
                            rec.getNumber("exec_ticks"),
                            rec.getNumber("mem_stall"),
                            cr.cached ? "  [cached]" : "",
                            cr.traceStem.empty() ? "" : "  [traced]");
                std::fflush(stdout);
            }
        },
        &skipped, &failed, deadlineMs);
    if (json != nullptr) {
        // Failure records are written too: the JSON-Lines file stays
        // one-line-per-requested-cell, and "failed":true lines are
        // unmistakable downstream.
        for (const std::string &r : records)
            if (!r.empty())
                std::fprintf(json, "%s\n", r.c_str());
        std::fclose(json);
    }
    if (!ok) {
        std::fprintf(stderr, "smtpctl: %s\n", client.error().c_str());
        if (failed != 0 || failedCells != 0) {
            std::fprintf(stderr,
                         "smtpctl: %zu of %zu cell(s) failed — see "
                         "diagnostics above\n",
                         failed != 0 ? failed : failedCells,
                         cells.size());
            return 3;
        }
        return 1;
    }
    std::fprintf(stderr, "smtpctl: %zu cell(s) complete\n", received);
    return 0;
}
