/**
 * @file
 * Cross-protocol comparison harness (docs/protocols.md).
 *
 * Runs the same workload table under every registered directory
 * protocol — bitvector, migratory, phase-priority — across any subset
 * of the five machine models, and prints a side-by-side table per
 * (app, model) cell: IPC, peak handler occupancy, invalidations, NAK
 * count, migratory upgrade round-trips saved, starvation-floor trips,
 * and the directory request-queueing delay (mean / p95). Server
 * workloads add their request-latency percentiles. Cells run through
 * the same serve::runOnce the bench binaries and the smtpd daemon use,
 * so every number here is reproducible from those front ends with
 * --protocol=NAME.
 *
 *   protocol_compare [--models=base,smtp,...] [--protocols=a,b,...]
 *                    [--apps=fft,...] [--nodes=N] [--ways=W]
 *                    [--scale=F] [--exec=serial|parallel[:T]]
 *                    [--jobs=N] [--json=PATH] [--quick]
 *                    [--markdown] [--list[=PROTOCOL]]
 *
 * --json appends one JSON-Lines record per cell (the canonical
 * serve::jsonRecord, which carries the protocol field group for
 * non-default protocols). --markdown prints the tables as GitHub
 * markdown instead of aligned text (for docs/protocols.md).
 * --list dumps the assembled handler program of each requested
 * protocol (the assembler's disassembly listing) and exits.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "protocol/assembler.hpp"
#include "protocol/variants/variants.hpp"
#include "serve/runner.hpp"
#include "sim/sweep.hpp"

namespace smtp
{
namespace
{

using serve::RunConfig;
using serve::RunResult;

struct CompareOptions
{
    std::vector<MachineModel> models{
        MachineModel::Base, MachineModel::IntPerfect,
        MachineModel::Int512KB, MachineModel::Int64KB,
        MachineModel::SMTp};
    std::vector<proto::ProtocolKind> protocols{
        proto::allProtocols.begin(), proto::allProtocols.end()};
    std::vector<std::string> apps{"fft"};
    unsigned nodes = 8;
    unsigned ways = 1;
    double scale = 0.05;
    ExecParams exec;
    unsigned jobs = 0;
    std::string jsonPath;
    bool markdown = false;
};

bool
parseModel(const std::string &s, MachineModel &out)
{
    if (s == "base") out = MachineModel::Base;
    else if (s == "intperfect") out = MachineModel::IntPerfect;
    else if (s == "int512kb") out = MachineModel::Int512KB;
    else if (s == "int64kb") out = MachineModel::Int64KB;
    else if (s == "smtp") out = MachineModel::SMTp;
    else return false;
    return true;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

/** Dump the assembled handler program of each requested protocol. */
int
listPrograms(const CompareOptions &o)
{
    for (auto kind : o.protocols) {
        proto::DirFormat fmt =
            proto::protocolDirFormat(kind, o.nodes <= 16 ? 16 : 32);
        proto::HandlerImage image = proto::buildProtocolImage(kind, fmt);
        std::printf("#### protocol %s (%u-bit vector, %u-byte entries)\n",
                    std::string(proto::protocolName(kind)).c_str(),
                    fmt.vectorBits, fmt.entryBytes);
        std::fputs(proto::listHandlerImage(image).c_str(), stdout);
        std::printf("\n");
    }
    return 0;
}

/** Machine IPC over the whole run (committed app insts / CPU cycles). */
double
ipcOf(const RunConfig &c, const RunResult &r)
{
    if (r.execTime == 0)
        return 0.0;
    ClockDomain clk(c.cpuFreqMHz);
    double cycles = static_cast<double>(r.execTime) /
                    static_cast<double>(clk.period());
    return cycles > 0.0 ? static_cast<double>(r.committedInsts) / cycles
                        : 0.0;
}

int
compareMain(const CompareOptions &o)
{
    // The cell table: protocols × models × apps, flattened in an order
    // that keeps all protocols of one (app, model) adjacent for the
    // side-by-side print.
    std::vector<RunConfig> cfgs;
    for (const std::string &app : o.apps) {
        for (auto model : o.models) {
            for (auto kind : o.protocols) {
                RunConfig c;
                c.model = model;
                c.protocol = kind;
                c.nodes = o.nodes;
                c.ways = o.ways;
                c.app = app;
                c.scale = o.scale;
                c.exec = o.exec;
                cfgs.push_back(c);
            }
        }
    }

    std::vector<RunResult> results(cfgs.size());
    SweepPool pool(o.jobs);
    pool.parallelFor(cfgs.size(), [&](std::size_t i) {
        results[i] = serve::runOnce(cfgs[i]);
    });

    if (!o.jsonPath.empty()) {
        std::FILE *f = std::fopen(o.jsonPath.c_str(), "a");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open json output '%s'\n",
                         o.jsonPath.c_str());
            return 1;
        }
        for (std::size_t i = 0; i < cfgs.size(); ++i)
            serve::appendJsonRecord(f, cfgs[i], results[i]);
        std::fclose(f);
    }

    const char *sep = o.markdown ? " | " : "  ";
    const char *edge = o.markdown ? "| " : "";
    std::size_t per_group = o.protocols.size();
    for (std::size_t g = 0; g + per_group <= cfgs.size();
         g += per_group) {
        const RunConfig &head = cfgs[g];
        std::printf("\n%s %s  nodes=%u ways=%u scale=%g\n",
                    head.app.c_str(),
                    std::string(modelName(head.model)).c_str(),
                    head.nodes, head.ways, head.scale);
        std::printf("%s%-16s", edge, "metric");
        for (std::size_t i = 0; i < per_group; ++i)
            std::printf("%s%14s", sep,
                        std::string(proto::protocolName(
                                        cfgs[g + i].protocol))
                            .c_str());
        std::printf("%s\n", o.markdown ? " |" : "");
        if (o.markdown) {
            std::printf("| ---");
            for (std::size_t i = 0; i < per_group; ++i)
                std::printf(" | ---:");
            std::printf(" |\n");
        }
        auto row = [&](const char *name, auto get, const char *fmt) {
            std::printf("%s%-16s", edge, name);
            for (std::size_t i = 0; i < per_group; ++i) {
                char cell[32];
                std::snprintf(cell, sizeof(cell), fmt,
                              get(cfgs[g + i], results[g + i]));
                std::printf("%s%14s", sep, cell);
            }
            std::printf("%s\n", o.markdown ? " |" : "");
        };
        auto u = [](std::uint64_t v) {
            return static_cast<unsigned long long>(v);
        };
        row("exec_Mticks",
            [](const RunConfig &, const RunResult &r) {
                return static_cast<double>(r.execTime) / 1e6;
            },
            "%.3f");
        row("ipc", ipcOf, "%.4f");
        row("peak_handler_occ",
            [](const RunConfig &, const RunResult &r) {
                return r.peakProtocolOccupancy;
            },
            "%.4f");
        row("invals",
            [&u](const RunConfig &, const RunResult &r) {
                return u(r.invalsSent);
            },
            "%llu");
        row("naks",
            [&u](const RunConfig &, const RunResult &r) {
                return u(r.naks);
            },
            "%llu");
        row("mig_saved",
            [&u](const RunConfig &, const RunResult &r) {
                return u(r.migSaved);
            },
            "%llu");
        row("mig_reverts",
            [&u](const RunConfig &, const RunResult &r) {
                return u(r.migReverts);
            },
            "%llu");
        row("floor_trips",
            [&u](const RunConfig &, const RunResult &r) {
                return u(r.phaseFloorTrips);
            },
            "%llu");
        row("qdelay_mean_ns",
            [](const RunConfig &, const RunResult &r) {
                return r.reqQueueDelayMeanNs;
            },
            "%.1f");
        row("qdelay_p95_ns",
            [](const RunConfig &, const RunResult &r) {
                return r.reqQueueDelayP95Ns;
            },
            "%.1f");
        if (results[g].server) {
            row("req_lat_p50_us",
                [](const RunConfig &, const RunResult &r) {
                    return r.reqLatP50Us;
                },
                "%.2f");
            row("req_lat_p95_us",
                [](const RunConfig &, const RunResult &r) {
                    return r.reqLatP95Us;
                },
                "%.2f");
            row("req_lat_p99_us",
                [](const RunConfig &, const RunResult &r) {
                    return r.reqLatP99Us;
                },
                "%.2f");
        }
    }
    return 0;
}

int
toolMain(int argc, char **argv)
{
    CompareOptions o;
    bool list = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        std::string err;
        if (arg.rfind("--models=", 0) == 0) {
            o.models.clear();
            for (const std::string &tok : splitCommas(value())) {
                MachineModel model;
                if (!parseModel(tok, model)) {
                    std::fprintf(stderr, "unknown model '%s'\n",
                                 tok.c_str());
                    return 2;
                }
                o.models.push_back(model);
            }
        } else if (arg.rfind("--protocols=", 0) == 0) {
            o.protocols.clear();
            for (const std::string &tok : splitCommas(value())) {
                proto::ProtocolKind kind;
                if (!proto::protocolFromName(tok, kind)) {
                    std::fprintf(
                        stderr, "unknown protocol '%s' (expected %s)\n",
                        tok.c_str(),
                        std::string(proto::protocolNameList()).c_str());
                    return 2;
                }
                o.protocols.push_back(kind);
            }
        } else if (arg.rfind("--apps=", 0) == 0) {
            o.apps = splitCommas(value());
        } else if (arg.rfind("--nodes=", 0) == 0) {
            o.nodes = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--ways=", 0) == 0) {
            o.ways = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--scale=", 0) == 0) {
            o.scale = std::atof(value().c_str());
        } else if (arg.rfind("--exec=", 0) == 0) {
            if (!ExecParams::parse(value(), o.exec, &err)) {
                std::fprintf(stderr, "--exec: %s\n", err.c_str());
                return 2;
            }
        } else if (arg.rfind("--jobs=", 0) == 0) {
            o.jobs = static_cast<unsigned>(std::stoul(value()));
        } else if (arg.rfind("--json=", 0) == 0) {
            o.jsonPath = value();
        } else if (arg == "--markdown") {
            o.markdown = true;
        } else if (arg == "--quick") {
            o.scale *= 0.5;
            o.models = {MachineModel::Base, MachineModel::SMTp};
        } else if (arg == "--list") {
            list = true;
        } else if (arg.rfind("--list=", 0) == 0) {
            list = true;
            proto::ProtocolKind kind;
            if (!proto::protocolFromName(value(), kind)) {
                std::fprintf(
                    stderr, "unknown protocol '%s' (expected %s)\n",
                    value().c_str(),
                    std::string(proto::protocolNameList()).c_str());
                return 2;
            }
            o.protocols = {kind};
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (list)
        return listPrograms(o);
    return compareMain(o);
}

} // namespace
} // namespace smtp

int
main(int argc, char **argv)
{
    return smtp::toolMain(argc, argv);
}
