#!/bin/sh
# Runs every paper table/figure benchmark, one section per binary.
#
# Usage: ./run_benches.sh [--quick] [--jobs=N] [--json[=PATH]]
#
#   --quick      smaller configurations everywhere (CI-sized run)
#   --jobs=N     sweep worker threads per binary (default: SMTP_SWEEP_JOBS
#                env var, else all hardware threads)
#   --json[=P]   append per-cell results as JSON Lines to P
#                (default BENCH_sweep.json); the file is recreated
# Remaining arguments are passed through to every binary.
set -e

quick=""
jobs=""
json_path=""
passthru=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick="--quick" ;;
        --jobs=*) jobs="$arg" ;;
        --json) json_path="BENCH_sweep.json" ;;
        --json=*) json_path="${arg#--json=}" ;;
        *) passthru="$passthru $arg" ;;
    esac
done

json_flag=""
if [ -n "$json_path" ]; then
    rm -f "$json_path"
    json_flag="--json=$json_path"
fi

set -x
./build/bench/bench_fig2_4 $quick $jobs $json_flag $passthru
./build/bench/bench_fig5_7 --quick $jobs $json_flag $passthru
./build/bench/bench_fig8_9 --quick $jobs $json_flag $passthru
./build/bench/bench_fig10_11 $quick $jobs $json_flag $passthru
./build/bench/bench_table5_6 --quick $jobs $json_flag $passthru
./build/bench/bench_table7 $quick $jobs $json_flag $passthru
./build/bench/bench_table8_9 $quick $jobs $json_flag $passthru
./build/bench/bench_ablation_las $quick $jobs $json_flag $passthru
./build/bench/bench_ablation_pcache $quick $jobs $json_flag $passthru
./build/bench/bench_uarch --benchmark_min_time=0.1
