#!/bin/sh
# Runs every paper table/figure benchmark, one section per binary.
#
# Usage: ./run_benches.sh [--quick] [--jobs=N] [--json[=PATH]] [--trace[=DIR]]
#                         [--workloads=A,B,...] [--faults=PLAN] [--retry=SPEC]
#                         [--ckpt-dir[=DIR]] [--sample=W:M:K] [--exec=MODE]
#                         [--check=LEVEL] [--server=SOCK] [--protocol=NAME]
#
#   --quick      smaller configurations everywhere (CI-sized run)
#   --workloads=L comma-separated workload filter across sections. Names
#                are the paper apps (FFT, FFTW, LU, Ocean, Radix, Water)
#                and/or the server family (queue-server, kv-store,
#                spec-txn); each section receives only the names it can
#                run (as --apps=), and sections left with no matching
#                workload are skipped entirely. The server section runs
#                only the server names, the paper sections only the
#                paper names, so e.g. --workloads=queue-server runs just
#                bench_server on the queue workload.
#   --jobs=N     sweep worker threads per binary (default: SMTP_SWEEP_JOBS
#                env var, else all hardware threads)
#   --json[=P]   append per-cell results as JSON Lines to P
#                (default BENCH_sweep.json); the file is recreated
#   --trace[=D]  record telemetry: each binary writes per-cell
#                D/<section>/<cell>.{smtptrace,json,csv} (default D=traces);
#                analyze with build/tools/trace_report
#   --faults=P   seeded fault plan for every cell, e.g.
#                seed=7,drop=0.01,dup=0.01,flip=0.001,nak=0.01; the plan,
#                seed and injected/recovered counts land in the --json
#                records (see docs/robustness.md)
#   --retry=S    NAK retry policy: immediate | fixed[:baseNs] |
#                exp[:baseNs[:capNs]]
#   --ckpt-dir[=D] checkpoint library (default D=ckpt_lib), shared by
#                every section: each cell's end state (or warmup
#                snapshot under --sample) is cached keyed by its config
#                hash, so a re-run — or another section with identical
#                cells — restores instead of re-simulating. Binaries
#                report per-cell hit/miss on stderr; snapshots from a
#                stale/foreign config fail the hash guard and the cell
#                silently re-simulates (docs/checkpointing.md).
#   --sample=W:M:K sampled measurement: W warmup cycles (shared via the
#                checkpoint library when --ckpt-dir is set), then K
#                intervals of M cycles; JSON records gain ipc/memstall
#                mean and 95% CI fields
#   --exec=M     shard-engine execution mode: serial | parallel[:T].
#                Simulated results are bit-identical across modes;
#                parallel only changes host wall time
#                (docs/parallelism.md)
#   --check=L    coherence checker level: off | asserts | full.
#                asserts runs under --exec=parallel; full forces one
#                host thread, loudly (docs/checker.md)
#   --server=S   run every cell on the smtpd daemon listening at UNIX
#                socket S instead of in-process; also enabled by the
#                SMTPD_SOCK environment variable (docs/service.md)
#   --protocol=P directory-protocol variant for every cell: bitvector
#                (default) | migratory | phase-priority; passed through
#                verbatim to every binary (docs/protocols.md)
#
# Any other argument is passed through verbatim to every bench binary.
# Passthrough is quote-safe: arguments with spaces or glob characters
# reach the binaries exactly as given (the argument list is rebuilt
# with `set --`, never flattened through word splitting).
set -e

quick=""
jobs=""
json_path=""
trace_dir=""
ckpt_dir=""
server_sock="${SMTPD_SOCK:-}"
workloads=""
paper_apps=""
server_apps=""

# Rotate "$@" through itself once, classifying each argument; what is
# not recognized here is collected back into "$@" as the passthrough
# list. This keeps arbitrary arguments intact — no variable holds more
# than one argument, so nothing is ever re-split or re-globbed.
n=$#
i=0
while [ "$i" -lt "$n" ]; do
    arg=$1
    shift
    i=$((i + 1))
    case "$arg" in
        --quick) quick="--quick" ;;
        --jobs=*) jobs="$arg" ;;
        --json) json_path="BENCH_sweep.json" ;;
        --json=*) json_path="${arg#--json=}" ;;
        --trace) trace_dir="traces" ;;
        --trace=*) trace_dir="${arg#--trace=}" ;;
        --ckpt-dir) ckpt_dir="ckpt_lib" ;;
        --ckpt-dir=*) ckpt_dir="${arg#--ckpt-dir=}" ;;
        --server=*) server_sock="${arg#--server=}" ;;
        --workloads=*) workloads="${arg#--workloads=}" ;;
        *) set -- "$@" "$arg" ;;
    esac
done

# Classify the --workloads list into the paper-app and server-app
# halves; each section later receives only the half it can run.
if [ -n "$workloads" ]; then
    rest=$workloads
    while [ -n "$rest" ]; do
        case "$rest" in
            *,*) w=${rest%%,*}; rest=${rest#*,} ;;
            *) w=$rest; rest="" ;;
        esac
        [ -n "$w" ] || continue
        case "$w" in
            FFT|FFTW|LU|Ocean|Radix|Water)
                paper_apps="${paper_apps:+$paper_apps,}$w" ;;
            queue-server|kv-store|spec-txn)
                server_apps="${server_apps:+$server_apps,}$w" ;;
            *)
                echo "run_benches.sh: unknown workload '$w'" >&2
                echo "  paper apps:  FFT FFTW LU Ocean Radix Water" >&2
                echo "  server apps: queue-server kv-store spec-txn" >&2
                exit 2 ;;
        esac
    done
fi

if [ -n "$json_path" ]; then
    rm -f "$json_path"
    set -- "$@" "--json=$json_path"
fi

if [ -n "$ckpt_dir" ]; then
    mkdir -p "$ckpt_dir"
    set -- "$@" "--ckpt-dir=$ckpt_dir"
fi

if [ -n "$server_sock" ]; then
    set -- "$@" "--server=$server_sock"
fi

[ -n "$jobs" ] && set -- "$@" "$jobs"

# Run one section: sect NAME BINARY [extra args...] — appends the
# per-section trace directory (so cells with the same (app, model,
# nodes, ways) in different sections don't overwrite each other) and
# the accumulated common flags, all individually quoted.
sect() {
    sect_name=$1
    sect_bin=$2
    shift 2
    if [ -n "$trace_dir" ]; then
        echo "+ ./build/bench/$sect_bin $* --trace=$trace_dir/$sect_name ..." >&2
        "./build/bench/$sect_bin" "$@" "--trace=$trace_dir/$sect_name"
    else
        echo "+ ./build/bench/$sect_bin $* ..." >&2
        "./build/bench/$sect_bin" "$@"
    fi
}

# paper_sect / server_sect: sect, restricted to the matching half of
# the --workloads filter. With no filter both run their defaults; with
# a filter, a half with no matching workloads is skipped.
paper_sect() {
    if [ -n "$workloads" ]; then
        [ -n "$paper_apps" ] || return 0
        sect "$@" "--apps=$paper_apps"
    else
        sect "$@"
    fi
}

server_sect() {
    if [ -n "$workloads" ]; then
        [ -n "$server_apps" ] || return 0
        sect "$@" "--apps=$server_apps"
    else
        sect "$@"
    fi
}

# shellcheck disable=SC2086  # $quick is one word or empty by construction
paper_sect fig2_4 bench_fig2_4 $quick "$@"
paper_sect fig5_7 bench_fig5_7 --quick "$@"
paper_sect fig8_9 bench_fig8_9 --quick "$@"
paper_sect fig10_11 bench_fig10_11 $quick "$@"
paper_sect table5_6 bench_table5_6 --quick "$@"
paper_sect table7 bench_table7 $quick "$@"
paper_sect table8_9 bench_table8_9 $quick "$@"
paper_sect ablation_las bench_ablation_las $quick "$@"
paper_sect ablation_pcache bench_ablation_pcache $quick "$@"
server_sect server bench_server $quick "$@"
if [ -z "$workloads" ]; then
    ./build/bench/bench_uarch --benchmark_min_time=0.1
fi
