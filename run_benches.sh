#!/bin/sh
# Runs every paper table/figure benchmark, one section per binary.
#
# Usage: ./run_benches.sh [--quick] [--jobs=N] [--json[=PATH]] [--trace[=DIR]]
#                         [--faults=PLAN] [--retry=SPEC]
#
#   --quick      smaller configurations everywhere (CI-sized run)
#   --jobs=N     sweep worker threads per binary (default: SMTP_SWEEP_JOBS
#                env var, else all hardware threads)
#   --json[=P]   append per-cell results as JSON Lines to P
#                (default BENCH_sweep.json); the file is recreated
#   --trace[=D]  record telemetry: each binary writes per-cell
#                D/<section>/<cell>.{smtptrace,json,csv} (default D=traces);
#                analyze with build/tools/trace_report
#   --faults=P   seeded fault plan for every cell, e.g.
#                seed=7,drop=0.01,dup=0.01,flip=0.001,nak=0.01; the plan,
#                seed and injected/recovered counts land in the --json
#                records (see docs/robustness.md)
#   --retry=S    NAK retry policy: immediate | fixed[:baseNs] |
#                exp[:baseNs[:capNs]]
# Remaining arguments are passed through to every binary
# (--faults/--retry ride this passthrough).
set -e

quick=""
jobs=""
json_path=""
trace_dir=""
passthru=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick="--quick" ;;
        --jobs=*) jobs="$arg" ;;
        --json) json_path="BENCH_sweep.json" ;;
        --json=*) json_path="${arg#--json=}" ;;
        --trace) trace_dir="traces" ;;
        --trace=*) trace_dir="${arg#--trace=}" ;;
        *) passthru="$passthru $arg" ;;
    esac
done

json_flag=""
if [ -n "$json_path" ]; then
    rm -f "$json_path"
    json_flag="--json=$json_path"
fi

# Per-section trace subdirectory, so cells with the same (app, model,
# nodes, ways) in different sections don't overwrite each other.
tflag() {
    if [ -n "$trace_dir" ]; then
        printf -- '--trace=%s/%s' "$trace_dir" "$1"
    fi
}

set -x
./build/bench/bench_fig2_4 $quick $jobs $json_flag $(tflag fig2_4) $passthru
./build/bench/bench_fig5_7 --quick $jobs $json_flag $(tflag fig5_7) $passthru
./build/bench/bench_fig8_9 --quick $jobs $json_flag $(tflag fig8_9) $passthru
./build/bench/bench_fig10_11 $quick $jobs $json_flag $(tflag fig10_11) $passthru
./build/bench/bench_table5_6 --quick $jobs $json_flag $(tflag table5_6) $passthru
./build/bench/bench_table7 $quick $jobs $json_flag $(tflag table7) $passthru
./build/bench/bench_table8_9 $quick $jobs $json_flag $(tflag table8_9) $passthru
./build/bench/bench_ablation_las $quick $jobs $json_flag $(tflag ablation_las) $passthru
./build/bench/bench_ablation_pcache $quick $jobs $json_flag $(tflag ablation_pcache) $passthru
./build/bench/bench_uarch --benchmark_min_time=0.1
