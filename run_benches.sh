#!/bin/sh
# Runs every paper table/figure benchmark, one section per binary.
#
# Usage: ./run_benches.sh [--quick] [--jobs=N] [--json[=PATH]] [--trace[=DIR]]
#                         [--faults=PLAN] [--retry=SPEC] [--ckpt-dir[=DIR]]
#                         [--sample=W:M:K]
#
#   --quick      smaller configurations everywhere (CI-sized run)
#   --jobs=N     sweep worker threads per binary (default: SMTP_SWEEP_JOBS
#                env var, else all hardware threads)
#   --json[=P]   append per-cell results as JSON Lines to P
#                (default BENCH_sweep.json); the file is recreated
#   --trace[=D]  record telemetry: each binary writes per-cell
#                D/<section>/<cell>.{smtptrace,json,csv} (default D=traces);
#                analyze with build/tools/trace_report
#   --faults=P   seeded fault plan for every cell, e.g.
#                seed=7,drop=0.01,dup=0.01,flip=0.001,nak=0.01; the plan,
#                seed and injected/recovered counts land in the --json
#                records (see docs/robustness.md)
#   --retry=S    NAK retry policy: immediate | fixed[:baseNs] |
#                exp[:baseNs[:capNs]]
#   --ckpt-dir[=D] checkpoint library (default D=ckpt_lib), shared by
#                every section: each cell's end state (or warmup
#                snapshot under --sample) is cached keyed by its config
#                hash, so a re-run — or another section with identical
#                cells — restores instead of re-simulating. Binaries
#                report per-cell hit/miss on stderr; snapshots from a
#                stale/foreign config fail the hash guard and the cell
#                silently re-simulates (docs/checkpointing.md).
#   --sample=W:M:K sampled measurement: W warmup cycles (shared via the
#                checkpoint library when --ckpt-dir is set), then K
#                intervals of M cycles; JSON records gain ipc/memstall
#                mean and 95% CI fields
# Remaining arguments are passed through to every binary
# (--faults/--retry/--sample ride this passthrough).
set -e

quick=""
jobs=""
json_path=""
trace_dir=""
ckpt_dir=""
passthru=""
for arg in "$@"; do
    case "$arg" in
        --quick) quick="--quick" ;;
        --jobs=*) jobs="$arg" ;;
        --json) json_path="BENCH_sweep.json" ;;
        --json=*) json_path="${arg#--json=}" ;;
        --trace) trace_dir="traces" ;;
        --trace=*) trace_dir="${arg#--trace=}" ;;
        --ckpt-dir) ckpt_dir="ckpt_lib" ;;
        --ckpt-dir=*) ckpt_dir="${arg#--ckpt-dir=}" ;;
        *) passthru="$passthru $arg" ;;
    esac
done

json_flag=""
if [ -n "$json_path" ]; then
    rm -f "$json_path"
    json_flag="--json=$json_path"
fi

ckpt_flag=""
if [ -n "$ckpt_dir" ]; then
    mkdir -p "$ckpt_dir"
    ckpt_flag="--ckpt-dir=$ckpt_dir"
fi

# Per-section trace subdirectory, so cells with the same (app, model,
# nodes, ways) in different sections don't overwrite each other.
tflag() {
    if [ -n "$trace_dir" ]; then
        printf -- '--trace=%s/%s' "$trace_dir" "$1"
    fi
}

set -x
./build/bench/bench_fig2_4 $quick $jobs $json_flag $ckpt_flag $(tflag fig2_4) $passthru
./build/bench/bench_fig5_7 --quick $jobs $json_flag $ckpt_flag $(tflag fig5_7) $passthru
./build/bench/bench_fig8_9 --quick $jobs $json_flag $ckpt_flag $(tflag fig8_9) $passthru
./build/bench/bench_fig10_11 $quick $jobs $json_flag $ckpt_flag $(tflag fig10_11) $passthru
./build/bench/bench_table5_6 --quick $jobs $json_flag $ckpt_flag $(tflag table5_6) $passthru
./build/bench/bench_table7 $quick $jobs $json_flag $ckpt_flag $(tflag table7) $passthru
./build/bench/bench_table8_9 $quick $jobs $json_flag $ckpt_flag $(tflag table8_9) $passthru
./build/bench/bench_ablation_las $quick $jobs $json_flag $ckpt_flag $(tflag ablation_las) $passthru
./build/bench/bench_ablation_pcache $quick $jobs $json_flag $ckpt_flag $(tflag ablation_pcache) $passthru
./build/bench/bench_uarch --benchmark_min_time=0.1
