#!/bin/sh
# Regenerates bench_output.txt: one section per paper table/figure.
set -x
./build/bench/bench_fig2_4
./build/bench/bench_fig5_7 --quick
./build/bench/bench_fig8_9 --quick
./build/bench/bench_fig10_11
./build/bench/bench_table5_6 --quick
./build/bench/bench_table7
./build/bench/bench_table8_9
./build/bench/bench_ablation_las
./build/bench/bench_ablation_pcache
./build/bench/bench_uarch --benchmark_min_time=0.1s
