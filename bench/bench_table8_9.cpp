/**
 * @file
 * Tables 8-9: SMTp protocol-thread characterization on 16-node 1-way
 * machines. Table 8: conditional branch misprediction rate, squash-cycle
 * percentage, retired protocol instructions as a share of all retired.
 * Table 9: peak live occupancy of the branch stack, integer registers,
 * integer queue and LSQ by the protocol thread. Paper shape: >=95%%
 * protocol branch prediction accuracy except Water (low training);
 * tiny squash and retired-instruction fractions; surprisingly high
 * resource peaks (e.g. ~100 integer registers).
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Tables 8-9: SMTp protocol-thread characteristics "
                "(16 nodes, 1-way)",
                "Table 8: e.g. FFT 2.1%% mispred, 0.02%% squash, 4.2%% "
                "retired; Table 9: peaks ~22-28 brstack, ~100-113 regs, "
                "32 IQ, 20-35 LSQ");

    std::vector<RunConfig> cells;
    for (const auto &app : opt.appList()) {
        RunConfig cfg;
        cfg.model = MachineModel::SMTp;
        cfg.nodes = opt.quick ? 8 : 16;
        cfg.ways = 1;
        cfg.app = app;
        cfg.scale = opt.scale;
        cells.push_back(cfg);
    }

    std::vector<RunResult> results = runCells(opt, cells);

    printRowHeader({"app", "brMis%", "squash%", "retired%", "pkBrStk",
                    "pkIntRegs", "pkIQ", "pkLSQ"});
    std::size_t idx = 0;
    for (const auto &app : opt.appList()) {
        const RunResult &r = results[idx++];
        std::printf("%12s%11.2f%%%11.3f%%%11.2f%%%12llu%12llu%12llu"
                    "%12llu\n",
                    app.c_str(), 100.0 * r.protoBranchMispredict,
                    100.0 * r.protoSquashCyclePct,
                    100.0 * r.protoRetiredPct,
                    static_cast<unsigned long long>(r.peakBranchStack),
                    static_cast<unsigned long long>(r.peakIntRegs),
                    static_cast<unsigned long long>(r.peakIntQueue),
                    static_cast<unsigned long long>(r.peakLsq));
    }
    std::fflush(stdout);
    return 0;
}
