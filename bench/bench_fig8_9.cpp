/**
 * @file
 * Figures 8-9: 32-node relative performance, 1/2-way (64-bit directory
 * entries). Paper shape: SMTp still tracks Int512KB at medium scale.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Figures 8-9: 32-node relative performance",
                "Figs. 8, 9 (normalized exec time, 5 models, 1/2-way)");
    runFigure(opt, 32, 1, 2000, "Figure 8");
    if (!opt.quick)
        runFigure(opt, 32, 2, 2000, "Figure 9");
    return 0;
}
