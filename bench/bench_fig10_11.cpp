/**
 * @file
 * Figures 10-11: clock-rate scaling. 8-node 1-way machines at 4 GHz and
 * 2 GHz. Paper shape: trends unchanged; the integrated models' edge over
 * Base widens as the processor-memory gap grows.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Figures 10-11: 8-node clock scaling",
                "Figs. 10 (4 GHz), 11 (2 GHz); 1-way nodes");
    runFigure(opt, 8, 1, 4000, "Figure 10 (4 GHz)");
    runFigure(opt, 8, 1, 2000, "Figure 11 (2 GHz)");
    return 0;
}
