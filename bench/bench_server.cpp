/**
 * @file
 * Server workload family sweep: the MPMC queue-server, the Zipf
 * kv-store and the HTM-style spec-txn generators across the five
 * machine models, with request-latency percentiles and transactional
 * commit/abort counts as the headline columns (docs/workloads.md).
 *
 * The paper's tables stop at 16 nodes; --big adds beyond-paper
 * capacity rows at 64/128/256 total hardware contexts. The directory
 * entry's sharer vector is 32 bits wide (protocol/directory.hpp), so
 * node count caps at 32 — the big rows scale contexts per node
 * (nodes x ways = 16x4, 32x4, 32x8) instead, which is also the more
 * server-shaped direction: many threads per node sharing a cache.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;

namespace
{

const MachineModel kModels[] = {
    MachineModel::Base, MachineModel::IntPerfect, MachineModel::Int512KB,
    MachineModel::Int64KB, MachineModel::SMTp};

void
printServerRow(const char *app, const char *label, const RunResult &r)
{
    std::printf("%14s%12s%12.1f%10llu%10.3f%10.3f%10.3f%9llu%9llu\n",
                app, label, static_cast<double>(r.execTime) / tickPerUs,
                static_cast<unsigned long long>(r.requests), r.reqLatP50Us,
                r.reqLatP95Us, r.reqLatP99Us,
                static_cast<unsigned long long>(r.txnCommits),
                static_cast<unsigned long long>(r.txnAborts));
}

void
printServerHeader()
{
    std::printf("%14s%12s%12s%10s%10s%10s%10s%9s%9s\n", "app", "cell",
                "exec_us", "requests", "p50_us", "p95_us", "p99_us",
                "commits", "aborts");
    printBar();
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    if (opt.apps.empty())
        opt.apps = workload::serverAppNames();
    printHeader(
        "Server workload family: request latency and txn outcomes",
        "beyond-paper workloads; methodology follows the paper's "
        "five-model comparison at 4 nodes");

    // ---- Five-model comparison, 4 nodes x 1 way ----------------------
    std::vector<RunConfig> cells;
    for (const auto &app : opt.apps) {
        for (MachineModel model : kModels) {
            RunConfig cfg;
            cfg.model = model;
            cfg.nodes = 4;
            cfg.ways = 1;
            cfg.app = app;
            cfg.scale = opt.scale;
            cells.push_back(cfg);
        }
    }

    // ---- Scaling rows on SMTp: paper-range, then --big ---------------
    struct ScaleRow
    {
        unsigned nodes, ways;
        bool big;
    };
    std::vector<ScaleRow> scaleRows = {
        {4, 1, false}, {8, 1, false}, {16, 1, false}};
    if (opt.big) {
        // 64/128/256 total contexts. Nodes cap at 32 (32-bit sharer
        // vector in the directory entry), so capacity grows through
        // SMT ways beyond that.
        scaleRows.push_back({16, 4, true});
        scaleRows.push_back({32, 4, true});
        scaleRows.push_back({32, 8, true});
    }
    std::size_t scaleBase = cells.size();
    for (const auto &app : opt.apps) {
        for (const ScaleRow &s : scaleRows) {
            if (opt.quick && s.nodes * s.ways > 8)
                continue;
            RunConfig cfg;
            cfg.model = MachineModel::SMTp;
            cfg.nodes = s.nodes;
            cfg.ways = s.ways;
            cfg.app = app;
            cfg.scale = opt.scale;
            cells.push_back(cfg);
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    std::printf("\nfive-model comparison (nodes=4, ways=1, scale=%.2f)\n",
                opt.scale);
    printServerHeader();
    std::size_t idx = 0;
    for (const auto &app : opt.apps) {
        for (MachineModel model : kModels)
            printServerRow(app.c_str(),
                           std::string(modelName(model)).c_str(),
                           results[idx++]);
        printBar();
    }

    std::printf("\nSMTp scaling (total contexts = nodes x ways%s)\n",
                opt.big ? "; --big rows go beyond the paper's range"
                        : "; add --big for 64/128/256-context rows");
    printServerHeader();
    idx = scaleBase;
    for (const auto &app : opt.apps) {
        for (const ScaleRow &s : scaleRows) {
            if (opt.quick && s.nodes * s.ways > 8)
                continue;
            char label[32];
            std::snprintf(label, sizeof(label), "%ux%u=%u", s.nodes,
                          s.ways, s.nodes * s.ways);
            printServerRow(app.c_str(), label, results[idx++]);
        }
        printBar();
    }
    std::fflush(stdout);
    return 0;
}
