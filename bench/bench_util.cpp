#include "bench_util.hpp"

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>

namespace smtp::bench
{

bool
SampleSpec::parse(const std::string &spec, SampleSpec &out,
                  std::string *err)
{
    unsigned long long w = 0, m = 0, k = 0;
    char trailing = 0;
    int n = std::sscanf(spec.c_str(), "%llu:%llu:%llu%c", &w, &m, &k,
                        &trailing);
    if (n != 3 || m == 0 || k == 0) {
        if (err != nullptr)
            *err = "expected W:M:K (cycles:cycles:count, M and K > 0), "
                   "got '" +
                   spec + "'";
        return false;
    }
    out.warmup = w;
    out.interval = m;
    out.count = static_cast<unsigned>(k);
    return true;
}

namespace
{

/**
 * One sweep cell's simulation state: machine + functional memory +
 * workload, wired together. Rebuildable, because a failed snapshot
 * restore may leave the machine partially mutated — the fallback path
 * constructs a fresh cell and simulates from tick zero.
 */
struct CellSim
{
    MachineParams mp;
    std::unique_ptr<FuncMem> mem;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    unsigned totalThreads = 0;

    void
    build(const RunConfig &cfg)
    {
        machine.reset();
        mem = std::make_unique<FuncMem>();
        machine = std::make_unique<Machine>(mp);
        app = workload::makeApp(cfg.app);
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = cfg.nodes;
        env.threadsPerNode = cfg.ways;
        env.scale = cfg.scale;
        app->build(env);
        totalThreads = env.totalThreads();
        for (unsigned t = 0; t < totalThreads; ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
    }
};

MachineParams
paramsFor(const RunConfig &cfg)
{
    MachineParams mp;
    mp.model = cfg.model;
    mp.nodes = cfg.nodes;
    mp.appThreadsPerNode = cfg.ways;
    mp.cpuFreqMHz = cfg.cpuFreqMHz;
    mp.lookAheadScheduling = cfg.lookAheadScheduling;
    mp.bitAssistOps = cfg.bitAssistOps;
    mp.perfectProtocolCaches = cfg.perfectProtocolCaches;
    mp.dirCacheDivisor = cfg.dirCacheDivisor;
    mp.eventKernel = cfg.heapEventKernel ? EventQueue::Kernel::Heap
                                         : EventQueue::Kernel::Wheel;
    mp.exec = cfg.exec;
    mp.trace.enabled = !cfg.traceStem.empty();
    if (cfg.traceExec)
        mp.trace.categories |= trace::categoryBit(trace::Category::Exec);
    mp.faults = cfg.faults;
    mp.retryPolicy = cfg.retryPolicy;
    return mp;
}

/**
 * Cell identity for the checkpoint library: the machine config hash
 * (model, sizes, fault plan, ...) mixed with everything that shapes
 * simulated state but lives outside MachineParams — the workload and
 * whether telemetry rides along (a traced snapshot carries a trace
 * section an untraced machine must not be handed, and vice versa).
 */
std::uint64_t
cellKey(const Machine &m, const RunConfig &cfg)
{
    snap::Hasher h;
    h.mix(m.configHash());
    h.mix("workload");
    h.mix(cfg.app);
    h.mixF(cfg.scale);
    h.mix(static_cast<std::uint64_t>(cfg.traceStem.empty() ? 0 : 1));
    // Exec-traced snapshots carry per-shard exec buffers a plainly
    // traced machine would refuse, so they get their own cache cells.
    h.mix(static_cast<std::uint64_t>(cfg.traceExec ? 1 : 0));
    return h.value();
}

/** Two-sided 95% Student's t critical value for @p df degrees. */
double
tCrit95(unsigned df)
{
    static const double kTable[30] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df <= 30)
        return kTable[df - 1];
    return 1.96;
}

/** Sample mean and 95% CI half-width (0 when n < 2). */
void
meanCi95(const std::vector<double> &xs, double &mean, double &ci)
{
    mean = 0.0;
    ci = 0.0;
    if (xs.empty())
        return;
    for (double x : xs)
        mean += x;
    mean /= static_cast<double>(xs.size());
    if (xs.size() < 2)
        return;
    double ss = 0.0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    double var = ss / static_cast<double>(xs.size() - 1);
    ci = tCrit95(static_cast<unsigned>(xs.size() - 1)) *
         std::sqrt(var / static_cast<double>(xs.size()));
}

/**
 * Read every derived metric off the machine's current state. Works
 * identically on a machine that just simulated and on one that just
 * restored a snapshot — that equivalence is what makes checkpoint
 * hits indistinguishable in the JSON output.
 */
void
extractMetrics(Machine &machine, const RunConfig &cfg, RunResult &out,
               bool quiesce_faults)
{
    out.execTime = machine.execTime();
    out.memStallFraction = machine.memStallFraction();
    out.peakProtocolOccupancy = machine.peakProtocolOccupancy();
    if (cfg.model == MachineModel::SMTp) {
        auto pc = machine.protoCharacteristics();
        out.protoBranchMispredict = pc.branchMispredictRate;
        out.protoSquashCyclePct = pc.squashCyclePct;
        out.protoRetiredPct = pc.retiredInstPct;
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            const auto &occ = machine.node(n).cpu->protoOccupancy;
            out.peakBranchStack =
                std::max(out.peakBranchStack, occ.branchStack.peak());
            out.peakIntRegs =
                std::max(out.peakIntRegs, occ.intRegs.peak());
            out.peakIntQueue =
                std::max(out.peakIntQueue, occ.intQueue.peak());
            out.peakLsq = std::max(out.peakLsq, occ.lsq.peak());
        }
    }
    if (!cfg.traceStem.empty()) {
        std::string err;
        if (!machine.writeTraceFiles(cfg.traceStem, &err))
            std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
    if (const auto *fi = machine.faultInjector(); fi != nullptr) {
        // Faulty cells must still drain cleanly: every injected fault
        // is recoverable, so residual traffic is a harness bug. A
        // restored machine was quiesced before its snapshot was saved.
        if (quiesce_faults)
            machine.quiesce();
        out.faultsInjected = fi->injectedTotal();
        out.faultsRecovered = fi->recoveredTotal();
    }
}

void
saveCheckpoint(Machine &machine, snap::CheckpointLibrary &lib,
               std::uint64_t key, std::string_view tag)
{
    std::string err;
    if (!machine.save(lib.pathFor(key, tag), &err))
        std::fprintf(stderr, "checkpoint save failed: %s\n", err.c_str());
}

/**
 * Restore @p sim from the library snapshot (key, tag). On any failure
 * — config-hash mismatch from a stale library, truncation, version
 * skew — the cell is rebuilt from scratch and the caller simulates
 * cold; a bad snapshot can cost time, never correctness.
 */
bool
tryRestore(CellSim &sim, const RunConfig &cfg,
           snap::CheckpointLibrary &lib, std::uint64_t key,
           std::string_view tag)
{
    std::string err;
    if (sim.machine->restore(lib.pathFor(key, tag), &err))
        return true;
    std::fprintf(stderr,
                 "checkpoint restore failed (%s); re-simulating: %s\n",
                 lib.pathFor(key, tag).c_str(), err.c_str());
    sim.build(cfg);
    return false;
}

/**
 * Sampled measurement: warm up W cycles (restoring a shared warmup
 * snapshot when the library has one), then measure K intervals of M
 * cycles, reporting per-interval machine IPC and memory-stall fraction
 * as mean +/- 95% CI. Ends early if the workload completes.
 */
void
runSampled(CellSim &sim, const RunConfig &cfg,
           snap::CheckpointLibrary *lib, RunResult &out)
{
    const SampleSpec &sp = cfg.sample;
    out.sampled = true;
    ClockDomain clk(cfg.cpuFreqMHz);
    Tick warm_ticks = clk.cyclesToTicks(sp.warmup);
    bool done = false;
    if (lib != nullptr && sp.warmup > 0) {
        std::uint64_t key = cellKey(*sim.machine, cfg);
        char tag[32];
        std::snprintf(tag, sizeof(tag), "w%llu",
                      static_cast<unsigned long long>(sp.warmup));
        if (lib->lookup(key, tag) && tryRestore(sim, cfg, *lib, key, tag)) {
            out.ckpt = 1;
        } else {
            out.ckpt = 0;
            done = sim.machine->runUntil(warm_ticks);
            // A workload that finished inside the warmup left an end
            // state, not a warm state; publishing it would make warm
            // reruns diverge from cold ones (extra sample intervals
            // against a finished machine), so the cell stays a miss.
            if (!done)
                saveCheckpoint(*sim.machine, *lib, key, tag);
        }
    } else if (warm_ticks > 0) {
        done = sim.machine->runUntil(warm_ticks);
    }

    Machine &m = *sim.machine;
    auto stall_sum = [&] {
        std::uint64_t s = 0;
        for (unsigned n = 0; n < cfg.nodes; ++n)
            for (unsigned t = 0; t < cfg.ways; ++t)
                s += m.node(n)
                         .cpu->threadStats(static_cast<ThreadId>(t))
                         .memStallCycles.value();
        return s;
    };
    Tick interval_ticks = clk.cyclesToTicks(sp.interval);
    Tick base = m.eventQueue().curTick();
    Tick prev_tick = base;
    std::uint64_t prev_insts = m.committedAppInsts();
    std::uint64_t prev_stall = stall_sum();
    std::vector<double> ipc, stall;
    for (unsigned k = 0; k < sp.count && !done; ++k) {
        done = m.runUntil(base + (k + 1) * interval_ticks);
        Tick now = m.eventQueue().curTick();
        double cycles = static_cast<double>(now - prev_tick) /
                        static_cast<double>(clk.period());
        if (cycles <= 0.0)
            break;
        std::uint64_t insts = m.committedAppInsts();
        std::uint64_t st = stall_sum();
        ipc.push_back(static_cast<double>(insts - prev_insts) / cycles);
        stall.push_back(static_cast<double>(st - prev_stall) /
                        (cycles * sim.totalThreads));
        prev_tick = now;
        prev_insts = insts;
        prev_stall = st;
    }
    out.sampleCount = static_cast<unsigned>(ipc.size());
    meanCi95(ipc, out.ipcMean, out.ipcCi95);
    meanCi95(stall, out.memStallMean, out.memStallCi95);
    // Cumulative metrics reflect the run so far (warmup + intervals);
    // quiesce only when the workload actually finished — draining a
    // mid-flight machine would perturb nothing we report but is wasted
    // work and not what a sampled cell means.
    extractMetrics(m, cfg, out, /*quiesce_faults=*/done);
}

} // namespace

RunResult
runOnce(const RunConfig &cfg)
{
    auto wall_start = std::chrono::steady_clock::now();

    CellSim sim;
    sim.mp = paramsFor(cfg);
    sim.build(cfg);

    std::unique_ptr<snap::CheckpointLibrary> lib;
    if (!cfg.ckptDir.empty()) {
        lib = std::make_unique<snap::CheckpointLibrary>(cfg.ckptDir);
        if (!lib->valid()) {
            std::fprintf(stderr, "%s\n", lib->error().c_str());
            lib.reset();
        }
    }

    RunResult out;
    if (cfg.sample.active()) {
        runSampled(sim, cfg, lib.get(), out);
    } else if (lib != nullptr) {
        std::uint64_t key = cellKey(*sim.machine, cfg);
        if (lib->lookup(key, "full") &&
            tryRestore(sim, cfg, *lib, key, "full")) {
            out.ckpt = 1;
            extractMetrics(*sim.machine, cfg, out,
                           /*quiesce_faults=*/false);
        } else {
            out.ckpt = 0;
            sim.machine->run();
            extractMetrics(*sim.machine, cfg, out,
                           /*quiesce_faults=*/true);
            saveCheckpoint(*sim.machine, *lib, key, "full");
        }
    } else {
        sim.machine->run();
        extractMetrics(*sim.machine, cfg, out, /*quiesce_faults=*/true);
    }
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    return out;
}

std::vector<RunResult>
runCells(const BenchOptions &opt, const std::vector<RunConfig> &cfgs_in)
{
    std::vector<RunConfig> cfgs = cfgs_in;
    for (RunConfig &c : cfgs) {
        c.faults = opt.faults;
        c.retryPolicy = opt.retryPolicy;
        c.ckptDir = opt.ckptDir;
        c.sample = opt.sample;
        c.exec = opt.exec;
    }
    if (!opt.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.traceDir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create trace dir '%s': %s\n",
                         opt.traceDir.c_str(), ec.message().c_str());
            std::exit(1);
        }
        for (RunConfig &c : cfgs) {
            char stem[512];
            std::snprintf(stem, sizeof(stem), "%s/%s_%s_n%uw%u",
                          opt.traceDir.c_str(), c.app.c_str(),
                          std::string(modelName(c.model)).c_str(),
                          c.nodes, c.ways);
            c.traceStem = stem;
            c.traceExec = opt.traceExec;
        }
    }
    std::vector<RunResult> results(cfgs.size());
    SweepPool pool(opt.jobs);
    pool.parallelFor(cfgs.size(), [&](std::size_t i) {
        results[i] = runOnce(cfgs[i]);
    });
    if (!opt.ckptDir.empty()) {
        // Cache effectiveness goes to stderr, not the JSON records, so
        // a warm sweep's output stays byte-comparable to a cold one.
        std::uint64_t hits = 0, misses = 0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            if (results[i].ckpt < 0)
                continue;
            const RunConfig &c = cfgs[i];
            bool hit = results[i].ckpt == 1;
            (hit ? hits : misses)++;
            std::fprintf(stderr, "ckpt %-4s %s %s n%uw%u (%.1f ms)\n",
                         hit ? "hit" : "miss", c.app.c_str(),
                         std::string(modelName(c.model)).c_str(),
                         c.nodes, c.ways, results[i].wallMs);
        }
        std::fprintf(
            stderr,
            "checkpoint cache '%s': %llu hits, %llu misses\n",
            opt.ckptDir.c_str(), static_cast<unsigned long long>(hits),
            static_cast<unsigned long long>(misses));
    }
    if (!opt.jsonPath.empty())
        appendJson(opt.jsonPath, cfgs, results);
    return results;
}

void
appendJson(const std::string &path, const std::vector<RunConfig> &cfgs,
           const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open json output '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResult &r = results[i];
        // Fault fields are appended only for faulty cells so fault-free
        // records stay byte-identical to pre-fault-subsystem output.
        std::string fault_fields;
        if (c.faults.enabled() || c.faults.injectDropWithoutRetransmit) {
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                ",\"fault_seed\":%llu,\"faults\":\"%s\",\"retry\":\"%s\","
                "\"faults_injected\":%llu,\"faults_recovered\":%llu",
                static_cast<unsigned long long>(c.faults.seed),
                c.faults.toString().c_str(),
                fault::retryPolicyToString(c.retryPolicy).c_str(),
                static_cast<unsigned long long>(r.faultsInjected),
                static_cast<unsigned long long>(r.faultsRecovered));
            fault_fields = buf;
        }
        // The exec field appears only for non-serial runs, so default
        // records stay byte-identical to earlier output — and a
        // serial-vs-parallel JSON diff reduces to stripping wall_ms
        // and exec (simulated fields must match exactly).
        std::string exec_field;
        if (c.exec.parallel())
            exec_field = ",\"exec\":\"" + c.exec.toString() + "\"";
        // Sampled-measurement fields appear only in --sample runs, so
        // full-run records stay byte-identical to earlier output.
        std::string sample_fields;
        if (r.sampled) {
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                ",\"samples\":%u,\"ipc_mean\":%.6f,\"ipc_ci95\":%.6f,"
                "\"memstall_mean\":%.6f,\"memstall_ci95\":%.6f",
                r.sampleCount, r.ipcMean, r.ipcCi95, r.memStallMean,
                r.memStallCi95);
            sample_fields = buf;
        }
        std::fprintf(
            f,
            "{\"app\":\"%s\",\"model\":\"%s\",\"nodes\":%u,\"ways\":%u,"
            "\"exec_ticks\":%llu,\"mem_stall\":%.6f%s%s%s,\"wall_ms\":%.3f}\n",
            c.app.c_str(), std::string(modelName(c.model)).c_str(),
            c.nodes, c.ways,
            static_cast<unsigned long long>(r.execTime),
            r.memStallFraction, fault_fields.c_str(),
            sample_fields.c_str(), exec_field.c_str(), r.wallMs);
    }
    std::fclose(f);
}

const std::vector<std::string> &
BenchOptions::appList() const
{
    if (!apps.empty())
        return apps;
    return workload::appNames();
}

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        // "--opt value" form: fold the next argv into "--opt=value".
        auto next_value = [&](const char *flag) -> const char * {
            if (arg != flag)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (const char *v = value("--scale=")) {
            opt.scale = std::atof(v);
        } else if (const char *vd = value("--dcache-div=")) {
            opt.dirCacheDivisor = static_cast<unsigned>(std::atoi(vd));
        } else if (const char *v2 = value("--apps=")) {
            opt.apps.clear();
            std::string list = v2;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                auto comma = list.find(',', pos);
                opt.apps.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (const char *vj = value("--jobs=")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj));
        } else if (const char *vj2 = next_value("--jobs")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj2));
        } else if (const char *vp = value("--json=")) {
            opt.jsonPath = vp;
        } else if (const char *vp2 = next_value("--json")) {
            opt.jsonPath = vp2;
        } else if (const char *vt = value("--trace=")) {
            opt.traceDir = vt;
        } else if (arg == "--trace") {
            opt.traceDir = "traces";
        } else if (arg == "--trace-exec") {
            opt.traceExec = true;
        } else if (const char *vf = value("--faults=")) {
            std::string err;
            if (!fault::FaultPlan::parse(vf, opt.faults, &err)) {
                std::fprintf(stderr, "--faults: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vr = value("--retry=")) {
            std::string err;
            if (!fault::parseRetryPolicy(vr, opt.retryPolicy, &err)) {
                std::fprintf(stderr, "--retry: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vc = value("--ckpt-dir=")) {
            opt.ckptDir = vc;
        } else if (const char *vc2 = next_value("--ckpt-dir")) {
            opt.ckptDir = vc2;
        } else if (const char *vs = value("--sample=")) {
            std::string err;
            if (!SampleSpec::parse(vs, opt.sample, &err)) {
                std::fprintf(stderr, "--sample: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *ve = value("--exec=")) {
            std::string err;
            if (!ExecParams::parse(ve, opt.exec, &err)) {
                std::fprintf(stderr, "--exec: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help") {
            std::printf("options: --scale=F --apps=A,B,... --quick "
                        "--verbose --jobs=N --json=PATH --trace[=DIR] "
                        "--faults=PLAN --retry=SPEC --ckpt-dir=DIR "
                        "--sample=W:M:K --exec=serial|parallel[:T] "
                        "--trace-exec\n"
                        "  --jobs   sweep worker threads (default: "
                        "SMTP_SWEEP_JOBS env or all cores)\n"
                        "  --json   append per-cell JSON-Lines records "
                        "to PATH\n"
                        "  --trace  record telemetry; per-cell "
                        "DIR/<app>_<model>_n<N>w<W>.{smtptrace,json,csv} "
                        "(DIR defaults to 'traces')\n"
                        "  --faults seeded fault plan, e.g. "
                        "seed=7,drop=0.01,dup=0.01,delay=0.02,flip=0.001,"
                        "nak=0.01 (docs/robustness.md)\n"
                        "  --retry  NAK retry policy: immediate | "
                        "fixed[:baseNs] | exp[:baseNs[:capNs]]\n"
                        "  --ckpt-dir  checkpoint library: cache each "
                        "cell's end state (or warmup snapshot with "
                        "--sample) keyed by config hash; hit/miss per "
                        "cell on stderr (docs/checkpointing.md)\n"
                        "  --sample W:M:K sampled measurement: W warmup "
                        "cycles, then K intervals of M cycles; JSON "
                        "gains ipc/memstall mean and 95%% CI\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            std::exit(1);
        }
    }
    if (opt.quick)
        opt.scale *= 0.5;
    return opt;
}

void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper reference: %s\n", paper_note.c_str());
    std::printf("================================================================================\n");
    std::fflush(stdout);
}

void
printBar()
{
    std::printf("--------------------------------------------------------------------------------\n");
}

void
printRowHeader(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%12s", c.c_str());
    std::printf("\n");
    printBar();
}

} // namespace smtp::bench

namespace smtp::bench
{
namespace
{
const MachineModel figureModels[] = {
    MachineModel::Base, MachineModel::IntPerfect, MachineModel::Int512KB,
    MachineModel::Int64KB, MachineModel::SMTp,
};
}

void
runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
          std::uint64_t cpu_freq_mhz, const std::string &caption)
{
    const auto &apps = opt.appList();
    std::vector<RunConfig> cells;
    for (const auto &app : apps) {
        for (MachineModel model : figureModels) {
            RunConfig cfg;
            cfg.model = model;
            cfg.nodes = nodes;
            cfg.ways = ways;
            cfg.app = app;
            cfg.scale = opt.scale;
            cfg.cpuFreqMHz = cpu_freq_mhz;
            cfg.dirCacheDivisor = opt.dirCacheDivisor;
            cells.push_back(cfg);
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    std::printf("\n%s  (nodes=%u, ways=%u, cpu=%llu MHz, scale=%.2f)\n",
                caption.c_str(), nodes, ways,
                static_cast<unsigned long long>(cpu_freq_mhz), opt.scale);
    printRowHeader({"app", "model", "exec(us)", "norm", "memstall",
                    "protOcc"});
    std::size_t idx = 0;
    for (const auto &app : apps) {
        double base_time = 0.0;
        for (MachineModel model : figureModels) {
            const RunResult &r = results[idx++];
            double us = static_cast<double>(r.execTime) / tickPerUs;
            if (model == MachineModel::Base)
                base_time = us;
            std::printf("%12s%12s%12.1f%12.3f%12.3f%12.3f\n", app.c_str(),
                        std::string(modelName(model)).c_str(), us,
                        us / base_time, r.memStallFraction,
                        r.peakProtocolOccupancy);
        }
        printBar();
    }
    std::fflush(stdout);
}

} // namespace smtp::bench
