#include "bench_util.hpp"

#include <cstring>
#include <filesystem>

#include "serve/client.hpp"

namespace smtp::bench
{

namespace
{

/**
 * Server-mode runCells: submit the whole cell list to a smtpd daemon
 * and collect results by submitted index. The daemon streams cells in
 * completion order; collection is order-insensitive, and the JSON file
 * (written by our caller in cell order from the verbatim records) ends
 * up identical to a local run's.
 */
std::vector<RunResult>
runCellsOnServer(const BenchOptions &opt,
                 const std::vector<RunConfig> &cfgs,
                 std::vector<std::string> &records)
{
    serve::Client client;
    if (!client.connect(opt.serverSock)) {
        std::fprintf(stderr, "--server: %s\n", client.error().c_str());
        std::exit(1);
    }
    std::vector<RunResult> results(cfgs.size());
    records.assign(cfgs.size(), std::string());
    std::size_t cachedCount = 0;
    std::size_t skipped = 0, failed = 0;
    bool ok = client.submit(
        cfgs, /*priority=*/0,
        [&](const serve::CellReply &cr) {
            results[cr.index] = cr.result;
            records[cr.index] = cr.record;
            if (cr.cached)
                ++cachedCount;
            if (cr.failed)
                std::fprintf(stderr,
                             "--server: cell %zu FAILED after %u "
                             "attempt(s): %s (%s)\n",
                             cr.index, cr.attempts,
                             cr.errReason.c_str(),
                             cr.errDetail.c_str());
            else if (opt.verbose)
                std::fprintf(stderr, "served cell %zu%s\n", cr.index,
                             cr.cached ? " (cached)" : "");
        },
        &skipped, &failed);
    if (!ok) {
        std::fprintf(stderr, "--server: %s\n", client.error().c_str());
        if (client.overloaded())
            std::fprintf(stderr,
                         "--server: daemon refused the job "
                         "(admission control); retry later or raise "
                         "its --max-queue\n");
        std::exit(1);
    }
    std::fprintf(stderr,
                 "server '%s': %zu cell(s), %zu served from cache\n",
                 opt.serverSock.c_str(), cfgs.size(), cachedCount);
    return results;
}

} // namespace

std::vector<RunResult>
runCells(const BenchOptions &opt, const std::vector<RunConfig> &cfgs_in)
{
    std::vector<RunConfig> cfgs = cfgs_in;
    for (RunConfig &c : cfgs) {
        c.faults = opt.faults;
        c.retryPolicy = opt.retryPolicy;
        c.ckptDir = opt.ckptDir;
        c.sample = opt.sample;
        c.exec = opt.exec;
        c.checkLevel = opt.checkLevel;
        c.protocol = opt.protocol;
    }
    if (!opt.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.traceDir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create trace dir '%s': %s\n",
                         opt.traceDir.c_str(), ec.message().c_str());
            std::exit(1);
        }
        for (RunConfig &c : cfgs) {
            char stem[512];
            std::snprintf(stem, sizeof(stem), "%s/%s_%s_n%uw%u",
                          opt.traceDir.c_str(), c.app.c_str(),
                          std::string(modelName(c.model)).c_str(),
                          c.nodes, c.ways);
            c.traceStem = stem;
            c.traceExec = opt.traceExec;
        }
    }

    if (!opt.serverSock.empty()) {
        // The daemon owns checkpointing and artifact paths; local
        // --ckpt-dir/--trace directories don't apply over there (the
        // cell frames report daemon-side trace stems instead).
        std::vector<std::string> records;
        std::vector<RunResult> results =
            runCellsOnServer(opt, cfgs, records);
        if (!opt.jsonPath.empty()) {
            std::FILE *f = std::fopen(opt.jsonPath.c_str(), "a");
            if (f == nullptr) {
                std::fprintf(stderr, "cannot open json output '%s'\n",
                             opt.jsonPath.c_str());
                std::exit(1);
            }
            for (const std::string &r : records)
                std::fprintf(f, "%s\n", r.c_str());
            std::fclose(f);
        }
        return results;
    }

    std::vector<RunResult> results(cfgs.size());
    SweepPool pool(opt.jobs);
    pool.parallelFor(cfgs.size(), [&](std::size_t i) {
        results[i] = runOnce(cfgs[i]);
    });
    if (!opt.ckptDir.empty()) {
        // Cache effectiveness goes to stderr, not the JSON records, so
        // a warm sweep's output stays byte-comparable to a cold one.
        std::uint64_t hits = 0, misses = 0;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            if (results[i].ckpt < 0)
                continue;
            const RunConfig &c = cfgs[i];
            bool hit = results[i].ckpt == 1;
            (hit ? hits : misses)++;
            std::fprintf(stderr, "ckpt %-4s %s %s n%uw%u (%.1f ms)\n",
                         hit ? "hit" : "miss", c.app.c_str(),
                         std::string(modelName(c.model)).c_str(),
                         c.nodes, c.ways, results[i].wallMs);
        }
        std::fprintf(
            stderr,
            "checkpoint cache '%s': %llu hits, %llu misses\n",
            opt.ckptDir.c_str(), static_cast<unsigned long long>(hits),
            static_cast<unsigned long long>(misses));
    }
    if (!opt.jsonPath.empty())
        appendJson(opt.jsonPath, cfgs, results);
    return results;
}

void
appendJson(const std::string &path, const std::vector<RunConfig> &cfgs,
           const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open json output '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        serve::appendJsonRecord(f, cfgs[i], results[i]);
    std::fclose(f);
}

const std::vector<std::string> &
BenchOptions::appList() const
{
    if (!apps.empty())
        return apps;
    return workload::appNames();
}

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        // "--opt value" form: fold the next argv into "--opt=value".
        auto next_value = [&](const char *flag) -> const char * {
            if (arg != flag)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (const char *v = value("--scale=")) {
            opt.scale = std::atof(v);
        } else if (const char *vd = value("--dcache-div=")) {
            opt.dirCacheDivisor = static_cast<unsigned>(std::atoi(vd));
        } else if (const char *v2 = value("--apps=")) {
            opt.apps.clear();
            std::string list = v2;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                auto comma = list.find(',', pos);
                opt.apps.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (const char *vj = value("--jobs=")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj));
        } else if (const char *vj2 = next_value("--jobs")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj2));
        } else if (const char *vp = value("--json=")) {
            opt.jsonPath = vp;
        } else if (const char *vp2 = next_value("--json")) {
            opt.jsonPath = vp2;
        } else if (const char *vt = value("--trace=")) {
            opt.traceDir = vt;
        } else if (arg == "--trace") {
            opt.traceDir = "traces";
        } else if (arg == "--trace-exec") {
            opt.traceExec = true;
        } else if (const char *vf = value("--faults=")) {
            std::string err;
            if (!fault::FaultPlan::parse(vf, opt.faults, &err)) {
                std::fprintf(stderr, "--faults: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vr = value("--retry=")) {
            std::string err;
            if (!fault::parseRetryPolicy(vr, opt.retryPolicy, &err)) {
                std::fprintf(stderr, "--retry: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vc = value("--ckpt-dir=")) {
            opt.ckptDir = vc;
        } else if (const char *vc2 = next_value("--ckpt-dir")) {
            opt.ckptDir = vc2;
        } else if (const char *vs = value("--sample=")) {
            std::string err;
            if (!SampleSpec::parse(vs, opt.sample, &err)) {
                std::fprintf(stderr, "--sample: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *ve = value("--exec=")) {
            std::string err;
            if (!ExecParams::parse(ve, opt.exec, &err)) {
                std::fprintf(stderr, "--exec: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vk = value("--check=")) {
            std::string err;
            if (!serve::parseCheckLevel(vk, opt.checkLevel, &err)) {
                std::fprintf(stderr, "--check: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vpr = value("--protocol=")) {
            if (!proto::protocolFromName(vpr, opt.protocol)) {
                std::fprintf(
                    stderr, "--protocol: unknown '%s' (expected %s)\n",
                    vpr,
                    std::string(proto::protocolNameList()).c_str());
                std::exit(1);
            }
        } else if (const char *vsv = value("--server=")) {
            opt.serverSock = vsv;
        } else if (const char *vsv2 = next_value("--server")) {
            opt.serverSock = vsv2;
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--big") {
            opt.big = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help") {
            std::printf("options: --scale=F --apps=A,B,... --quick --big "
                        "--verbose --jobs=N --json=PATH --trace[=DIR] "
                        "--faults=PLAN --retry=SPEC --ckpt-dir=DIR "
                        "--sample=W:M:K --exec=serial|parallel[:T] "
                        "--check=off|asserts|full --server=SOCK "
                        "--protocol=NAME --trace-exec\n"
                        "  --big    add beyond-paper capacity rows "
                        "(64/128/256 hardware contexts) to benches "
                        "that support them (bench_server)\n"
                        "  --jobs   sweep worker threads (default: "
                        "SMTP_SWEEP_JOBS env or all cores)\n"
                        "  --json   append per-cell JSON-Lines records "
                        "to PATH\n"
                        "  --trace  record telemetry; per-cell "
                        "DIR/<app>_<model>_n<N>w<W>.{smtptrace,json,csv} "
                        "(DIR defaults to 'traces')\n"
                        "  --faults seeded fault plan, e.g. "
                        "seed=7,drop=0.01,dup=0.01,delay=0.02,flip=0.001,"
                        "nak=0.01 (docs/robustness.md)\n"
                        "  --retry  NAK retry policy: immediate | "
                        "fixed[:baseNs] | exp[:baseNs[:capNs]]\n"
                        "  --ckpt-dir  checkpoint library: cache each "
                        "cell's end state (or warmup snapshot with "
                        "--sample) keyed by config hash; hit/miss per "
                        "cell on stderr (docs/checkpointing.md)\n"
                        "  --sample W:M:K sampled measurement: W warmup "
                        "cycles, then K intervals of M cycles; JSON "
                        "gains ipc/memstall mean and 95%% CI\n"
                        "  --check  coherence checker: asserts runs "
                        "under parallel exec; full forces one host "
                        "thread, loudly (docs/checker.md)\n"
                        "  --server run cells on the smtpd daemon at "
                        "SOCK instead of in-process "
                        "(docs/service.md)\n"
                        "  --protocol directory-protocol variant: "
                        "bitvector (default) | migratory | "
                        "phase-priority (docs/protocols.md)\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            std::exit(1);
        }
    }
    if (opt.quick)
        opt.scale *= 0.5;
    return opt;
}

void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper reference: %s\n", paper_note.c_str());
    std::printf("================================================================================\n");
    std::fflush(stdout);
}

void
printBar()
{
    std::printf("--------------------------------------------------------------------------------\n");
}

void
printRowHeader(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%12s", c.c_str());
    std::printf("\n");
    printBar();
}

namespace
{
const MachineModel figureModels[] = {
    MachineModel::Base, MachineModel::IntPerfect, MachineModel::Int512KB,
    MachineModel::Int64KB, MachineModel::SMTp,
};
}

void
runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
          std::uint64_t cpu_freq_mhz, const std::string &caption)
{
    const auto &apps = opt.appList();
    std::vector<RunConfig> cells;
    for (const auto &app : apps) {
        for (MachineModel model : figureModels) {
            RunConfig cfg;
            cfg.model = model;
            cfg.nodes = nodes;
            cfg.ways = ways;
            cfg.app = app;
            cfg.scale = opt.scale;
            cfg.cpuFreqMHz = cpu_freq_mhz;
            cfg.dirCacheDivisor = opt.dirCacheDivisor;
            cells.push_back(cfg);
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    std::printf("\n%s  (nodes=%u, ways=%u, cpu=%llu MHz, scale=%.2f)\n",
                caption.c_str(), nodes, ways,
                static_cast<unsigned long long>(cpu_freq_mhz), opt.scale);
    printRowHeader({"app", "model", "exec(us)", "norm", "memstall",
                    "protOcc"});
    std::size_t idx = 0;
    for (const auto &app : apps) {
        double base_time = 0.0;
        for (MachineModel model : figureModels) {
            const RunResult &r = results[idx++];
            double us = static_cast<double>(r.execTime) / tickPerUs;
            if (model == MachineModel::Base)
                base_time = us;
            std::printf("%12s%12s%12.1f%12.3f%12.3f%12.3f\n", app.c_str(),
                        std::string(modelName(model)).c_str(), us,
                        us / base_time, r.memStallFraction,
                        r.peakProtocolOccupancy);
        }
        printBar();
    }
    std::fflush(stdout);
}

} // namespace smtp::bench
