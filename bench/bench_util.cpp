#include "bench_util.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>

namespace smtp::bench
{

RunResult
runOnce(const RunConfig &cfg)
{
    auto wall_start = std::chrono::steady_clock::now();

    MachineParams mp;
    mp.model = cfg.model;
    mp.nodes = cfg.nodes;
    mp.appThreadsPerNode = cfg.ways;
    mp.cpuFreqMHz = cfg.cpuFreqMHz;
    mp.lookAheadScheduling = cfg.lookAheadScheduling;
    mp.bitAssistOps = cfg.bitAssistOps;
    mp.perfectProtocolCaches = cfg.perfectProtocolCaches;
    mp.dirCacheDivisor = cfg.dirCacheDivisor;
    mp.eventKernel = cfg.heapEventKernel ? EventQueue::Kernel::Heap
                                         : EventQueue::Kernel::Wheel;
    mp.trace.enabled = !cfg.traceStem.empty();
    mp.faults = cfg.faults;
    mp.retryPolicy = cfg.retryPolicy;

    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp(cfg.app);
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = cfg.nodes;
    env.threadsPerNode = cfg.ways;
    env.scale = cfg.scale;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));

    RunResult out;
    out.execTime = machine.run();
    out.memStallFraction = machine.memStallFraction();
    out.peakProtocolOccupancy = machine.peakProtocolOccupancy();
    if (cfg.model == MachineModel::SMTp) {
        auto pc = machine.protoCharacteristics();
        out.protoBranchMispredict = pc.branchMispredictRate;
        out.protoSquashCyclePct = pc.squashCyclePct;
        out.protoRetiredPct = pc.retiredInstPct;
        for (unsigned n = 0; n < cfg.nodes; ++n) {
            const auto &occ = machine.node(n).cpu->protoOccupancy;
            out.peakBranchStack =
                std::max(out.peakBranchStack, occ.branchStack.peak());
            out.peakIntRegs =
                std::max(out.peakIntRegs, occ.intRegs.peak());
            out.peakIntQueue =
                std::max(out.peakIntQueue, occ.intQueue.peak());
            out.peakLsq = std::max(out.peakLsq, occ.lsq.peak());
        }
    }
    if (!cfg.traceStem.empty()) {
        std::string err;
        if (!machine.writeTraceFiles(cfg.traceStem, &err))
            std::fprintf(stderr, "trace export failed: %s\n", err.c_str());
    }
    if (const auto *fi = machine.faultInjector(); fi != nullptr) {
        // Faulty cells must still drain cleanly: every injected fault
        // is recoverable, so residual traffic is a harness bug.
        machine.quiesce();
        out.faultsInjected = fi->injectedTotal();
        out.faultsRecovered = fi->recoveredTotal();
    }
    out.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    return out;
}

std::vector<RunResult>
runCells(const BenchOptions &opt, const std::vector<RunConfig> &cfgs_in)
{
    std::vector<RunConfig> cfgs = cfgs_in;
    for (RunConfig &c : cfgs) {
        c.faults = opt.faults;
        c.retryPolicy = opt.retryPolicy;
    }
    if (!opt.traceDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.traceDir, ec);
        if (ec) {
            std::fprintf(stderr, "cannot create trace dir '%s': %s\n",
                         opt.traceDir.c_str(), ec.message().c_str());
            std::exit(1);
        }
        for (RunConfig &c : cfgs) {
            char stem[512];
            std::snprintf(stem, sizeof(stem), "%s/%s_%s_n%uw%u",
                          opt.traceDir.c_str(), c.app.c_str(),
                          std::string(modelName(c.model)).c_str(),
                          c.nodes, c.ways);
            c.traceStem = stem;
        }
    }
    std::vector<RunResult> results(cfgs.size());
    SweepPool pool(opt.jobs);
    pool.parallelFor(cfgs.size(), [&](std::size_t i) {
        results[i] = runOnce(cfgs[i]);
    });
    if (!opt.jsonPath.empty())
        appendJson(opt.jsonPath, cfgs, results);
    return results;
}

void
appendJson(const std::string &path, const std::vector<RunConfig> &cfgs,
           const std::vector<RunResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open json output '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const RunConfig &c = cfgs[i];
        const RunResult &r = results[i];
        // Fault fields are appended only for faulty cells so fault-free
        // records stay byte-identical to pre-fault-subsystem output.
        std::string fault_fields;
        if (c.faults.enabled() || c.faults.injectDropWithoutRetransmit) {
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                ",\"fault_seed\":%llu,\"faults\":\"%s\",\"retry\":\"%s\","
                "\"faults_injected\":%llu,\"faults_recovered\":%llu",
                static_cast<unsigned long long>(c.faults.seed),
                c.faults.toString().c_str(),
                fault::retryPolicyToString(c.retryPolicy).c_str(),
                static_cast<unsigned long long>(r.faultsInjected),
                static_cast<unsigned long long>(r.faultsRecovered));
            fault_fields = buf;
        }
        std::fprintf(
            f,
            "{\"app\":\"%s\",\"model\":\"%s\",\"nodes\":%u,\"ways\":%u,"
            "\"exec_ticks\":%llu,\"mem_stall\":%.6f%s,\"wall_ms\":%.3f}\n",
            c.app.c_str(), std::string(modelName(c.model)).c_str(),
            c.nodes, c.ways,
            static_cast<unsigned long long>(r.execTime),
            r.memStallFraction, fault_fields.c_str(), r.wallMs);
    }
    std::fclose(f);
}

const std::vector<std::string> &
BenchOptions::appList() const
{
    if (!apps.empty())
        return apps;
    return workload::appNames();
}

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *prefix) -> const char * {
            std::size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) == 0)
                return arg.c_str() + n;
            return nullptr;
        };
        // "--opt value" form: fold the next argv into "--opt=value".
        auto next_value = [&](const char *flag) -> const char * {
            if (arg != flag)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (const char *v = value("--scale=")) {
            opt.scale = std::atof(v);
        } else if (const char *vd = value("--dcache-div=")) {
            opt.dirCacheDivisor = static_cast<unsigned>(std::atoi(vd));
        } else if (const char *v2 = value("--apps=")) {
            opt.apps.clear();
            std::string list = v2;
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                auto comma = list.find(',', pos);
                opt.apps.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? comma
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (const char *vj = value("--jobs=")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj));
        } else if (const char *vj2 = next_value("--jobs")) {
            opt.jobs = static_cast<unsigned>(std::atoi(vj2));
        } else if (const char *vp = value("--json=")) {
            opt.jsonPath = vp;
        } else if (const char *vp2 = next_value("--json")) {
            opt.jsonPath = vp2;
        } else if (const char *vt = value("--trace=")) {
            opt.traceDir = vt;
        } else if (arg == "--trace") {
            opt.traceDir = "traces";
        } else if (const char *vf = value("--faults=")) {
            std::string err;
            if (!fault::FaultPlan::parse(vf, opt.faults, &err)) {
                std::fprintf(stderr, "--faults: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (const char *vr = value("--retry=")) {
            std::string err;
            if (!fault::parseRetryPolicy(vr, opt.retryPolicy, &err)) {
                std::fprintf(stderr, "--retry: %s\n", err.c_str());
                std::exit(1);
            }
        } else if (arg == "--quick") {
            opt.quick = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help") {
            std::printf("options: --scale=F --apps=A,B,... --quick "
                        "--verbose --jobs=N --json=PATH --trace[=DIR] "
                        "--faults=PLAN --retry=SPEC\n"
                        "  --jobs   sweep worker threads (default: "
                        "SMTP_SWEEP_JOBS env or all cores)\n"
                        "  --json   append per-cell JSON-Lines records "
                        "to PATH\n"
                        "  --trace  record telemetry; per-cell "
                        "DIR/<app>_<model>_n<N>w<W>.{smtptrace,json,csv} "
                        "(DIR defaults to 'traces')\n"
                        "  --faults seeded fault plan, e.g. "
                        "seed=7,drop=0.01,dup=0.01,delay=0.02,flip=0.001,"
                        "nak=0.01 (docs/robustness.md)\n"
                        "  --retry  NAK retry policy: immediate | "
                        "fixed[:baseNs] | exp[:baseNs[:capNs]]\n");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            std::exit(1);
        }
    }
    if (opt.quick)
        opt.scale *= 0.5;
    return opt;
}

void
printHeader(const std::string &title, const std::string &paper_note)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper reference: %s\n", paper_note.c_str());
    std::printf("================================================================================\n");
    std::fflush(stdout);
}

void
printBar()
{
    std::printf("--------------------------------------------------------------------------------\n");
}

void
printRowHeader(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%12s", c.c_str());
    std::printf("\n");
    printBar();
}

} // namespace smtp::bench

namespace smtp::bench
{
namespace
{
const MachineModel figureModels[] = {
    MachineModel::Base, MachineModel::IntPerfect, MachineModel::Int512KB,
    MachineModel::Int64KB, MachineModel::SMTp,
};
}

void
runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
          std::uint64_t cpu_freq_mhz, const std::string &caption)
{
    const auto &apps = opt.appList();
    std::vector<RunConfig> cells;
    for (const auto &app : apps) {
        for (MachineModel model : figureModels) {
            RunConfig cfg;
            cfg.model = model;
            cfg.nodes = nodes;
            cfg.ways = ways;
            cfg.app = app;
            cfg.scale = opt.scale;
            cfg.cpuFreqMHz = cpu_freq_mhz;
            cfg.dirCacheDivisor = opt.dirCacheDivisor;
            cells.push_back(cfg);
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    std::printf("\n%s  (nodes=%u, ways=%u, cpu=%llu MHz, scale=%.2f)\n",
                caption.c_str(), nodes, ways,
                static_cast<unsigned long long>(cpu_freq_mhz), opt.scale);
    printRowHeader({"app", "model", "exec(us)", "norm", "memstall",
                    "protOcc"});
    std::size_t idx = 0;
    for (const auto &app : apps) {
        double base_time = 0.0;
        for (MachineModel model : figureModels) {
            const RunResult &r = results[idx++];
            double us = static_cast<double>(r.execTime) / tickPerUs;
            if (model == MachineModel::Base)
                base_time = us;
            std::printf("%12s%12s%12.1f%12.3f%12.3f%12.3f\n", app.c_str(),
                        std::string(modelName(model)).c_str(), us,
                        us / base_time, r.memStallFraction,
                        r.peakProtocolOccupancy);
        }
        printBar();
    }
    std::fflush(stdout);
}

} // namespace smtp::bench
