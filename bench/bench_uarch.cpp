/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot structures:
 * event queue throughput, cache array lookups, branch predictor,
 * protocol handler functional execution, and network message transport.
 * These guard the simulator's own performance (simulation speed), not
 * the paper's results.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hpp"
#include "cpu/bpred.hpp"
#include "mem/protocol_ram.hpp"
#include "network/network.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"
#include "sim/eventq.hpp"

namespace
{

using namespace smtp;

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            eq.scheduleIn(static_cast<Tick>(1 + i % 7),
                          [&sink] { ++sink; });
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleRun);

/**
 * Head-to-head kernel comparison on the simulator's dominant pattern:
 * short-delta events (pipeline ticks, link hops) with an occasional
 * far-future one (DRAM refresh-scale timers). range(0) selects the
 * kernel so both rows appear in one report.
 */
void
BM_EventQueueKernelMix(benchmark::State &state)
{
    auto kernel = state.range(0) == 0 ? EventQueue::Kernel::Wheel
                                      : EventQueue::Kernel::Heap;
    EventQueue eq(kernel);
    std::uint64_t sink = 0;
    std::uint64_t n = 0;
    for (auto _ : state) {
        for (int i = 0; i < 63; ++i)
            eq.scheduleIn(static_cast<Tick>(250 + (n + i) % 2000),
                          [&sink] { ++sink; });
        // One far event past the wheel horizon per batch.
        eq.scheduleIn((Tick{1} << 20) + n % 4096, [&sink] { ++sink; });
        ++n;
        eq.run(eq.curTick() + 4000);
    }
    eq.run();
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel(kernel == EventQueue::Kernel::Wheel ? "wheel"
                                                       : "heap");
}
BENCHMARK(BM_EventQueueKernelMix)->Arg(0)->Arg(1);

/** Same-tick fan-out: many events at one tick, mixed priorities. */
void
BM_EventQueueSameTickBurst(benchmark::State &state)
{
    auto kernel = state.range(0) == 0 ? EventQueue::Kernel::Wheel
                                      : EventQueue::Kernel::Heap;
    EventQueue eq(kernel);
    std::uint64_t sink = 0;
    constexpr EventQueue::Priority prios[] = {
        EventQueue::prioEarly, EventQueue::prioDefault,
        EventQueue::prioLate};
    for (auto _ : state) {
        Tick when = eq.curTick() + 500;
        for (int i = 0; i < 64; ++i)
            eq.schedule(when, [&sink] { ++sink; }, prios[i % 3]);
        eq.run();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 64);
    state.SetLabel(kernel == EventQueue::Kernel::Wheel ? "wheel"
                                                       : "heap");
}
BENCHMARK(BM_EventQueueSameTickBurst)->Arg(0)->Arg(1);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    CacheArray l2(2 * 1024 * 1024, 128, 8);
    for (Addr a = 0; a < 512 * 1024; a += 128) {
        CacheLine *v = l2.victimFor(a);
        v->addr = a;
        v->state = LineState::Sh;
        l2.touch(v);
    }
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l2.find(a));
        a = (a + 128) % (512 * 1024);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_BranchPredict(benchmark::State &state)
{
    BpredParams bp;
    bp.threads = 2;
    TournamentBpred pred(bp);
    std::uint64_t pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        auto p = pred.predict(0, pc, true, false, false, pc + 4);
        benchmark::DoNotOptimize(p);
        pred.update(0, pc, taken, pc + 64, true);
        taken = !taken;
        pc = 0x1000 + (pc + 4) % 4096;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

class BenchEnv : public proto::ExecEnv
{
  public:
    std::uint64_t
    protoLoad(Addr a, unsigned bytes) override
    {
        return ram.read(a, bytes);
    }

    void
    protoStore(Addr a, std::uint64_t v, unsigned bytes) override
    {
        ram.write(a, v, bytes);
    }

    Addr
    dirAddrOf(Addr line) override
    {
        return proto::protoDirBase + (line >> 7) * 4;
    }

    NodeId homeOf(Addr) override { return 0; }
    std::uint64_t probeResult() override { return 1; }

    ProtocolRam ram;
};

void
BM_HandlerFunctionalExecution(benchmark::State &state)
{
    auto fmt = proto::DirFormat::forNodes(16);
    auto image = proto::buildHandlerImage(fmt);
    BenchEnv env;
    proto::Executor ex(image, env);
    ex.boot(0);
    proto::Message m;
    m.type = proto::MsgType::ReqGet;
    m.addr = 0x100000;
    m.src = 1;
    m.requester = 1;
    m.mshr = 3;
    for (auto _ : state) {
        auto trace = ex.run(m);
        benchmark::DoNotOptimize(trace.insts.data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HandlerFunctionalExecution);

void
BM_NetworkTransport(benchmark::State &state)
{
    EventQueue eq;
    NetworkParams np;
    np.numNodes = 16;
    Network net(eq, np);
    std::uint64_t delivered = 0;
    for (NodeId n = 0; n < 16; ++n) {
        net.attach(n, [&delivered](const proto::Message &) {
            ++delivered;
            return true;
        });
    }
    proto::Message m;
    m.type = proto::MsgType::ReqGet;
    for (auto _ : state) {
        m.src = static_cast<NodeId>(delivered % 16);
        m.dest = static_cast<NodeId>((delivered + 7) % 16);
        m.addr = 0x1000 + delivered * 128;
        net.inject(m);
        eq.run();
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkTransport);

void
BM_ProtocolRamAccess(benchmark::State &state)
{
    ProtocolRam ram;
    Addr a = 0;
    for (auto _ : state) {
        ram.write(a, a + 1, 8);
        benchmark::DoNotOptimize(ram.read(a, 8));
        a = (a + 8) % 65536;
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ProtocolRamAccess);

} // namespace

BENCHMARK_MAIN();
