/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: one full-system
 * simulation per (application, machine model, size) cell, plus table
 * formatting that prints our measurements next to the paper's reported
 * shapes (EXPERIMENTS.md records the comparison).
 *
 * Cells are independent machines, so every bench binary builds its
 * whole cell list up front and runs it through the work-stealing
 * SweepPool (--jobs=N / SMTP_SWEEP_JOBS); tables are printed from the
 * collected results in deterministic cell order, so the output is
 * byte-identical at any thread count. --json=PATH appends one
 * machine-readable record per cell (JSON Lines) for CI perf
 * trajectories.
 *
 * The cell runner itself lives in src/serve (serve::runOnce and
 * friends) and is shared with the smtpd daemon; this header re-exports
 * it under smtp::bench so the bench binaries are agnostic about where
 * their cells execute. With --server=SOCK (or SMTPD_SOCK via
 * run_benches.sh), runCells() submits the whole sweep to a running
 * smtpd instead of simulating locally — the records that come back are
 * byte-identical (mod wall_ms) because both paths run the same code.
 */

#ifndef SMTP_BENCH_BENCH_UTIL_HPP
#define SMTP_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "serve/runner.hpp"
#include "sim/sweep.hpp"
#include "workload/app.hpp"

namespace smtp::bench
{

// The sweep-cell vocabulary is the service layer's; bench code and the
// daemon must agree on it exactly (that shared identity is what makes
// served results interchangeable with local ones).
using serve::RunConfig;
using serve::RunResult;
using serve::SampleSpec;
using serve::runOnce;

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    double scale = 1.0;
    unsigned dirCacheDivisor = 16;
    std::vector<std::string> apps;  ///< Empty = all six.
    bool quick = false;             ///< Halve sizes, skip 4-way rows.
    /**
     * --big: beyond-paper capacity rows (64/128/256 total hardware
     * contexts via nodes x ways). Off by default — these rows dominate
     * a sweep's wall time and exist for the scaling story, not the
     * paper tables.
     */
    bool big = false;
    bool verbose = false;
    unsigned jobs = 0;              ///< Sweep workers; 0 = auto.
    std::string jsonPath;           ///< Append per-cell records here.
    std::string traceDir;           ///< Per-cell trace files (empty=off).
    fault::FaultPlan faults;        ///< --faults=PLAN (default: none).
    fault::RetryPolicyConfig retryPolicy; ///< --retry=SPEC.
    std::string ckptDir;            ///< --ckpt-dir=DIR (empty = off).
    SampleSpec sample;              ///< --sample=W:M:K (default: off).
    ExecParams exec;                ///< --exec=serial|parallel[:T].
    bool traceExec = false;         ///< --trace-exec (Exec category).
    /** --check=off|asserts|full; asserts runs under parallel exec. */
    check::CheckLevel checkLevel = check::CheckLevel::Off;
    /** --server=SOCK: run cells on a smtpd daemon instead of locally. */
    std::string serverSock;
    /** --protocol=bitvector|migratory|phase-priority (default first). */
    proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;

    const std::vector<std::string> &appList() const;
};

BenchOptions parseArgs(int argc, char **argv);

/**
 * Run every cell through a SweepPool sized by opt.jobs — or, with
 * opt.serverSock set, through the smtpd daemon at that socket —
 * returning results in cell order (index i belongs to cfgs[i]
 * regardless of worker interleaving). When opt.jsonPath is set, one
 * JSON record per cell is appended there, also in cell order.
 */
std::vector<RunResult> runCells(const BenchOptions &opt,
                                const std::vector<RunConfig> &cfgs);

/** Append one JSON-Lines record per cell to @p path (in cell order). */
void appendJson(const std::string &path,
                const std::vector<RunConfig> &cfgs,
                const std::vector<RunResult> &results);

/** Printing helpers. */
void printHeader(const std::string &title, const std::string &paper_note);
void printRowHeader(const std::vector<std::string> &cols);
void printBar();

/**
 * Run one "figure" group: for each application and machine model at a
 * given (nodes, ways), print execution time normalized to Base plus the
 * memory-stall fraction — the paper's stacked-bar figures in text form.
 */
void runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
               std::uint64_t cpu_freq_mhz, const std::string &caption);

} // namespace smtp::bench

#endif // SMTP_BENCH_BENCH_UTIL_HPP
