/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: one full-system
 * simulation per (application, machine model, size) cell, plus table
 * formatting that prints our measurements next to the paper's reported
 * shapes (EXPERIMENTS.md records the comparison).
 *
 * Cells are independent machines, so every bench binary builds its
 * whole cell list up front and runs it through the work-stealing
 * SweepPool (--jobs=N / SMTP_SWEEP_JOBS); tables are printed from the
 * collected results in deterministic cell order, so the output is
 * byte-identical at any thread count. --json=PATH appends one
 * machine-readable record per cell (JSON Lines) for CI perf
 * trajectories.
 */

#ifndef SMTP_BENCH_BENCH_UTIL_HPP
#define SMTP_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "sim/sweep.hpp"
#include "snap/ckpt_cache.hpp"
#include "workload/app.hpp"

namespace smtp::bench
{

/**
 * Sampled-measurement spec (--sample=W:M:K, all in CPU cycles except
 * K): skip W cycles of warmup, then take K measurement intervals of M
 * cycles each and report per-metric mean and 95% confidence interval
 * (Student's t) instead of running the workload to completion. With a
 * checkpoint library attached, the warmup snapshot is cached under the
 * cell's config hash, so every variant sharing the warmup prefix
 * simulates it once.
 */
struct SampleSpec
{
    Cycles warmup = 0;   ///< W: warmup length in CPU cycles.
    Cycles interval = 0; ///< M: one measurement interval, CPU cycles.
    unsigned count = 0;  ///< K: number of intervals.

    bool active() const { return interval > 0 && count > 0; }

    /** Parse "W:M:K". False (with *err) on malformed input. */
    static bool parse(const std::string &spec, SampleSpec &out,
                      std::string *err = nullptr);
};

struct RunConfig
{
    MachineModel model = MachineModel::SMTp;
    unsigned nodes = 1;
    unsigned ways = 1;
    std::string app = "FFT";
    double scale = 1.0;
    std::uint64_t cpuFreqMHz = 2000;
    bool lookAheadScheduling = true;
    bool bitAssistOps = true;
    bool perfectProtocolCaches = false;
    unsigned dirCacheDivisor = 16; ///< Scaled with the problem sizes.
    /** Run on the reference heap kernel (determinism A/B tests). */
    bool heapEventKernel = false;
    /**
     * Shard-engine execution mode (--exec=serial|parallel[:T]).
     * Simulated results are bit-identical across modes; parallel only
     * changes host wall time (docs/parallelism.md).
     */
    ExecParams exec;
    /**
     * When non-empty, run with telemetry enabled and write
     * stem.smtptrace / stem.json / stem.csv after the run. Tracing
     * never perturbs simulated timing.
     */
    std::string traceStem;
    /**
     * Also record the opt-in Exec category (--trace-exec): per-shard
     * window-advance and barrier-wait events. These carry host time,
     * so exec-traced exports are NOT byte-comparable across exec modes
     * (docs/parallelism.md).
     */
    bool traceExec = false;
    /**
     * Fault injection (--faults=PLAN) and NAK retry policy
     * (--retry=SPEC). A disabled plan and the default Fixed policy
     * leave every cell bit-identical to a build without src/fault.
     */
    fault::FaultPlan faults;
    fault::RetryPolicyConfig retryPolicy;
    /**
     * Checkpoint library directory (--ckpt-dir=DIR; empty = off).
     * Full runs cache their end state; sampled runs cache the warmup
     * snapshot. Keys include the machine config hash, so a stale or
     * foreign snapshot is rejected and re-simulated, never trusted.
     */
    std::string ckptDir;
    SampleSpec sample; ///< Inactive = run to completion (default).
};

struct RunResult
{
    Tick execTime = 0;
    double memStallFraction = 0.0;
    double peakProtocolOccupancy = 0.0;
    // SMTp-only protocol thread characteristics.
    double protoBranchMispredict = 0.0;
    double protoSquashCyclePct = 0.0;
    double protoRetiredPct = 0.0;
    // Protocol thread peak resource occupancy (Table 9).
    std::uint64_t peakBranchStack = 0;
    std::uint64_t peakIntRegs = 0;
    std::uint64_t peakIntQueue = 0;
    std::uint64_t peakLsq = 0;
    // Fault-injection outcome (zero unless a plan was enabled).
    std::uint64_t faultsInjected = 0;
    std::uint64_t faultsRecovered = 0;
    // Sampled-measurement statistics (populated when sample.active()).
    bool sampled = false;
    unsigned sampleCount = 0;     ///< Intervals actually measured.
    double ipcMean = 0.0;         ///< Machine IPC per interval, mean.
    double ipcCi95 = 0.0;         ///< 95% CI half-width (Student's t).
    double memStallMean = 0.0;    ///< Per-interval mem-stall fraction.
    double memStallCi95 = 0.0;
    // Checkpoint-library outcome: -1 = library off, 0 = miss, 1 = hit.
    int ckpt = -1;
    // Harness measurement (host time; not simulated state).
    double wallMs = 0.0;
};

/** Run one full-system simulation. */
RunResult runOnce(const RunConfig &cfg);

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    double scale = 1.0;
    unsigned dirCacheDivisor = 16;
    std::vector<std::string> apps;  ///< Empty = all six.
    bool quick = false;             ///< Halve sizes, skip 4-way rows.
    bool verbose = false;
    unsigned jobs = 0;              ///< Sweep workers; 0 = auto.
    std::string jsonPath;           ///< Append per-cell records here.
    std::string traceDir;           ///< Per-cell trace files (empty=off).
    fault::FaultPlan faults;        ///< --faults=PLAN (default: none).
    fault::RetryPolicyConfig retryPolicy; ///< --retry=SPEC.
    std::string ckptDir;            ///< --ckpt-dir=DIR (empty = off).
    SampleSpec sample;              ///< --sample=W:M:K (default: off).
    ExecParams exec;                ///< --exec=serial|parallel[:T].
    bool traceExec = false;         ///< --trace-exec (Exec category).

    const std::vector<std::string> &appList() const;
};

BenchOptions parseArgs(int argc, char **argv);

/**
 * Run every cell through a SweepPool sized by opt.jobs, returning
 * results in cell order (index i belongs to cfgs[i] regardless of
 * worker interleaving). When opt.jsonPath is set, one JSON record per
 * cell is appended there, also in cell order.
 */
std::vector<RunResult> runCells(const BenchOptions &opt,
                                const std::vector<RunConfig> &cfgs);

/** Append one JSON-Lines record per cell to @p path (in cell order). */
void appendJson(const std::string &path,
                const std::vector<RunConfig> &cfgs,
                const std::vector<RunResult> &results);

/** Printing helpers. */
void printHeader(const std::string &title, const std::string &paper_note);
void printRowHeader(const std::vector<std::string> &cols);
void printBar();

/**
 * Run one "figure" group: for each application and machine model at a
 * given (nodes, ways), print execution time normalized to Base plus the
 * memory-stall fraction — the paper's stacked-bar figures in text form.
 */
void runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
               std::uint64_t cpu_freq_mhz, const std::string &caption);

} // namespace smtp::bench

#endif // SMTP_BENCH_BENCH_UTIL_HPP
