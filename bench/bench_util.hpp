/**
 * @file
 * Shared harness for the paper-reproduction benchmarks: one full-system
 * simulation per (application, machine model, size) cell, plus table
 * formatting that prints our measurements next to the paper's reported
 * shapes (EXPERIMENTS.md records the comparison).
 */

#ifndef SMTP_BENCH_BENCH_UTIL_HPP
#define SMTP_BENCH_BENCH_UTIL_HPP

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "workload/app.hpp"

namespace smtp::bench
{

struct RunConfig
{
    MachineModel model = MachineModel::SMTp;
    unsigned nodes = 1;
    unsigned ways = 1;
    std::string app = "FFT";
    double scale = 1.0;
    std::uint64_t cpuFreqMHz = 2000;
    bool lookAheadScheduling = true;
    bool bitAssistOps = true;
    bool perfectProtocolCaches = false;
    unsigned dirCacheDivisor = 16; ///< Scaled with the problem sizes.
};

struct RunResult
{
    Tick execTime = 0;
    double memStallFraction = 0.0;
    double peakProtocolOccupancy = 0.0;
    // SMTp-only protocol thread characteristics.
    double protoBranchMispredict = 0.0;
    double protoSquashCyclePct = 0.0;
    double protoRetiredPct = 0.0;
    // Protocol thread peak resource occupancy (Table 9).
    std::uint64_t peakBranchStack = 0;
    std::uint64_t peakIntRegs = 0;
    std::uint64_t peakIntQueue = 0;
    std::uint64_t peakLsq = 0;
};

/** Run one full-system simulation. */
RunResult runOnce(const RunConfig &cfg);

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    double scale = 1.0;
    unsigned dirCacheDivisor = 16;
    std::vector<std::string> apps;  ///< Empty = all six.
    bool quick = false;             ///< Halve sizes, skip 4-way rows.
    bool verbose = false;

    const std::vector<std::string> &appList() const;
};

BenchOptions parseArgs(int argc, char **argv);

/** Printing helpers. */
void printHeader(const std::string &title, const std::string &paper_note);
void printRowHeader(const std::vector<std::string> &cols);
void printBar();

/**
 * Run one "figure" group: for each application and machine model at a
 * given (nodes, ways), print execution time normalized to Base plus the
 * memory-stall fraction — the paper's stacked-bar figures in text form.
 */
void runFigure(const BenchOptions &opt, unsigned nodes, unsigned ways,
               std::uint64_t cpu_freq_mhz, const std::string &caption);

} // namespace smtp::bench

#endif // SMTP_BENCH_BENCH_UTIL_HPP
