/**
 * @file
 * Figures 5-7: 16-node relative performance, 1/2/4-way. Paper shape:
 * integrated models converge as directory-cache pressure drops with
 * machine size; Int64KB recovers; SMTp tracks Int512KB.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Figures 5-7: 16-node relative performance",
                "Figs. 5, 6, 7 (normalized exec time, 5 models, "
                "1/2/4-way SMT)");
    for (unsigned ways : {1u, 2u, 4u}) {
        if (opt.quick && ways != 1)
            continue;
        runFigure(opt, 16, ways,
                  2000, "Figure " + std::to_string(4 + ways - (ways / 4)));
    }
    return 0;
}
