/**
 * @file
 * Tables 5-6: 16-node self-relative speedups for Base and SMTp at
 * 1/2/4 application threads per node. Speedups are relative to the
 * single-node 1-way run of the same model (the paper's definition).
 * Our scaled-down problems yield smaller absolute speedups than the
 * paper's full-size inputs (see EXPERIMENTS.md); raise --scale to
 * approach them.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Tables 5-6: 16-node self-relative speedup",
                "Table 5 (Base), Table 6 (SMTp); paper: e.g. FFT 13.9 / "
                "14.0, Ocean 21.4 / 21.3 at 1-way");

    const MachineModel models[] = {MachineModel::Base, MachineModel::SMTp};
    const unsigned waysList[] = {1u, 2u, 4u};

    // Cell order: (model, app) x [1-node ref, then 16-node per ways].
    std::vector<RunConfig> cells;
    for (MachineModel model : models) {
        for (const auto &app : opt.appList()) {
            RunConfig ref;
            ref.model = model;
            ref.nodes = 1;
            ref.ways = 1;
            ref.app = app;
            ref.scale = opt.scale;
            cells.push_back(ref);
            for (unsigned ways : waysList) {
                if (opt.quick && ways == 4)
                    continue;
                RunConfig cfg = ref;
                cfg.nodes = 16;
                cfg.ways = ways;
                cells.push_back(cfg);
            }
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    std::size_t idx = 0;
    for (MachineModel model : models) {
        std::printf("\n%s (scale=%.2f)\n",
                    std::string(modelName(model)).c_str(), opt.scale);
        printRowHeader({"app", "1-way", "2-way", "4-way"});
        for (const auto &app : opt.appList()) {
            double t1 = static_cast<double>(results[idx++].execTime);
            std::printf("%12s", app.c_str());
            for (unsigned ways : waysList) {
                if (opt.quick && ways == 4) {
                    std::printf("%12s", "-");
                    continue;
                }
                double t = static_cast<double>(results[idx++].execTime);
                std::printf("%12.2f", t1 / t);
            }
            std::printf("\n");
        }
    }
    std::fflush(stdout);
    return 0;
}
