/**
 * @file
 * Figures 2-4: normalized execution time of the five machine models on
 * a single-node system with 1/2/4 application threads, with the
 * memory-stall split. Paper shape: integration helps; Ocean and FFTW
 * gain most; LU and Water are insensitive; SMTp always beats Base and
 * tracks Int512KB; Int64KB is the worst integrated model.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Figures 2-4: single-node relative performance",
                "Figs. 2, 3, 4 (normalized exec time, 5 models, "
                "1/2/4-way SMT)");
    for (unsigned ways : {1u, 2u, 4u}) {
        if (opt.quick && ways == 4)
            continue;
        runFigure(opt, 1, ways, 2000, "Figure " +
                  std::to_string(1 + ways / 2 + (ways / 4) * 1 + 1));
    }
    return 0;
}
