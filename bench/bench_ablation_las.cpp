/**
 * @file
 * Section 2.3 ablation: Look-Ahead Scheduling on/off. Paper: LAS
 * improves SMTp by up to 3.9%. Also covers the bit-manipulation
 * ALU-assist ablation (paper: <=0.8% without the special instructions).
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Ablation: Look-Ahead Scheduling and bit-assist ops",
                "Section 2.3: LAS gains up to 3.9%; missing popcount/ctz "
                "costs <=0.8% (16 nodes)");

    unsigned nodes = opt.quick ? 4 : 8;
    // Cell order per app: SMTp baseline, no-LAS, no-bit-assist.
    std::vector<RunConfig> cells;
    for (const auto &app : opt.appList()) {
        RunConfig cfg;
        cfg.model = MachineModel::SMTp;
        cfg.nodes = nodes;
        cfg.ways = 1;
        cfg.app = app;
        cfg.scale = opt.scale;
        cells.push_back(cfg);
        RunConfig nolas = cfg;
        nolas.lookAheadScheduling = false;
        cells.push_back(nolas);
        RunConfig nobits = cfg;
        nobits.bitAssistOps = false;
        cells.push_back(nobits);
    }

    std::vector<RunResult> results = runCells(opt, cells);

    printRowHeader({"app", "SMTp(us)", "noLAS", "noBitOps"});
    std::size_t idx = 0;
    for (const auto &app : opt.appList()) {
        double base = static_cast<double>(results[idx].execTime);
        double nolas = static_cast<double>(results[idx + 1].execTime);
        double nobits = static_cast<double>(results[idx + 2].execTime);
        idx += 3;
        std::printf("%12s%12.1f%+11.2f%%%+11.2f%%\n", app.c_str(),
                    base / tickPerUs, 100.0 * (nolas / base - 1.0),
                    100.0 * (nobits / base - 1.0));
    }
    std::fflush(stdout);
    return 0;
}
