/**
 * @file
 * Section 2.3 / 4 ablation: separate, perfect protocol caches for SMTp.
 * Paper: removes the data-cache pollution, gaining 0.9-3.2% (one case
 * 5.1%) — the residual gap between SMTp and Int512KB.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Ablation: perfect protocol caches (SMTp)",
                "Section 2.3: perfect protocol I/D caches gain 0.9-5.1%");
    printRowHeader({"app", "SMTp(us)", "perfectPC"});
    unsigned nodes = opt.quick ? 4 : 8;
    for (const auto &app : opt.appList()) {
        RunConfig cfg;
        cfg.model = MachineModel::SMTp;
        cfg.nodes = nodes;
        cfg.ways = 1;
        cfg.app = app;
        cfg.scale = opt.scale;
        double base = static_cast<double>(runOnce(cfg).execTime);
        cfg.perfectProtocolCaches = true;
        double perfect = static_cast<double>(runOnce(cfg).execTime);
        std::printf("%12s%12.1f%+11.2f%%\n", app.c_str(),
                    base / tickPerUs, 100.0 * (perfect / base - 1.0));
        std::fflush(stdout);
    }
    return 0;
}
