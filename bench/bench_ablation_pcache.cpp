/**
 * @file
 * Section 2.3 / 4 ablation: separate, perfect protocol caches for SMTp.
 * Paper: removes the data-cache pollution, gaining 0.9-3.2% (one case
 * 5.1%) — the residual gap between SMTp and Int512KB.
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Ablation: perfect protocol caches (SMTp)",
                "Section 2.3: perfect protocol I/D caches gain 0.9-5.1%");

    unsigned nodes = opt.quick ? 4 : 8;
    // Cell order per app: SMTp baseline, perfect protocol caches.
    std::vector<RunConfig> cells;
    for (const auto &app : opt.appList()) {
        RunConfig cfg;
        cfg.model = MachineModel::SMTp;
        cfg.nodes = nodes;
        cfg.ways = 1;
        cfg.app = app;
        cfg.scale = opt.scale;
        cells.push_back(cfg);
        RunConfig perfect = cfg;
        perfect.perfectProtocolCaches = true;
        cells.push_back(perfect);
    }

    std::vector<RunResult> results = runCells(opt, cells);

    printRowHeader({"app", "SMTp(us)", "perfectPC"});
    std::size_t idx = 0;
    for (const auto &app : opt.appList()) {
        double base = static_cast<double>(results[idx].execTime);
        double perfect = static_cast<double>(results[idx + 1].execTime);
        idx += 2;
        std::printf("%12s%12.1f%+11.2f%%\n", app.c_str(),
                    base / tickPerUs, 100.0 * (perfect / base - 1.0));
    }
    std::fflush(stdout);
    return 0;
}
