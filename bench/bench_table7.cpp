/**
 * @file
 * Table 7: peak protocol occupancy (busy fraction of the protocol agent
 * over parallel execution) on 16-node 1-way machines. Paper shape:
 * Base >> Int512KB ~ SMTp > IntPerfect; memory-intensive applications
 * (FFT, FFTW, Ocean, Radix) far above compute-intensive (LU, Water).
 */
#include "bench_util.hpp"
using namespace smtp;
using namespace smtp::bench;
int
main(int argc, char **argv)
{
    auto opt = parseArgs(argc, argv);
    printHeader("Table 7: 16-node protocol occupancy (1-way nodes)",
                "paper: FFT 10.2/3.6/5.3/5.8%%, Ocean 25/7.7/12.3/12.9%%, "
                "Water 1.5/0.3/0.6/0.7%% (Base/IntPerf/Int512KB/SMTp)");

    const MachineModel models[] = {
        MachineModel::Base, MachineModel::IntPerfect,
        MachineModel::Int512KB, MachineModel::SMTp};

    std::vector<RunConfig> cells;
    for (const auto &app : opt.appList()) {
        for (MachineModel model : models) {
            RunConfig cfg;
            cfg.model = model;
            cfg.nodes = opt.quick ? 8 : 16;
            cfg.ways = 1;
            cfg.app = app;
            cfg.scale = opt.scale;
            cells.push_back(cfg);
        }
    }

    std::vector<RunResult> results = runCells(opt, cells);

    printRowHeader({"app", "Base", "IntPerfect", "Int512KB", "SMTp"});
    std::size_t idx = 0;
    for (const auto &app : opt.appList()) {
        std::printf("%12s", app.c_str());
        for (std::size_t m = 0; m < std::size(models); ++m) {
            std::printf("%11.1f%%",
                        100.0 * results[idx++].peakProtocolOccupancy);
        }
        std::printf("\n");
    }
    std::fflush(stdout);
    return 0;
}
