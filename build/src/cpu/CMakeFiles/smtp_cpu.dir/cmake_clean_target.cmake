file(REMOVE_RECURSE
  "libsmtp_cpu.a"
)
