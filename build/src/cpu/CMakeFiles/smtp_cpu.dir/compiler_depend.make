# Empty compiler generated dependencies file for smtp_cpu.
# This may be replaced when dependencies are built.
