file(REMOVE_RECURSE
  "CMakeFiles/smtp_cpu.dir/bpred.cpp.o"
  "CMakeFiles/smtp_cpu.dir/bpred.cpp.o.d"
  "CMakeFiles/smtp_cpu.dir/smt_cpu.cpp.o"
  "CMakeFiles/smtp_cpu.dir/smt_cpu.cpp.o.d"
  "libsmtp_cpu.a"
  "libsmtp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
