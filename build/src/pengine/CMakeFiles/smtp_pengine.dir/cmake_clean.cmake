file(REMOVE_RECURSE
  "CMakeFiles/smtp_pengine.dir/pengine.cpp.o"
  "CMakeFiles/smtp_pengine.dir/pengine.cpp.o.d"
  "libsmtp_pengine.a"
  "libsmtp_pengine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_pengine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
