# Empty compiler generated dependencies file for smtp_pengine.
# This may be replaced when dependencies are built.
