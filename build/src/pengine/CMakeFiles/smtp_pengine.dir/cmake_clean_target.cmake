file(REMOVE_RECURSE
  "libsmtp_pengine.a"
)
