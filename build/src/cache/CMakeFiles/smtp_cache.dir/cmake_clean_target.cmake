file(REMOVE_RECURSE
  "libsmtp_cache.a"
)
