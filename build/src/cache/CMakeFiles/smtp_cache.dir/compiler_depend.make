# Empty compiler generated dependencies file for smtp_cache.
# This may be replaced when dependencies are built.
