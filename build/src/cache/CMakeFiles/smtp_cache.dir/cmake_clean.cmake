file(REMOVE_RECURSE
  "CMakeFiles/smtp_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/smtp_cache.dir/hierarchy.cpp.o.d"
  "libsmtp_cache.a"
  "libsmtp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
