# Empty compiler generated dependencies file for smtp_machine.
# This may be replaced when dependencies are built.
