file(REMOVE_RECURSE
  "CMakeFiles/smtp_machine.dir/machine.cpp.o"
  "CMakeFiles/smtp_machine.dir/machine.cpp.o.d"
  "libsmtp_machine.a"
  "libsmtp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
