file(REMOVE_RECURSE
  "libsmtp_machine.a"
)
