# Empty dependencies file for smtp_core.
# This may be replaced when dependencies are built.
