file(REMOVE_RECURSE
  "CMakeFiles/smtp_core.dir/protocol_thread.cpp.o"
  "CMakeFiles/smtp_core.dir/protocol_thread.cpp.o.d"
  "libsmtp_core.a"
  "libsmtp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
