file(REMOVE_RECURSE
  "libsmtp_core.a"
)
