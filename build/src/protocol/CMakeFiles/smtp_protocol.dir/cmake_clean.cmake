file(REMOVE_RECURSE
  "CMakeFiles/smtp_protocol.dir/assembler.cpp.o"
  "CMakeFiles/smtp_protocol.dir/assembler.cpp.o.d"
  "CMakeFiles/smtp_protocol.dir/executor.cpp.o"
  "CMakeFiles/smtp_protocol.dir/executor.cpp.o.d"
  "CMakeFiles/smtp_protocol.dir/handlers.cpp.o"
  "CMakeFiles/smtp_protocol.dir/handlers.cpp.o.d"
  "libsmtp_protocol.a"
  "libsmtp_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
