file(REMOVE_RECURSE
  "libsmtp_protocol.a"
)
