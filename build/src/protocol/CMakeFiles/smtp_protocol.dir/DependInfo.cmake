
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/assembler.cpp" "src/protocol/CMakeFiles/smtp_protocol.dir/assembler.cpp.o" "gcc" "src/protocol/CMakeFiles/smtp_protocol.dir/assembler.cpp.o.d"
  "/root/repo/src/protocol/executor.cpp" "src/protocol/CMakeFiles/smtp_protocol.dir/executor.cpp.o" "gcc" "src/protocol/CMakeFiles/smtp_protocol.dir/executor.cpp.o.d"
  "/root/repo/src/protocol/handlers.cpp" "src/protocol/CMakeFiles/smtp_protocol.dir/handlers.cpp.o" "gcc" "src/protocol/CMakeFiles/smtp_protocol.dir/handlers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/smtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
