# Empty dependencies file for smtp_protocol.
# This may be replaced when dependencies are built.
