file(REMOVE_RECURSE
  "CMakeFiles/smtp_mem.dir/controller.cpp.o"
  "CMakeFiles/smtp_mem.dir/controller.cpp.o.d"
  "libsmtp_mem.a"
  "libsmtp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
