file(REMOVE_RECURSE
  "libsmtp_mem.a"
)
