# Empty dependencies file for smtp_mem.
# This may be replaced when dependencies are built.
