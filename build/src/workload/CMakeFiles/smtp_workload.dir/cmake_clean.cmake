file(REMOVE_RECURSE
  "CMakeFiles/smtp_workload.dir/apps.cpp.o"
  "CMakeFiles/smtp_workload.dir/apps.cpp.o.d"
  "CMakeFiles/smtp_workload.dir/sync.cpp.o"
  "CMakeFiles/smtp_workload.dir/sync.cpp.o.d"
  "libsmtp_workload.a"
  "libsmtp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
