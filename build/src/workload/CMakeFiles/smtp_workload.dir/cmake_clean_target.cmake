file(REMOVE_RECURSE
  "libsmtp_workload.a"
)
