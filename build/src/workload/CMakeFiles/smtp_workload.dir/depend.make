# Empty dependencies file for smtp_workload.
# This may be replaced when dependencies are built.
