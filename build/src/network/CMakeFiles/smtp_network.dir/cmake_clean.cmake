file(REMOVE_RECURSE
  "CMakeFiles/smtp_network.dir/network.cpp.o"
  "CMakeFiles/smtp_network.dir/network.cpp.o.d"
  "libsmtp_network.a"
  "libsmtp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
