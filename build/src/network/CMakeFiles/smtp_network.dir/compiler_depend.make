# Empty compiler generated dependencies file for smtp_network.
# This may be replaced when dependencies are built.
