file(REMOVE_RECURSE
  "libsmtp_network.a"
)
