file(REMOVE_RECURSE
  "CMakeFiles/smtp_common.dir/log.cpp.o"
  "CMakeFiles/smtp_common.dir/log.cpp.o.d"
  "libsmtp_common.a"
  "libsmtp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
