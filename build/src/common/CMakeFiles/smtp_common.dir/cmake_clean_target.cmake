file(REMOVE_RECURSE
  "libsmtp_common.a"
)
