# Empty dependencies file for smtp_common.
# This may be replaced when dependencies are built.
