file(REMOVE_RECURSE
  "CMakeFiles/smtp_sim_kernel.dir/stats.cpp.o"
  "CMakeFiles/smtp_sim_kernel.dir/stats.cpp.o.d"
  "libsmtp_sim_kernel.a"
  "libsmtp_sim_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_sim_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
