# Empty dependencies file for smtp_sim_kernel.
# This may be replaced when dependencies are built.
