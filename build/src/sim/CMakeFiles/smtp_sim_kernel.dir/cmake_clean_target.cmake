file(REMOVE_RECURSE
  "libsmtp_sim_kernel.a"
)
