# Empty compiler generated dependencies file for bench_ablation_pcache.
# This may be replaced when dependencies are built.
