file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcache.dir/bench_ablation_pcache.cpp.o"
  "CMakeFiles/bench_ablation_pcache.dir/bench_ablation_pcache.cpp.o.d"
  "bench_ablation_pcache"
  "bench_ablation_pcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
