file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_las.dir/bench_ablation_las.cpp.o"
  "CMakeFiles/bench_ablation_las.dir/bench_ablation_las.cpp.o.d"
  "bench_ablation_las"
  "bench_ablation_las.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_las.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
