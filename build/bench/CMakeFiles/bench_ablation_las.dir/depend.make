# Empty dependencies file for bench_ablation_las.
# This may be replaced when dependencies are built.
