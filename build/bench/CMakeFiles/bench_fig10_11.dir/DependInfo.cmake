
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig10_11.cpp" "bench/CMakeFiles/bench_fig10_11.dir/bench_fig10_11.cpp.o" "gcc" "bench/CMakeFiles/bench_fig10_11.dir/bench_fig10_11.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/smtp_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/smtp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pengine/CMakeFiles/smtp_pengine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/smtp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smtp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/smtp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/smtp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smtp_sim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/smtp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
