file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_9.dir/bench_table8_9.cpp.o"
  "CMakeFiles/bench_table8_9.dir/bench_table8_9.cpp.o.d"
  "bench_table8_9"
  "bench_table8_9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
