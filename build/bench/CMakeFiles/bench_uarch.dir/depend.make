# Empty dependencies file for bench_uarch.
# This may be replaced when dependencies are built.
