file(REMOVE_RECURSE
  "CMakeFiles/bench_uarch.dir/bench_uarch.cpp.o"
  "CMakeFiles/bench_uarch.dir/bench_uarch.cpp.o.d"
  "bench_uarch"
  "bench_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
