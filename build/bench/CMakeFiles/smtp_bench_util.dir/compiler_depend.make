# Empty compiler generated dependencies file for smtp_bench_util.
# This may be replaced when dependencies are built.
