file(REMOVE_RECURSE
  "CMakeFiles/smtp_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/smtp_bench_util.dir/bench_util.cpp.o.d"
  "libsmtp_bench_util.a"
  "libsmtp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
