file(REMOVE_RECURSE
  "libsmtp_bench_util.a"
)
