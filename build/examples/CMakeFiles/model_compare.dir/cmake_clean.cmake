file(REMOVE_RECURSE
  "CMakeFiles/model_compare.dir/model_compare.cpp.o"
  "CMakeFiles/model_compare.dir/model_compare.cpp.o.d"
  "model_compare"
  "model_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
