# Empty dependencies file for model_compare.
# This may be replaced when dependencies are built.
