file(REMOVE_RECURSE
  "CMakeFiles/smtp_tests.dir/test_cache.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_cache.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_common.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_cpu.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_cpu.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_handler_transitions.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_handler_transitions.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_machine.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_machine.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_model_shapes.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_model_shapes.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_network.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_network.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_pengine.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_pengine.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_protocol_isa.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_protocol_isa.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_protocol_system.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_protocol_system.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_sim.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_smtp_core.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_smtp_core.cpp.o.d"
  "CMakeFiles/smtp_tests.dir/test_workload.cpp.o"
  "CMakeFiles/smtp_tests.dir/test_workload.cpp.o.d"
  "smtp_tests"
  "smtp_tests.pdb"
  "smtp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
