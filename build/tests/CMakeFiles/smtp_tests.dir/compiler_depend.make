# Empty compiler generated dependencies file for smtp_tests.
# This may be replaced when dependencies are built.
