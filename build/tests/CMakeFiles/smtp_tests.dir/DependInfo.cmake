
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/smtp_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/smtp_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/smtp_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_handler_transitions.cpp" "tests/CMakeFiles/smtp_tests.dir/test_handler_transitions.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_handler_transitions.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/smtp_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_model_shapes.cpp" "tests/CMakeFiles/smtp_tests.dir/test_model_shapes.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_model_shapes.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/smtp_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_pengine.cpp" "tests/CMakeFiles/smtp_tests.dir/test_pengine.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_pengine.cpp.o.d"
  "/root/repo/tests/test_protocol_isa.cpp" "tests/CMakeFiles/smtp_tests.dir/test_protocol_isa.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_protocol_isa.cpp.o.d"
  "/root/repo/tests/test_protocol_system.cpp" "tests/CMakeFiles/smtp_tests.dir/test_protocol_system.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_protocol_system.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/smtp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_smtp_core.cpp" "tests/CMakeFiles/smtp_tests.dir/test_smtp_core.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_smtp_core.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/smtp_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/smtp_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/smtp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/smtp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/smtp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/smtp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pengine/CMakeFiles/smtp_pengine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/smtp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/smtp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/smtp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/smtp_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/smtp_sim_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/smtp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
