/**
 * @file
 * Unit tests for the simulation kernel: event ordering, clock domains,
 * and the stats primitives.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"

namespace smtp
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBeatsInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, EventQueue::prioLate);
    eq.schedule(5, [&] { order.push_back(2); }, EventQueue::prioDefault);
    eq.schedule(5, [&] { order.push_back(3); }, EventQueue::prioEarly);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.nextTick(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(ClockDomain, PaperFrequencies)
{
    ClockDomain cpu2(2000);
    EXPECT_EQ(cpu2.period(), 500u); // 2 GHz -> 500 ps
    ClockDomain cpu4(4000);
    EXPECT_EQ(cpu4.period(), 250u);
    ClockDomain mc(400);
    EXPECT_EQ(mc.period(), 2500u); // 400 MHz
    ClockDomain half(1000);
    EXPECT_EQ(half.period(), 1000u);
}

TEST(ClockDomain, EdgeComputation)
{
    ClockDomain c(2000); // 500 ps
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 500u);
    EXPECT_EQ(c.nextEdge(500), 500u);
    EXPECT_EQ(c.edgeAfter(0), 500u);
    EXPECT_EQ(c.edgeAfter(499), 500u);
    EXPECT_EQ(c.edgeAfter(500), 1000u);
    EXPECT_EQ(c.cyclesToTicks(7), 3500u);
    EXPECT_EQ(c.ticksToCycles(3500), 7u);
}

TEST(Stats, CounterAndDistribution)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_EQ(d.samples(), 3u);
    d.sample(10.0, 2);
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 32.0 / 5.0);
}

TEST(Stats, PeakTracker)
{
    PeakTracker p;
    EXPECT_EQ(p.peak(), 0u);
    p.observe(3);
    p.observe(7);
    p.observe(5);
    EXPECT_EQ(p.peak(), 7u);
}

TEST(Stats, DistributionHistogramPercentiles)
{
    Distribution d;
    EXPECT_FALSE(d.histogramEnabled());
    EXPECT_EQ(d.percentile(50.0), 0.0); // no histogram attached

    d.enableHistogram(0.0, 100.0, 10);
    EXPECT_TRUE(d.histogramEnabled());
    EXPECT_EQ(d.percentile(50.0), 0.0); // no samples yet

    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i) - 0.5); // 10 per bucket
    EXPECT_EQ(d.samples(), 100u);
    // p50 lands exactly on the 50th sample = last of bucket [40,50).
    EXPECT_DOUBLE_EQ(d.percentile(50.0), 50.0);
    // Last bucket's edge (100) clamps to the observed max of 99.5.
    EXPECT_DOUBLE_EQ(d.percentile(95.0), 99.5);
    EXPECT_DOUBLE_EQ(d.percentile(99.0), 99.5);
    // Conservative: the estimate is the bucket's upper edge.
    EXPECT_DOUBLE_EQ(d.percentile(41.0), 50.0);
    // p0 still resolves to the first non-empty bucket's edge.
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 10.0);

    // Boundary: values at lo land in the first bucket, values at hi in
    // the overflow bucket; overflow percentiles clamp to max().
    Distribution e;
    e.enableHistogram(0.0, 10.0, 10);
    e.sample(0.0);
    e.sample(10.0);
    e.sample(25.0);
    ASSERT_EQ(e.histogram().size(), 12u);
    EXPECT_EQ(e.histogram().front(), 0u);  // underflow empty
    EXPECT_EQ(e.histogram()[1], 1u);       // [0,1) holds the 0.0
    EXPECT_EQ(e.histogram().back(), 2u);   // 10.0 and 25.0 overflow
    EXPECT_DOUBLE_EQ(e.percentile(99.0), 25.0);

    // Underflow resolves to min().
    Distribution u;
    u.enableHistogram(10.0, 20.0, 5);
    u.sample(-3.0);
    EXPECT_EQ(u.histogram().front(), 1u);
    EXPECT_DOUBLE_EQ(u.percentile(50.0), -3.0);

    // reset() clears counts but keeps the bucket configuration.
    e.reset();
    EXPECT_TRUE(e.histogramEnabled());
    EXPECT_EQ(e.samples(), 0u);
    e.sample(5.0);
    EXPECT_EQ(e.histogram()[6], 1u); // [5,6)
}

TEST(Stats, PercentileClampsOnThinSamples)
{
    // A tail percentile of a thin sample must resolve to the last
    // occupied bucket, never run off the histogram or report an empty
    // edge beyond the observed max — p99 of 10 requests is a real
    // latency, not a bucket boundary no request ever hit.
    Distribution d;
    d.enableHistogram(0.0, 100.0, 10);
    for (int i = 0; i < 10; ++i)
        d.sample(static_cast<double>(i) * 10.0 + 5.0); // one per bucket
    EXPECT_DOUBLE_EQ(d.percentile(99.0), d.max());
    EXPECT_DOUBLE_EQ(d.percentile(99.0), 95.0);
    EXPECT_DOUBLE_EQ(d.percentile(100.0), 95.0);

    // Out-of-range p clamps to [0, 100] instead of misbehaving.
    EXPECT_DOUBLE_EQ(d.percentile(250.0), d.percentile(100.0));
    EXPECT_DOUBLE_EQ(d.percentile(-5.0), d.percentile(0.0));

    // The degenerate single-sample case: every percentile is that one
    // observation (clamped into [min, max] == the sample itself).
    Distribution one;
    one.enableHistogram(0.0, 100.0, 10);
    one.sample(42.0);
    EXPECT_DOUBLE_EQ(one.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(99.0), 42.0);
}

TEST(Stats, GroupDumpSortedByName)
{
    StatGroup g("grp");
    Counter zeta, alpha;
    Distribution midDist;
    PeakTracker beta;
    zeta += 1;
    alpha += 2;
    g.add("zeta", &zeta);
    g.add("alpha", &alpha);
    g.add("mid", &midDist);
    g.add("beta", &beta);
    StatGroup childB("node1"), childA("node0");
    g.addChild(&childB);
    g.addChild(&childA);
    std::ostringstream os;
    g.dump(os);
    auto text = os.str();
    // Registration order was zeta, alpha — the dump must be sorted.
    EXPECT_LT(text.find("alpha"), text.find("zeta"));
    EXPECT_LT(text.find("node0"), text.find("node1"));
    // Kinds keep their sections (counters, dists, peaks), each sorted.
    EXPECT_LT(text.find("zeta"), text.find("mid"));
    EXPECT_LT(text.find("mid"), text.find("beta"));
}

TEST(Stats, GroupDumpIsHierarchical)
{
    StatGroup root("machine");
    StatGroup child("node0");
    Counter c;
    c += 3;
    root.addChild(&child);
    child.add("misses", &c);
    std::ostringstream os;
    root.dump(os);
    auto text = os.str();
    EXPECT_NE(text.find("machine"), std::string::npos);
    EXPECT_NE(text.find("node0"), std::string::npos);
    EXPECT_NE(text.find("misses = 3"), std::string::npos);
}

// ------------------------------------------------------ InlineCallback

TEST(InlineCallback, EmptyAndBool)
{
    InlineCallback cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    cb = [] {};
    EXPECT_TRUE(static_cast<bool>(cb));
    cb = InlineCallback();
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallback, SmallCapturesStayInline)
{
    // The capture shapes the schedulers actually use must stay on the
    // no-allocation fast path.
    int x = 0;
    auto by_ref = [&x] { ++x; };
    auto three_ptrs = [p1 = &x, p2 = &x, p3 = &x] { ++*p1; };
    auto ptr_and_ints =
        [p = &x, a = std::uint64_t{1}, b = std::uint64_t{2},
         c = std::uint64_t{3}] { *p += static_cast<int>(a + b + c); };
    static_assert(InlineCallback::storesInline<decltype(by_ref)>);
    static_assert(InlineCallback::storesInline<decltype(three_ptrs)>);
    static_assert(InlineCallback::storesInline<decltype(ptr_and_ints)>);

    InlineCallback cb(by_ref);
    cb();
    EXPECT_EQ(x, 1);
    InlineCallback copy = cb;
    copy();
    EXPECT_EQ(x, 2);
    InlineCallback moved = std::move(copy);
    moved();
    EXPECT_EQ(x, 3);
}

TEST(InlineCallback, LargeCapturesFallBackToHeap)
{
    std::array<std::uint64_t, 16> big{};
    big[15] = 7;
    int sink = 0;
    auto fat = [big, &sink] { sink += static_cast<int>(big[15]); };
    static_assert(!InlineCallback::storesInline<decltype(fat)>);

    InlineCallback cb(fat);
    cb();
    EXPECT_EQ(sink, 7);
    InlineCallback copy = cb; // Deep copy: both remain invocable.
    InlineCallback moved = std::move(cb);
    copy();
    moved();
    EXPECT_EQ(sink, 21);
}

TEST(InlineCallback, HoldsStdFunctionTransparently)
{
    int hits = 0;
    std::function<void()> fn = [&hits] { ++hits; };
    InlineCallback cb(fn);
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

// ----------------------------------------- cross-kernel determinism

/**
 * Drive one kernel through a deterministic pseudo-random schedule mixing
 * near/far deltas, same-tick bursts, all three priorities, and events
 * scheduling events, and record the exact execution trace.
 */
std::vector<std::pair<int, Tick>>
traceKernel(EventQueue::Kernel kernel)
{
    EventQueue eq(kernel);
    std::vector<std::pair<int, Tick>> trace;
    std::mt19937_64 rng(0xC0FFEE);
    int next_id = 0;

    auto record = [&trace, &eq](int id) { trace.emplace_back(id, eq.curTick()); };

    constexpr EventQueue::Priority prios[] = {
        EventQueue::prioEarly, EventQueue::prioDefault,
        EventQueue::prioLate};

    for (int round = 0; round < 200; ++round) {
        // A burst of same-tick events at mixed priorities.
        Tick burst = eq.curTick() + rng() % 64;
        for (int i = 0; i < 4; ++i) {
            int id = next_id++;
            eq.schedule(burst, [id, record] { record(id); },
                        prios[rng() % 3]);
        }
        // Near events (inside the wheel horizon) ...
        for (int i = 0; i < 8; ++i) {
            int id = next_id++;
            Tick d = rng() % 5000;
            int chain = next_id++;
            eq.scheduleIn(d, [id, chain, d, record, &eq] {
                record(id);
                // ... that schedule follow-ups themselves.
                eq.scheduleIn(d / 2 + 1,
                              [chain, record] { record(chain); });
            });
        }
        // Far events, well past the 1024 * 512-tick wheel span.
        for (int i = 0; i < 2; ++i) {
            int id = next_id++;
            eq.scheduleIn((1u << 20) + rng() % (1u << 22),
                          [id, record] { record(id); },
                          prios[rng() % 3]);
        }
        // Drain a bounded stretch so scheduling interleaves with
        // execution (exercising cursor advance + migration).
        eq.run(eq.curTick() + 10000);
    }
    eq.run();
    return trace;
}

TEST(EventQueueKernels, WheelMatchesHeapBitForBit)
{
    auto heap = traceKernel(EventQueue::Kernel::Heap);
    auto wheel = traceKernel(EventQueue::Kernel::Wheel);
    ASSERT_EQ(heap.size(), wheel.size());
    for (std::size_t i = 0; i < heap.size(); ++i) {
        EXPECT_EQ(heap[i], wheel[i]) << "divergence at event " << i;
    }
}

TEST(EventQueueKernels, ScheduleBehindAdvancedCursor)
{
    // run(limit) advances curTick past empty stretches; an event then
    // scheduled near curTick can land behind the wheel cursor and must
    // still run before later wheel-resident events.
    for (auto kernel :
         {EventQueue::Kernel::Wheel, EventQueue::Kernel::Heap}) {
        EventQueue eq(kernel);
        std::vector<int> order;
        eq.run(100000);
        EXPECT_EQ(eq.curTick(), 100000u);
        eq.schedule(100001, [&order] { order.push_back(1); });
        eq.schedule(100002, [&order] { order.push_back(2); });
        eq.schedule(200000, [&order] { order.push_back(3); });
        eq.run();
        EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    }
}

TEST(EventQueueKernels, NextTickAgreesAcrossKernels)
{
    EventQueue heap(EventQueue::Kernel::Heap);
    EventQueue wheel(EventQueue::Kernel::Wheel);
    for (EventQueue *eq : {&heap, &wheel}) {
        eq->schedule(700, [] {});
        eq->schedule(50, [] {});
        eq->schedule(1u << 24, [] {});
    }
    EXPECT_EQ(heap.nextTick(), 50u);
    EXPECT_EQ(wheel.nextTick(), 50u);
    heap.run(60);
    wheel.run(60);
    EXPECT_EQ(heap.nextTick(), 700u);
    EXPECT_EQ(wheel.nextTick(), 700u);
    heap.run(1000);
    wheel.run(1000);
    EXPECT_EQ(heap.nextTick(), Tick{1} << 24);
    EXPECT_EQ(wheel.nextTick(), Tick{1} << 24);
    heap.run();
    wheel.run();
    EXPECT_EQ(heap.nextTick(), maxTick);
    EXPECT_EQ(wheel.nextTick(), maxTick);
    EXPECT_EQ(heap.executedCount(), wheel.executedCount());
}


} // namespace
} // namespace smtp
