/**
 * @file
 * Unit tests for the simulation kernel: event ordering, clock domains,
 * and the stats primitives.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"

namespace smtp
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityBeatsInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(1); }, EventQueue::prioLate);
    eq.schedule(5, [&] { order.push_back(2); }, EventQueue::prioDefault);
    eq.schedule(5, [&] { order.push_back(3); }, EventQueue::prioEarly);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.nextTick(), 100u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(ClockDomain, PaperFrequencies)
{
    ClockDomain cpu2(2000);
    EXPECT_EQ(cpu2.period(), 500u); // 2 GHz -> 500 ps
    ClockDomain cpu4(4000);
    EXPECT_EQ(cpu4.period(), 250u);
    ClockDomain mc(400);
    EXPECT_EQ(mc.period(), 2500u); // 400 MHz
    ClockDomain half(1000);
    EXPECT_EQ(half.period(), 1000u);
}

TEST(ClockDomain, EdgeComputation)
{
    ClockDomain c(2000); // 500 ps
    EXPECT_EQ(c.nextEdge(0), 0u);
    EXPECT_EQ(c.nextEdge(1), 500u);
    EXPECT_EQ(c.nextEdge(500), 500u);
    EXPECT_EQ(c.edgeAfter(0), 500u);
    EXPECT_EQ(c.edgeAfter(499), 500u);
    EXPECT_EQ(c.edgeAfter(500), 1000u);
    EXPECT_EQ(c.cyclesToTicks(7), 3500u);
    EXPECT_EQ(c.ticksToCycles(3500), 7u);
}

TEST(Stats, CounterAndDistribution)
{
    Counter c;
    ++c;
    c += 4;
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_EQ(d.samples(), 3u);
    d.sample(10.0, 2);
    EXPECT_EQ(d.samples(), 5u);
    EXPECT_DOUBLE_EQ(d.mean(), 32.0 / 5.0);
}

TEST(Stats, PeakTracker)
{
    PeakTracker p;
    EXPECT_EQ(p.peak(), 0u);
    p.observe(3);
    p.observe(7);
    p.observe(5);
    EXPECT_EQ(p.peak(), 7u);
}

TEST(Stats, GroupDumpIsHierarchical)
{
    StatGroup root("machine");
    StatGroup child("node0");
    Counter c;
    c += 3;
    root.addChild(&child);
    child.add("misses", &c);
    std::ostringstream os;
    root.dump(os);
    auto text = os.str();
    EXPECT_NE(text.find("machine"), std::string::npos);
    EXPECT_NE(text.find("node0"), std::string::npos);
    EXPECT_NE(text.find("misses = 3"), std::string::npos);
}

} // namespace
} // namespace smtp
