/**
 * @file
 * Cross-shard mailbox plumbing: the lock-free SPSC ring, the Mailbox
 * growth (spill) layer on top of it, and the ShardSet barrier drain's
 * deterministic delivery order. These are the primitives the parallel
 * kernel's bit-identity contract rests on (docs/parallelism.md).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/shard.hpp"
#include "sim/spsc.hpp"

namespace smtp
{
namespace
{

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
    EXPECT_EQ(SpscRing<int>(300).capacity(), 512u);
}

TEST(SpscRing, FifoAndBackpressure)
{
    SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99)) << "full ring must report back-pressure";
    EXPECT_EQ(ring.size(), 4u);
    int v = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAroundManyTimes)
{
    // Push/pop far past the capacity so head/tail wrap the index mask
    // repeatedly; FIFO order must survive every wrap.
    SpscRing<int> ring(8);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (ring.tryPush(next_in))
            ++next_in;
        int v;
        while (ring.tryPop(v)) {
            EXPECT_EQ(v, next_out);
            ++next_out;
        }
    }
    EXPECT_EQ(next_in, next_out);
    EXPECT_GT(next_out, 700) << "must have cycled the ring many times";
}

TEST(SpscRing, ConcurrentProducerConsumer)
{
    // One producer, one consumer, no locks: every value arrives exactly
    // once, in order. (Run under TSan in CI this also proves the
    // acquire/release protocol.)
    SpscRing<std::uint64_t> ring(64);
    constexpr std::uint64_t kCount = 200000;
    std::thread producer([&] {
        for (std::uint64_t i = 0; i < kCount;) {
            if (ring.tryPush(i))
                ++i;
            else
                std::this_thread::yield();
        }
    });
    std::uint64_t expect = 0;
    while (expect < kCount) {
        std::uint64_t v;
        if (ring.tryPop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(ring.empty());
}

CrossEvent
ev(Tick due, Tick send_tick, std::uint64_t seq)
{
    CrossEvent e;
    e.due = due;
    e.sendTick = send_tick;
    e.srcSeq = seq;
    e.cb = [] {};
    return e;
}

TEST(Mailbox, SpillGrowthKeepsFifoOrder)
{
    // Push well past the 256-entry ring: overflow diverts to the spill
    // vector, and a drain must replay ring-then-spill — exactly push
    // order, because the consumer only drains between windows.
    Mailbox box;
    constexpr unsigned kTotal = 700;
    for (unsigned i = 0; i < kTotal; ++i)
        box.push(ev(i, i, i));
    EXPECT_EQ(box.size(), kTotal);
    EXPECT_GT(box.spills(), 0u) << "must have overflowed the ring";
    EXPECT_EQ(box.spills(), kTotal - 256);

    std::vector<Tick> seen;
    box.drain([&](CrossEvent e) { seen.push_back(e.due); });
    ASSERT_EQ(seen.size(), kTotal);
    for (unsigned i = 0; i < kTotal; ++i)
        EXPECT_EQ(seen[i], i);
    EXPECT_TRUE(box.empty());
    EXPECT_EQ(box.spills(), kTotal - 256)
        << "spill counter is cumulative telemetry, not occupancy";
}

TEST(Mailbox, ForEachInspectsWithoutConsuming)
{
    Mailbox box;
    for (unsigned i = 0; i < 300; ++i)
        box.push(ev(i, i, i));
    unsigned count = 0;
    Tick expect = 0;
    box.forEach([&](const CrossEvent &e) {
        EXPECT_EQ(e.due, expect++);
        ++count;
    });
    EXPECT_EQ(count, 300u);
    EXPECT_EQ(box.size(), 300u) << "forEach must not consume";
}

TEST(ShardSet, LocalAndBarrierSchedulingBypassMailboxes)
{
    ShardSet set(EventQueue::Kernel::Wheel, 2);
    int ran = 0;
    // Barrier phase (no bound shard): direct scheduling.
    set.schedule(1, 10, [&] { ++ran; });
    EXPECT_TRUE(set.mailboxesEmpty());
    // Same-shard scheduling from a bound context: also direct.
    ShardSet::setCurrent(&set, 0);
    set.schedule(0, 10, [&] { ++ran; });
    ShardSet::setCurrent(nullptr, ShardSet::noShard);
    EXPECT_TRUE(set.mailboxesEmpty());
    set.queue(0).run(10);
    set.queue(1).run(10);
    EXPECT_EQ(ran, 2);
}

TEST(ShardSet, CrossShardDrainOrderIsDeterministic)
{
    // Two producer shards post to shard 2 in interleaved order; the
    // barrier drain must deliver sorted by (due, sendTick, src, seq),
    // independent of push interleaving — that ordering is what makes
    // destination-queue sequence numbers host-thread invariant.
    ShardSet set(EventQueue::Kernel::Heap, 3);
    std::vector<int> order;
    auto post = [&](unsigned src, Tick due, int tag) {
        ShardSet::setCurrent(&set, src);
        set.schedule(2, due, [&order, tag] { order.push_back(tag); });
        ShardSet::setCurrent(nullptr, ShardSet::noShard);
    };
    post(1, 200, 3); // later due
    post(0, 100, 1); // same due as next, lower src wins
    post(1, 100, 2);
    post(0, 300, 4);
    EXPECT_FALSE(set.mailboxesEmpty());
    EXPECT_EQ(set.minPendingTick(), maxTick)
        << "mailboxed events are not pending queue events yet";
    set.drainMailboxes();
    EXPECT_TRUE(set.mailboxesEmpty());
    EXPECT_EQ(set.minPendingTick(), 100u);
    set.queue(2).run(300);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ShardSet, SingleShardWrapperDegeneratesToPlainQueue)
{
    EventQueue eq(EventQueue::Kernel::Wheel);
    ShardSet set(eq);
    EXPECT_EQ(set.count(), 1u);
    int ran = 0;
    ShardSet::setCurrent(&set, 0);
    set.schedule(0, 5, [&] { ++ran; });
    ShardSet::setCurrent(nullptr, ShardSet::noShard);
    EXPECT_TRUE(set.mailboxesEmpty());
    eq.run(5);
    EXPECT_EQ(ran, 1);
}

} // namespace
} // namespace smtp
