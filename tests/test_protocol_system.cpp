/**
 * @file
 * End-to-end coherence protocol tests on complete multi-node machines:
 * every stable-state transition, the three-hop intervention paths,
 * invalidation/ack collection, upgrades, writebacks, NAK/retry, and a
 * seeded randomized stress test that checks the global SWMR and
 * directory-consistency invariants after quiescence.
 */

#include <gtest/gtest.h>

#include "proto_harness.hpp"

#include "common/rng.hpp"

namespace smtp::testing
{
namespace
{

using proto::DirState;
using proto::MsgType;

class ProtoSystemTest : public ::testing::Test
{
  protected:
    ProtoMachine m;

    int completions = 0;

    std::function<void()>
    counter()
    {
        return [this] { ++completions; };
    }
};

TEST_F(ProtoSystemTest, LocalReadMissGetsEagerExclusive)
{
    Addr a = m.addrAt(0);
    m.issue(0, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(m.nodes[0]->cache->l2State(a), LineState::Ex);
    auto e = m.dirEntryOf(a);
    EXPECT_EQ(m.fmt.state(e), proto::dirExclusive);
    EXPECT_EQ(m.fmt.owner(e), 0);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, RemoteReadMiss)
{
    Addr a = m.addrAt(0); // homed at node 0
    m.issue(1, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Ex) << "eager";
    auto e = m.dirEntryOf(a);
    EXPECT_EQ(m.fmt.state(e), proto::dirExclusive);
    EXPECT_EQ(m.fmt.owner(e), 1);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, SecondReaderTriggersSharingIntervention)
{
    Addr a = m.addrAt(0);
    m.issue(1, MemCmd::Load, a, counter());
    m.settle();
    m.issue(2, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Sh);
    EXPECT_EQ(m.nodes[2]->cache->l2State(a), LineState::Sh);
    auto e = m.dirEntryOf(a);
    EXPECT_EQ(m.fmt.state(e), proto::dirShared);
    EXPECT_EQ(m.fmt.vector(e), (1u << 1) | (1u << 2));
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, DirtyRemoteReadForwardsThreeHop)
{
    Addr a = m.addrAt(0);
    m.issue(1, MemCmd::Store, a, counter());
    m.settle();
    ASSERT_EQ(m.nodes[1]->cache->l2State(a), LineState::Mod);

    m.issue(2, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Sh)
        << "owner downgraded by the sharing intervention";
    EXPECT_EQ(m.nodes[2]->cache->l2State(a), LineState::Sh);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, WriteInvalidatesAllSharers)
{
    Addr a = m.addrAt(3);
    for (NodeId n = 0; n < 3; ++n)
        m.issue(n, MemCmd::Load, a, counter());
    m.settle();
    // Make sure they are all genuine sharers (eager-exclusive resolves
    // through interventions on the 2nd/3rd read).
    m.issue(3, MemCmd::Store, a, counter());
    m.settle();
    EXPECT_EQ(completions, 4);
    EXPECT_EQ(m.nodes[3]->cache->l2State(a), LineState::Mod);
    for (NodeId n = 0; n < 3; ++n)
        EXPECT_EQ(m.nodes[n]->cache->l2State(a), LineState::Inv)
            << "sharer " << unsigned(n) << " survived invalidation";
    auto e = m.dirEntryOf(a);
    EXPECT_EQ(m.fmt.state(e), proto::dirExclusive);
    EXPECT_EQ(m.fmt.owner(e), 3);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, StoreOnSharedLineUpgrades)
{
    Addr a = m.addrAt(0);
    m.issue(1, MemCmd::Load, a, counter());
    m.settle();
    m.issue(2, MemCmd::Load, a, counter());
    m.settle();
    ASSERT_EQ(m.nodes[1]->cache->l2State(a), LineState::Sh);

    auto upgrades_before = m.nodes[1]->cache->upgradesIssued.value();
    m.issue(1, MemCmd::Store, a, counter());
    m.settle();
    EXPECT_EQ(m.nodes[1]->cache->upgradesIssued.value(),
              upgrades_before + 1);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Mod);
    EXPECT_EQ(m.nodes[2]->cache->l2State(a), LineState::Inv);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, WriteMigration)
{
    Addr a = m.addrAt(2);
    m.issue(0, MemCmd::Store, a, counter());
    m.settle();
    m.issue(1, MemCmd::Store, a, counter());
    m.settle();
    m.issue(3, MemCmd::Store, a, counter());
    m.settle();
    EXPECT_EQ(completions, 3);
    EXPECT_EQ(m.nodes[0]->cache->l2State(a), LineState::Inv);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Inv);
    EXPECT_EQ(m.nodes[3]->cache->l2State(a), LineState::Mod);
    auto e = m.dirEntryOf(a);
    EXPECT_EQ(m.fmt.owner(e), 3);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, DirtyEvictionWritesBackToRemoteHome)
{
    // Node 1 dirties lines homed at node 0 until one is evicted.
    // L2 = 16 KB, 16 sets: lines 2 KB apart collide in a set.
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 9; ++i)
        addrs.push_back(m.addrAt(0, 0, 0) + i * 16 * 128);
    // Keep within the placed page (4 KB): use two pages instead.
    addrs.clear();
    for (unsigned i = 0; i < 9; ++i) {
        unsigned page = i % 2;
        addrs.push_back(m.addrAt(0, page) + (i / 2) * 16 * 128 +
                        (i % 2) * 0); // every other line same set anyway
    }
    // Simpler: 9 lines, alternating between two pages homed at node 0,
    // all mapping to L2 set 0 (offset multiple of 2 KB within page).
    addrs.clear();
    for (unsigned i = 0; i < 9; ++i)
        addrs.push_back(m.addrAt(0, i % 2) + (i / 2) * 2048);

    for (auto a : addrs) {
        m.issue(1, MemCmd::Store, a, counter());
        m.settle();
    }
    // At least one line must have been written back: its directory
    // state returns to Unowned and node 1 no longer holds it.
    unsigned unowned = 0;
    for (auto a : addrs) {
        auto e = m.dirEntryOf(a);
        if (m.fmt.state(e) == proto::dirUnowned) {
            ++unowned;
            EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Inv);
        }
        m.checkLineInvariants(a);
    }
    EXPECT_GE(unowned, 1u);
    EXPECT_GE(m.nodes[1]->cache->writebacksDirty.value(), 1u);
}

TEST_F(ProtoSystemTest, EvictedLineCanBeReacquired)
{
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 9; ++i)
        addrs.push_back(m.addrAt(0, i % 2) + (i / 2) * 2048);
    for (auto a : addrs) {
        m.issue(1, MemCmd::Store, a, counter());
        m.settle();
    }
    // Re-acquire everything; Put-before-Get ordering must hold.
    completions = 0;
    for (auto a : addrs) {
        m.issue(1, MemCmd::Load, a, counter());
        m.settle();
    }
    EXPECT_EQ(completions, 9);
    for (auto a : addrs)
        m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, ConcurrentWritersRaceThroughNakAndIntervention)
{
    Addr a = m.addrAt(0);
    // Three nodes store concurrently; NAKs, interventions and retries
    // sort out a single final owner.
    for (NodeId n = 1; n < 4; ++n)
        m.issue(n, MemCmd::Store, a, counter());
    m.settle();
    EXPECT_EQ(completions, 3);
    unsigned writers = 0;
    for (auto &node : m.nodes)
        writers += node->cache->l2State(a) == LineState::Mod;
    EXPECT_EQ(writers, 1u);
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, ConcurrentReadersAllGetTheLine)
{
    Addr a = m.addrAt(1);
    for (NodeId n = 0; n < 4; ++n)
        m.issue(n, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 4);
    for (auto &node : m.nodes) {
        auto st = node->cache->l2State(a);
        EXPECT_TRUE(st == LineState::Sh || st == LineState::Ex)
            << "every reader must end with a readable copy";
    }
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, PrefetchExclusiveBringsOwnership)
{
    Addr a = m.addrAt(0);
    m.issue(1, MemCmd::PrefetchEx, a, counter());
    m.settle();
    EXPECT_TRUE(writable(m.nodes[1]->cache->l2State(a)));
    m.checkLineInvariants(a);
}

TEST_F(ProtoSystemTest, ReadWriteReadMigratesCleanly)
{
    Addr a = m.addrAt(2);
    m.issue(0, MemCmd::Load, a, counter());
    m.settle();
    m.issue(1, MemCmd::Store, a, counter());
    m.settle();
    m.issue(0, MemCmd::Load, a, counter());
    m.settle();
    EXPECT_EQ(completions, 3);
    EXPECT_EQ(m.nodes[1]->cache->l2State(a), LineState::Sh);
    EXPECT_EQ(m.nodes[0]->cache->l2State(a), LineState::Sh);
    m.checkLineInvariants(a);
}

// ----------------------------------------------------------- stress

struct StressCase
{
    unsigned nodes;
    unsigned seed;
    unsigned ops;
};

class ProtoStressTest : public ::testing::TestWithParam<StressCase>
{
};

TEST_P(ProtoStressTest, RandomTrafficKeepsInvariants)
{
    auto param = GetParam();
    ProtoMachine::Options opt;
    opt.nodes = param.nodes;
    ProtoMachine m(opt);
    Rng rng(param.seed);

    // A small hot pool of lines spread across all homes maximises
    // conflict (interventions, NAKs, races).
    std::vector<Addr> pool;
    for (NodeId h = 0; h < param.nodes; ++h) {
        for (unsigned l = 0; l < 4; ++l)
            pool.push_back(m.addrAt(h, 0) + l * l2LineBytes);
    }
    // Plus lines that collide in the small L2 to force writebacks.
    for (unsigned i = 0; i < 6; ++i)
        pool.push_back(m.addrAt(0, i % 2) + (i / 2) * 2048);

    unsigned completed = 0;
    unsigned launched = 0;

    // Each node keeps up to 3 operations in flight.
    struct Driver
    {
        unsigned inflight = 0;
        unsigned remaining;
    };
    std::vector<Driver> drivers(param.nodes);
    for (auto &d : drivers)
        d.remaining = param.ops;

    std::function<void(NodeId)> pump = [&](NodeId n) {
        auto &d = drivers[n];
        while (d.remaining > 0 && d.inflight < 3) {
            --d.remaining;
            ++d.inflight;
            ++launched;
            Addr a = pool[rng.below(pool.size())];
            MemCmd cmd = rng.chance(0.4) ? MemCmd::Store : MemCmd::Load;
            if (rng.chance(0.05))
                cmd = MemCmd::Prefetch;
            // Jitter the issue time to diversify interleavings.
            Tick delay = rng.below(2000) * 500;
            m.eq.scheduleIn(delay, [&m, &pump, n, cmd, a, &completed,
                                    &drivers] {
                m.issue(n, cmd, a, [&, n] {
                    ++completed;
                    --drivers[n].inflight;
                    pump(n);
                });
            });
        }
    };
    for (NodeId n = 0; n < param.nodes; ++n)
        pump(n);

    m.eq.run(m.eq.curTick() + 100000 * tickPerUs);
    ASSERT_TRUE(m.quiescent()) << "stress wedged (protocol deadlock?)";
    EXPECT_EQ(completed, launched);

    for (auto a : pool)
        m.checkLineInvariants(a);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ProtoStressTest,
    ::testing::Values(StressCase{2, 1, 150}, StressCase{4, 2, 150},
                      StressCase{4, 3, 150}, StressCase{8, 4, 120},
                      StressCase{8, 5, 120}, StressCase{16, 6, 80},
                      StressCase{4, 7, 300}, StressCase{32, 8, 40}));

} // namespace
} // namespace smtp::testing
