/**
 * @file
 * Tests for the coherence invariant checker + watchdog (src/check) and
 * the bugfix sweep that came with it: DirFormat::owner on an empty
 * vector, Distribution zero-weight samples, invalidation-ack field
 * masking at maximum fan-out, directory bit-field round-trips at
 * boundary values, the lost-upgrade ownership-release path, and the
 * checker catching a deliberately injected protocol bug.
 */

#include <gtest/gtest.h>

#include "check/checker.hpp"
#include "proto_harness.hpp"
#include "protocol/directory.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"
#include "sim/stats.hpp"

namespace smtp
{
namespace
{

using proto::DirFormat;
using proto::Message;
using proto::MsgType;
using testing::ProtoMachine;

// ------------------------------------------------- satellite bugfixes

TEST(StatsDistribution, ZeroWeightSampleIsIgnored)
{
    Distribution d;
    d.sample(10.0);
    d.sample(20.0);
    // A zero-weight sample must not perturb any moment — before the
    // fix it corrupted min/max while leaving the count unchanged.
    d.sample(-1e9, 0);
    d.sample(1e9, 0);
    EXPECT_EQ(d.samples(), 2u);
    EXPECT_DOUBLE_EQ(d.min(), 10.0);
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    EXPECT_DOUBLE_EQ(d.mean(), 15.0);
}

TEST(DirFormatDeath, OwnerOnEmptyVectorPanics)
{
    auto fmt = DirFormat::forNodes(16);
    std::uint64_t e = fmt.setState(0, proto::dirExclusive);
    // vector == 0: countTrailingZeros(0) == 64 used to come back as a
    // "node id".
    EXPECT_DEATH((void)fmt.owner(e), "empty vector");
}

class DirFormatBoundary : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DirFormatBoundary, FieldsRoundTripAndDoNotClobber)
{
    auto fmt = DirFormat::forNodes(GetParam());
    const unsigned max_node = GetParam() - 1;
    const std::uint64_t full_vec =
        GetParam() >= 64 ? ~0ULL : (1ULL << GetParam()) - 1;

    std::uint64_t e = 0;
    e = fmt.setState(e, proto::dirBusyEx);
    e = fmt.setVector(e, full_vec);
    e = fmt.setStale(e, true);
    e = fmt.setPendingReq(e, static_cast<NodeId>(max_node));
    e = fmt.setPendingMshr(e, 31);
    e = fmt.setPendingGetx(e, true);

    // Every field reads back at its boundary value...
    EXPECT_EQ(fmt.state(e), proto::dirBusyEx);
    EXPECT_EQ(fmt.vector(e), full_vec);
    EXPECT_TRUE(fmt.stale(e));
    EXPECT_EQ(fmt.pendingReq(e), max_node);
    EXPECT_EQ(fmt.pendingMshr(e), 31);
    EXPECT_TRUE(fmt.pendingGetx(e));
    if (fmt.entryBytes == 4) {
        EXPECT_EQ(e >> 32, 0u) << "32-bit entry overflowed its width";
    }

    // ...and clearing one field does not clobber its neighbours.
    e = fmt.setPendingMshr(e, 0);
    EXPECT_EQ(fmt.pendingReq(e), max_node);
    EXPECT_TRUE(fmt.pendingGetx(e));
    EXPECT_EQ(fmt.vector(e), full_vec);
    e = fmt.setVector(e, 1ULL << max_node);
    EXPECT_EQ(fmt.state(e), proto::dirBusyEx);
    EXPECT_TRUE(fmt.stale(e));
    EXPECT_EQ(fmt.owner(e), max_node);
}

INSTANTIATE_TEST_SUITE_P(Formats, DirFormatBoundary,
                         ::testing::Values(16u, 32u));

TEST(DirFormat, PendEntryAddrNeverOverlapsAcrossNodes)
{
    // Every (node, mshr) pending entry must occupy a disjoint
    // [addr, addr+entryBytes) range.
    for (unsigned n = 0; n < 32; ++n) {
        for (unsigned m = 0; m < 40; ++m) {
            Addr a = proto::pendEntryAddr(static_cast<NodeId>(n),
                                          static_cast<std::uint8_t>(m));
            Addr next_node = proto::pendEntryAddr(
                static_cast<NodeId>(n + 1), 0);
            EXPECT_GE(a, proto::protoPendBase);
            EXPECT_LT(a + proto::pend::entryBytes, next_node)
                << "node " << n << " mshr " << m
                << " spills into node " << n + 1 << "'s table";
            if (m > 0) {
                Addr prev = proto::pendEntryAddr(
                    static_cast<NodeId>(n),
                    static_cast<std::uint8_t>(m - 1));
                EXPECT_EQ(a - prev, proto::pend::entryBytes);
            }
        }
    }
}

// -------------------------------------- invalidation-ack field masking

class AckMaskEnv : public proto::ExecEnv
{
  public:
    std::uint64_t
    protoLoad(Addr a, unsigned) override
    {
        auto it = ram.find(a);
        return it == ram.end() ? 0 : it->second;
    }

    void
    protoStore(Addr a, std::uint64_t v, unsigned) override
    {
        ram[a] = v;
    }

    Addr
    dirAddrOf(Addr line) override
    {
        return proto::protoDirBase + (line >> 7) * 8;
    }

    NodeId
    homeOf(Addr line) override
    {
        return static_cast<NodeId>((line >> 12) % 4);
    }

    std::uint64_t probeResult() override { return 0; }

    std::unordered_map<Addr, std::uint64_t> ram;
};

/** Run the real RplInvalAck handler against a crafted pending entry. */
std::uint64_t
runInvalAck(std::uint64_t word0_before)
{
    auto fmt = DirFormat::forNodes(16);
    auto img = proto::buildHandlerImage(fmt);
    AckMaskEnv env;
    proto::Executor ex(img, env);
    ex.boot(0);

    const std::uint8_t mshr = 7;
    Addr pend = proto::pendEntryAddr(0, mshr);
    env.ram[pend] = word0_before;

    Message m;
    m.type = MsgType::RplInvalAck;
    m.addr = 0x40000;
    m.src = 3;
    m.dest = 0;
    m.requester = 0;
    m.mshr = mshr;
    ex.run(m);
    return env.ram[pend];
}

TEST(InvalAckMask, ParkedCountStaysInIts16BitField)
{
    using namespace proto::pend;
    // Data not yet arrived, two early acks recorded: the third parks.
    std::uint64_t w0 = 1ULL | (2ULL << acksRcvShift);
    std::uint64_t after = runInvalAck(w0);
    EXPECT_EQ((after >> acksRcvShift) & 0xffff, 3u);
    EXPECT_EQ((after >> dataShift) & 1, 0u);

    // Saturated count: the increment must wrap inside the 16-bit field
    // instead of carrying into the data-arrived bit (the mis-masked
    // park path used to corrupt it).
    w0 = 1ULL | (0xffffULL << acksRcvShift);
    after = runInvalAck(w0);
    EXPECT_EQ((after >> acksRcvShift) & 0xffff, 0u);
    EXPECT_EQ((after >> dataShift) & 1, 0u)
        << "ack-count overflow leaked into the data-arrived bit";
    EXPECT_EQ((after >> exclShift) & 1, 0u);
}

TEST(InvalAckMask, ThirtyOneSharersInvalidateAndAckOn32Nodes)
{
    // The paper's largest machine: 31 invalidation acks must collect
    // through the 16-bit acksExp/acksRcv fields without truncation.
    ProtoMachine::Options opt;
    opt.nodes = 32;
    ProtoMachine p(opt);
    const Addr line = p.addrAt(0);

    for (unsigned n = 0; n < 32; ++n) {
        p.issue(static_cast<NodeId>(n), MemCmd::Load, line, [] {});
        p.settle();
    }
    for (unsigned n = 0; n < 32; ++n)
        ASSERT_EQ(p.nodes[n]->cache->l2State(line), LineState::Sh)
            << "node " << n;

    p.issue(5, MemCmd::Store, line, [] {});
    p.settle();

    EXPECT_EQ(p.nodes[5]->cache->l2State(line), LineState::Mod);
    for (unsigned n = 0; n < 32; ++n) {
        if (n != 5) {
            EXPECT_EQ(p.nodes[n]->cache->l2State(line), LineState::Inv)
                << "node " << n << " kept a stale copy";
        }
    }
    auto entry = p.dirEntryOf(line);
    EXPECT_EQ(p.fmt.state(entry), proto::dirExclusive);
    EXPECT_EQ(p.fmt.owner(entry), 5u);
    EXPECT_EQ(p.checker->violationCount(), 0u);
}

// ------------------------------------------------ checker unit tests

TEST(Checker, FlagsTwoSimultaneousWriters)
{
    EventQueue eq;
    check::CheckerParams cp;
    cp.nodes = 4;
    cp.abortOnViolation = false;
    check::Checker c(eq, DirFormat::forNodes(16), cp);

    c.onLineState(0, 0x1000, LineState::Ex, "test");
    EXPECT_EQ(c.violationCount(), 0u);
    c.onLineState(1, 0x1000, LineState::Mod, "test");
    ASSERT_EQ(c.violationCount(), 1u);
    EXPECT_NE(c.violations()[0].find("SWMR"), std::string::npos);
}

TEST(Checker, FlagsWriterJoinedBySharer)
{
    EventQueue eq;
    check::CheckerParams cp;
    cp.nodes = 4;
    cp.abortOnViolation = false;
    check::Checker c(eq, DirFormat::forNodes(16), cp);

    c.onLineState(2, 0x2000, LineState::Mod, "test");
    c.onLineState(3, 0x2000, LineState::Sh, "test");
    ASSERT_GE(c.violationCount(), 1u);
    EXPECT_NE(c.violations()[0].find("SWMR"), std::string::npos);
}

TEST(Checker, FlagsMalformedDirectoryWrites)
{
    EventQueue eq;
    auto fmt = DirFormat::forNodes(16);
    check::CheckerParams cp;
    cp.nodes = 4;
    cp.abortOnViolation = false;
    check::Checker c(eq, fmt, cp);

    // Illegal state encoding (7 > dirBusyExWaitPut); also fails the
    // exactly-one-owner-bit rule, so it flags twice.
    c.onDirWrite(0, 0x1000, fmt.setState(0, static_cast<proto::DirState>(7)));
    // Exclusive with two owner bits.
    std::uint64_t e = fmt.setState(0, proto::dirExclusive);
    c.onDirWrite(0, 0x1080, fmt.setVector(e, 0b11));
    // Shared with an empty vector.
    c.onDirWrite(0, 0x1100, fmt.setState(0, proto::dirShared));
    // Vector bit beyond the 4-node machine.
    e = fmt.setState(0, proto::dirShared);
    c.onDirWrite(0, 0x1180, fmt.setVector(e, 1ULL << 9));
    EXPECT_EQ(c.violationCount(), 5u);
}

TEST(Checker, WatchdogReportsStuckTransaction)
{
    EventQueue eq;
    check::CheckerParams cp;
    cp.nodes = 2;
    cp.abortOnViolation = false;
    cp.watchdogMaxAge = 1 * tickPerUs;
    cp.watchdogScanInterval = 10 * tickPerUs;
    check::Checker c(eq, DirFormat::forNodes(16), cp);

    c.onMshrAlloc(1, 3, 0x7000); // never freed
    eq.run(eq.curTick() + 100 * tickPerUs);

    ASSERT_GE(c.violationCount(), 1u);
    EXPECT_NE(c.violations()[0].find("watchdog"), std::string::npos);
}

TEST(Checker, WatchdogGoesQuietWhenTransactionsComplete)
{
    EventQueue eq;
    check::CheckerParams cp;
    cp.nodes = 2;
    cp.abortOnViolation = false;
    cp.watchdogMaxAge = 1 * tickPerUs;
    cp.watchdogScanInterval = 10 * tickPerUs;
    check::Checker c(eq, DirFormat::forNodes(16), cp);

    c.onMshrAlloc(0, 1, 0x7000);
    c.onMshrFree(0, 1);
    eq.run(eq.curTick() + 100 * tickPerUs);
    EXPECT_EQ(c.violationCount(), 0u);
}

// ------------------------------------- system-level checker behaviour

TEST(ProtoCheck, InjectedSkippedInvalidationIsCaught)
{
    ProtoMachine::Options opt;
    opt.checkAbortOnViolation = false;
    opt.handlerOptions.injectSkipFirstInval = true;
    ProtoMachine p(opt);
    const Addr line = p.addrAt(0);

    // Two sharers, then a third node goes exclusive: the injected bug
    // drops the lowest sharer from the invalidation set, so node 1
    // keeps a stale Shared copy while node 3 installs Modified.
    p.issue(1, MemCmd::Load, line, [] {});
    p.settle();
    p.issue(2, MemCmd::Load, line, [] {});
    p.settle();
    ASSERT_EQ(p.nodes[1]->cache->l2State(line), LineState::Sh);
    ASSERT_EQ(p.nodes[2]->cache->l2State(line), LineState::Sh);

    p.issue(3, MemCmd::Store, line, [] {});
    p.settle();

    EXPECT_EQ(p.nodes[3]->cache->l2State(line), LineState::Mod);
    EXPECT_EQ(p.nodes[1]->cache->l2State(line), LineState::Sh)
        << "the injected bug should have left a stale sharer";
    ASSERT_GE(p.checker->violationCount(), 1u);
    bool pointed = false;
    for (const auto &v : p.checker->violations())
        pointed = pointed || (v.find("SWMR") != std::string::npos &&
                              v.find("writable") != std::string::npos);
    EXPECT_TRUE(pointed)
        << "first violation: " << p.checker->violations()[0];
}

TEST(ProtoCheck, LostUpgradeReleasesOwnershipInsteadOfLivelocking)
{
    // Regression for the upgrade-grant NAK livelock: node 0's Shared
    // copy is conflict-evicted while its upgrade is in flight; the
    // grant then names node 0 exclusive owner of a line it no longer
    // holds. The old code re-issued a GETX which the home NAKs forever
    // (requests from the listed owner are treated as stale).
    ProtoMachine::Options opt;
    opt.nodes = 2;
    opt.l2Bytes = 2048; // 16 sets, direct mapped: easy conflicts
    opt.l2Ways = 1;
    ProtoMachine p(opt);
    const Addr remote = p.addrAt(1); // homed at node 1, same L2 set as...
    const Addr local = p.addrAt(0);  // ...this line homed at node 0

    p.issue(1, MemCmd::Store, remote, [] {});
    p.settle();
    p.issue(0, MemCmd::Load, remote, [] {});
    p.settle();
    ASSERT_EQ(p.nodes[0]->cache->l2State(remote), LineState::Sh);

    // Upgrade in flight (several network hops) while the local fill
    // (SDRAM only) lands first and evicts the Shared copy.
    p.issue(0, MemCmd::Store, remote, [] {});
    p.issue(0, MemCmd::Load, local, [] {});
    p.settle();

    // The eviction raced the grant: node 0 released the granted
    // ownership with a clean Put (1) and re-fetched; the local line's
    // later eviction is the second clean Put.
    EXPECT_EQ(p.nodes[0]->cache->writebacksClean.value(), 2u)
        << "expected the lost-upgrade release path to fire";
    EXPECT_EQ(p.nodes[0]->cache->l2State(remote), LineState::Mod);
    auto entry = p.dirEntryOf(remote);
    EXPECT_EQ(p.fmt.state(entry), proto::dirExclusive);
    EXPECT_EQ(p.fmt.owner(entry), 0u);
    EXPECT_EQ(p.checker->violationCount(), 0u);
}

TEST(ProtoCheck, FullMirrorIsQuietOnARealWorkloadMix)
{
    // A migratory + producer/consumer mix across four nodes with the
    // checker at full strength: zero violations expected.
    ProtoMachine p;
    const Addr a = p.addrAt(0), b = p.addrAt(1), c = p.addrAt(2);

    for (unsigned round = 0; round < 6; ++round) {
        NodeId w = static_cast<NodeId>(round % 4);
        p.issue(w, MemCmd::Store, a, [] {});
        p.issue(static_cast<NodeId>((round + 1) % 4), MemCmd::Load, b,
                [] {});
        p.issue(static_cast<NodeId>((round + 2) % 4), MemCmd::Load, c,
                [] {});
        p.issue(static_cast<NodeId>((round + 3) % 4), MemCmd::Store, c,
                [] {});
        p.settle();
        p.checkLineInvariants(a);
        p.checkLineInvariants(b);
        p.checkLineInvariants(c);
    }
    EXPECT_EQ(p.checker->violationCount(), 0u);
    EXPECT_GT(p.checker->dirWrites.value(), 0u);
    EXPECT_GT(p.checker->lineEvents.value(), 0u);
}

} // namespace
} // namespace smtp
