/**
 * @file
 * Unit tests for the interconnect: topology/hop counts, latency and
 * bandwidth accounting, endpoint back-pressure, and the per-(src, dst,
 * vnet) FIFO ordering the coherence protocol depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "network/network.hpp"

namespace smtp
{
namespace
{

using proto::Message;
using proto::MsgType;

Message
mkMsg(NodeId src, NodeId dst, MsgType t = MsgType::ReqGet, Addr addr = 0x1000)
{
    Message m;
    m.type = t;
    m.src = src;
    m.dest = dst;
    m.addr = addr;
    return m;
}

struct Sink
{
    std::vector<Message> got;
    bool accept = true;

    Network::DeliverFn
    fn()
    {
        return [this](const Message &m) {
            if (!accept)
                return false;
            got.push_back(m);
            return true;
        };
    }
};

TEST(NetworkTopology, HopCounts)
{
    NetworkParams p;
    p.numNodes = 32;
    EventQueue eq;
    Network net(eq, p);
    // Same node.
    EXPECT_EQ(net.hopCount(5, 5), 0u);
    // Same router (2-way bristled: nodes 2k, 2k+1 share router k).
    EXPECT_EQ(net.hopCount(0, 1), 2u);
    // Adjacent routers in the 16-router (4-d) hypercube.
    EXPECT_EQ(net.hopCount(0, 2), 3u);  // routers 0 -> 1
    // Opposite corners: 4 dimensions.
    EXPECT_EQ(net.hopCount(0, 31), 6u); // routers 0 -> 15
}

TEST(NetworkTopology, SixteenNodes)
{
    NetworkParams p;
    p.numNodes = 16;
    EventQueue eq;
    Network net(eq, p);
    EXPECT_EQ(net.hopCount(0, 15), 5u); // routers 0 -> 7, 3 dims
}

TEST(Network, DeliversWithExpectedLatency)
{
    NetworkParams p;
    p.numNodes = 4;
    EventQueue eq;
    Network net(eq, p);
    Sink sinks[4];
    for (NodeId n = 0; n < 4; ++n)
        net.attach(n, sinks[n].fn());

    net.inject(mkMsg(0, 3));
    eq.run();
    ASSERT_EQ(sinks[3].got.size(), 1u);
    // 3 hops (node->router0, router0->router1, router1->node3), header
    // only, virtual cut-through: 3 x 25 ns hops + one 16 ns
    // serialisation charged at the tail.
    EXPECT_EQ(eq.curTick(), (3u * 25 + 16) * tickPerNs);
    EXPECT_TRUE(net.quiescent());
}

TEST(Network, DataMessagesSerialiseLonger)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    Sink s0, s1;
    net.attach(0, s0.fn());
    net.attach(1, s1.fn());

    net.inject(mkMsg(0, 1, MsgType::RplDataSh)); // 16 + 128 bytes
    eq.run();
    ASSERT_EQ(s1.got.size(), 1u);
    // Cut-through: 2 hops + one 144 ns serialisation of the data body.
    EXPECT_EQ(eq.curTick(), (2u * 25 + 144) * tickPerNs);
}

TEST(Network, LoopbackBypassesFabric)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    Sink s0, s1;
    net.attach(0, s0.fn());
    net.attach(1, s1.fn());

    net.inject(mkMsg(0, 0));
    eq.run();
    ASSERT_EQ(s0.got.size(), 1u);
    EXPECT_EQ(eq.curTick(), 25u * tickPerNs);
}

TEST(Network, LinkContentionSerialises)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    Sink s0, s1;
    net.attach(0, s0.fn());
    net.attach(1, s1.fn());

    // Two header messages back to back over the same links.
    net.inject(mkMsg(0, 1));
    net.inject(mkMsg(0, 1));
    eq.run();
    ASSERT_EQ(s1.got.size(), 2u);
    // First tail at 2*25+16 = 66 ns; the second message queues one
    // serialisation behind on each link and lands at 82 ns.
    EXPECT_EQ(eq.curTick(), 82u * tickPerNs);
}

TEST(Network, BackpressureHoldsAndRetries)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    Sink s0, s1;
    s1.accept = false;
    net.attach(0, s0.fn());
    net.attach(1, s1.fn());

    net.inject(mkMsg(0, 1));
    // Run for a while: message lands but is never delivered.
    eq.run(eq.curTick() + 1 * tickPerUs);
    EXPECT_TRUE(s1.got.empty());
    EXPECT_FALSE(net.quiescent());

    s1.accept = true;
    net.poke(1, proto::vnetRequest);
    eq.run();
    EXPECT_EQ(s1.got.size(), 1u);
    EXPECT_TRUE(net.quiescent());
}

TEST(Network, PerPairPerVnetFifo)
{
    NetworkParams p;
    p.numNodes = 8;
    EventQueue eq;
    Network net(eq, p);
    Sink sinks[8];
    for (NodeId n = 0; n < 8; ++n)
        net.attach(n, sinks[n].fn());

    // Inject 20 request-vnet messages 0 -> 5 with distinct addresses,
    // interleaved with cross traffic that contends for the same links.
    for (unsigned i = 0; i < 20; ++i) {
        net.inject(mkMsg(0, 5, MsgType::ReqGet, 0x1000 + 0x80 * i));
        net.inject(mkMsg(1, 5, MsgType::ReqGet, 0x9000 + 0x80 * i));
        net.inject(mkMsg(0, 4, MsgType::RplDataSh, 0x5000));
    }
    eq.run();
    std::vector<Addr> seen;
    for (const auto &m : sinks[5].got)
        if (m.src == 0)
            seen.push_back(m.addr);
    ASSERT_EQ(seen.size(), 20u);
    for (unsigned i = 0; i < 20; ++i)
        EXPECT_EQ(seen[i], 0x1000u + 0x80 * i) << "reordered at " << i;
}

TEST(Network, FifoSurvivesBackpressure)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    Sink s0, s1;
    s1.accept = false;
    net.attach(0, s0.fn());
    net.attach(1, s1.fn());

    for (unsigned i = 0; i < 10; ++i)
        net.inject(mkMsg(0, 1, MsgType::ReqGet, 0x80 * i));
    eq.run(eq.curTick() + 2 * tickPerUs);
    EXPECT_TRUE(s1.got.empty());

    s1.accept = true;
    net.poke(1, proto::vnetRequest);
    eq.run();
    ASSERT_EQ(s1.got.size(), 10u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(s1.got[i].addr, 0x80u * i);
}

TEST(Network, LookaheadAndMinCrossNodeLatency)
{
    // The conservative PDES lookahead is the 25 ns per-hop time: every
    // cross-shard scheduling step adds at least one hop, so events
    // posted inside a 25 ns window land no earlier than the next one.
    // The cheapest full message (same-router pair, header-only) costs
    // 2 hops x 25 ns plus 16 ns of final-hop serialisation = 66 ns.
    NetworkParams p;
    p.numNodes = 32;
    EventQueue eq;
    Network net(eq, p);
    EXPECT_EQ(net.lookahead(), 25 * tickPerNs);
    EXPECT_EQ(net.minCrossNodeLatency(), 66 * tickPerNs);
    EXPECT_GE(net.minCrossNodeLatency(), net.lookahead());

    // Single node: loopback turnaround still respects the lookahead.
    NetworkParams p1;
    p1.numNodes = 1;
    EventQueue eq1;
    Network n1(eq1, p1);
    EXPECT_EQ(n1.minCrossNodeLatency(), 25 * tickPerNs + 16 * tickPerNs);
    EXPECT_GE(n1.minCrossNodeLatency(), n1.lookahead());
}

TEST(Network, StatsAccumulate)
{
    NetworkParams p;
    p.numNodes = 4;
    EventQueue eq;
    Network net(eq, p);
    Sink sinks[4];
    for (NodeId n = 0; n < 4; ++n)
        net.attach(n, sinks[n].fn());

    net.inject(mkMsg(0, 1));
    net.inject(mkMsg(0, 3, MsgType::RplDataEx));
    eq.run();
    EXPECT_EQ(net.msgsInjected(), 2u);
    EXPECT_EQ(net.bytesInjected(), 16u + 144u);
    EXPECT_EQ(net.hopDist().samples(), 2u);
}

TEST(NetworkDeath, UnattachedNodePanics)
{
    NetworkParams p;
    p.numNodes = 2;
    EventQueue eq;
    Network net(eq, p);
    net.inject(mkMsg(0, 1));
    EXPECT_DEATH(eq.run(), "no NI attached");
}

} // namespace
} // namespace smtp
