/**
 * @file
 * Unit and system tests for the embedded dual-issue protocol processor:
 * dual-issue pairing rules, directory-cache behaviour (hit/miss/
 * writeback, perfect mode), protocol I-cache cold misses, and a re-run
 * of the coherence machine with PEngine agents replacing the idealised
 * agent (same invariants must hold; occupancy must be non-trivial).
 */

#include <gtest/gtest.h>

#include "proto_harness.hpp"

#include "pengine/pengine.hpp"

namespace smtp::testing
{
namespace
{

using proto::MsgType;

TEST(PEnginePairing, IndependentAluPairs)
{
    proto::PInst a;
    a.op = proto::POp::Addi;
    a.rd = 3;
    a.rs1 = 4;
    proto::PInst b;
    b.op = proto::POp::Addi;
    b.rd = 5;
    b.rs1 = 6;
    // Exercise via a machine below; here only the static rule matters:
    // accessible through a friend-free re-implementation is overkill, so
    // pairing is validated end-to-end by instruction/pair counters.
    SUCCEED();
}

/** A 4-node coherence machine driven through PEngine agents. */
class PEngineMachine
{
  public:
    explicit PEngineMachine(bool perfect_dcache, std::size_t dcache_bytes)
        : fmt(proto::DirFormat::forNodes(16)),
          image(proto::buildHandlerImage(fmt)), clock(2000), map(4, 4)
    {
        NetworkParams np;
        np.numNodes = 4;
        net = std::make_unique<Network>(eq, np);
        for (unsigned n = 0; n < 4; ++n) {
            auto node = std::make_unique<Node>();
            CacheParams cp;
            cp.l2Bytes = 16 * 1024;
            node->cache = std::make_unique<CacheHierarchy>(
                eq, clock, static_cast<NodeId>(n), cp);
            McParams mp;
            node->mc = std::make_unique<MemController>(
                eq, static_cast<NodeId>(n), mp, map, image, *node->cache,
                *net);
            PEngineParams pp;
            pp.perfectDcache = perfect_dcache;
            pp.dcacheBytes = dcache_bytes;
            node->pe = std::make_unique<PEngine>(eq, *node->mc, pp);
            auto *mc = node->mc.get();
            node->cache->connect(
                [mc](const proto::Message &m) { return mc->lmiEnqueue(m); },
                [mc](Addr a, bool w, EventQueue::Callback fn) {
                    mc->bypassAccess(a, w, std::move(fn));
                });
            net->attach(static_cast<NodeId>(n),
                        [mc](const proto::Message &m) {
                            return mc->niDeliver(m);
                        });
            nodes.push_back(std::move(node));
        }
        for (unsigned n = 0; n < 4; ++n)
            map.place(0x10000000 + n * pageBytes, static_cast<NodeId>(n));
    }

    void
    issue(NodeId node, MemCmd cmd, Addr addr, EventQueue::Callback done)
    {
        MemReq req;
        req.cmd = cmd;
        req.addr = addr;
        req.done = std::move(done);
        auto outcome = nodes[node]->cache->access(req);
        ASSERT_NE(outcome, CacheHierarchy::Outcome::Retry);
    }

    struct Node
    {
        std::unique_ptr<CacheHierarchy> cache;
        std::unique_ptr<MemController> mc;
        std::unique_ptr<PEngine> pe;
    };

    EventQueue eq;
    proto::DirFormat fmt;
    proto::HandlerImage image;
    ClockDomain clock;
    PagePlacementMap map;
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<Node>> nodes;
};

TEST(PEngine, ServicesMissesEndToEnd)
{
    PEngineMachine m(false, 512 * 1024);
    int done = 0;
    m.issue(1, MemCmd::Load, 0x10000000, [&] { ++done; });
    m.eq.run();
    EXPECT_EQ(done, 1);
    EXPECT_TRUE(writable(m.nodes[1]->cache->l2State(0x10000000)));
    // Requester-side and home-side handlers both ran on engines.
    EXPECT_GE(m.nodes[1]->pe->handlers.value(), 2u); // PiGet + RplDataEx
    EXPECT_GE(m.nodes[0]->pe->handlers.value(), 1u); // ReqGet at home
}

TEST(PEngine, DualIssuePairsSomeInstructions)
{
    PEngineMachine m(false, 512 * 1024);
    int done = 0;
    for (int i = 0; i < 8; ++i)
        m.issue(2, MemCmd::Store, 0x10000000 + i * 128, [&] { ++done; });
    m.eq.run();
    EXPECT_EQ(done, 8);
    EXPECT_GT(m.nodes[2]->pe->pairedIssues.value(), 0u);
    EXPECT_GT(m.nodes[2]->pe->instructions.value(),
              m.nodes[2]->pe->pairedIssues.value());
}

TEST(PEngine, DirectoryCacheMissesCostTime)
{
    // Directory entries for 24 widely spread pages homed at node 0: a
    // 256-byte directory cache thrashes on the second round of home
    // handlers, a 512 KB one holds everything.
    auto run_rounds = [](PEngineMachine &m) {
        int done = 0;
        for (int i = 0; i < 24; ++i) {
            m.issue(1, MemCmd::Load,
                    0x20000000 + static_cast<Addr>(i) * 4 * pageBytes,
                    [&] { ++done; });
            m.eq.run();
        }
        for (int i = 0; i < 24; ++i) {
            // A second reader re-walks every directory entry at home.
            m.issue(2, MemCmd::Load,
                    0x20000000 + static_cast<Addr>(i) * 4 * pageBytes,
                    [&] { ++done; });
            m.eq.run();
        }
        return done;
    };
    PEngineMachine warm(false, 512 * 1024);
    PEngineMachine cold(false, 256);
    EXPECT_EQ(run_rounds(warm), 48);
    EXPECT_EQ(run_rounds(cold), 48);
    EXPECT_GT(cold.nodes[0]->pe->dcacheMisses.value(),
              warm.nodes[0]->pe->dcacheMisses.value());
    EXPECT_GT(cold.nodes[0]->pe->busyTicks(),
              warm.nodes[0]->pe->busyTicks());
}

TEST(PEngine, PerfectDcacheNeverMisses)
{
    PEngineMachine m(true, 64 * 1024);
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        m.issue(3, MemCmd::Store, 0x10000000 + i * 128, [&] { ++done; });
        m.eq.run();
    }
    EXPECT_EQ(done, 32);
    for (auto &n : m.nodes) {
        EXPECT_EQ(n->pe->dcacheMisses.value(), 0u);
        EXPECT_EQ(n->pe->dcacheHits.value(), 0u);
    }
}

TEST(PEngine, IcacheMissesAreColdOnly)
{
    PEngineMachine m(false, 512 * 1024);
    int done = 0;
    // Two rounds of identical traffic: round two must add no I-misses.
    for (int i = 0; i < 8; ++i)
        m.issue(1, MemCmd::Load, 0x10000000 + i * 128, [&] { ++done; });
    m.eq.run();
    auto cold = m.nodes[1]->pe->icacheMisses.value();
    EXPECT_GT(cold, 0u);
    for (int i = 0; i < 8; ++i)
        m.issue(1, MemCmd::Store, 0x10000000 + i * 128, [&] { ++done; });
    m.eq.run();
    // Upgrade handlers may touch new code paths; allow a few more cold
    // misses but require heavy reuse.
    EXPECT_LE(m.nodes[1]->pe->icacheMisses.value(), cold + 8);
    EXPECT_EQ(done, 16);
}

TEST(PEngine, OccupancyAccumulatesUnderLoad)
{
    PEngineMachine m(false, 512 * 1024);
    int done = 0;
    for (int i = 0; i < 32; ++i) {
        NodeId n = static_cast<NodeId>(i % 4);
        m.issue(n, MemCmd::Store,
                0x10000000 + (i % 4) * pageBytes + (i / 4) * 128,
                [&] { ++done; });
    }
    m.eq.run();
    EXPECT_EQ(done, 32);
    Tick total_busy = 0;
    for (auto &n : m.nodes)
        total_busy += n->pe->busyTicks();
    EXPECT_GT(total_busy, 0u);
}

} // namespace
} // namespace smtp::testing
