/**
 * @file
 * Tests for the sweep-service layer (src/serve): the hardened JSON
 * parser, wire framing under hostile input, cell <-> JSON round-trips,
 * and a live in-process smtpd exercised over real UNIX sockets —
 * dedup across concurrent clients, protocol-error handling (truncated
 * frames, oversized length prefixes, unknown fields, disconnect
 * mid-stream), and restart rehydration from the on-disk result cache.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/proto.hpp"
#include "serve/runner.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace smtp::serve
{
namespace
{

// ------------------------------------------------------------- JSON

TEST(ServeJson, ParsesScalarsAndContainers)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(
        R"({"a":1,"b":-2.5e3,"c":"x","d":[true,false,null],"e":{}})", v));
    EXPECT_EQ(v.getNumber("a"), 1.0);
    EXPECT_EQ(v.getNumber("b"), -2500.0);
    EXPECT_EQ(v.getString("c"), "x");
    ASSERT_NE(v.find("d"), nullptr);
    EXPECT_EQ(v.find("d")->array().size(), 3u);
    EXPECT_TRUE(v.find("e")->isObject());
}

TEST(ServeJson, RoundTripsThroughDump)
{
    const char *text =
        R"({"s":"a\"b\\c\nd","n":0.1,"big":9007199254740992,"neg":-1})";
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(text, v));
    JsonValue again;
    ASSERT_TRUE(JsonValue::parse(v.dump(), again));
    // %.17g round-trips every double exactly.
    EXPECT_EQ(again.getNumber("n"), v.getNumber("n"));
    EXPECT_EQ(again.getNumber("big"), v.getNumber("big"));
    EXPECT_EQ(again.getString("s"), v.getString("s"));
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(ServeJson, RejectsHostileInput)
{
    const char *bad[] = {
        "",                        // empty
        "{",                       // unterminated object
        "[1,2",                    // unterminated array
        "{\"a\":}",                // missing value
        "{\"a\":1,}",              // trailing comma
        "{'a':1}",                 // single quotes
        "{\"a\":1} extra",         // trailing garbage
        "01",                      // leading zero
        "+1",                      // leading plus
        "1.",                      // bare fraction point
        "1e",                      // bare exponent
        "inf",                     // not JSON
        "nan",                     // not JSON
        "tru",                     // truncated literal
        "\"unterminated",          // unterminated string
        "\"bad \\q escape\"",      // unknown escape
        "\"\\u12\"",               // short \u
        "\"\\ud800\"",             // unpaired high surrogate
        "\"\\udc00\"",             // stray low surrogate
        "\"raw\x01control\"",      // raw control char
        "1e999",                   // overflows to inf
    };
    for (const char *text : bad) {
        JsonValue v;
        std::string err;
        EXPECT_FALSE(JsonValue::parse(text, v, &err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(ServeJson, RejectsDeepNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse(deep, v));
    // ...but reasonable nesting is fine.
    EXPECT_TRUE(JsonValue::parse("[[[[[[[[[[1]]]]]]]]]]", v));
}

TEST(ServeJson, SurrogatePairsDecodeToUtf8)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse("\"\\ud83d\\ude00\"", v)); // U+1F600
    EXPECT_EQ(v.str(), "\xf0\x9f\x98\x80");
}

// ------------------------------------------------------------- wire

/** A connected AF_UNIX socketpair for framing tests. */
struct Pair
{
    int a = -1, b = -1;
    Pair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }
    ~Pair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(ServeWire, FrameRoundTrip)
{
    Pair p;
    ASSERT_TRUE(writeFrame(p.a, "hello"));
    ASSERT_TRUE(writeFrame(p.a, "")); // empty frames are legal
    std::string payload;
    EXPECT_EQ(readFrame(p.b, payload), 1);
    EXPECT_EQ(payload, "hello");
    EXPECT_EQ(readFrame(p.b, payload), 1);
    EXPECT_EQ(payload, "");
    ::close(p.a);
    p.a = -1;
    EXPECT_EQ(readFrame(p.b, payload), 0); // clean EOF at boundary
}

TEST(ServeWire, TruncatedFrameIsAnError)
{
    Pair p;
    // Length prefix promises 100 bytes; deliver 3 and hang up.
    unsigned char hdr[4] = {100, 0, 0, 0};
    ASSERT_EQ(::send(p.a, hdr, 4, 0), 4);
    ASSERT_EQ(::send(p.a, "abc", 3, 0), 3);
    ::close(p.a);
    p.a = -1;
    std::string payload, err;
    EXPECT_EQ(readFrame(p.b, payload, &err), -1);
    EXPECT_NE(err.find("mid-frame"), std::string::npos) << err;
}

TEST(ServeWire, OversizedLengthPrefixIsRejectedNotAllocated)
{
    Pair p;
    unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff}; // ~4 GiB claim
    ASSERT_EQ(::send(p.a, hdr, 4, 0), 4);
    std::string payload, err;
    EXPECT_EQ(readFrame(p.b, payload, &err), -1);
    EXPECT_NE(err.find("cap"), std::string::npos) << err;
    EXPECT_FALSE(writeFrame(p.a, std::string(kMaxFrame + 1, 'x'), &err));
}

TEST(ServeWire, SplitterReassemblesBytewise)
{
    FrameSplitter sp;
    std::string wire;
    {
        Pair p;
        ASSERT_TRUE(writeFrame(p.a, "abc"));
        ASSERT_TRUE(writeFrame(p.a, "defg"));
        char buf[64];
        ssize_t n = ::recv(p.b, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        wire.assign(buf, static_cast<std::size_t>(n));
    }
    std::vector<std::string> frames;
    std::string payload;
    for (char c : wire) { // worst case: one byte at a time
        sp.feed(&c, 1);
        while (sp.next(payload))
            frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], "abc");
    EXPECT_EQ(frames[1], "defg");
    EXPECT_EQ(sp.pendingBytes(), 0u);
}

TEST(ServeWire, SplitterPoisonsOnOversizedPrefix)
{
    FrameSplitter sp;
    char hdr[4];
    std::memset(hdr, 0xff, 4);
    sp.feed(hdr, 4);
    std::string payload;
    EXPECT_FALSE(sp.next(payload));
    EXPECT_FALSE(sp.error().empty());
    sp.feed("more", 4); // ignored once poisoned
    EXPECT_FALSE(sp.next(payload));
}

// ------------------------------------------------------------ proto

TEST(ServeWire, HalfClosedPeerSendPathReportsEpipe)
{
    // A peer that closed its read side must surface as a wire error on
    // our send path — not a SIGPIPE that kills the process. Fill the
    // socket buffer until the kernel reports the broken pipe.
    int sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ::close(sp[1]); // Peer is gone entirely: first send may EPIPE...
    std::string err;
    std::string payload(1 << 16, 'x');
    bool ok = true;
    for (int i = 0; ok && i < 64; ++i)
        ok = writeFrame(sp[0], payload, &err);
    EXPECT_FALSE(ok) << "send to a closed peer must fail";
    EXPECT_FALSE(err.empty());
    ::close(sp[0]);

    // ...and a half-closed peer (SHUT_RD on the far side) behaves the
    // same once its receive buffer is full.
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
    ::shutdown(sp[1], SHUT_RD);
    ok = true;
    for (int i = 0; ok && i < 64; ++i)
        ok = writeFrame(sp[0], payload, &err);
    EXPECT_FALSE(ok) << "send to a half-closed peer must fail";
    ::close(sp[0]);
    ::close(sp[1]);
}

TEST(ServeProto, CellRoundTripPreservesKey)
{
    RunConfig cfg;
    cfg.model = MachineModel::Int64KB;
    cfg.nodes = 4;
    cfg.ways = 2;
    cfg.app = "radix";
    cfg.scale = 0.25;
    ASSERT_TRUE(ExecParams::parse("parallel:3", cfg.exec));
    ASSERT_TRUE(parseCheckLevel("asserts", cfg.checkLevel));
    ASSERT_TRUE(SampleSpec::parse("1000:500:8", cfg.sample));
    ASSERT_TRUE(fault::FaultPlan::parse("seed=7,drop=0.01", cfg.faults));
    cfg.protocol = proto::ProtocolKind::Migratory;

    RunConfig back;
    std::string err;
    ASSERT_TRUE(cellFromJson(cellToJson(cfg), back, &err)) << err;
    EXPECT_EQ(cellKey(back), cellKey(cfg));
    EXPECT_EQ(back.app, cfg.app);
    EXPECT_EQ(back.exec.toString(), cfg.exec.toString());
    EXPECT_EQ(back.checkLevel, cfg.checkLevel);
    EXPECT_EQ(back.sample.warmup, cfg.sample.warmup);
    EXPECT_EQ(back.protocol, cfg.protocol);
}

TEST(ServeProto, ProtocolVariantsNeverShareACellKey)
{
    // The daemon's result cache and in-flight dedup key off cellKey;
    // the same workload under different directory protocols must
    // never collide. The default keeps the pre-variant wire shape:
    // no "protocol" member at all.
    RunConfig cfg;
    JsonValue defaultCell = cellToJson(cfg);
    EXPECT_EQ(defaultCell.find("protocol"), nullptr);

    std::uint64_t bitvectorKey = cellKey(cfg);
    cfg.protocol = proto::ProtocolKind::Migratory;
    std::uint64_t migratoryKey = cellKey(cfg);
    cfg.protocol = proto::ProtocolKind::PhasePriority;
    std::uint64_t phaseKey = cellKey(cfg);
    EXPECT_NE(bitvectorKey, migratoryKey);
    EXPECT_NE(bitvectorKey, phaseKey);
    EXPECT_NE(migratoryKey, phaseKey);

    RunConfig out;
    std::string err;
    EXPECT_FALSE(cellFromJson(
        [] {
            JsonValue cell = cellToJson(RunConfig{});
            cell.set("protocol", JsonValue::makeString("mesi"));
            return cell;
        }(),
        out, &err));
    EXPECT_NE(err.find("mesi"), std::string::npos) << err;
}

TEST(ServeProto, UnknownCellFieldIsRejected)
{
    JsonValue cell = cellToJson(RunConfig{});
    cell.set("scael", JsonValue::makeNumber(0.5)); // typo'd "scale"
    RunConfig out;
    std::string err;
    EXPECT_FALSE(cellFromJson(cell, out, &err));
    EXPECT_NE(err.find("scael"), std::string::npos) << err;
}

TEST(ServeProto, MalformedCellValuesAreRejected)
{
    auto reject = [](const char *mutate_key, JsonValue v) {
        JsonValue cell = cellToJson(RunConfig{});
        cell.set(mutate_key, std::move(v));
        RunConfig out;
        std::string err;
        EXPECT_FALSE(cellFromJson(cell, out, &err))
            << mutate_key << " accepted";
    };
    reject("nodes", JsonValue::makeNumber(-1));
    reject("nodes", JsonValue::makeNumber(2.5));
    reject("nodes", JsonValue::makeNumber(1e18));
    reject("nodes", JsonValue::makeString("8"));
    reject("scale", JsonValue::makeNumber(0));
    reject("exec", JsonValue::makeString("hyperthreaded"));
    reject("check", JsonValue::makeString("paranoid"));
    reject("sample", JsonValue::makeString("1:2"));
    reject("las", JsonValue::makeNumber(1));
}

TEST(ServeProto, ResultRoundTrip)
{
    RunResult r;
    r.execTime = 123456789;
    r.memStallFraction = 0.42;
    r.sampled = true;
    r.sampleCount = 7;
    r.ipcMean = 1.25;
    r.ckpt = 1;
    r.execSerialized = true;
    r.wallMs = 98.5;
    RunResult back = resultFromJson(resultToJson(r));
    EXPECT_EQ(back.execTime, r.execTime);
    EXPECT_EQ(back.memStallFraction, r.memStallFraction);
    EXPECT_TRUE(back.sampled);
    EXPECT_EQ(back.sampleCount, r.sampleCount);
    EXPECT_EQ(back.ipcMean, r.ipcMean);
    EXPECT_EQ(back.ckpt, 1);
    EXPECT_TRUE(back.execSerialized);
    EXPECT_EQ(back.wallMs, r.wallMs);
}

TEST(ServeProto, Hex64RoundTrip)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
          std::uint64_t{0xdeadbeefcafe1234}}) {
        std::uint64_t back = 1;
        EXPECT_TRUE(parseHex64(hex64(v), back));
        EXPECT_EQ(back, v);
    }
    std::uint64_t out;
    EXPECT_FALSE(parseHex64("", out));
    EXPECT_FALSE(parseHex64("xyz", out));
    EXPECT_FALSE(parseHex64("00000000000000000", out)); // 17 digits
}

// ----------------------------------------------------------- daemon

/** An in-process smtpd on its own thread, torn down per test. */
struct DaemonFixture
{
    std::string dir;
    std::string sock;
    Server *server = nullptr;
    std::thread thread;

    explicit DaemonFixture(const char *tag, unsigned jobs = 2)
    {
        dir = std::string("serve_test_") + tag;
        sock = dir + "/smtpd.sock";
        start(jobs);
    }

    /** Full-options variant for deadline/retry/admission tests. */
    DaemonFixture(const char *tag, const ServerOptions &opt)
    {
        dir = std::string("serve_test_") + tag;
        sock = dir + "/smtpd.sock";
        start(opt);
    }

    void
    start(unsigned jobs = 2)
    {
        ServerOptions opt;
        opt.jobs = jobs;
        start(opt);
    }

    void
    start(ServerOptions opt)
    {
        opt.socketPath = sock;
        opt.stateDir = dir;
        server = new Server(opt);
        thread = std::thread([this] { server->run(); });
        // The listener may not be up yet; spin until a ping succeeds.
        Client probe;
        for (int i = 0; i < 200; ++i) {
            if (probe.connect(sock) && probe.ping())
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        FAIL() << "daemon did not come up at " << sock;
    }

    void
    stop()
    {
        if (server == nullptr)
            return;
        server->requestStop();
        thread.join();
        delete server;
        server = nullptr;
    }

    ~DaemonFixture()
    {
        stop();
        std::string cmd = "rm -rf '" + dir + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
};

RunConfig
quickCell(const char *app = "fft", unsigned nodes = 2)
{
    RunConfig cfg;
    cfg.model = MachineModel::SMTp;
    cfg.app = app;
    cfg.nodes = nodes;
    cfg.scale = 0.05;
    return cfg;
}

TEST(ServeDaemon, ServesCellsAndDedupsAcrossConcurrentClients)
{
    DaemonFixture d("dedup");
    // Two clients, overlapping sweeps, submitted concurrently: the
    // shared cell must simulate once and both clients must receive
    // byte-identical records for it.
    std::vector<RunConfig> sweepA{quickCell("fft"), quickCell("lu")};
    std::vector<RunConfig> sweepB{quickCell("fft"), quickCell("radix")};
    std::vector<std::string> recA(sweepA.size()), recB(sweepB.size());
    bool okA = false, okB = false;
    std::thread ta([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        okA = c.submit(sweepA, 0, [&](const CellReply &cr) {
            recA[cr.index] = cr.record;
        });
    });
    std::thread tb([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        okB = c.submit(sweepB, 0, [&](const CellReply &cr) {
            recB[cr.index] = cr.record;
        });
    });
    ta.join();
    tb.join();
    ASSERT_TRUE(okA);
    ASSERT_TRUE(okB);
    for (const std::string &r : recA)
        EXPECT_FALSE(r.empty());
    for (const std::string &r : recB)
        EXPECT_FALSE(r.empty());
    // Byte-identity for the shared fft cell, mod wall_ms.
    auto strip = [](std::string s) {
        auto pos = s.find(",\"wall_ms\"");
        return s.substr(0, pos);
    };
    EXPECT_EQ(strip(recA[0]), strip(recB[0]));
    // The identical cell simulated exactly once.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_submitted"), 4.0);
    EXPECT_EQ(stats.getNumber("cells_simulated"), 3.0);
    EXPECT_EQ(stats.getNumber("dedup_hits"), 1.0);
}

TEST(ServeDaemon, ServedRecordMatchesLocalRunByteForByte)
{
    DaemonFixture d("vslocal");
    RunConfig cfg = quickCell();
    std::string served;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        served = cr.record;
    })) << c.error();
    RunResult local = runOnce(cfg);
    std::string localRec = jsonRecord(cfg, local);
    auto strip = [](const std::string &s) {
        return s.substr(0, s.find(",\"wall_ms\""));
    };
    ASSERT_FALSE(served.empty());
    EXPECT_EQ(strip(served), strip(localRec));
}

TEST(ServeDaemon, RestartRehydratesFromResultCache)
{
    DaemonFixture d("restart");
    RunConfig cfg = quickCell();
    std::string first;
    {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
            first = cr.record;
            EXPECT_FALSE(cr.cached);
        }));
    }
    d.stop();
    d.start();
    std::string second;
    bool cached = false;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        second = cr.record;
        cached = cr.cached;
    }));
    EXPECT_TRUE(cached);
    EXPECT_EQ(first, second); // verbatim replay, wall_ms included
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_simulated"), 0.0);
    EXPECT_EQ(stats.getNumber("disk_hits"), 1.0);
}

TEST(ServeDaemon, UnknownJobFieldsAreRejected)
{
    DaemonFixture d("unknown");
    int fd = connectSocket(d.sock);
    ASSERT_GE(fd, 0);
    // Top-level unknown field.
    ASSERT_TRUE(writeFrame(
        fd, R"({"op":"submit","cells":[{}],"turbo":true})"));
    std::string payload, err;
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    JsonValue reply;
    ASSERT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "error");
    EXPECT_NE(reply.getString("message").find("turbo"),
              std::string::npos);
    ::close(fd);
    // Unknown per-cell field.
    fd = connectSocket(d.sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeFrame(
        fd, R"({"op":"submit","cells":[{"app":"fft","warpdrive":9}]})"));
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    ASSERT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "error");
    EXPECT_NE(reply.getString("message").find("warpdrive"),
              std::string::npos);
    ::close(fd);
}

TEST(ServeDaemon, HostileFramesGetErrorsNotCrashes)
{
    DaemonFixture d("hostile");
    // Oversized length prefix: daemon must answer with an error frame
    // (or hang up), and must still serve the next client.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        unsigned char hdr[4] = {0xff, 0xff, 0xff, 0x7f};
        ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
        std::string payload;
        readFrame(fd, payload); // error frame or EOF; either is fine
        ::close(fd);
    }
    // Bad JSON payload.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFrame(fd, "{not json"));
        std::string payload, err;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        JsonValue reply;
        ASSERT_TRUE(JsonValue::parse(payload, reply));
        EXPECT_EQ(reply.getString("type"), "error");
        ::close(fd);
    }
    // Truncated frame then disconnect: promise 50 bytes, send 5, hang
    // up. The daemon must just drop the connection.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        unsigned char hdr[4] = {50, 0, 0, 0};
        ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
        ASSERT_EQ(::send(fd, "hello", 5, MSG_NOSIGNAL), 5);
        ::close(fd);
    }
    // Unsupported protocol version.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFrame(fd, R"({"op":"ping","proto":99})"));
        std::string payload, err;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        JsonValue reply;
        ASSERT_TRUE(JsonValue::parse(payload, reply));
        EXPECT_EQ(reply.getString("type"), "error");
        ::close(fd);
    }
    // After all of that, an honest client still gets served.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    EXPECT_TRUE(c.ping()) << c.error();
}

TEST(ServeDaemon, ClientDisconnectMidStreamAbandonsItsJob)
{
    DaemonFixture d("disco", /*jobs=*/1);
    // Submit a multi-cell job and hang up immediately: the daemon must
    // drop the waiters and keep serving others. (With jobs=1 the later
    // cells are still queued when the disconnect lands, exercising the
    // abandon path; completed cells stay cached either way.)
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        JsonValue req;
        std::string err;
        RunConfig a = quickCell("fft"), b = quickCell("lu"),
                  e = quickCell("radix");
        req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString("submit"));
        JsonValue arr = JsonValue::makeArray();
        arr.append(cellToJson(a));
        arr.append(cellToJson(b));
        arr.append(cellToJson(e));
        req.set("cells", std::move(arr));
        ASSERT_TRUE(writeFrame(fd, req.dump(), &err)) << err;
        std::string payload;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err; // accepted
        ::close(fd); // gone before any cell completes
    }
    // A different client's work proceeds normally.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    std::string rec;
    ASSERT_TRUE(c.submit({quickCell("water")}, 5,
                         [&](const CellReply &cr) { rec = cr.record; }))
        << c.error();
    EXPECT_FALSE(rec.empty());
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("jobs_active"), 0.0);
}

/** Raw-socket submit; returns the fd with the "accepted" frame consumed. */
int
rawSubmit(const std::string &sock, const std::vector<RunConfig> &cells)
{
    int fd = connectSocket(sock);
    EXPECT_GE(fd, 0);
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("submit"));
    JsonValue arr = JsonValue::makeArray();
    for (const RunConfig &c : cells)
        arr.append(cellToJson(c));
    req.set("cells", std::move(arr));
    std::string err;
    EXPECT_TRUE(writeFrame(fd, req.dump(), &err)) << err;
    std::string payload;
    EXPECT_EQ(readFrame(fd, payload, &err), 1) << err;
    JsonValue reply;
    EXPECT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "accepted");
    return fd;
}

TEST(ServeDaemon, CancelRemovesQueuedCells)
{
    DaemonFixture d("cancel", /*jobs=*/1);
    // Job 1 occupies the single worker with a bigger cell; job 2's
    // four quick cells queue behind it (same priority, FIFO), so the
    // cancel deterministically catches all four still queued.
    RunConfig big = quickCell("fft");
    big.scale = 0.2;
    int fd1 = rawSubmit(d.sock, {big});
    int fd2 = rawSubmit(d.sock, {quickCell("fft"), quickCell("lu"),
                                 quickCell("radix"), quickCell("water")});
    Client killer;
    ASSERT_TRUE(killer.connect(d.sock));
    std::size_t removed = 0;
    ASSERT_TRUE(killer.cancel(2, &removed)) << killer.error();
    EXPECT_EQ(removed, 4u);
    // Job 2's owner gets "done" with everything skipped, no cells.
    std::string payload, err;
    ASSERT_EQ(readFrame(fd2, payload, &err), 1) << err;
    JsonValue done;
    ASSERT_TRUE(JsonValue::parse(payload, done));
    EXPECT_EQ(done.getString("type"), "done");
    EXPECT_EQ(done.getNumber("skipped"), 4.0);
    ::close(fd2);
    // Job 1 is untouched: its cell completes and streams normally.
    ASSERT_EQ(readFrame(fd1, payload, &err), 1) << err;
    JsonValue cellFrame;
    ASSERT_TRUE(JsonValue::parse(payload, cellFrame));
    EXPECT_EQ(cellFrame.getString("type"), "cell");
    ASSERT_EQ(readFrame(fd1, payload, &err), 1) << err;
    ASSERT_TRUE(JsonValue::parse(payload, done));
    EXPECT_EQ(done.getString("type"), "done");
    EXPECT_EQ(done.getNumber("skipped"), 0.0);
    ::close(fd1);
    JsonValue stats;
    ASSERT_TRUE(killer.stats(stats));
    EXPECT_EQ(stats.getNumber("jobs_cancelled"), 1.0);
    EXPECT_EQ(stats.getNumber("jobs_active"), 0.0);
}

TEST(ServeDaemon, ConcurrentCheckpointLibraryAccessSimulatesWarmupOnce)
{
    DaemonFixture d("ckptfarm");
    // Two clients submit the same cold sampled cell concurrently: the
    // daemon dedups them into one simulation, which populates the warm
    // checkpoint farm. A third submission of a *different* sample
    // count with the same warmup then restores the shared warmup
    // snapshot instead of re-simulating it.
    RunConfig sampled = quickCell();
    ASSERT_TRUE(SampleSpec::parse("20000:5000:4", sampled.sample));
    std::vector<std::string> recs(2);
    std::thread ta([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        c.submit({sampled}, 0,
                 [&](const CellReply &cr) { recs[0] = cr.record; });
    });
    std::thread tb([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        c.submit({sampled}, 0,
                 [&](const CellReply &cr) { recs[1] = cr.record; });
    });
    ta.join();
    tb.join();
    ASSERT_FALSE(recs[0].empty());
    EXPECT_EQ(recs[0], recs[1]); // one simulation, one record
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_simulated"), 1.0);
    EXPECT_EQ(stats.getNumber("dedup_hits"), 1.0);

    // Same warmup, different K: distinct cellKey (no dedup), but the
    // warmup snapshot is shared through the farm — the record reports
    // a checkpoint hit.
    RunConfig other = sampled;
    other.sample.count = 2;
    RunResult got;
    ASSERT_TRUE(c.submit({other}, 0, [&](const CellReply &cr) {
        got = cr.result;
    })) << c.error();
    EXPECT_EQ(got.ckpt, 1) << "warmup snapshot was not shared";
}

TEST(ServeDaemon, CheckedCellRunsUnderDaemonAndReportsCheckLevel)
{
    DaemonFixture d("checked");
    RunConfig cfg = quickCell();
    ASSERT_TRUE(ExecParams::parse("parallel:2", cfg.exec));
    ASSERT_TRUE(parseCheckLevel("asserts", cfg.checkLevel));
    std::string rec;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        rec = cr.record;
    })) << c.error();
    EXPECT_NE(rec.find("\"check\":\"asserts\""), std::string::npos)
        << rec;
    EXPECT_NE(rec.find("\"exec\":\"parallel:2\""), std::string::npos)
        << rec;
    // Unchecked twin must agree on simulated fields.
    RunConfig plain = quickCell();
    std::string plainRec;
    ASSERT_TRUE(c.submit({plain}, 0, [&](const CellReply &cr) {
        plainRec = cr.record;
    }));
    auto ticks = [](const std::string &s) {
        auto pos = s.find("\"exec_ticks\":");
        return s.substr(pos, s.find(',', pos) - pos);
    };
    EXPECT_EQ(ticks(rec), ticks(plainRec));
}

// ------------------------------------------- crash isolation + chaos

/** Unset every chaos hook; guards against leakage between tests. */
struct ChaosEnvGuard
{
    ChaosEnvGuard(const char *app, const char *var)
    {
        ::setenv(var, app, 1);
        var_ = var;
    }
    ~ChaosEnvGuard() { ::unsetenv(var_); }
    const char *var_;
};

TEST(ServeDaemon, CrashedWorkerIsRetriedAndRecordByteIdentical)
{
    ChaosEnvGuard chaos("fft", "SMTPD_CHAOS_ABORT_APP");
    ServerOptions opt;
    opt.jobs = 2;
    DaemonFixture d("crashretry", opt);
    RunConfig cfg = quickCell("fft");
    std::string served;
    std::size_t failed = 0;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit(
        {cfg}, 0,
        [&](const CellReply &cr) {
            served = cr.record;
            EXPECT_FALSE(cr.failed);
        },
        nullptr, &failed))
        << c.error();
    EXPECT_EQ(failed, 0u);
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_GE(stats.getNumber("workers_crashed"), 1.0);
    EXPECT_GE(stats.getNumber("cells_retried"), 1.0);
    EXPECT_EQ(stats.getNumber("cells_quarantined"), 0.0);
    // The post-crash record is the same record a clean local run makes.
    ::unsetenv("SMTPD_CHAOS_ABORT_APP");
    RunResult local = runOnce(cfg);
    auto strip = [](const std::string &s) {
        return s.substr(0, s.find(",\"wall_ms\""));
    };
    EXPECT_EQ(strip(served), strip(jsonRecord(cfg, local)));
}

TEST(ServeDaemon, WedgedWorkerIsDeadlineKilledThenQuarantined)
{
    ChaosEnvGuard chaos("fft", "SMTPD_CHAOS_WEDGE_APP");
    // No daemon-wide deadline: the wedged job requests its own via
    // deadline_ms. A wedged worker never computes, so the deadline is
    // pure kill latency — immune to sanitizer/load slowdowns — and
    // healthy cells (incl. the post-restart rerun below) stay unbounded.
    ServerOptions opt;
    opt.jobs = 2;
    opt.maxAttempts = 2;
    opt.retry.kind = fault::RetryKind::Immediate;
    DaemonFixture d("wedge", opt);
    RunConfig cfg = quickCell("fft");
    std::string served;
    bool sawFailed = false;
    unsigned attempts = 0;
    std::string reason;
    std::size_t failed = 0;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    EXPECT_FALSE(c.submit(
        {cfg}, 0,
        [&](const CellReply &cr) {
            served = cr.record;
            sawFailed = cr.failed;
            attempts = cr.attempts;
            reason = cr.errReason;
        },
        nullptr, &failed, /*deadlineMs=*/500));
    EXPECT_EQ(failed, 1u);
    EXPECT_TRUE(sawFailed);
    EXPECT_EQ(reason, "deadline");
    EXPECT_EQ(attempts, 2u);
    // The failure record is structured, parseable, and self-describing.
    JsonValue rec;
    ASSERT_TRUE(JsonValue::parse(served, rec)) << served;
    EXPECT_TRUE(rec.getBool("failed"));
    EXPECT_EQ(rec.getString("error"), "deadline");
    EXPECT_EQ(rec.getNumber("attempts"), 2.0);
    EXPECT_EQ(rec.getString("app"), "fft");
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("workers_deadline_killed"), 2.0);
    EXPECT_EQ(stats.getNumber("cells_quarantined"), 1.0);
    // Quarantine is not cached: nothing poisonous lands on disk, so a
    // restart (or just the hook clearing) gives the cell a fresh shot.
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
    d.stop();
    d.start(opt);
    Client c2;
    ASSERT_TRUE(c2.connect(d.sock));
    std::string reason2, detail2;
    EXPECT_TRUE(c2.submit({cfg}, 0,
                          [&](const CellReply &cr) {
                              reason2 = cr.errReason;
                              detail2 = cr.errDetail;
                          }))
        << c2.error() << " reason=" << reason2
        << " detail=" << detail2;
}

TEST(ServeDaemon, ResultCacheFsckQuarantinesCorruptFiles)
{
    DaemonFixture d("fsck");
    std::vector<RunConfig> cells{quickCell("fft"), quickCell("lu"),
                                 quickCell("radix")};
    std::vector<std::string> before(cells.size());
    {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        ASSERT_TRUE(c.submit(cells, 0, [&](const CellReply &cr) {
            before[cr.index] = cr.record;
        })) << c.error();
    }
    d.stop();

    // Vandalize all three cached results differently: truncation,
    // a single flipped bit (checksum territory), and zero length.
    namespace fs = std::filesystem;
    std::vector<std::string> files;
    for (const auto &e : fs::directory_iterator(d.dir + "/results"))
        files.push_back(e.path().string());
    ASSERT_EQ(files.size(), 3u);
    fs::resize_file(files[0], fs::file_size(files[0]) / 2);
    {
        std::FILE *f = std::fopen(files[1].c_str(), "r+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(fs::file_size(files[1]) / 2),
                   SEEK_SET);
        int ch = std::fgetc(f);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(ch ^ 0x01, f);
        std::fclose(f);
    }
    fs::resize_file(files[2], 0);

    d.start();
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("fsck_quarantined"), 3.0);
    // The rejects moved to quarantine/ rather than vanishing.
    std::size_t quarantined = 0;
    for ([[maybe_unused]] const auto &e :
         fs::directory_iterator(d.dir + "/quarantine"))
        ++quarantined;
    EXPECT_EQ(quarantined, 3u);
    // Recomputation must not trust any vandalized bytes...
    std::vector<std::string> after(cells.size());
    ASSERT_TRUE(c.submit(cells, 0, [&](const CellReply &cr) {
        after[cr.index] = cr.record;
        EXPECT_FALSE(cr.cached);
        EXPECT_FALSE(cr.failed);
    })) << c.error();
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("disk_hits"), 0.0);
    // ...and must reproduce the originals byte-for-byte mod wall_ms.
    auto strip = [](const std::string &s) {
        return s.substr(0, s.find(",\"wall_ms\""));
    };
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(strip(before[i]), strip(after[i])) << i;
}

TEST(ServeDaemon, OverloadedSubmitIsRejectedWithBackpressure)
{
    ServerOptions opt;
    opt.jobs = 1;
    opt.maxQueuedCells = 1;
    DaemonFixture d("overload", opt);
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    // Three distinct new cells against a backlog limit of one: the
    // daemon must refuse outright with an explicit overloaded reply.
    std::vector<RunConfig> big{quickCell("fft", 2), quickCell("fft", 4),
                               quickCell("lu", 2)};
    EXPECT_FALSE(c.submit(big, 0, nullptr));
    EXPECT_TRUE(c.overloaded()) << c.error();
    EXPECT_NE(c.error().find("overloaded"), std::string::npos);
    // The refusal is backpressure, not a dropped connection: the same
    // client retries smaller and is served.
    EXPECT_TRUE(c.ping()) << c.error();
    std::vector<RunConfig> small{quickCell("fft", 2)};
    EXPECT_TRUE(c.submit(small, 0, nullptr)) << c.error();
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("jobs_rejected"), 1.0);
    EXPECT_EQ(stats.getNumber("jobs_accepted"), 1.0);
}

TEST(ServeDaemon, CancellingRunningJobKillsWorkerPromptly)
{
    ChaosEnvGuard chaos("fft", "SMTPD_CHAOS_WEDGE_APP");
    // One worker, no deadline: without the cancel-kill the wedged
    // worker would hold the only slot until daemon shutdown.
    ServerOptions opt;
    opt.jobs = 1;
    DaemonFixture d("cancelkill", opt);
    std::thread wedged([&d] {
        Client c;
        if (!c.connect(d.sock))
            return;
        RunConfig cfg = quickCell("fft");
        c.submit({cfg}, 0, nullptr); // Returns after the cancel below.
    });
    // Wait for the cell to be dispatched into the worker.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    bool running = false;
    for (int i = 0; i < 500 && !running; ++i) {
        ASSERT_TRUE(c.stats(stats));
        running = stats.getNumber("cells_running") >= 1.0;
        if (!running)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(running) << "wedged cell never dispatched";
    std::size_t removed = 0;
    ASSERT_TRUE(c.cancel(1, &removed)) << c.error();
    EXPECT_EQ(removed, 1u);
    wedged.join();
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("workers_cancel_killed"), 1.0);
    EXPECT_EQ(stats.getNumber("cells_running"), 0.0);
    // The slot is genuinely free: a healthy job completes promptly.
    ::unsetenv("SMTPD_CHAOS_WEDGE_APP");
    RunConfig lu = quickCell("lu");
    EXPECT_TRUE(c.submit({lu}, 0, nullptr)) << c.error();
}

// ------------------------------------------------------ smtpctl CLI

/** Run the real smtpctl binary; returns its exit status (or -1). */
int
runSmtpctl(const std::string &args)
{
    std::string cmd = std::string(SMTPCTL_BIN) + " " + args +
                      " > /dev/null 2> /dev/null";
    int rc = std::system(cmd.c_str());
    return rc < 0 ? -1 : WEXITSTATUS(rc);
}

TEST(SmtpctlCli, ConnectionRefusedExitsOne)
{
    EXPECT_EQ(runSmtpctl("--socket=/nonexistent/no.sock ping"), 1);
    EXPECT_EQ(runSmtpctl("--socket=/nonexistent/no.sock run"), 1);
}

TEST(SmtpctlCli, UsageErrorsExitTwo)
{
    EXPECT_EQ(runSmtpctl(""), 2);
    EXPECT_EQ(runSmtpctl("--socket=x bogus-command"), 2);
    EXPECT_EQ(runSmtpctl("--socket=x --bogus-flag ping"), 2);
    EXPECT_EQ(runSmtpctl("--socket=x run --nodes=0"), 2);
    EXPECT_EQ(runSmtpctl("--socket=x run --deadline=-1"), 2);
}

TEST(SmtpctlCli, MalformedDaemonReplyExitsOne)
{
    // A fake daemon that answers every frame with garbage: smtpctl must
    // diagnose and exit 1, not crash or hang.
    std::string dir = "serve_test_fakectl";
    std::string cmd = "rm -rf '" + dir + "'";
    ASSERT_EQ(std::system(cmd.c_str()), 0);
    ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
    std::string sock = dir + "/fake.sock";
    int lfd = listenSocket(sock);
    ASSERT_GE(lfd, 0);
    std::thread fake([lfd] {
        int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0)
            return;
        std::string payload;
        readFrame(cfd, payload);
        writeFrame(cfd, "this is not json");
        ::close(cfd);
    });
    EXPECT_EQ(runSmtpctl("--socket=" + sock + " ping"), 1);
    fake.join();
    ::close(lfd);
    ASSERT_EQ(std::system(cmd.c_str()), 0);
}

TEST(SmtpctlCli, FailedCellsExitThree)
{
    ChaosEnvGuard chaos("fft", "SMTPD_CHAOS_WEDGE_APP");
    ServerOptions opt;
    opt.jobs = 1;
    opt.deadlineMs = 300;
    opt.maxAttempts = 1;
    DaemonFixture d("ctlfail", opt);
    // The wedge hook deadline-kills the cell's only attempt; the CLI
    // must report the quarantine as exit 3 (ran, but cells failed),
    // distinct from connection/daemon errors (1).
    EXPECT_EQ(runSmtpctl("--socket=" + d.sock +
                         " run --apps=fft --nodes=2 --scale=0.05"),
              3);
}

} // namespace
} // namespace smtp::serve
