/**
 * @file
 * Tests for the sweep-service layer (src/serve): the hardened JSON
 * parser, wire framing under hostile input, cell <-> JSON round-trips,
 * and a live in-process smtpd exercised over real UNIX sockets —
 * dedup across concurrent clients, protocol-error handling (truncated
 * frames, oversized length prefixes, unknown fields, disconnect
 * mid-stream), and restart rehydration from the on-disk result cache.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/proto.hpp"
#include "serve/runner.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace smtp::serve
{
namespace
{

// ------------------------------------------------------------- JSON

TEST(ServeJson, ParsesScalarsAndContainers)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(
        R"({"a":1,"b":-2.5e3,"c":"x","d":[true,false,null],"e":{}})", v));
    EXPECT_EQ(v.getNumber("a"), 1.0);
    EXPECT_EQ(v.getNumber("b"), -2500.0);
    EXPECT_EQ(v.getString("c"), "x");
    ASSERT_NE(v.find("d"), nullptr);
    EXPECT_EQ(v.find("d")->array().size(), 3u);
    EXPECT_TRUE(v.find("e")->isObject());
}

TEST(ServeJson, RoundTripsThroughDump)
{
    const char *text =
        R"({"s":"a\"b\\c\nd","n":0.1,"big":9007199254740992,"neg":-1})";
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(text, v));
    JsonValue again;
    ASSERT_TRUE(JsonValue::parse(v.dump(), again));
    // %.17g round-trips every double exactly.
    EXPECT_EQ(again.getNumber("n"), v.getNumber("n"));
    EXPECT_EQ(again.getNumber("big"), v.getNumber("big"));
    EXPECT_EQ(again.getString("s"), v.getString("s"));
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(ServeJson, RejectsHostileInput)
{
    const char *bad[] = {
        "",                        // empty
        "{",                       // unterminated object
        "[1,2",                    // unterminated array
        "{\"a\":}",                // missing value
        "{\"a\":1,}",              // trailing comma
        "{'a':1}",                 // single quotes
        "{\"a\":1} extra",         // trailing garbage
        "01",                      // leading zero
        "+1",                      // leading plus
        "1.",                      // bare fraction point
        "1e",                      // bare exponent
        "inf",                     // not JSON
        "nan",                     // not JSON
        "tru",                     // truncated literal
        "\"unterminated",          // unterminated string
        "\"bad \\q escape\"",      // unknown escape
        "\"\\u12\"",               // short \u
        "\"\\ud800\"",             // unpaired high surrogate
        "\"\\udc00\"",             // stray low surrogate
        "\"raw\x01control\"",      // raw control char
        "1e999",                   // overflows to inf
    };
    for (const char *text : bad) {
        JsonValue v;
        std::string err;
        EXPECT_FALSE(JsonValue::parse(text, v, &err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(ServeJson, RejectsDeepNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse(deep, v));
    // ...but reasonable nesting is fine.
    EXPECT_TRUE(JsonValue::parse("[[[[[[[[[[1]]]]]]]]]]", v));
}

TEST(ServeJson, SurrogatePairsDecodeToUtf8)
{
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse("\"\\ud83d\\ude00\"", v)); // U+1F600
    EXPECT_EQ(v.str(), "\xf0\x9f\x98\x80");
}

// ------------------------------------------------------------- wire

/** A connected AF_UNIX socketpair for framing tests. */
struct Pair
{
    int a = -1, b = -1;
    Pair()
    {
        int fds[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
        a = fds[0];
        b = fds[1];
    }
    ~Pair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }
};

TEST(ServeWire, FrameRoundTrip)
{
    Pair p;
    ASSERT_TRUE(writeFrame(p.a, "hello"));
    ASSERT_TRUE(writeFrame(p.a, "")); // empty frames are legal
    std::string payload;
    EXPECT_EQ(readFrame(p.b, payload), 1);
    EXPECT_EQ(payload, "hello");
    EXPECT_EQ(readFrame(p.b, payload), 1);
    EXPECT_EQ(payload, "");
    ::close(p.a);
    p.a = -1;
    EXPECT_EQ(readFrame(p.b, payload), 0); // clean EOF at boundary
}

TEST(ServeWire, TruncatedFrameIsAnError)
{
    Pair p;
    // Length prefix promises 100 bytes; deliver 3 and hang up.
    unsigned char hdr[4] = {100, 0, 0, 0};
    ASSERT_EQ(::send(p.a, hdr, 4, 0), 4);
    ASSERT_EQ(::send(p.a, "abc", 3, 0), 3);
    ::close(p.a);
    p.a = -1;
    std::string payload, err;
    EXPECT_EQ(readFrame(p.b, payload, &err), -1);
    EXPECT_NE(err.find("mid-frame"), std::string::npos) << err;
}

TEST(ServeWire, OversizedLengthPrefixIsRejectedNotAllocated)
{
    Pair p;
    unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff}; // ~4 GiB claim
    ASSERT_EQ(::send(p.a, hdr, 4, 0), 4);
    std::string payload, err;
    EXPECT_EQ(readFrame(p.b, payload, &err), -1);
    EXPECT_NE(err.find("cap"), std::string::npos) << err;
    EXPECT_FALSE(writeFrame(p.a, std::string(kMaxFrame + 1, 'x'), &err));
}

TEST(ServeWire, SplitterReassemblesBytewise)
{
    FrameSplitter sp;
    std::string wire;
    {
        Pair p;
        ASSERT_TRUE(writeFrame(p.a, "abc"));
        ASSERT_TRUE(writeFrame(p.a, "defg"));
        char buf[64];
        ssize_t n = ::recv(p.b, buf, sizeof(buf), 0);
        ASSERT_GT(n, 0);
        wire.assign(buf, static_cast<std::size_t>(n));
    }
    std::vector<std::string> frames;
    std::string payload;
    for (char c : wire) { // worst case: one byte at a time
        sp.feed(&c, 1);
        while (sp.next(payload))
            frames.push_back(payload);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0], "abc");
    EXPECT_EQ(frames[1], "defg");
    EXPECT_EQ(sp.pendingBytes(), 0u);
}

TEST(ServeWire, SplitterPoisonsOnOversizedPrefix)
{
    FrameSplitter sp;
    char hdr[4];
    std::memset(hdr, 0xff, 4);
    sp.feed(hdr, 4);
    std::string payload;
    EXPECT_FALSE(sp.next(payload));
    EXPECT_FALSE(sp.error().empty());
    sp.feed("more", 4); // ignored once poisoned
    EXPECT_FALSE(sp.next(payload));
}

// ------------------------------------------------------------ proto

TEST(ServeProto, CellRoundTripPreservesKey)
{
    RunConfig cfg;
    cfg.model = MachineModel::Int64KB;
    cfg.nodes = 4;
    cfg.ways = 2;
    cfg.app = "radix";
    cfg.scale = 0.25;
    ASSERT_TRUE(ExecParams::parse("parallel:3", cfg.exec));
    ASSERT_TRUE(parseCheckLevel("asserts", cfg.checkLevel));
    ASSERT_TRUE(SampleSpec::parse("1000:500:8", cfg.sample));
    ASSERT_TRUE(fault::FaultPlan::parse("seed=7,drop=0.01", cfg.faults));

    RunConfig back;
    std::string err;
    ASSERT_TRUE(cellFromJson(cellToJson(cfg), back, &err)) << err;
    EXPECT_EQ(cellKey(back), cellKey(cfg));
    EXPECT_EQ(back.app, cfg.app);
    EXPECT_EQ(back.exec.toString(), cfg.exec.toString());
    EXPECT_EQ(back.checkLevel, cfg.checkLevel);
    EXPECT_EQ(back.sample.warmup, cfg.sample.warmup);
}

TEST(ServeProto, UnknownCellFieldIsRejected)
{
    JsonValue cell = cellToJson(RunConfig{});
    cell.set("scael", JsonValue::makeNumber(0.5)); // typo'd "scale"
    RunConfig out;
    std::string err;
    EXPECT_FALSE(cellFromJson(cell, out, &err));
    EXPECT_NE(err.find("scael"), std::string::npos) << err;
}

TEST(ServeProto, MalformedCellValuesAreRejected)
{
    auto reject = [](const char *mutate_key, JsonValue v) {
        JsonValue cell = cellToJson(RunConfig{});
        cell.set(mutate_key, std::move(v));
        RunConfig out;
        std::string err;
        EXPECT_FALSE(cellFromJson(cell, out, &err))
            << mutate_key << " accepted";
    };
    reject("nodes", JsonValue::makeNumber(-1));
    reject("nodes", JsonValue::makeNumber(2.5));
    reject("nodes", JsonValue::makeNumber(1e18));
    reject("nodes", JsonValue::makeString("8"));
    reject("scale", JsonValue::makeNumber(0));
    reject("exec", JsonValue::makeString("hyperthreaded"));
    reject("check", JsonValue::makeString("paranoid"));
    reject("sample", JsonValue::makeString("1:2"));
    reject("las", JsonValue::makeNumber(1));
}

TEST(ServeProto, ResultRoundTrip)
{
    RunResult r;
    r.execTime = 123456789;
    r.memStallFraction = 0.42;
    r.sampled = true;
    r.sampleCount = 7;
    r.ipcMean = 1.25;
    r.ckpt = 1;
    r.execSerialized = true;
    r.wallMs = 98.5;
    RunResult back = resultFromJson(resultToJson(r));
    EXPECT_EQ(back.execTime, r.execTime);
    EXPECT_EQ(back.memStallFraction, r.memStallFraction);
    EXPECT_TRUE(back.sampled);
    EXPECT_EQ(back.sampleCount, r.sampleCount);
    EXPECT_EQ(back.ipcMean, r.ipcMean);
    EXPECT_EQ(back.ckpt, 1);
    EXPECT_TRUE(back.execSerialized);
    EXPECT_EQ(back.wallMs, r.wallMs);
}

TEST(ServeProto, Hex64RoundTrip)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0},
          std::uint64_t{0xdeadbeefcafe1234}}) {
        std::uint64_t back = 1;
        EXPECT_TRUE(parseHex64(hex64(v), back));
        EXPECT_EQ(back, v);
    }
    std::uint64_t out;
    EXPECT_FALSE(parseHex64("", out));
    EXPECT_FALSE(parseHex64("xyz", out));
    EXPECT_FALSE(parseHex64("00000000000000000", out)); // 17 digits
}

// ----------------------------------------------------------- daemon

/** An in-process smtpd on its own thread, torn down per test. */
struct DaemonFixture
{
    std::string dir;
    std::string sock;
    Server *server = nullptr;
    std::thread thread;

    explicit DaemonFixture(const char *tag, unsigned jobs = 2)
    {
        dir = std::string("serve_test_") + tag;
        sock = dir + "/smtpd.sock";
        start(jobs);
    }

    void
    start(unsigned jobs = 2)
    {
        ServerOptions opt;
        opt.socketPath = sock;
        opt.stateDir = dir;
        opt.jobs = jobs;
        server = new Server(opt);
        thread = std::thread([this] { server->run(); });
        // The listener may not be up yet; spin until a ping succeeds.
        Client probe;
        for (int i = 0; i < 200; ++i) {
            if (probe.connect(sock) && probe.ping())
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        FAIL() << "daemon did not come up at " << sock;
    }

    void
    stop()
    {
        if (server == nullptr)
            return;
        server->requestStop();
        thread.join();
        delete server;
        server = nullptr;
    }

    ~DaemonFixture()
    {
        stop();
        std::string cmd = "rm -rf '" + dir + "'";
        [[maybe_unused]] int rc = std::system(cmd.c_str());
    }
};

RunConfig
quickCell(const char *app = "fft", unsigned nodes = 2)
{
    RunConfig cfg;
    cfg.model = MachineModel::SMTp;
    cfg.app = app;
    cfg.nodes = nodes;
    cfg.scale = 0.05;
    return cfg;
}

TEST(ServeDaemon, ServesCellsAndDedupsAcrossConcurrentClients)
{
    DaemonFixture d("dedup");
    // Two clients, overlapping sweeps, submitted concurrently: the
    // shared cell must simulate once and both clients must receive
    // byte-identical records for it.
    std::vector<RunConfig> sweepA{quickCell("fft"), quickCell("lu")};
    std::vector<RunConfig> sweepB{quickCell("fft"), quickCell("radix")};
    std::vector<std::string> recA(sweepA.size()), recB(sweepB.size());
    bool okA = false, okB = false;
    std::thread ta([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        okA = c.submit(sweepA, 0, [&](const CellReply &cr) {
            recA[cr.index] = cr.record;
        });
    });
    std::thread tb([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        okB = c.submit(sweepB, 0, [&](const CellReply &cr) {
            recB[cr.index] = cr.record;
        });
    });
    ta.join();
    tb.join();
    ASSERT_TRUE(okA);
    ASSERT_TRUE(okB);
    for (const std::string &r : recA)
        EXPECT_FALSE(r.empty());
    for (const std::string &r : recB)
        EXPECT_FALSE(r.empty());
    // Byte-identity for the shared fft cell, mod wall_ms.
    auto strip = [](std::string s) {
        auto pos = s.find(",\"wall_ms\"");
        return s.substr(0, pos);
    };
    EXPECT_EQ(strip(recA[0]), strip(recB[0]));
    // The identical cell simulated exactly once.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_submitted"), 4.0);
    EXPECT_EQ(stats.getNumber("cells_simulated"), 3.0);
    EXPECT_EQ(stats.getNumber("dedup_hits"), 1.0);
}

TEST(ServeDaemon, ServedRecordMatchesLocalRunByteForByte)
{
    DaemonFixture d("vslocal");
    RunConfig cfg = quickCell();
    std::string served;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        served = cr.record;
    })) << c.error();
    RunResult local = runOnce(cfg);
    std::string localRec = jsonRecord(cfg, local);
    auto strip = [](const std::string &s) {
        return s.substr(0, s.find(",\"wall_ms\""));
    };
    ASSERT_FALSE(served.empty());
    EXPECT_EQ(strip(served), strip(localRec));
}

TEST(ServeDaemon, RestartRehydratesFromResultCache)
{
    DaemonFixture d("restart");
    RunConfig cfg = quickCell();
    std::string first;
    {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
            first = cr.record;
            EXPECT_FALSE(cr.cached);
        }));
    }
    d.stop();
    d.start();
    std::string second;
    bool cached = false;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        second = cr.record;
        cached = cr.cached;
    }));
    EXPECT_TRUE(cached);
    EXPECT_EQ(first, second); // verbatim replay, wall_ms included
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_simulated"), 0.0);
    EXPECT_EQ(stats.getNumber("disk_hits"), 1.0);
}

TEST(ServeDaemon, UnknownJobFieldsAreRejected)
{
    DaemonFixture d("unknown");
    int fd = connectSocket(d.sock);
    ASSERT_GE(fd, 0);
    // Top-level unknown field.
    ASSERT_TRUE(writeFrame(
        fd, R"({"op":"submit","cells":[{}],"turbo":true})"));
    std::string payload, err;
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    JsonValue reply;
    ASSERT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "error");
    EXPECT_NE(reply.getString("message").find("turbo"),
              std::string::npos);
    ::close(fd);
    // Unknown per-cell field.
    fd = connectSocket(d.sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(writeFrame(
        fd, R"({"op":"submit","cells":[{"app":"fft","warpdrive":9}]})"));
    ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
    ASSERT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "error");
    EXPECT_NE(reply.getString("message").find("warpdrive"),
              std::string::npos);
    ::close(fd);
}

TEST(ServeDaemon, HostileFramesGetErrorsNotCrashes)
{
    DaemonFixture d("hostile");
    // Oversized length prefix: daemon must answer with an error frame
    // (or hang up), and must still serve the next client.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        unsigned char hdr[4] = {0xff, 0xff, 0xff, 0x7f};
        ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
        std::string payload;
        readFrame(fd, payload); // error frame or EOF; either is fine
        ::close(fd);
    }
    // Bad JSON payload.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFrame(fd, "{not json"));
        std::string payload, err;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        JsonValue reply;
        ASSERT_TRUE(JsonValue::parse(payload, reply));
        EXPECT_EQ(reply.getString("type"), "error");
        ::close(fd);
    }
    // Truncated frame then disconnect: promise 50 bytes, send 5, hang
    // up. The daemon must just drop the connection.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        unsigned char hdr[4] = {50, 0, 0, 0};
        ASSERT_EQ(::send(fd, hdr, 4, MSG_NOSIGNAL), 4);
        ASSERT_EQ(::send(fd, "hello", 5, MSG_NOSIGNAL), 5);
        ::close(fd);
    }
    // Unsupported protocol version.
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFrame(fd, R"({"op":"ping","proto":99})"));
        std::string payload, err;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err;
        JsonValue reply;
        ASSERT_TRUE(JsonValue::parse(payload, reply));
        EXPECT_EQ(reply.getString("type"), "error");
        ::close(fd);
    }
    // After all of that, an honest client still gets served.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    EXPECT_TRUE(c.ping()) << c.error();
}

TEST(ServeDaemon, ClientDisconnectMidStreamAbandonsItsJob)
{
    DaemonFixture d("disco", /*jobs=*/1);
    // Submit a multi-cell job and hang up immediately: the daemon must
    // drop the waiters and keep serving others. (With jobs=1 the later
    // cells are still queued when the disconnect lands, exercising the
    // abandon path; completed cells stay cached either way.)
    {
        int fd = connectSocket(d.sock);
        ASSERT_GE(fd, 0);
        JsonValue req;
        std::string err;
        RunConfig a = quickCell("fft"), b = quickCell("lu"),
                  e = quickCell("radix");
        req = JsonValue::makeObject();
        req.set("op", JsonValue::makeString("submit"));
        JsonValue arr = JsonValue::makeArray();
        arr.append(cellToJson(a));
        arr.append(cellToJson(b));
        arr.append(cellToJson(e));
        req.set("cells", std::move(arr));
        ASSERT_TRUE(writeFrame(fd, req.dump(), &err)) << err;
        std::string payload;
        ASSERT_EQ(readFrame(fd, payload, &err), 1) << err; // accepted
        ::close(fd); // gone before any cell completes
    }
    // A different client's work proceeds normally.
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    std::string rec;
    ASSERT_TRUE(c.submit({quickCell("water")}, 5,
                         [&](const CellReply &cr) { rec = cr.record; }))
        << c.error();
    EXPECT_FALSE(rec.empty());
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("jobs_active"), 0.0);
}

/** Raw-socket submit; returns the fd with the "accepted" frame consumed. */
int
rawSubmit(const std::string &sock, const std::vector<RunConfig> &cells)
{
    int fd = connectSocket(sock);
    EXPECT_GE(fd, 0);
    JsonValue req = JsonValue::makeObject();
    req.set("op", JsonValue::makeString("submit"));
    JsonValue arr = JsonValue::makeArray();
    for (const RunConfig &c : cells)
        arr.append(cellToJson(c));
    req.set("cells", std::move(arr));
    std::string err;
    EXPECT_TRUE(writeFrame(fd, req.dump(), &err)) << err;
    std::string payload;
    EXPECT_EQ(readFrame(fd, payload, &err), 1) << err;
    JsonValue reply;
    EXPECT_TRUE(JsonValue::parse(payload, reply));
    EXPECT_EQ(reply.getString("type"), "accepted");
    return fd;
}

TEST(ServeDaemon, CancelRemovesQueuedCells)
{
    DaemonFixture d("cancel", /*jobs=*/1);
    // Job 1 occupies the single worker with a bigger cell; job 2's
    // four quick cells queue behind it (same priority, FIFO), so the
    // cancel deterministically catches all four still queued.
    RunConfig big = quickCell("fft");
    big.scale = 0.2;
    int fd1 = rawSubmit(d.sock, {big});
    int fd2 = rawSubmit(d.sock, {quickCell("fft"), quickCell("lu"),
                                 quickCell("radix"), quickCell("water")});
    Client killer;
    ASSERT_TRUE(killer.connect(d.sock));
    std::size_t removed = 0;
    ASSERT_TRUE(killer.cancel(2, &removed)) << killer.error();
    EXPECT_EQ(removed, 4u);
    // Job 2's owner gets "done" with everything skipped, no cells.
    std::string payload, err;
    ASSERT_EQ(readFrame(fd2, payload, &err), 1) << err;
    JsonValue done;
    ASSERT_TRUE(JsonValue::parse(payload, done));
    EXPECT_EQ(done.getString("type"), "done");
    EXPECT_EQ(done.getNumber("skipped"), 4.0);
    ::close(fd2);
    // Job 1 is untouched: its cell completes and streams normally.
    ASSERT_EQ(readFrame(fd1, payload, &err), 1) << err;
    JsonValue cellFrame;
    ASSERT_TRUE(JsonValue::parse(payload, cellFrame));
    EXPECT_EQ(cellFrame.getString("type"), "cell");
    ASSERT_EQ(readFrame(fd1, payload, &err), 1) << err;
    ASSERT_TRUE(JsonValue::parse(payload, done));
    EXPECT_EQ(done.getString("type"), "done");
    EXPECT_EQ(done.getNumber("skipped"), 0.0);
    ::close(fd1);
    JsonValue stats;
    ASSERT_TRUE(killer.stats(stats));
    EXPECT_EQ(stats.getNumber("jobs_cancelled"), 1.0);
    EXPECT_EQ(stats.getNumber("jobs_active"), 0.0);
}

TEST(ServeDaemon, ConcurrentCheckpointLibraryAccessSimulatesWarmupOnce)
{
    DaemonFixture d("ckptfarm");
    // Two clients submit the same cold sampled cell concurrently: the
    // daemon dedups them into one simulation, which populates the warm
    // checkpoint farm. A third submission of a *different* sample
    // count with the same warmup then restores the shared warmup
    // snapshot instead of re-simulating it.
    RunConfig sampled = quickCell();
    ASSERT_TRUE(SampleSpec::parse("20000:5000:4", sampled.sample));
    std::vector<std::string> recs(2);
    std::thread ta([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        c.submit({sampled}, 0,
                 [&](const CellReply &cr) { recs[0] = cr.record; });
    });
    std::thread tb([&] {
        Client c;
        ASSERT_TRUE(c.connect(d.sock));
        c.submit({sampled}, 0,
                 [&](const CellReply &cr) { recs[1] = cr.record; });
    });
    ta.join();
    tb.join();
    ASSERT_FALSE(recs[0].empty());
    EXPECT_EQ(recs[0], recs[1]); // one simulation, one record
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    JsonValue stats;
    ASSERT_TRUE(c.stats(stats));
    EXPECT_EQ(stats.getNumber("cells_simulated"), 1.0);
    EXPECT_EQ(stats.getNumber("dedup_hits"), 1.0);

    // Same warmup, different K: distinct cellKey (no dedup), but the
    // warmup snapshot is shared through the farm — the record reports
    // a checkpoint hit.
    RunConfig other = sampled;
    other.sample.count = 2;
    RunResult got;
    ASSERT_TRUE(c.submit({other}, 0, [&](const CellReply &cr) {
        got = cr.result;
    })) << c.error();
    EXPECT_EQ(got.ckpt, 1) << "warmup snapshot was not shared";
}

TEST(ServeDaemon, CheckedCellRunsUnderDaemonAndReportsCheckLevel)
{
    DaemonFixture d("checked");
    RunConfig cfg = quickCell();
    ASSERT_TRUE(ExecParams::parse("parallel:2", cfg.exec));
    ASSERT_TRUE(parseCheckLevel("asserts", cfg.checkLevel));
    std::string rec;
    Client c;
    ASSERT_TRUE(c.connect(d.sock));
    ASSERT_TRUE(c.submit({cfg}, 0, [&](const CellReply &cr) {
        rec = cr.record;
    })) << c.error();
    EXPECT_NE(rec.find("\"check\":\"asserts\""), std::string::npos)
        << rec;
    EXPECT_NE(rec.find("\"exec\":\"parallel:2\""), std::string::npos)
        << rec;
    // Unchecked twin must agree on simulated fields.
    RunConfig plain = quickCell();
    std::string plainRec;
    ASSERT_TRUE(c.submit({plain}, 0, [&](const CellReply &cr) {
        plainRec = cr.record;
    }));
    auto ticks = [](const std::string &s) {
        auto pos = s.find("\"exec_ticks\":");
        return s.substr(pos, s.find(',', pos) - pos);
    };
    EXPECT_EQ(ticks(rec), ticks(plainRec));
}

} // namespace
} // namespace smtp::serve
