/**
 * @file
 * Telemetry subsystem tests: ring-buffer semantics, payload pack
 * round-trips, the binary container, golden-file byte stability of the
 * text exporters, and the zero-perturbation contract (tracing on/off
 * gives bit-identical simulated time).
 *
 * The golden files live in tests/golden/; regenerate after an
 * intentional format change with
 *
 *   SMTP_REGOLD=1 ./build/tests/smtp_tests --gtest_filter='TraceGolden*'
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "machine/machine.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "workload/app.hpp"

#ifndef SMTP_GOLDEN_DIR
#define SMTP_GOLDEN_DIR "tests/golden"
#endif

namespace smtp
{
namespace
{

using trace::Event;
using trace::EventId;

// ------------------------------------------------------------ TraceBuffer

TEST(TraceBuffer, StoresOldestFirstBeforeWrap)
{
    trace::TraceBuffer buf("t", 0, trace::Category::Cpu, 8);
    for (std::uint64_t i = 0; i < 5; ++i)
        buf.record(100 + i, EventId::FetchSteal, i);
    EXPECT_EQ(buf.recorded(), 5u);
    EXPECT_EQ(buf.stored(), 5u);
    std::vector<Event> out;
    buf.snapshot(out);
    ASSERT_EQ(out.size(), 5u);
    EXPECT_EQ(out.front().tick(), 100u);
    EXPECT_EQ(out.back().tick(), 104u);
    EXPECT_EQ(out.back().id(), EventId::FetchSteal);
}

TEST(TraceBuffer, RingWrapKeepsNewest)
{
    trace::TraceBuffer buf("t", 0, trace::Category::Cpu, 4);
    for (std::uint64_t i = 0; i < 11; ++i)
        buf.record(i, EventId::NetHop, i * 7);
    EXPECT_EQ(buf.recorded(), 11u);
    EXPECT_EQ(buf.stored(), 4u);
    std::vector<Event> out;
    buf.snapshot(out);
    ASSERT_EQ(out.size(), 4u);
    // Newest four, oldest first: ticks 7, 8, 9, 10.
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].tick(), 7 + i);
        EXPECT_EQ(out[i].arg, (7 + i) * 7);
    }
}

TEST(TraceManager, CategoryMaskSuppressesBuffers)
{
    trace::TraceConfig cfg;
    cfg.enabled = true;
    cfg.categories = trace::categoryBit(trace::Category::Mem);
    trace::TraceManager mgr(cfg);
    EXPECT_EQ(mgr.createBuffer("cpu", 0, trace::Category::Cpu), nullptr);
    trace::TraceBuffer *mem = mgr.createBuffer("mc", 0, trace::Category::Mem);
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(mgr.buffers().size(), 1u);
}

// ------------------------------------------------------- pack round-trips

TEST(TracePack, AllPayloadsRoundTrip)
{
    std::uint64_t s = trace::packStall(3, trace::stallStore);
    EXPECT_EQ(trace::stallTid(s), 3u);
    EXPECT_EQ(trace::stallCause(s), trace::stallStore);

    std::uint64_t m = trace::packMsg(0x12345680, proto::MsgType::ReqGetx,
                                     /*src=*/2, /*requester=*/1, /*aux=*/9);
    EXPECT_EQ(trace::msgLine(m), lineAlign(Addr{0x12345680}));
    EXPECT_EQ(trace::msgType(m), proto::MsgType::ReqGetx);
    EXPECT_EQ(trace::msgSrc(m), 2u);
    EXPECT_EQ(trace::msgReq(m), 1u);
    EXPECT_EQ(trace::msgAux(m), 9u);

    std::uint64_t d = trace::packDone(123456, proto::MsgType::PiGet);
    EXPECT_EQ(trace::doneLatency(d), 123456u);
    EXPECT_EQ(trace::doneType(d), proto::MsgType::PiGet);
    // Latency saturates at 48 bits instead of corrupting the type.
    std::uint64_t dcap = trace::packDone(~Tick{0}, proto::MsgType::PiGet);
    EXPECT_EQ(trace::doneLatency(dcap), (1ull << 48) - 1);
    EXPECT_EQ(trace::doneType(dcap), proto::MsgType::PiGet);

    std::uint64_t h = trace::packMshr(0x1000, 5, 7);
    EXPECT_EQ(trace::msgLine(h), lineAlign(Addr{0x1000}));
    EXPECT_EQ(trace::mshrIdx(h), 5u);
    EXPECT_EQ(trace::mshrInUse(h), 7u);

    std::uint64_t r = trace::packSdram(128, true, 42000);
    EXPECT_EQ(trace::sdramBytes(r), 128u);
    EXPECT_TRUE(trace::sdramWrite(r));
    EXPECT_EQ(trace::sdramQueueDelay(r), 42000u);

    proto::Message msg;
    msg.type = proto::MsgType::RplDataEx;
    msg.src = 3;
    msg.dest = 0;
    msg.traceId = 0xdeadbeef;
    std::uint64_t n = trace::packNet(msg);
    EXPECT_EQ(trace::netTraceId(n), 0xdeadbeefu);
    EXPECT_EQ(trace::netType(n), proto::MsgType::RplDataEx);
    EXPECT_EQ(trace::netSrc(n), 3u);
    EXPECT_EQ(trace::netDest(n), 0u);
    EXPECT_EQ(trace::netVnet(n), proto::vnetOf(proto::MsgType::RplDataEx));

    std::uint64_t b = trace::packBackpressure(2, 17);
    EXPECT_EQ(trace::bpVnet(b), 2u);
    EXPECT_EQ(trace::bpDepth(b), 17u);

    std::uint64_t x = trace::packExec(12, 3, 0xbeef, 6, 2);
    EXPECT_EQ(trace::execInsts(x), 12u);
    EXPECT_EQ(trace::execSends(x), 3u);
    EXPECT_EQ(trace::execAck(x), 0xbeefu);
    EXPECT_EQ(trace::execMshr(x), 6u);
    EXPECT_EQ(trace::execNode(x), 2u);
}

// ----------------------------------------------------- binary round-trip

trace::TraceData
makeSyntheticData()
{
    trace::TraceData d;
    d.nodes = 2;
    d.execTicks = 5 * tickPerUs;
    d.intervalTicks = tickPerUs;
    d.buffers.resize(2);
    d.buffers[0].name = "cpu";
    d.buffers[0].node = 0;
    d.buffers[0].category =
        static_cast<std::uint8_t>(trace::Category::Cpu);
    d.buffers[0].recorded = 3;
    d.buffers[0].events = {
        {trace::makeMeta(100, EventId::ThreadStallBegin),
         trace::packStall(1, trace::stallLoad)},
        {trace::makeMeta(400, EventId::ThreadStallEnd),
         trace::packStall(1, trace::stallLoad)},
        {trace::makeMeta(500, EventId::FetchSteal), trace::packStall(1, 4)},
    };
    d.buffers[1].name = "net";
    d.buffers[1].node = 1;
    d.buffers[1].category =
        static_cast<std::uint8_t>(trace::Category::Network);
    d.buffers[1].recorded = 9; // ring dropped some
    d.buffers[1].events = {
        {trace::makeMeta(800, EventId::NetBackpressure),
         trace::packBackpressure(1, 5)},
    };
    d.seriesNames = {"net.msgs", "n0.l2Misses"};
    d.sampleTicks = {tickPerUs, 2 * tickPerUs};
    d.samples = {1.0, 2.0, 3.5, 4.0};
    return d;
}

TEST(TraceBinary, WriteReadRoundTrip)
{
    trace::TraceData d = makeSyntheticData();
    std::string path = testing::TempDir() + "roundtrip.smtptrace";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_TRUE(trace::writeBinary(d, f));
    std::fclose(f);

    trace::TraceData r;
    std::string err;
    ASSERT_TRUE(trace::readTrace(path, r, err)) << err;
    EXPECT_EQ(r.nodes, d.nodes);
    EXPECT_EQ(r.execTicks, d.execTicks);
    EXPECT_EQ(r.intervalTicks, d.intervalTicks);
    ASSERT_EQ(r.buffers.size(), d.buffers.size());
    for (std::size_t i = 0; i < d.buffers.size(); ++i) {
        EXPECT_EQ(r.buffers[i].name, d.buffers[i].name);
        EXPECT_EQ(r.buffers[i].node, d.buffers[i].node);
        EXPECT_EQ(r.buffers[i].category, d.buffers[i].category);
        EXPECT_EQ(r.buffers[i].recorded, d.buffers[i].recorded);
        EXPECT_EQ(r.buffers[i].events, d.buffers[i].events);
    }
    EXPECT_EQ(r.seriesNames, d.seriesNames);
    EXPECT_EQ(r.sampleTicks, d.sampleTicks);
    EXPECT_EQ(r.samples, d.samples);
    std::remove(path.c_str());
}

TEST(TraceBinary, RejectsGarbage)
{
    std::string path = testing::TempDir() + "garbage.smtptrace";
    std::ofstream(path, std::ios::binary) << "not a trace file at all";
    trace::TraceData r;
    std::string err;
    EXPECT_FALSE(trace::readTrace(path, r, err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

// --------------------------------------------- golden files + no-perturb

/** The scripted 2-node run behind the golden files. */
Tick
goldenRun(bool traced, trace::TraceData *out)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    mp.appThreadsPerNode = 1;
    mp.trace.enabled = traced;
    // Small rings keep the golden JSON reviewable; the newest events
    // win, which is also what the wedge reports show.
    mp.trace.bufferEvents = 64;
    mp.trace.intervalCycles = 20000;
    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp("FFT");
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = 2;
    env.threadsPerNode = 1;
    env.scale = 0.25;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));
    Tick exec = machine.run();
    if (out != nullptr && machine.traceManager() != nullptr)
        machine.traceManager()->snapshot(*out, exec, mp.nodes);
    return exec;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

void
compareOrRegold(const std::string &got, const char *golden_name)
{
    std::string path = std::string(SMTP_GOLDEN_DIR) + "/" + golden_name;
    if (std::getenv("SMTP_REGOLD") != nullptr) {
        std::ofstream os(path, std::ios::binary);
        ASSERT_TRUE(os.good()) << "cannot regold " << path;
        os << got;
        return;
    }
    std::string want = slurp(path);
    ASSERT_FALSE(want.empty())
        << path << " missing; run with SMTP_REGOLD=1 to create it";
    // One EXPECT for the whole file keeps failures readable; the first
    // divergent offset localizes the change.
    if (got != want) {
        std::size_t at = 0;
        while (at < got.size() && at < want.size() && got[at] == want[at])
            ++at;
        FAIL() << golden_name << " diverges from golden at byte " << at
               << " (got " << got.size() << " bytes, want " << want.size()
               << "); if the format change is intentional, regenerate "
                  "with SMTP_REGOLD=1";
    }
}

TEST(TraceGolden, PerfettoAndCsvAreByteStable)
{
    if (!trace::compiledIn)
        GTEST_SKIP() << "instrumentation compiled out (SMTP_TRACE=OFF)";
    trace::TraceData data;
    Tick exec = goldenRun(true, &data);
    ASSERT_GT(exec, 0u);
    ASSERT_FALSE(data.buffers.empty());

    // The 2-node run exercises the real fabric: injections must stitch
    // to deliveries via the stamped traceId.
    std::uint64_t injects = 0, delivers = 0;
    for (const auto &b : data.buffers)
        for (const auto &e : b.events) {
            if (e.id() == EventId::NetInject && trace::netTraceId(e.arg) != 0)
                ++injects;
            if (e.id() == EventId::NetDeliver &&
                trace::netTraceId(e.arg) != 0)
                ++delivers;
        }
    EXPECT_GT(injects, 0u);
    EXPECT_GT(delivers, 0u);

    std::ostringstream json;
    trace::writePerfetto(data, json);
    compareOrRegold(json.str(), "trace_2node_fft.json");

    std::ostringstream csv;
    trace::writeIntervalCsv(data, csv);
    compareOrRegold(csv.str(), "trace_2node_fft.csv");
}

TEST(TraceGolden, TracingDoesNotPerturbTiming)
{
    Tick off = goldenRun(false, nullptr);
    Tick on = goldenRun(true, nullptr);
    EXPECT_EQ(off, on)
        << "enabling telemetry changed the simulated execution time";
}

} // namespace
} // namespace smtp
