/**
 * @file
 * Unit tests for the out-of-order SMT pipeline: commit correctness,
 * dependency serialization, memory-stall accounting, store-buffer
 * draining, branch prediction and squash recovery, SMT co-execution,
 * register-pressure stalls, SC replay, prefetch non-blocking, and TLB
 * behaviour. The cache is real; the memory controller is replaced by an
 * auto-fill responder.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "scripted_source.hpp"

#include "cache/hierarchy.hpp"
#include "cpu/smt_cpu.hpp"

namespace smtp::testing
{
namespace
{

using proto::Message;
using proto::MsgType;

/** A self-contained single-node CPU + cache with auto-fill memory. */
struct MiniCpu
{
    explicit MiniCpu(unsigned app_threads,
                     Tick fill_delay = 100 * tickPerNs)
        : clock(2000), cache(eq, clock, 0, CacheParams{})
    {
        CpuParams cp;
        cp.appThreads = app_threads;
        cp.intRegs = 32 * (app_threads + 1) + 96;
        cp.fpRegs = cp.intRegs;
        cpu = std::make_unique<SmtCpu>(eq, cp, cache);
        cache.connect(
            [this, fill_delay](const Message &m) {
                if (m.type == MsgType::PiPut ||
                    m.type == MsgType::PiPutClean) {
                    cache.clearWbPending(m.addr);
                    return true;
                }
                Message fill;
                fill.addr = m.addr;
                fill.mshr = m.mshr;
                fill.type = m.type == MsgType::PiGet ? MsgType::CcFillSh
                            : m.type == MsgType::PiUpgrade
                                ? MsgType::CcUpgradeGrant
                                : MsgType::CcFillEx;
                eq.scheduleIn(fill_delay,
                              [this, fill] { cache.deliverFill(fill); });
                return true;
            },
            [this](Addr, bool, EventQueue::Callback fn) {
                if (fn)
                    eq.scheduleIn(80 * tickPerNs, std::move(fn));
            });
    }

    void
    run(Tick limit = 5000 * tickPerUs)
    {
        for (unsigned t = 0; t < srcUsed; ++t)
            cpu->setSource(static_cast<ThreadId>(t), &src[t]);
        cpu->start();
        eq.run(eq.curTick() + limit);
        ASSERT_TRUE(cpu->appThreadsDone())
            << "pipeline wedged before completing all threads";
    }

    ScriptedSource &
    thread(unsigned t)
    {
        srcUsed = std::max(srcUsed, t + 1);
        return src[t];
    }

    EventQueue eq;
    ClockDomain clock;
    CacheHierarchy cache;
    std::unique_ptr<SmtCpu> cpu;
    std::array<ScriptedSource, 4> src;
    unsigned srcUsed = 0;
};

TEST(CpuTest, StraightLineCodeCommitsEverything)
{
    MiniCpu m(1);
    for (int i = 0; i < 200; ++i)
        m.thread(0).alu(static_cast<std::uint8_t>(1 + i % 20));
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 200u);
    EXPECT_EQ(m.cpu->threadStats(0).mispredicts.value(), 0u);
}

TEST(CpuTest, DependencyChainSlowerThanIndependent)
{
    // Identical I-footprints (loops), identical memory behaviour; only
    // the data dependencies differ.
    MiniCpu indep(1);
    indep.thread(0).loop(300, [&](unsigned) {
        for (int k = 0; k < 6; ++k)
            indep.thread(0).alu(static_cast<std::uint8_t>(1 + k));
    });
    indep.run();
    auto independent_cycles = indep.cpu->cycles.value();

    MiniCpu chain(1);
    chain.thread(0).loop(300, [&](unsigned) {
        for (int k = 0; k < 6; ++k)
            chain.thread(0).alu(1, 1, 1);
    });
    chain.run();
    auto chained_cycles = chain.cpu->cycles.value();
    EXPECT_GT(chained_cycles, independent_cycles + independent_cycles / 2);
}

TEST(CpuTest, MulAndDivLatenciesRespected)
{
    MiniCpu mul(1);
    for (int i = 0; i < 50; ++i)
        mul.thread(0).alu(1, 1, regNone, OpClass::IntMul);
    mul.run();
    EXPECT_GE(mul.cpu->cycles.value(), 50u * 6);

    MiniCpu dv(1);
    for (int i = 0; i < 10; ++i)
        dv.thread(0).alu(1, 1, regNone, OpClass::IntDiv);
    dv.run();
    EXPECT_GE(dv.cpu->cycles.value(), 10u * 35);
}

TEST(CpuTest, LoadMissStallsGraduationAndCountsMemoryStall)
{
    MiniCpu m(1, 500 * tickPerNs);
    m.thread(0).load(0x10000, 1);
    m.thread(0).alu(2, 1);
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 2u);
    EXPECT_GT(m.cpu->threadStats(0).memStallCycles.value(), 500u);
}

TEST(CpuTest, StoresDrainThroughStoreBuffer)
{
    MiniCpu m(1);
    for (int i = 0; i < 8; ++i)
        m.thread(0).store(0x20000 + i * 8);
    m.run();
    m.eq.run(m.eq.curTick() + 100 * tickPerUs);
    EXPECT_EQ(m.cache.l2State(0x20000), LineState::Mod);
}

TEST(CpuTest, StoreToLoadForwardingAvoidsCacheMiss)
{
    MiniCpu m(1, 2000 * tickPerNs); // slow memory: forwarding must not wait
    m.thread(0).store(0x30000, regNone);
    m.thread(0).load(0x30000, 1);
    m.thread(0).alu(2, 1);
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 3u);
}

TEST(CpuTest, WellBehavedLoopPredictsWell)
{
    MiniCpu m(1);
    m.thread(0).loop(200, [&](unsigned) {
        m.thread(0).alu(1);
        m.thread(0).alu(2);
    });
    m.run();
    const auto &st = m.cpu->threadStats(0);
    EXPECT_EQ(st.committed.value(), 200u * 3);
    // Non-speculative history update lags a tight in-flight loop;
    // a handful of extra early mispredicts is expected.
    EXPECT_LT(st.mispredicts.value(), 20u);
}

TEST(CpuTest, AlternatingBranchesSquashAndRecover)
{
    MiniCpu m(1);
    for (int i = 0; i < 100; ++i) {
        m.thread(0).alu(1);
        bool taken = (i % 3) == 0;
        m.thread(0).branch(taken, m.thread(0).pc() + 4);
        m.thread(0).alu(2);
    }
    m.run();
    const auto &st = m.cpu->threadStats(0);
    EXPECT_EQ(st.committed.value(), 300u);
    EXPECT_GT(st.mispredicts.value(), 0u);
    EXPECT_GT(st.wrongPathFetched.value(), 0u);
    EXPECT_GT(st.squashedInsts.value(), 0u);
}

TEST(CpuTest, TwoThreadsBothComplete)
{
    MiniCpu m(2);
    for (int i = 0; i < 400; ++i) {
        m.thread(0).alu(static_cast<std::uint8_t>(1 + i % 20));
        m.thread(1).alu(static_cast<std::uint8_t>(1 + i % 20));
    }
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 400u);
    EXPECT_EQ(m.cpu->threadStats(1).committed.value(), 400u);
}

TEST(CpuTest, SmtOverlapsMemoryLatency)
{
    // Thread 0 pounds memory; thread 1 is pure compute (loops, so the
    // instruction footprint is small and identical across runs).
    auto mem_program = [](ScriptedSource &s) {
        s.loop(60, [&](unsigned i) {
            s.load(0x40000 + i * 2048, 1);
            s.alu(2, 1);
        });
    };
    auto compute_program = [](ScriptedSource &s) {
        s.loop(400, [&](unsigned) {
            for (int k = 0; k < 5; ++k)
                s.alu(static_cast<std::uint8_t>(1 + k));
        });
    };

    MiniCpu smt(2, 400 * tickPerNs);
    mem_program(smt.thread(0));
    compute_program(smt.thread(1));
    smt.run();
    auto smt_cycles = smt.cpu->cycles.value();

    MiniCpu mem(1, 400 * tickPerNs);
    mem_program(mem.thread(0));
    mem.run();
    auto mem_solo = mem.cpu->cycles.value();

    MiniCpu comp(1, 400 * tickPerNs);
    compute_program(comp.thread(0));
    comp.run();
    auto compute_solo = comp.cpu->cycles.value();

    EXPECT_LT(smt_cycles, mem_solo + compute_solo);
}

TEST(CpuTest, PrefetchesDoNotBlockCommit)
{
    MiniCpu m(1, 1000 * tickPerNs);
    for (int i = 0; i < 10; ++i) {
        m.thread(0).prefetch(0x50000 + i * 128);
        m.thread(0).alu(1);
    }
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 20u);
    EXPECT_GE(m.cache.prefetchesIssued.value(), 1u);
}

TEST(CpuTest, PrefetchHidesLatency)
{
    // Prefetch well ahead of use vs. demand misses.
    // Twelve prefetches stay within the 16-MSHR budget (prefetching
    // more would starve demand instruction fetches of MSHRs — which the
    // hand-tuned paper workloads avoid too).
    auto program = [](ScriptedSource &s, bool use_prefetch) {
        if (use_prefetch) {
            for (int i = 0; i < 12; ++i)
                s.prefetch(0x50000 + i * 128);
        }
        // Filler compute gives the prefetches time in flight.
        s.loop(1500, [&](unsigned) {
            for (int k = 0; k < 4; ++k)
                s.alu(static_cast<std::uint8_t>(1 + k));
        });
        for (int i = 0; i < 12; ++i) {
            s.load(0x50000 + i * 128, 1);
            s.alu(2, 1);
        }
    };
    MiniCpu with(1, 300 * tickPerNs);
    program(with.thread(0), true);
    with.run();
    MiniCpu without(1, 300 * tickPerNs);
    program(without.thread(0), false);
    without.run();
    EXPECT_LT(with.cpu->cycles.value(), without.cpu->cycles.value());
}

TEST(CpuTest, ScReplayOnInvalidatedLoad)
{
    MiniCpu m(1, 150 * tickPerNs);
    // A dependent divide chain blocks the head (~20*35 cycles = 350 ns)
    // while the younger load completes at ~150 ns; the invalidation
    // lands in between. (Twenty divides keep the 32-entry IQ open.)
    for (int i = 0; i < 20; ++i)
        m.thread(0).alu(1, 1, regNone, OpClass::IntDiv);
    m.thread(0).load(0x60000, 2);
    m.thread(0).alu(3, 2);
    m.cpu->setSource(0, &m.src[0]);
    m.srcUsed = 1;
    m.cpu->start();
    // The first instruction fetch itself misses to memory (~150 ns), so
    // give the divide chain time to become the commit blocker.
    m.eq.run(m.eq.curTick() + 400 * tickPerNs);
    ASSERT_FALSE(m.cpu->appThreadsDone());
    ASSERT_EQ(m.cache.l2State(0x60000), LineState::Sh)
        << "load should have filled by now";
    m.cache.applyProbe(MsgType::CcInval, 0x60000);
    m.eq.run(m.eq.curTick() + 5000 * tickPerUs);
    ASSERT_TRUE(m.cpu->appThreadsDone());
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 22u);
    EXPECT_EQ(m.cpu->threadStats(0).replays.value(), 1u);
}

TEST(CpuTest, RegisterPressureStallsButCompletes)
{
    MiniCpu m(1);
    m.thread(0).alu(1, regNone, regNone, OpClass::IntDiv);
    for (int i = 0; i < 500; ++i)
        m.thread(0).alu(static_cast<std::uint8_t>(2 + i % 26), 1);
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 501u);
}

TEST(CpuTest, TlbMissesAreCountedAndSurvived)
{
    MiniCpu m(1);
    for (int i = 0; i < 200; ++i)
        m.thread(0).load(0x100000 + static_cast<Addr>(i) * 2 * pageBytes,
                         1);
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 200u);
    EXPECT_GT(m.cpu->threadStats(0).dtlbMisses.value(), 100u);
}

TEST(CpuTest, FpPipelineExecutes)
{
    MiniCpu m(1);
    for (int i = 0; i < 100; ++i) {
        m.thread(0).fp(static_cast<std::uint8_t>(fpRegBase + 1 + i % 10),
                       fpRegBase, regNone, OpClass::FpMul);
        m.thread(0).fp(static_cast<std::uint8_t>(fpRegBase + 11 + i % 10),
                       static_cast<std::uint8_t>(fpRegBase + 1 + i % 10),
                       regNone, OpClass::FpAdd);
    }
    m.run();
    EXPECT_EQ(m.cpu->threadStats(0).committed.value(), 200u);
}

TEST(CpuTest, FourWaySmtCompletes)
{
    MiniCpu m(4);
    for (unsigned t = 0; t < 4; ++t) {
        for (int i = 0; i < 300; ++i) {
            if (i % 5 == 0)
                m.thread(t).load(0x80000 + t * 0x10000 + i * 32, 1);
            else
                m.thread(t).alu(static_cast<std::uint8_t>(1 + i % 20));
        }
    }
    m.run();
    for (unsigned t = 0; t < 4; ++t)
        EXPECT_EQ(m.cpu->threadStats(static_cast<ThreadId>(t))
                      .committed.value(),
                  300u);
}

TEST(CpuTest, IcacheMissesStallFetch)
{
    MiniCpu m(1);
    for (int i = 0; i < 600; ++i)
        m.thread(0).alu(static_cast<std::uint8_t>(1 + i % 20));
    m.run();
    EXPECT_GT(m.cache.l1iMisses.value(), 10u);
}

TEST(CpuTest, IcountPrefersLowOccupancyThread)
{
    // One thread stalls on memory constantly; the other must still make
    // steady progress thanks to ICOUNT.
    MiniCpu m(2, 800 * tickPerNs);
    m.thread(0).loop(40, [&](unsigned i) {
        m.thread(0).load(0x90000 + i * 2048, 1);
        m.thread(0).alu(2, 1);
        m.thread(0).alu(3, 2);
    });
    m.thread(1).loop(500, [&](unsigned) {
        for (int k = 0; k < 4; ++k)
            m.thread(1).alu(static_cast<std::uint8_t>(1 + k));
    });
    m.run();
    // The compute thread's IPC must stay healthy despite the memory hog.
    double ipc1 = static_cast<double>(
                      m.cpu->threadStats(1).committed.value()) /
                  static_cast<double>(m.cpu->cycles.value());
    EXPECT_GT(ipc1, 0.25);
}

} // namespace
} // namespace smtp::testing
