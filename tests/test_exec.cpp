/**
 * @file
 * The parallel kernel's headline contract: --exec=serial and
 * --exec=parallel[:T] run the *same* windowed shard engine and must
 * produce bit-identical simulated results — execution time, committed
 * instructions, the full stats dump, and exported telemetry — for
 * every machine model, on either event kernel, under an active fault
 * plan, and across checkpoint save/restore. Host-thread count may only
 * change wall-clock time, never simulated state.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "machine/machine.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

TEST(ExecParams, ParseAcceptsValidSpecs)
{
    ExecParams p;
    EXPECT_TRUE(ExecParams::parse("serial", p));
    EXPECT_FALSE(p.parallel());
    EXPECT_EQ(p.toString(), "serial");

    EXPECT_TRUE(ExecParams::parse("parallel", p));
    EXPECT_TRUE(p.parallel());
    EXPECT_EQ(p.threads, 0u);
    EXPECT_EQ(p.toString(), "parallel");

    EXPECT_TRUE(ExecParams::parse("parallel:4", p));
    EXPECT_TRUE(p.parallel());
    EXPECT_EQ(p.threads, 4u);
    EXPECT_EQ(p.toString(), "parallel:4");

    EXPECT_TRUE(ExecParams::parse("parallel:1", p));
    EXPECT_EQ(p.threads, 1u);
}

TEST(ExecParams, ParseRejectsMalformedSpecs)
{
    ExecParams p;
    std::string err;
    for (const char *bad : {"", "Serial", "par", "parallel:", "parallel:0",
                            "parallel:x", "parallel:4x", "parallel:2000",
                            "serial:2"}) {
        err.clear();
        EXPECT_FALSE(ExecParams::parse(bad, p, &err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
}

/** One machine + FFT workload, parameterized on exec mode. */
struct ExecSim
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    std::unique_ptr<FuncMem> mem;

    ExecSim(MachineModel model, const ExecParams &exec,
            bool heap_kernel = false,
            const fault::FaultPlan *faults = nullptr, bool traced = false,
            unsigned nodes = 4, double scale = 0.25,
            check::CheckLevel check = check::CheckLevel::Off)
    {
        MachineParams mp;
        mp.model = model;
        mp.nodes = nodes;
        mp.appThreadsPerNode = 1;
        mp.exec = exec;
        mp.eventKernel = heap_kernel ? EventQueue::Kernel::Heap
                                     : EventQueue::Kernel::Wheel;
        if (faults != nullptr)
            mp.faults = *faults;
        mp.trace.enabled = traced;
        mp.checkLevel = check;
        machine = std::make_unique<Machine>(mp);
        mem = std::make_unique<FuncMem>();
        app = workload::makeApp("FFT");
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = nodes;
        env.threadsPerNode = 1;
        env.scale = scale;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
    }
};

std::string
statsOf(Machine &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

ExecParams
par(unsigned threads)
{
    ExecParams p;
    p.mode = ExecParams::Mode::Parallel;
    p.threads = threads;
    return p;
}

/**
 * The twin experiment: a serial-reference run vs. the same cell under
 * parallel:T for several T. Everything observable must match exactly.
 */
void
expectExecIdentical(MachineModel model, bool heap_kernel = false,
                    const fault::FaultPlan *faults = nullptr)
{
    ExecSim ref(model, ExecParams{}, heap_kernel, faults);
    Tick t_ref = ref.machine->run();
    ASSERT_GT(t_ref, 0u);
    EXPECT_EQ(ref.machine->hostThreads(), 1u);
    std::string golden = statsOf(*ref.machine);

    for (unsigned threads : {2u, 4u, 8u}) {
        ExecSim sim(model, par(threads), heap_kernel, faults);
        // Thread count clamps to the shard count (4 nodes here).
        EXPECT_EQ(sim.machine->hostThreads(), std::min(threads, 4u));
        EXPECT_EQ(sim.machine->run(), t_ref) << "threads=" << threads;
        EXPECT_EQ(sim.machine->committedAppInsts(),
                  ref.machine->committedAppInsts())
            << "threads=" << threads;
        EXPECT_EQ(statsOf(*sim.machine), golden) << "threads=" << threads;
    }
}

struct ModelCase
{
    MachineModel model;
    const char *name;
};

class ExecAllModels : public ::testing::TestWithParam<ModelCase>
{
};

TEST_P(ExecAllModels, ParallelMatchesSerialBitForBit)
{
    expectExecIdentical(GetParam().model);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ExecAllModels,
    ::testing::Values(ModelCase{MachineModel::Base, "Base"},
                      ModelCase{MachineModel::IntPerfect, "IntPerfect"},
                      ModelCase{MachineModel::Int512KB, "Int512KB"},
                      ModelCase{MachineModel::Int64KB, "Int64KB"},
                      ModelCase{MachineModel::SMTp, "SMTp"}),
    [](const auto &info) { return info.param.name; });

TEST(Exec, HeapKernelMatchesToo)
{
    // The exec mode composes with the event-kernel A/B pair: the heap
    // reference kernel must be host-thread invariant as well.
    expectExecIdentical(MachineModel::SMTp, /*heap_kernel=*/true);
}

TEST(Exec, UnderActiveFaultPlan)
{
    // Fault decisions draw from per-node RNG streams owned by the
    // executing shard, so an active plan must stay bit-identical under
    // any host-thread count.
    fault::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "seed=7,drop=0.005,dup=0.005,nak=0.01", plan, &err))
        << err;
    expectExecIdentical(MachineModel::Base, false, &plan);
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

TEST(Exec, TracedTelemetryIsHostThreadInvariant)
{
    // Exported telemetry (json/csv/smtptrace) byte-compares across exec
    // modes: simulated-event buffers are identical, and the host-time
    // Exec category is excluded from default exports precisely so this
    // comparison stays meaningful.
    ExecSim ref(MachineModel::SMTp, ExecParams{}, false, nullptr,
                /*traced=*/true);
    Tick t_ref = ref.machine->run();
    std::string tdir = ::testing::TempDir();
    std::string err;
    ASSERT_TRUE(ref.machine->writeTraceFiles(tdir + "ser", &err)) << err;

    ExecSim sim(MachineModel::SMTp, par(4), false, nullptr, true);
    EXPECT_EQ(sim.machine->run(), t_ref);
    ASSERT_TRUE(sim.machine->writeTraceFiles(tdir + "par", &err)) << err;

    for (const char *ext : {".json", ".csv", ".smtptrace"}) {
        std::string a = slurp(tdir + "ser" + ext);
        std::string b = slurp(tdir + "par" + ext);
        ASSERT_FALSE(a.empty()) << ext;
        EXPECT_EQ(a, b) << "telemetry export differs: " << ext;
        std::filesystem::remove(tdir + "ser" + ext);
        std::filesystem::remove(tdir + "par" + ext);
    }
}

TEST(Exec, CheckpointFromParallelRestoresUnderEitherMode)
{
    // Save mid-run from a parallel machine (mid-window stops carry the
    // undelivered mailbox events in the snapshot), then restore into a
    // serial machine AND another parallel machine: both must finish
    // bit-identically to the uninterrupted serial twin.
    ExecSim twin(MachineModel::SMTp, ExecParams{});
    Tick t_end = twin.machine->run();
    std::string golden = statsOf(*twin.machine);

    ExecSim part(MachineModel::SMTp, par(4));
    part.machine->runUntil(t_end / 2);
    ASSERT_GT(part.machine->eventQueue().curTick(), 0u);
    auto img = part.machine->saveImage();

    for (bool restore_parallel : {false, true}) {
        ExecSim res(MachineModel::SMTp,
                    restore_parallel ? par(4) : ExecParams{});
        std::string err;
        auto copy = img;
        ASSERT_TRUE(res.machine->restoreImage(std::move(copy), &err))
            << err;
        EXPECT_EQ(res.machine->run(), t_end)
            << "restore_parallel=" << restore_parallel;
        EXPECT_EQ(statsOf(*res.machine), golden)
            << "restore_parallel=" << restore_parallel;
    }
}

TEST(ExecChecker, AssertsLevelRunsParallelBitIdentical)
{
    // Regression: the machine used to force one host thread whenever
    // ANY checker was active. Asserts-level checking is internally
    // serialized per hook, so --check=asserts --exec=parallel:4 must
    // actually run 4 host threads and still be bit-identical to the
    // serial-reference run of the same checked cell.
    ExecSim ref(MachineModel::SMTp, ExecParams{}, false, nullptr, false,
                4, 0.25, check::CheckLevel::Asserts);
    Tick t_ref = ref.machine->run();
    ASSERT_GT(t_ref, 0u);
    EXPECT_EQ(ref.machine->hostThreads(), 1u);
    EXPECT_FALSE(ref.machine->execSerializedByChecker());
    ref.machine->quiesce();
    EXPECT_EQ(ref.machine->checker()->violationCount(), 0u);
    std::string golden = statsOf(*ref.machine);

    ExecSim sim(MachineModel::SMTp, par(4), false, nullptr, false, 4,
                0.25, check::CheckLevel::Asserts);
    EXPECT_EQ(sim.machine->hostThreads(), 4u);
    EXPECT_FALSE(sim.machine->execSerializedByChecker());
    EXPECT_EQ(sim.machine->run(), t_ref);
    EXPECT_EQ(sim.machine->committedAppInsts(),
              ref.machine->committedAppInsts());
    sim.machine->quiesce();
    EXPECT_EQ(sim.machine->checker()->violationCount(), 0u);
    EXPECT_EQ(statsOf(*sim.machine), golden);
}

TEST(ExecChecker, AssertsParallelMatchesUncheckedResults)
{
    // The checker is observation-only: a checked parallel run must
    // reproduce the unchecked cell's simulated results exactly.
    ExecSim plain(MachineModel::Base, ExecParams{});
    Tick t_ref = plain.machine->run();
    std::string golden = statsOf(*plain.machine);

    ExecSim checked(MachineModel::Base, par(4), false, nullptr, false, 4,
                    0.25, check::CheckLevel::Asserts);
    EXPECT_EQ(checked.machine->run(), t_ref);
    EXPECT_EQ(statsOf(*checked.machine), golden);
}

TEST(ExecChecker, FullMirrorFallbackIsLoudNotSilent)
{
    // FullMirror still needs a globally serialized schedule; the
    // fallback must be visible in-band via execSerializedByChecker(),
    // not a silent host_threads change.
    ExecSim sim(MachineModel::Base, par(4), false, nullptr, false, 4,
                0.25, check::CheckLevel::FullMirror);
    EXPECT_EQ(sim.machine->hostThreads(), 1u);
    EXPECT_TRUE(sim.machine->execSerializedByChecker());

    ExecSim ser(MachineModel::Base, ExecParams{}, false, nullptr, false,
                4, 0.25, check::CheckLevel::FullMirror);
    EXPECT_EQ(ser.machine->hostThreads(), 1u);
    EXPECT_FALSE(ser.machine->execSerializedByChecker());
}

TEST(Exec, RunUntilSliceBoundariesAreInvariant)
{
    // Chopping a parallel run into arbitrary runUntil() slices must not
    // perturb results: barrier-phase work (refill, sampling) only
    // happens at true window boundaries, never at partial stops.
    ExecSim ref(MachineModel::Base, ExecParams{});
    Tick t_end = ref.machine->run();
    std::string golden = statsOf(*ref.machine);

    ExecSim sliced(MachineModel::Base, par(2));
    Tick step = t_end / 7 + 13; // deliberately window-misaligned
    bool done = false;
    for (Tick at = step; !done && at < 4 * t_end; at += step)
        done = sliced.machine->runUntil(at);
    ASSERT_TRUE(done);
    EXPECT_EQ(sliced.machine->execTime(), t_end);
    EXPECT_EQ(statsOf(*sliced.machine), golden);
}

} // namespace
} // namespace smtp
