/**
 * @file
 * Unit tests for the common utility layer: bit helpers, the
 * deterministic RNG, and the bounded FIFO used for hardware queues.
 */

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/fixed_queue.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace smtp
{
namespace
{

TEST(Bits, PowerOfTwoPredicates)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ULL << 40));
    EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(Bits, Logarithms)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, ExtractAndInsert)
{
    std::uint64_t v = 0xDEADBEEFCAFEF00DULL;
    EXPECT_EQ(bits(v, 7, 0), 0x0DULL);
    EXPECT_EQ(bits(v, 15, 8), 0xF0ULL);
    EXPECT_EQ(bits(v, 63, 0), v);
    EXPECT_EQ(insertBits(0, 7, 4, 0xA), 0xA0ULL);
    EXPECT_EQ(insertBits(0xFF, 3, 0, 0), 0xF0ULL);
    // Round trip.
    auto w = insertBits(v, 43, 20, 0x123456);
    EXPECT_EQ(bits(w, 43, 20), 0x123456ULL);
    EXPECT_EQ(bits(w, 19, 0), bits(v, 19, 0));
    EXPECT_EQ(bits(w, 63, 44), bits(v, 63, 44));
}

TEST(Bits, PopCountAndCtz)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(0xFFULL), 8u);
    EXPECT_EQ(popCount(~0ULL), 64u);
    EXPECT_EQ(countTrailingZeros(1), 0u);
    EXPECT_EQ(countTrailingZeros(0x80), 7u);
    EXPECT_EQ(countTrailingZeros(0), 64u);
}

TEST(Bits, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0ULL);
    EXPECT_EQ(roundUp(1, 64), 64ULL);
    EXPECT_EQ(roundUp(64, 64), 64ULL);
    EXPECT_EQ(roundDown(127, 64), 64ULL);
    EXPECT_EQ(divCeil(0, 8), 0ULL);
    EXPECT_EQ(divCeil(1, 8), 1ULL);
    EXPECT_EQ(divCeil(8, 8), 1ULL);
    EXPECT_EQ(divCeil(9, 8), 2ULL);
}

TEST(Types, LineAndPageAlign)
{
    EXPECT_EQ(lineAlign(0x1000), 0x1000ULL);
    EXPECT_EQ(lineAlign(0x107F), 0x1000ULL);
    EXPECT_EQ(lineAlign(0x1080), 0x1080ULL);
    EXPECT_EQ(pageAlign(0x1FFF), 0x1000ULL);
    EXPECT_EQ(pageAlign(0x2000), 0x2000ULL);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDecorrelate)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.below(17);
        EXPECT_LT(v, 17u);
        auto w = r.range(5, 9);
        EXPECT_GE(w, 5u);
        EXPECT_LE(w, 9u);
        auto u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIsRoughlyUniform)
{
    Rng r(99);
    int buckets[10] = {};
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++buckets[static_cast<int>(r.uniform() * 10)];
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 - n / 50);
        EXPECT_LT(b, n / 10 + n / 50);
    }
}

TEST(Zipf, DeterministicUnderSeed)
{
    ZipfGen z(64, 1.1);
    EXPECT_EQ(z.ranks(), 64u);
    EXPECT_DOUBLE_EQ(z.exponent(), 1.1);
    Rng a(5), b(5), c(6);
    int diverged = 0;
    for (int i = 0; i < 1000; ++i) {
        std::size_t ra = z.sample(a);
        EXPECT_EQ(ra, z.sample(b));
        diverged += ra != z.sample(c);
        EXPECT_LT(ra, 64u);
    }
    EXPECT_GT(diverged, 0);
}

TEST(Zipf, RankFrequencySlopeMatchesExponent)
{
    // The defining property: frequency(rank) ~ rank^-s, i.e. the
    // log-log rank/frequency line has slope -s. Fit the slope over the
    // well-populated head ranks by least squares and require it within
    // a tolerance that Poisson noise at 200k draws comfortably meets.
    const double s = 1.2;
    ZipfGen z(32, s);
    Rng rng(123);
    const int n = 200000;
    std::uint64_t counts[32] = {};
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    // Most-popular-first must hold at the head.
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[1], counts[3]);

    const int head = 8;
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (int r = 0; r < head; ++r) {
        ASSERT_GT(counts[r], 0u) << "rank " << r;
        double x = std::log(static_cast<double>(r + 1));
        double y = std::log(static_cast<double>(counts[r]));
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    double slope = (head * sxy - sx * sy) / (head * sxx - sx * sx);
    EXPECT_NEAR(slope, -s, 0.1);
}

TEST(Zipf, ZeroExponentIsUniform)
{
    // s = 0 degenerates to the uniform distribution: every rank gets
    // 1/n of the mass (same tolerance as the raw Rng uniformity test).
    ZipfGen z(10, 0.0);
    Rng rng(99);
    const int n = 100000;
    int counts[10] = {};
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(rng)];
    for (int c : counts) {
        EXPECT_GT(c, n / 10 - n / 50);
        EXPECT_LT(c, n / 10 + n / 50);
    }
}

TEST(FixedQueue, BasicFifo)
{
    FixedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.tryPush(4));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.tryPush(4));
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, FreeSlotsTracksOccupancy)
{
    FixedQueue<int> q(8);
    EXPECT_EQ(q.freeSlots(), 8u);
    for (int i = 0; i < 5; ++i)
        q.push(i);
    EXPECT_EQ(q.freeSlots(), 3u);
    q.pop();
    EXPECT_EQ(q.freeSlots(), 4u);
    q.clear();
    EXPECT_EQ(q.freeSlots(), 8u);
}

TEST(FixedQueueDeath, PushWhenFullPanics)
{
    FixedQueue<int> q(1);
    q.push(0);
    EXPECT_DEATH(q.push(1), "full");
}

} // namespace
} // namespace smtp
