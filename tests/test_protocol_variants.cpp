/**
 * @file
 * The protocol-variant subsystem (src/protocol/variants): registry
 * name/format resolution, the migratory-sharing prediction machinery
 * (detection, Exclusive-on-read grants, false-migration reverts, and
 * the deliberate no-release bug the full-mirror checker must catch),
 * the phase-priority queue discipline (clean settling, starvation
 * floor, and the deliberate drop-on-floor bug the watchdog must
 * catch), and the whole-machine contract per variant: all five models
 * clean under full mirror, serial/parallel bit-identity, and
 * checkpoint round-trips.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "proto_harness.hpp"

#include "machine/machine.hpp"
#include "protocol/assembler.hpp"
#include "workload/app.hpp"

namespace smtp::testing
{
namespace
{

using proto::ProtocolKind;

// ----------------------------------------------------------- registry

TEST(VariantRegistry, NamesRoundTrip)
{
    for (ProtocolKind k : proto::allProtocols) {
        ProtocolKind parsed = ProtocolKind::Bitvector;
        EXPECT_TRUE(proto::protocolFromName(proto::protocolName(k), parsed))
            << proto::protocolName(k);
        EXPECT_EQ(parsed, k);
    }
    // Empty = the default; unknown names fail and leave the out-param
    // untouched (callers rely on that for their error paths).
    ProtocolKind k = ProtocolKind::Migratory;
    EXPECT_TRUE(proto::protocolFromName("", k));
    EXPECT_EQ(k, ProtocolKind::Bitvector);
    k = ProtocolKind::Migratory;
    EXPECT_FALSE(proto::protocolFromName("mesi", k));
    EXPECT_EQ(k, ProtocolKind::Migratory);

    std::string list(proto::protocolNameList());
    for (ProtocolKind p : proto::allProtocols)
        EXPECT_NE(list.find(proto::protocolName(p)), std::string::npos)
            << list;
}

TEST(VariantRegistry, DirFormatSelection)
{
    // Bitvector and phase-priority pick the entry width by node count,
    // as the paper does; migratory always needs the 64-bit entry for
    // its prediction bits.
    EXPECT_EQ(proto::protocolDirFormat(ProtocolKind::Bitvector, 16)
                  .entryBytes,
              4u);
    EXPECT_EQ(proto::protocolDirFormat(ProtocolKind::Bitvector, 32)
                  .entryBytes,
              8u);
    EXPECT_EQ(proto::protocolDirFormat(ProtocolKind::PhasePriority, 16)
                  .entryBytes,
              4u);
    EXPECT_EQ(
        proto::protocolDirFormat(ProtocolKind::Migratory, 16).entryBytes,
        8u);
    EXPECT_GE(
        proto::protocolDirFormat(ProtocolKind::Migratory, 16).vectorBits,
        16u);
}

TEST(VariantRegistry, HandlerImagesReflectTheVariant)
{
    auto fmt = proto::protocolDirFormat(ProtocolKind::Bitvector, 16);
    auto base = proto::buildProtocolImage(ProtocolKind::Bitvector, fmt);
    auto wideFmt = proto::protocolDirFormat(ProtocolKind::Migratory, 16);
    auto mig = proto::buildProtocolImage(ProtocolKind::Migratory, wideFmt);
    auto pp = proto::buildProtocolImage(ProtocolKind::PhasePriority, fmt);

    // The migratory program carries the prediction logic, so its
    // disassembly is strictly longer than the baseline's; the
    // phase-priority variant reuses the baseline handlers untouched
    // (its behaviour lives in the controller's queue discipline).
    std::string baseList = proto::listHandlerImage(base);
    std::string migList = proto::listHandlerImage(mig);
    EXPECT_GT(migList.size(), baseList.size());
    EXPECT_EQ(proto::listHandlerImage(pp), baseList);
    EXPECT_TRUE(proto::protocolUsesPhasePriority(ProtocolKind::PhasePriority));
    EXPECT_FALSE(proto::protocolUsesPhasePriority(ProtocolKind::Migratory));
    EXPECT_TRUE(proto::protocolIsMigratory(ProtocolKind::Migratory));
}

// ------------------------------------------------- migratory variant

std::uint64_t
scratchCounter(ProtoMachine &m, NodeId home, Addr offset)
{
    Addr base = proto::protoScratchBase +
                static_cast<Addr>(home) * proto::protoNodeStride;
    return m.nodes[home]->mc->ram().read(base + offset, 8);
}

class MigratoryTest : public ::testing::Test
{
  protected:
    MigratoryTest()
    {
        ProtoMachine::Options opt;
        opt.protocol = ProtocolKind::Migratory;
        m = std::make_unique<ProtoMachine>(opt);
    }

    /**
     * Write from node 1 then node 2: the second, different-writer GETX
     * is the read-then-write migration pattern the home detects.
     */
    void
    establishMigration(Addr a)
    {
        m->issue(1, MemCmd::Store, a, [] {});
        m->settle();
        m->issue(2, MemCmd::Store, a, [] {});
        m->settle();
    }

    std::unique_ptr<ProtoMachine> m;
};

TEST_F(MigratoryTest, SecondWriterSetsThePredictionBit)
{
    Addr a = m->addrAt(0);
    establishMigration(a);
    auto e = m->dirEntryOf(a);
    EXPECT_EQ(m->fmt.state(e), proto::dirExclusive);
    EXPECT_EQ(m->fmt.owner(e), 2);
    EXPECT_TRUE(proto::mig::migratory(e));
    EXPECT_TRUE(proto::mig::lwValid(e));
    EXPECT_EQ(proto::mig::lastWriter(e), 2);
    EXPECT_GE(scratchCounter(*m, 0, proto::migDetectOffset), 1u);
    m->checkLineInvariants(a);
}

TEST_F(MigratoryTest, SameWriterAgainIsNotMigration)
{
    Addr a = m->addrAt(0);
    m->issue(1, MemCmd::Store, a, [] {});
    m->settle();
    m->issue(1, MemCmd::Store, a, [] {});
    m->settle();
    auto e = m->dirEntryOf(a);
    EXPECT_FALSE(proto::mig::migratory(e));
    EXPECT_EQ(scratchCounter(*m, 0, proto::migDetectOffset), 0u);
    m->checkLineInvariants(a);
}

TEST_F(MigratoryTest, ReadOnMigratoryLineGetsExclusive)
{
    Addr a = m->addrAt(0);
    establishMigration(a);

    // Under the baseline protocol this load would downgrade node 2 to
    // Shared and node 3 would later pay an upgrade round-trip before
    // writing. Migratory grants Exclusive on the read.
    int done = 0;
    m->issue(3, MemCmd::Load, a, [&] { ++done; });
    m->settle();
    ASSERT_EQ(done, 1);
    EXPECT_TRUE(writable(m->nodes[3]->cache->l2State(a)));
    auto e = m->dirEntryOf(a);
    EXPECT_EQ(m->fmt.state(e), proto::dirExclusive);
    EXPECT_EQ(m->fmt.owner(e), 3);
    EXPECT_GE(scratchCounter(*m, 0, proto::migSavedOffset), 1u);
    m->checkLineInvariants(a);

    // The write the prediction anticipated: hits locally, no upgrade
    // traffic (node 3 already holds write permission).
    auto naksBefore = m->nodes[0]->mc->msgsFromNet.value();
    m->issue(3, MemCmd::Store, a, [&] { ++done; });
    m->settle();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(m->nodes[0]->mc->msgsFromNet.value(), naksBefore)
        << "predicted writer should not send the home any traffic";
    m->checkLineInvariants(a);
}

TEST_F(MigratoryTest, FalseMigrationRevertsOnCleanTransfer)
{
    Addr a = m->addrAt(0);
    establishMigration(a);

    // Node 3 is granted Exclusive by the prediction but never writes;
    // when the line moves on, the clean ownership transfer tells the
    // home the prediction was wrong and the migratory bit comes off.
    m->issue(3, MemCmd::Load, a, [] {});
    m->settle();
    ASSERT_TRUE(writable(m->nodes[3]->cache->l2State(a)));

    m->issue(1, MemCmd::Load, a, [] {});
    m->settle();
    auto e = m->dirEntryOf(a);
    EXPECT_FALSE(proto::mig::migratory(e));
    EXPECT_GE(scratchCounter(*m, 0, proto::migRevertOffset), 1u);
    m->checkLineInvariants(a);
}

TEST_F(MigratoryTest, RandomTrafficKeepsInvariants)
{
    Rng rng(77);
    std::vector<Addr> lines;
    for (unsigned p = 0; p < 2; ++p)
        for (unsigned h = 0; h < 4; ++h)
            lines.push_back(m->addrAt(h, p));
    int done = 0;
    for (unsigned burst = 0; burst < 20; ++burst) {
        for (unsigned i = 0; i < 8; ++i) {
            NodeId n = static_cast<NodeId>(rng.below(4));
            Addr a = lines[rng.below(static_cast<unsigned>(lines.size()))];
            auto cmd = rng.below(2) ? MemCmd::Store : MemCmd::Load;
            m->issue(n, cmd, a, [&] { ++done; });
        }
        m->settle();
    }
    EXPECT_EQ(done, 160);
    EXPECT_EQ(m->checker->violationCount(), 0u);
    for (Addr a : lines)
        m->checkLineInvariants(a);
}

TEST(MigratoryBug, NoReleaseGrantIsCaughtByTheFullMirror)
{
    // Deliberate bug: the Exclusive-on-read grant answers straight from
    // memory without intervening at the current owner — two writable
    // copies. The full-mirror checker must flag it.
    ProtoMachine::Options opt;
    opt.protocol = ProtocolKind::Migratory;
    opt.handlerOptions.injectMigratoryNoRelease = true;
    opt.checkAbortOnViolation = false;
    ProtoMachine m(opt);

    Addr a = m.addrAt(0);
    m.issue(1, MemCmd::Store, a, [] {});
    m.eq.run(m.eq.curTick() + 500 * tickPerUs);
    m.issue(2, MemCmd::Store, a, [] {});
    m.eq.run(m.eq.curTick() + 500 * tickPerUs);
    m.issue(3, MemCmd::Load, a, [] {});
    m.eq.run(m.eq.curTick() + 2 * tickPerMs);

    EXPECT_GE(m.checker->violationCount(), 1u);
}

// -------------------------------------------- phase-priority variant

/**
 * A sustained interleaved stream at node 0's controller: the home
 * itself keeps issuing (LMI head) while all remote nodes keep issuing
 * to the same small line set (NI request head), with stores churning
 * the lines so nothing settles into a cache hit. Issues 4 requests per
 * step and advances simulated time a sliver, so both request heads are
 * regularly occupied at once. Returns the number of issued requests.
 */
int
contendedMix(ProtoMachine &m, unsigned steps, int &done)
{
    Rng rng(31);
    int issued = 0;
    for (unsigned i = 0; i < steps; ++i) {
        for (NodeId n = 0; n < 4; ++n) {
            Addr a = m.addrAt(0, (i + n) % 4, ((i * 3 + n) % 8) * 64);
            auto cmd = rng.below(2) ? MemCmd::Store : MemCmd::Load;
            m.issue(n, cmd, a, [&] { ++done; });
            ++issued;
        }
        m.eq.run(m.eq.curTick() + 60 * tickPerNs);
    }
    m.settle(10 * tickPerMs);
    return issued;
}

TEST(PhasePriorityTest, ContendedTrafficSettlesClean)
{
    ProtoMachine::Options opt;
    opt.protocol = ProtocolKind::PhasePriority;
    ProtoMachine m(opt);
    int done = 0;
    int issued = contendedMix(m, 60, done);
    EXPECT_EQ(done, issued);
    EXPECT_EQ(m.checker->violationCount(), 0u);
    for (unsigned p = 0; p < 4; ++p)
        m.checkLineInvariants(m.addrAt(0, p));
    // The queueing-delay stat the variant exists to shrink is sampled.
    std::uint64_t samples = 0;
    for (auto &n : m.nodes)
        samples += n->mc->reqQueueDelay.samples();
    EXPECT_GT(samples, 0u);
}

TEST(PhasePriorityTest, StarvationFloorForcesServiceOfTheBypassedHead)
{
    // Floor of 1: any head-of-queue tie where one side bypasses the
    // other immediately trips the floor and force-serves the loser.
    // The run must still settle clean — the floor changes order, never
    // correctness.
    ProtoMachine::Options opt;
    opt.protocol = ProtocolKind::PhasePriority;
    opt.phaseStarvationFloor = 1;
    ProtoMachine m(opt);
    int done = 0;
    int issued = contendedMix(m, 60, done);
    EXPECT_EQ(done, issued);
    EXPECT_EQ(m.checker->violationCount(), 0u);
    std::uint64_t trips = 0;
    for (auto &n : m.nodes)
        trips += n->mc->phaseFloorTrips.value();
    EXPECT_GT(trips, 0u);
    // Force-serves are reported to the checker's starvation log (not a
    // violation by themselves).
    EXPECT_EQ(m.checker->violationCount(), 0u);
}

TEST(PhasePriorityBug, DropOnFloorWedgesAndTheWatchdogFires)
{
    // Deliberate bug: the starved head is discarded instead of served.
    // Its transaction can never complete, so the machine wedges and
    // the checker's watchdog must flag the lost request.
    ProtoMachine::Options opt;
    opt.protocol = ProtocolKind::PhasePriority;
    opt.phaseStarvationFloor = 1;
    opt.injectDropOnFloor = true;
    opt.checkAbortOnViolation = false;
    opt.watchdogMaxAge = 100 * tickPerUs;
    ProtoMachine m(opt);

    Rng rng(31);
    int done = 0;
    for (unsigned i = 0; i < 120; ++i) {
        for (NodeId n = 0; n < 4; ++n) {
            Addr a = m.addrAt(0, (i + n) % 4, ((i * 3 + n) % 8) * 64);
            auto cmd = rng.below(2) ? MemCmd::Store : MemCmd::Load;
            m.issue(n, cmd, a, [&] { ++done; });
        }
        m.eq.run(m.eq.curTick() + 60 * tickPerNs);
    }
    m.eq.run(m.eq.curTick() + 2 * tickPerMs);

    ASSERT_GE(m.checker->violationCount(), 1u);
    EXPECT_NE(m.checker->violations()[0].find("watchdog"),
              std::string::npos)
        << m.checker->violations()[0];
    EXPECT_FALSE(m.quiescent());
}

// --------------------------------------- whole-machine, per variant

/** One machine + FFT workload, parameterized on protocol variant. */
struct VariantSim
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    std::unique_ptr<FuncMem> mem;

    VariantSim(ProtocolKind protocol, MachineModel model,
               const ExecParams &exec = {},
               check::CheckLevel check = check::CheckLevel::Off,
               unsigned nodes = 2, double scale = 0.1)
    {
        MachineParams mp;
        mp.model = model;
        mp.nodes = nodes;
        mp.appThreadsPerNode = 1;
        mp.protocol = protocol;
        mp.exec = exec;
        mp.checkLevel = check;
        machine = std::make_unique<Machine>(mp);
        mem = std::make_unique<FuncMem>();
        app = workload::makeApp("FFT");
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = nodes;
        env.threadsPerNode = 1;
        env.scale = scale;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
    }
};

std::string
statsOf(Machine &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

const MachineModel allModels[] = {
    MachineModel::Base,       MachineModel::IntPerfect,
    MachineModel::Int512KB,   MachineModel::Int64KB,
    MachineModel::SMTp,
};

const ProtocolKind variants[] = {ProtocolKind::Migratory,
                                 ProtocolKind::PhasePriority};

TEST(VariantMachine, AllModelsRunCleanUnderFullMirror)
{
    for (ProtocolKind p : variants) {
        for (MachineModel model : allModels) {
            VariantSim sim(p, model, ExecParams{},
                           check::CheckLevel::FullMirror, 2, 0.05);
            Tick t = sim.machine->run();
            ASSERT_GT(t, 0u) << proto::protocolName(p);
            sim.machine->quiesce();
            EXPECT_EQ(sim.machine->checker()->violationCount(), 0u)
                << proto::protocolName(p) << " on model "
                << static_cast<int>(model);
        }
    }
}

TEST(VariantMachine, SerialAndParallelAreBitIdentical)
{
    ExecParams par;
    ASSERT_TRUE(ExecParams::parse("parallel:4", par));
    for (ProtocolKind p : variants) {
        VariantSim ref(p, MachineModel::SMTp, ExecParams{},
                       check::CheckLevel::Off, 4, 0.1);
        Tick t = ref.machine->run();
        ASSERT_GT(t, 0u);
        std::string golden = statsOf(*ref.machine);

        VariantSim sim(p, MachineModel::SMTp, par,
                       check::CheckLevel::Off, 4, 0.1);
        EXPECT_EQ(sim.machine->run(), t) << proto::protocolName(p);
        EXPECT_EQ(statsOf(*sim.machine), golden)
            << proto::protocolName(p);
    }
}

TEST(VariantMachine, CheckpointRoundTripConverges)
{
    for (ProtocolKind p : variants) {
        VariantSim twin(p, MachineModel::SMTp);
        Tick t_end = twin.machine->run();
        std::string golden = statsOf(*twin.machine);

        VariantSim part(p, MachineModel::SMTp);
        part.machine->runUntil(t_end / 2);
        ASSERT_GT(part.machine->eventQueue().curTick(), 0u);
        auto img = part.machine->saveImage();

        VariantSim res(p, MachineModel::SMTp);
        std::string err;
        ASSERT_TRUE(res.machine->restoreImage(std::move(img), &err))
            << err;
        EXPECT_EQ(res.machine->run(), t_end) << proto::protocolName(p);
        EXPECT_EQ(statsOf(*res.machine), golden)
            << proto::protocolName(p);
    }
}

TEST(VariantMachine, MigratorySavesUpgradesOnWholeMachineRuns)
{
    VariantSim sim(ProtocolKind::Migratory, MachineModel::SMTp,
                   ExecParams{}, check::CheckLevel::Off, 4, 0.1);
    sim.machine->run();
    auto mc = sim.machine->migratoryCounters();
    EXPECT_GT(mc.detected, 0u);
    EXPECT_GT(mc.saved, 0u);

    // The baseline machine reports all-zero migratory counters.
    VariantSim base(ProtocolKind::Bitvector, MachineModel::SMTp);
    base.machine->run();
    auto bc = base.machine->migratoryCounters();
    EXPECT_EQ(bc.detected + bc.saved + bc.reverts, 0u);
}

} // namespace
} // namespace smtp::testing
