/**
 * @file
 * SMTp-core behavioural tests: Look-Ahead Scheduling dispatch
 * accounting, protocol-thread statistics plumbing, the reserved
 * front-end resources under application pressure, and a random-message
 * fuzz of the handler executor (states x message types never crash or
 * run away; protocol-visible errors are caught by the scratch word).
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "machine/machine.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

Machine::ProtoCharacteristics
runSmtp(const char *app_name, bool las, unsigned nodes,
        std::uint64_t *la_starts = nullptr, Tick *exec = nullptr)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = nodes;
    mp.appThreadsPerNode = 1;
    mp.lookAheadScheduling = las;
    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp(app_name);
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = nodes;
    env.threadsPerNode = 1;
    env.scale = 0.25;
    app->build(env);
    for (unsigned t = 0; t < nodes; ++t)
        machine.setGlobalSource(t, app->thread(t));
    Tick t = machine.run();
    if (exec)
        *exec = t;
    if (la_starts) {
        *la_starts = 0;
        for (unsigned n = 0; n < nodes; ++n)
            *la_starts +=
                machine.node(n).pthread->lookAheadStarts.value();
    }
    return machine.protoCharacteristics();
}

TEST(SmtpCore, LookAheadSlotIsActuallyUsed)
{
    std::uint64_t with_las = 0, without_las = 0;
    runSmtp("Radix", true, 2, &with_las);
    runSmtp("Radix", false, 2, &without_las);
    EXPECT_GT(with_las, 100u)
        << "LAS must dispatch handlers into the look-ahead slot";
    EXPECT_EQ(without_las, 0u)
        << "without LAS the next PC waits for ldctxt graduation";
}

TEST(SmtpCore, ProtocolBranchesMostlyPredictWhenTrained)
{
    // FFT generates steady protocol traffic: the tournament predictor
    // must learn the handler branches (paper Table 8: ~2% mispredict).
    auto pc = runSmtp("FFT", true, 2);
    EXPECT_GT(pc.branchMispredictRate, 0.0);
    EXPECT_LT(pc.branchMispredictRate, 0.25);
    EXPECT_LT(pc.squashCyclePct, 0.05);
}

TEST(SmtpCore, ProtocolWorkloadClassesOrderRetiredShare)
{
    // Memory-intensive FFT retires a larger protocol-instruction share
    // than compute-intensive Water (paper Table 8: 4.18% vs 0.19%).
    auto fft = runSmtp("FFT", true, 2);
    auto water = runSmtp("Water", true, 2);
    EXPECT_GT(fft.retiredInstPct, water.retiredInstPct);
}

// ------------------------------------------------------ executor fuzz

class FuzzEnv : public proto::ExecEnv
{
  public:
    std::uint64_t
    protoLoad(Addr a, unsigned) override
    {
        auto it = ram.find(a & ~7ULL);
        return it == ram.end() ? 0 : it->second;
    }

    void
    protoStore(Addr a, std::uint64_t v, unsigned) override
    {
        ram[a & ~7ULL] = v;
    }

    Addr
    dirAddrOf(Addr l) override
    {
        return proto::protoDirBase + (l >> 7) * 4;
    }

    NodeId homeOf(Addr) override { return 0; }
    std::uint64_t probeResult() override { return probe; }

    std::unordered_map<Addr, std::uint64_t> ram;
    std::uint64_t probe = 1;
};

TEST(HandlerFuzz, RandomStateMessagePairsNeverRunAway)
{
    auto fmt = proto::DirFormat::forNodes(16);
    auto image = proto::buildHandlerImage(fmt);
    FuzzEnv env;
    proto::Executor ex(image, env);
    ex.boot(0);
    Rng rng(2024);

    const proto::MsgType fuzzable[] = {
        proto::MsgType::ReqGet, proto::MsgType::ReqGetx,
        proto::MsgType::ReqUpgrade, proto::MsgType::RplSharingWb,
        proto::MsgType::RplOwnershipXfer, proto::MsgType::RplIntervMiss,
        proto::MsgType::FwdIntervSh, proto::MsgType::FwdIntervEx,
        proto::MsgType::FwdInval, proto::MsgType::RplWbAck,
        proto::MsgType::RplWbBusyAck,
    };

    Addr scratch_err = proto::protoScratchBase + proto::protoErrorOffset;
    unsigned soft_errors = 0;
    for (unsigned i = 0; i < 20000; ++i) {
        // Random-ish directory entry: random state, vector, pending.
        Addr line = 0x100000 + rng.below(64) * l2LineBytes;
        std::uint64_t e = fmt.setState(
            0, static_cast<proto::DirState>(rng.below(7)));
        e = fmt.setVector(e, rng.next() & 0xffff);
        e = fmt.setStale(e, rng.chance(0.2));
        e = fmt.setPendingReq(e, static_cast<NodeId>(rng.below(16)));
        e = fmt.setPendingMshr(e, static_cast<std::uint8_t>(rng.below(18)));
        env.protoStore(env.dirAddrOf(line), e, 4);
        env.probe = rng.below(4);

        proto::Message m;
        m.type = fuzzable[rng.below(std::size(fuzzable))];
        m.addr = line;
        m.src = static_cast<NodeId>(rng.below(16));
        m.dest = 0;
        m.requester = static_cast<NodeId>(rng.below(16));
        m.mshr = static_cast<std::uint8_t>(rng.below(18));
        m.ackCount = static_cast<std::uint16_t>(rng.below(16));

        auto trace = ex.run(m); // Must terminate (executor guards).
        EXPECT_LT(trace.insts.size(), 512u);
        // Handlers that hit an impossible state record it instead of
        // corrupting anything; that is allowed under fuzzing — count it
        // and clear.
        if (env.protoLoad(scratch_err, 8) != 0) {
            ++soft_errors;
            env.protoStore(scratch_err, 0, 8);
        }
        // Every send must target a sane node.
        for (const auto &s : trace.sends) {
            if (s.target == proto::SendTarget::Network) {
                EXPECT_LT(s.msg.dest, 16u);
            }
        }
    }
    // Random states naturally hit "impossible" writeback cases; the
    // defensive path must have fired rather than anything worse.
    EXPECT_GT(soft_errors, 0u);
}

} // namespace
} // namespace smtp
