/**
 * @file
 * A scripted InstSource for CPU unit tests: a fixed vector of micro-ops
 * with small builder helpers for ALU chains, memory ops and loops.
 */

#ifndef SMTP_TESTS_SCRIPTED_SOURCE_HPP
#define SMTP_TESTS_SCRIPTED_SOURCE_HPP

#include <vector>

#include "cpu/inst.hpp"

namespace smtp::testing
{

class ScriptedSource : public InstSource
{
  public:
    bool hasNext() override { return idx_ < ops_.size(); }
    const MicroOp &peek() override { return ops_[idx_]; }
    void consume() override { ++idx_; }
    bool finished() override { return idx_ >= ops_.size(); }

    std::size_t consumed() const { return idx_; }
    std::size_t size() const { return ops_.size(); }

    // ---- Builders ----------------------------------------------------

    std::uint64_t
    pc() const
    {
        return pcBase_ + 4 * ops_.size();
    }

    void
    alu(std::uint8_t dest, std::uint8_t s1 = regNone,
        std::uint8_t s2 = regNone, OpClass cls = OpClass::IntAlu)
    {
        MicroOp op;
        op.pc = pc();
        op.cls = cls;
        op.dest = dest;
        op.src1 = s1;
        op.src2 = s2;
        ops_.push_back(op);
    }

    void
    fp(std::uint8_t dest, std::uint8_t s1 = regNone,
       std::uint8_t s2 = regNone, OpClass cls = OpClass::FpAdd)
    {
        alu(dest, s1, s2, cls);
    }

    void
    load(Addr addr, std::uint8_t dest, std::uint8_t addr_reg = regNone)
    {
        MicroOp op;
        op.pc = pc();
        op.cls = OpClass::Load;
        op.dest = dest;
        op.src1 = addr_reg;
        op.effAddr = addr;
        ops_.push_back(op);
    }

    void
    store(Addr addr, std::uint8_t data_reg = regNone,
          std::uint8_t addr_reg = regNone)
    {
        MicroOp op;
        op.pc = pc();
        op.cls = OpClass::Store;
        op.src1 = addr_reg;
        op.src2 = data_reg;
        op.effAddr = addr;
        ops_.push_back(op);
    }

    void
    prefetch(Addr addr, bool exclusive = false)
    {
        MicroOp op;
        op.pc = pc();
        op.cls = exclusive ? OpClass::PrefetchEx : OpClass::Prefetch;
        op.effAddr = addr;
        ops_.push_back(op);
    }

    /** A resolved conditional branch at the current pc. */
    void
    branch(bool taken, std::uint64_t target)
    {
        MicroOp op;
        op.pc = pc();
        op.cls = OpClass::Branch;
        op.isCondBranch = true;
        op.taken = taken;
        op.target = taken ? target : op.pc + 4;
        ops_.push_back(op);
    }

    /**
     * Emit @p iters iterations of a loop whose body is produced by
     * @p body(iteration); the backward branch is taken for all but the
     * final iteration — exactly what the real front end would see.
     */
    template <typename Fn>
    void
    loop(unsigned iters, Fn &&body)
    {
        std::uint64_t head = pc();
        for (unsigned i = 0; i < iters; ++i) {
            body(i);
            branch(i + 1 < iters, head);
            // Subsequent iterations replay the same PCs.
            if (i + 1 < iters)
                pcBase_ -= (pc() - head);
        }
    }

  private:
    std::vector<MicroOp> ops_;
    std::size_t idx_ = 0;
    std::uint64_t pcBase_ = 0x400000;
};

} // namespace smtp::testing

#endif // SMTP_TESTS_SCRIPTED_SOURCE_HPP
