/**
 * @file
 * Allocation-freedom tests for the event kernel hot path.
 *
 * Replaces the global operator new/delete with counting versions so a
 * test can assert that a warmed-up EventQueue schedules and runs events
 * with small captures without touching the heap at all. This is the
 * property that makes the wheel kernel fast: once the slot vectors have
 * grown to steady-state capacity, the simulator's inner loop performs
 * zero allocations per event.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/eventq.hpp"

namespace
{

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

// Program-wide counting allocator. Every usual form funnels through
// these two, so the counter sees all C++ heap traffic in the binary.
void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<std::size_t>(al),
                                     ((n + static_cast<std::size_t>(al) -
                                       1) /
                                      static_cast<std::size_t>(al)) *
                                         static_cast<std::size_t>(al)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace smtp
{
namespace
{

/** Schedule/run churn mimicking the simulator's steady state. */
std::uint64_t
churn(EventQueue &eq, int rounds)
{
    std::uint64_t ran = 0;
    for (int r = 0; r < rounds; ++r) {
        // The capture shapes the real schedulers use: this-pointer plus
        // a uid, a couple of raw pointers, small integers.
        std::uint64_t uid = static_cast<std::uint64_t>(r);
        std::uint64_t *counter = &ran;
        eq.scheduleIn(100 + static_cast<Tick>(r % 7) * 64,
                      [counter, uid] { *counter += uid ? 1 : 1; });
        eq.scheduleIn(static_cast<Tick>(r % 3) * 512,
                      [counter] { ++*counter; },
                      EventQueue::prioEarly);
        eq.runOne();
        eq.runOne();
    }
    eq.run();
    return ran;
}

/**
 * Warm @p eq until one full churn pass completes without a single
 * allocation (slot/heap vectors at steady-state capacity), then assert
 * the next pass is allocation-free too. The wheel's 1024 slot heaps
 * approach their high-water capacities over a few passes as the churn
 * pattern drifts across slot boundaries; the test fails only if the
 * kernel never stops allocating.
 */
void
expectSteadyStateAllocFree(EventQueue &eq)
{
    bool warm = false;
    for (int pass = 0; pass < 16 && !warm; ++pass) {
        std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
        churn(eq, 4096);
        warm = g_allocs.load(std::memory_order_relaxed) == before;
    }
    ASSERT_TRUE(warm) << "event kernel still allocating after 16 passes";

    std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    std::uint64_t ran = churn(eq, 4096);
    std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(ran, 2 * 4096u);
    EXPECT_EQ(after - before, 0u)
        << "scheduleIn/runOne allocated on the hot path";
}

TEST(EventQueueAlloc, HotPathIsAllocationFree)
{
    EventQueue eq;
    expectSteadyStateAllocFree(eq);
}

TEST(EventQueueAlloc, HeapKernelHotPathIsAllocationFree)
{
    EventQueue eq(EventQueue::Kernel::Heap);
    expectSteadyStateAllocFree(eq);
}

TEST(EventQueueAlloc, LargeCapturesDoAllocate)
{
    // Sanity-check the counter actually observes InlineCallback's heap
    // fallback, so the zero readings above are meaningful.
    EventQueue eq;
    struct Fat
    {
        std::uint64_t pad[16];
    } fat{};
    std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    eq.scheduleIn(1, [fat] { (void)fat.pad[0]; });
    std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    eq.run();
    EXPECT_GT(after - before, 0u);
}

} // namespace
} // namespace smtp
