/**
 * @file
 * Unit tests for the workload-generation framework: the coroutine Task
 * nesting machinery, ThreadCtx emission semantics (one pull per
 * micro-op, functional values at generation, loop PC reuse), the
 * FuncMem value plane, the synchronization library's functional
 * behaviour, and the six applications' generator-level properties
 * (termination, determinism, instruction-mix classes).
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/app.hpp"
#include "workload/func_mem.hpp"
#include "workload/gen.hpp"
#include "workload/sync.hpp"

namespace smtp::workload
{
namespace
{

/** Drain a source completely, returning every micro-op. */
std::vector<MicroOp>
drain(ThreadCtx &ctx, std::size_t limit = 1 << 22)
{
    std::vector<MicroOp> ops;
    while (!ctx.finished() && ops.size() < limit) {
        ops.push_back(ctx.peek());
        ctx.consume();
    }
    EXPECT_LT(ops.size(), limit) << "generator did not terminate";
    return ops;
}

TEST(FuncMemTest, WordSemantics)
{
    FuncMem m;
    EXPECT_EQ(m.read(0x1000), 0u);
    m.write(0x1000, 42);
    EXPECT_EQ(m.read(0x1000), 42u);
    EXPECT_EQ(m.read(0x1004), 42u) << "same 8-byte word";
    m.write(0x1000, 0);
    EXPECT_EQ(m.residentWords(), 0u) << "zero stores free the word";
    m.writeF(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(m.readF(0x2000), 3.25);
}

TEST(ThreadCtxTest, EmitsOneOpPerPull)
{
    FuncMem mem;
    ThreadCtx ctx(mem, 0, 0x1000);
    ctx.run([](ThreadCtx &c) -> Task {
        co_await c.load(0x100);
        co_await c.store(0x108, 7);
        co_await c.intOps(3);
        co_await c.fpOps(2);
        co_await c.prefetch(0x200);
    }(ctx));

    auto ops = drain(ctx);
    ASSERT_EQ(ops.size(), 8u);
    EXPECT_EQ(ops[0].cls, OpClass::Load);
    EXPECT_EQ(ops[0].effAddr, 0x100u);
    EXPECT_EQ(ops[1].cls, OpClass::Store);
    EXPECT_EQ(ops[2].cls, OpClass::IntAlu);
    EXPECT_EQ(ops[5].cls, OpClass::FpMul);
    EXPECT_EQ(ops[7].cls, OpClass::Prefetch);
    EXPECT_EQ(mem.read(0x108), 7u) << "store executed functionally";
}

TEST(ThreadCtxTest, LoadsReturnFunctionalValues)
{
    FuncMem mem;
    mem.poke(0x500, 1234);
    ThreadCtx ctx(mem, 0, 0x1000);
    std::uint64_t seen = 0;
    ctx.run([](ThreadCtx &c, std::uint64_t &out) -> Task {
        out = co_await c.load(0x500);
        co_await c.store(0x508, out * 2);
    }(ctx, seen));
    drain(ctx);
    EXPECT_EQ(seen, 1234u);
    EXPECT_EQ(mem.read(0x508), 2468u);
}

TEST(ThreadCtxTest, SwapAndFetchAddAreAtomicPairs)
{
    FuncMem mem;
    ThreadCtx ctx(mem, 0, 0x1000);
    std::uint64_t old_swap = 99, old_add = 99;
    ctx.run([](ThreadCtx &c, std::uint64_t &s, std::uint64_t &a) -> Task {
        s = co_await c.swap(0x700, 5);
        a = co_await c.fetchAdd(0x700, 3);
    }(ctx, old_swap, old_add));
    auto ops = drain(ctx);
    EXPECT_EQ(old_swap, 0u);
    EXPECT_EQ(old_add, 5u);
    EXPECT_EQ(mem.read(0x700), 8u);
    // Each RMW is a load+store micro-op pair.
    ASSERT_EQ(ops.size(), 4u);
    EXPECT_EQ(ops[0].cls, OpClass::Load);
    EXPECT_EQ(ops[1].cls, OpClass::Store);
}

TEST(ThreadCtxTest, LoopsReplayTheSamePcs)
{
    FuncMem mem;
    ThreadCtx ctx(mem, 0, 0x1000);
    ctx.run([](ThreadCtx &c) -> Task {
        auto lp = c.loopBegin();
        for (int i = 0; i < 5; ++i) {
            co_await c.load(0x100 + i * 8);
            co_await c.intOps(1);
            co_await c.loopEnd(lp, i + 1 < 5);
        }
    }(ctx));
    auto ops = drain(ctx);
    ASSERT_EQ(ops.size(), 15u);
    // Iterations 0..4 use identical PCs per position.
    for (unsigned k = 0; k < 3; ++k) {
        for (unsigned i = 1; i < 5; ++i)
            EXPECT_EQ(ops[i * 3 + k].pc, ops[k].pc)
                << "iteration " << i << " op " << k;
    }
    // The backward branch is taken on all but the last iteration.
    for (unsigned i = 0; i < 5; ++i) {
        const auto &br = ops[i * 3 + 2];
        EXPECT_EQ(br.cls, OpClass::Branch);
        EXPECT_EQ(br.taken, i + 1 < 5);
        if (br.taken) {
            EXPECT_EQ(br.target, ops[0].pc);
        }
    }
}

TEST(TaskTest, NestedTasksRunInOrder)
{
    FuncMem mem;
    ThreadCtx ctx(mem, 0, 0x1000);
    struct Helper
    {
        static Task
        inner(ThreadCtx &c, Addr a)
        {
            co_await c.store(a, 1);
            co_await c.store(a + 8, 2);
        }

        static Task
        outer(ThreadCtx &c)
        {
            co_await c.store(0x10, 9);
            co_await inner(c, 0x100);
            co_await inner(c, 0x200);
            co_await c.store(0x18, 10);
        }
    };
    ctx.run(Helper::outer(ctx));
    auto ops = drain(ctx);
    ASSERT_EQ(ops.size(), 6u);
    EXPECT_EQ(ops[1].effAddr, 0x100u);
    EXPECT_EQ(ops[3].effAddr, 0x200u);
    EXPECT_EQ(ops[5].effAddr, 0x18u);
    EXPECT_EQ(mem.read(0x208), 2u);
}

// ---------------------------------------------------------------- sync

TEST(SyncTest, SpinUntilEqWaitsForAnotherThread)
{
    FuncMem mem;
    ThreadCtx waiter(mem, 0, 0x1000);
    ThreadCtx setter(mem, 1, 0x2000);
    bool passed = false;
    waiter.run([](ThreadCtx &c, bool &out) -> Task {
        co_await spinUntilEq(c, 0x900, 7);
        out = true;
    }(waiter, passed));
    setter.run([](ThreadCtx &c) -> Task {
        co_await c.intOps(4);
        co_await c.store(0x900, 7);
    }(setter));

    // Interleave: pull a few waiter ops (it spins), then the setter.
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(waiter.hasNext());
        waiter.consume();
    }
    EXPECT_FALSE(passed);
    while (!setter.finished())
        setter.consume();
    drain(waiter);
    EXPECT_TRUE(passed);
}

TEST(SyncTest, LockProvidesMutualExclusionAtEmission)
{
    FuncMem mem;
    constexpr Addr lock = 0xA00, counter = 0xA80;
    // Two threads increment a non-atomic counter under the lock; the
    // generator-level interleaving is adversarial (alternating pulls).
    auto body = [](ThreadCtx &c) -> Task {
        for (int i = 0; i < 10; ++i) {
            co_await acquireLock(c, lock);
            std::uint64_t v = co_await c.load(counter);
            co_await c.intOps(3); // critical section work
            co_await c.store(counter, v + 1);
            co_await releaseLock(c, lock);
        }
    };
    ThreadCtx a(mem, 0, 0x1000), b(mem, 1, 0x2000);
    a.run(body(a));
    b.run(body(b));
    // Alternate single pulls until both finish.
    while (!a.finished() || !b.finished()) {
        if (!a.finished() && a.hasNext())
            a.consume();
        if (!b.finished() && b.hasNext())
            b.consume();
    }
    EXPECT_EQ(mem.read(counter), 20u);
    EXPECT_EQ(mem.read(lock), 0u) << "lock released";
}

TEST(SyncTest, TreeBarrierReleasesEveryoneExactlyOnce)
{
    FuncMem mem;
    unsigned machine_nodes = 4;
    Addr next = 0x10000;
    TreeBarrier bar(10, machine_nodes, [&](NodeId) {
        Addr a = next;
        next += l2LineBytes;
        return a;
    });
    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    std::vector<int> phase(10, 0);
    for (unsigned t = 0; t < 10; ++t) {
        ctxs.push_back(std::make_unique<ThreadCtx>(
            mem, static_cast<NodeId>(t % machine_nodes),
            0x1000 * (t + 1)));
        ctxs.back()->run([](ThreadCtx &c, TreeBarrier &b, unsigned tid,
                            int &ph) -> Task {
            for (int round = 0; round < 3; ++round) {
                co_await c.intOps(1 + tid); // skewed arrival
                co_await b.wait(c, tid);
                ++ph;
            }
        }(*ctxs.back(), bar, t, phase[t]));
    }
    // Round-robin pulls; no thread may pass a barrier round before all
    // have arrived at it.
    bool progress = true;
    while (progress) {
        progress = false;
        int min_ph = 99, max_ph = -1;
        for (auto &p : phase) {
            min_ph = std::min(min_ph, p);
            max_ph = std::max(max_ph, p);
        }
        EXPECT_LE(max_ph - min_ph, 1)
            << "a thread ran a full round ahead through a barrier";
        for (auto &c : ctxs) {
            if (!c->finished() && c->hasNext()) {
                c->consume();
                progress = true;
            }
        }
    }
    for (auto &c : ctxs)
        EXPECT_TRUE(c->finished());
    for (int p : phase)
        EXPECT_EQ(p, 3);
}

// ----------------------------------------------------------- the apps

class AppGenTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AppGenTest, GeneratorsTerminateAndTouchPlacedMemory)
{
    FuncMem mem;
    PagePlacementMap map(4, 4);
    auto app = makeApp(GetParam());
    WorkloadEnv env;
    env.mem = &mem;
    env.map = &map;
    env.nodes = 4;
    env.threadsPerNode = 1;
    env.scale = 0.25;
    app->build(env);

    // Pull round-robin: threads synchronize through barriers, so no
    // thread can be drained in isolation.
    std::uint64_t loads = 0, stores = 0, fps = 0, branches = 0;
    std::array<std::uint64_t, 4> per_thread{};
    bool progress = true;
    std::size_t total = 0;
    while (progress && total < (1u << 22)) {
        progress = false;
        for (unsigned t = 0; t < 4; ++t) {
            ThreadCtx *c = app->thread(t);
            if (c->finished() || !c->hasNext())
                continue;
            const MicroOp &op = c->peek();
            ++per_thread[t];
            ++total;
            switch (op.cls) {
              case OpClass::Load: ++loads; break;
              case OpClass::Store: ++stores; break;
              case OpClass::FpAdd:
              case OpClass::FpMul:
              case OpClass::FpDiv: ++fps; break;
              case OpClass::Branch: ++branches; break;
              default: break;
            }
            if (isMemOp(op.cls)) {
                EXPECT_NE(op.effAddr, invalidAddr);
                // Every touched page has an explicit home.
                EXPECT_LT(map.homeOf(op.effAddr), 4u);
            }
            c->consume();
            progress = true;
        }
    }
    ASSERT_LT(total, 1u << 22) << "generators did not terminate";
    for (unsigned t = 0; t < 4; ++t) {
        EXPECT_TRUE(app->thread(t)->finished());
        EXPECT_GT(per_thread[t], 500u) << "thread " << t << " idle";
    }
    EXPECT_GT(loads, 100u);
    EXPECT_GT(stores, 50u);
    EXPECT_GT(branches, 50u);
    (void)fps;
}

TEST_P(AppGenTest, SameSeedSameStream)
{
    auto run = [&](std::uint64_t seed) {
        FuncMem mem;
        PagePlacementMap map(2, 4);
        auto app = makeApp(GetParam());
        WorkloadEnv env;
        env.mem = &mem;
        env.map = &map;
        env.nodes = 2;
        env.threadsPerNode = 1;
        env.scale = 0.25;
        env.seed = seed;
        app->build(env);
        std::uint64_t sig = 0;
        // Note: drained single-threaded, so barriers would wedge with
        // more than one *dependent* thread; pull round-robin instead.
        std::array<ThreadCtx *, 2> th = {app->thread(0), app->thread(1)};
        bool progress = true;
        std::size_t count = 0;
        while (progress && count < (1 << 22)) {
            progress = false;
            for (auto *c : th) {
                if (!c->finished() && c->hasNext()) {
                    const auto &op = c->peek();
                    sig = sig * 1099511628211ULL ^
                          (op.pc + op.effAddr +
                           static_cast<unsigned>(op.cls));
                    c->consume();
                    ++count;
                    progress = true;
                }
            }
        }
        return sig;
    };
    EXPECT_EQ(run(7), run(7)) << "generation must be deterministic";
}

INSTANTIATE_TEST_SUITE_P(Apps, AppGenTest,
                         ::testing::Values("FFT", "FFTW", "LU", "Ocean",
                                           "Radix", "Water"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(AppMixTest, ComputeVsMemoryClasses)
{
    // The paper's split: LU and Water are compute-intensive; FFT and
    // Radix are memory-intensive. Check the generated fp-per-memop
    // ratios reflect that by at least 2x.
    auto ratio = [](const char *name) {
        FuncMem mem;
        PagePlacementMap map(2, 4);
        auto app = makeApp(name);
        WorkloadEnv env;
        env.mem = &mem;
        env.map = &map;
        env.nodes = 2;
        env.threadsPerNode = 1;
        env.scale = 0.25;
        app->build(env);
        double fp = 0, memops = 0;
        std::array<ThreadCtx *, 2> th = {app->thread(0), app->thread(1)};
        bool progress = true;
        while (progress) {
            progress = false;
            for (auto *c : th) {
                if (!c->finished() && c->hasNext()) {
                    const auto &op = c->peek();
                    fp += isFpOp(op.cls);
                    memops += op.cls == OpClass::Load ||
                              op.cls == OpClass::Store;
                    c->consume();
                    progress = true;
                }
            }
        }
        return fp / std::max(1.0, memops);
    };
    double lu = ratio("LU"), water = ratio("Water");
    double radix = ratio("Radix");
    EXPECT_GT(lu, 2 * radix);
    EXPECT_GT(water, 2 * radix);
}

TEST(AppFactoryTest, NamesAndUnknowns)
{
    EXPECT_EQ(appNames().size(), 6u);
    for (const auto &n : appNames())
        EXPECT_EQ(makeApp(n)->name(), n);
    EXPECT_EQ(makeApp("fft")->name(), "FFT") << "lowercase accepted";
}

} // namespace
} // namespace smtp::workload
