/**
 * @file
 * The server workload family's contract: queue-server, kv-store and
 * spec-txn run to completion on all five machine models, produce
 * bit-identical simulated results under --exec=serial vs parallel:T,
 * survive a mid-run checkpoint round trip (including the barrier-clock
 * epochs that request latencies are stamped from), stay clean under
 * the FullMirror checker while real speculative aborts fire, and —
 * via a deliberate lost-wakeup bug hook — prove the watchdog's
 * progress probes catch a wedge that produces zero coherence traffic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "check/checker.hpp"
#include "machine/machine.hpp"
#include "trace/trace.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

/**
 * One machine + one server app, parameterized like ExecSim but with
 * the app name, checker knobs and the lost-wakeup hook exposed. The
 * progress probe and workload trace buffers are wired exactly as
 * serve/runner.cpp wires them, so these tests exercise the production
 * plumbing, not a test-only variant.
 */
struct SimOpt
{
    MachineModel model = MachineModel::SMTp;
    ExecParams exec{};
    unsigned nodes = 4;
    unsigned ways = 1;
    double scale = 0.25;
    check::CheckLevel check = check::CheckLevel::Off;
    bool abortOnViolation = true;
    Tick watchdogMaxAge = 0; ///< 0 = the machine default.
    bool injectLostWakeup = false;
    bool traced = false;
    const fault::FaultPlan *faults = nullptr;
};

struct ServerSim
{
    using Opt = SimOpt;

    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    std::unique_ptr<FuncMem> mem;

    explicit ServerSim(const std::string &name, const Opt &o = {})
    {
        MachineParams mp;
        mp.model = o.model;
        mp.nodes = o.nodes;
        mp.appThreadsPerNode = o.ways;
        mp.exec = o.exec;
        mp.checkLevel = o.check;
        mp.checkAbortOnViolation = o.abortOnViolation;
        if (o.watchdogMaxAge != 0)
            mp.checkWatchdogMaxAge = o.watchdogMaxAge;
        if (o.faults != nullptr)
            mp.faults = *o.faults;
        mp.trace.enabled = o.traced;
        machine = std::make_unique<Machine>(mp);
        mem = std::make_unique<FuncMem>();
        app = workload::makeApp(name);
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = o.nodes;
        env.threadsPerNode = o.ways;
        env.scale = o.scale;
        env.injectLostWakeup = o.injectLostWakeup;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
        if (o.traced && machine->traceManager() != nullptr) {
            trace::TraceManager *tm = machine->traceManager();
            app->attachTrace([tm](NodeId node) {
                return tm->createBuffer("wl", node,
                                        trace::Category::Workload);
            });
        }
        const workload::ServerStats *stats = app->serverStats();
        if (machine->checker() != nullptr && stats != nullptr) {
            machine->checker()->addProgressProbe(
                std::string(app->name()),
                [stats] {
                    return stats->requests + stats->txnCommits +
                           stats->txnAborts;
                },
                [stats] { return stats->done(); });
        }
    }

    const workload::ServerStats &stats() const
    {
        return *app->serverStats();
    }
};

std::string
statsOf(Machine &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

ExecParams
par(unsigned threads)
{
    ExecParams p;
    p.mode = ExecParams::Mode::Parallel;
    p.threads = threads;
    return p;
}

/** Everything a run exposes, flattened for exact comparison. */
std::string
fingerprint(ServerSim &sim, Tick t_end)
{
    const workload::ServerStats &st = sim.stats();
    std::ostringstream os;
    os << "tick=" << t_end
       << " insts=" << sim.machine->committedAppInsts()
       << " requests=" << st.requests << " commits=" << st.txnCommits
       << " aborts=" << st.txnAborts << " fallbacks=" << st.txnFallbacks
       << " lat_n=" << st.reqLatency.samples()
       << " lat_mean=" << st.reqLatency.mean()
       << " lat_p50=" << st.reqLatency.percentile(50)
       << " lat_p95=" << st.reqLatency.percentile(95)
       << " lat_p99=" << st.reqLatency.percentile(99) << "\n"
       << statsOf(*sim.machine);
    return os.str();
}

TEST(ServerFactory, ResolvesFamilyAndKeepsPaperListIntact)
{
    EXPECT_EQ(workload::serverAppNames().size(), 3u);
    // The paper's Table 1 list must not grow: sweep scripts iterate it.
    EXPECT_EQ(workload::appNames().size(), 6u);
    for (const std::string &name : workload::serverAppNames()) {
        auto app = workload::makeApp(name);
        ASSERT_NE(app, nullptr) << name;
        EXPECT_EQ(app->name(), name);
        // Server stats exist from construction; scientific apps say no.
        EXPECT_NE(app->serverStats(), nullptr) << name;
    }
    EXPECT_EQ(workload::makeApp("FFT")->serverStats(), nullptr);
}

struct SmokeCase
{
    MachineModel model;
    const char *modelName;
    const char *app;
};

class ServerSmoke : public ::testing::TestWithParam<SmokeCase>
{
};

TEST_P(ServerSmoke, RunsToCompletionWithLiveStats)
{
    const SmokeCase &c = GetParam();
    ServerSim::Opt o;
    o.model = c.model;
    ServerSim sim(c.app, o);
    Tick t_end = sim.machine->run();
    ASSERT_GT(t_end, 0u);

    const workload::ServerStats &st = sim.stats();
    EXPECT_EQ(st.threadsTotal, 4u);
    EXPECT_TRUE(st.done());
    if (std::string(c.app) == "spec-txn") {
        EXPECT_GT(st.txnCommits, 0u);
        // Forced-abort txns guarantee the conflict path executes at
        // every scale and seed, so "aborts observed" is deterministic.
        EXPECT_GT(st.txnAborts, 0u);
        EXPECT_EQ(st.requests, st.txnCommits);
    } else {
        EXPECT_GT(st.requests, 0u);
        EXPECT_EQ(st.txnCommits + st.txnAborts, 0u);
    }
    EXPECT_EQ(st.reqLatency.samples(), st.requests);
    EXPECT_GT(st.reqLatency.max(), 0.0);
}

std::vector<SmokeCase>
smokeCases()
{
    const std::pair<MachineModel, const char *> models[] = {
        {MachineModel::Base, "Base"},
        {MachineModel::IntPerfect, "IntPerfect"},
        {MachineModel::Int512KB, "Int512KB"},
        {MachineModel::Int64KB, "Int64KB"},
        {MachineModel::SMTp, "SMTp"},
    };
    std::vector<SmokeCase> cases;
    for (const auto &[model, mname] : models)
        for (const char *app : {"queue-server", "kv-store", "spec-txn"})
            cases.push_back({model, mname, app});
    return cases;
}

std::string
smokeName(const ::testing::TestParamInfo<SmokeCase> &info)
{
    std::string app = info.param.app;
    std::replace(app.begin(), app.end(), '-', '_');
    return std::string(info.param.modelName) + "_" + app;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ServerSmoke,
                         ::testing::ValuesIn(smokeCases()), smokeName);

class ServerApps : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ServerApps, ParallelMatchesSerialBitForBit)
{
    const char *name = GetParam();
    ServerSim ref(name);
    Tick t_ref = ref.machine->run();
    ASSERT_GT(t_ref, 0u);
    EXPECT_EQ(ref.machine->hostThreads(), 1u);
    std::string golden = fingerprint(ref, t_ref);

    ServerSim::Opt o;
    o.exec = par(4);
    ServerSim sim(name, o);
    EXPECT_EQ(sim.machine->hostThreads(), 4u);
    Tick t_par = sim.machine->run();
    EXPECT_EQ(fingerprint(sim, t_par), golden);
}

TEST_P(ServerApps, MultiWayContextsMatchToo)
{
    // Two app threads per node halves the thread count per generator
    // role; contention goes through the same hot lines either way, and
    // the exec contract must hold at ways > 1 as well.
    const char *name = GetParam();
    ServerSim::Opt o;
    o.ways = 2;
    ServerSim ref(name, o);
    Tick t_ref = ref.machine->run();
    ASSERT_GT(t_ref, 0u);
    std::string golden = fingerprint(ref, t_ref);

    o.exec = par(4);
    ServerSim sim(name, o);
    Tick t_par = sim.machine->run();
    EXPECT_EQ(fingerprint(sim, t_par), golden);
}

TEST_P(ServerApps, CheckpointRoundTripMidRun)
{
    // Save from the middle of the run — consumers mid-request,
    // transactions mid-speculation — restore into a fresh machine, and
    // finish. The resume-log replay must regenerate every birth stamp
    // and latency sample exactly, which is what the barrier-clock
    // epochs in the snapshot exist for.
    const char *name = GetParam();
    ServerSim twin(name);
    Tick t_end = twin.machine->run();
    ASSERT_GT(t_end, 0u);
    std::string golden = fingerprint(twin, t_end);

    ServerSim part(name);
    part.machine->runUntil(t_end / 2);
    ASSERT_GT(part.machine->eventQueue().curTick(), 0u);
    // The interesting snapshot is one with live latency state: some
    // requests retired, some still in flight.
    auto img = part.machine->saveImage();

    ServerSim res(name);
    std::string err;
    ASSERT_TRUE(res.machine->restoreImage(std::move(img), &err)) << err;
    Tick t_res = res.machine->run();
    EXPECT_EQ(fingerprint(res, t_res), golden);
}

TEST_P(ServerApps, SurvivesChaosFaultPlan)
{
    // The chaos harness contract: an active drop/dup/NAK plan recovers
    // transparently and the workload still completes with consistent
    // stats (fault recovery may legitimately change timing, so only
    // completion and workload-level invariants are asserted here).
    const char *name = GetParam();
    fault::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "seed=7,drop=0.005,dup=0.005,nak=0.01", plan, &err))
        << err;
    ServerSim::Opt o;
    o.faults = &plan;
    ServerSim sim(name, o);
    Tick t_end = sim.machine->run();
    ASSERT_GT(t_end, 0u);
    EXPECT_TRUE(sim.stats().done());

    // And the plan must not break exec-mode invariance either.
    o.exec = par(4);
    ServerSim sim2(name, o);
    EXPECT_EQ(fingerprint(sim2, sim2.machine->run()),
              fingerprint(sim, t_end));
}

INSTANTIATE_TEST_SUITE_P(Family, ServerApps,
                         ::testing::Values("queue-server", "kv-store",
                                           "spec-txn"),
                         [](const auto &info) {
                             std::string n = info.param;
                             std::replace(n.begin(), n.end(), '-', '_');
                             return n;
                         });

TEST(ServerChecker, FullMirrorCleanWhileAbortsFire)
{
    // The strongest correctness statement in the acceptance list: the
    // speculative critical sections — including their deterministic
    // forced aborts, rollbacks and lock fallbacks — violate no
    // coherence invariant under the full-mirror checker.
    ServerSim::Opt o;
    o.check = check::CheckLevel::FullMirror;
    ServerSim sim("spec-txn", o);
    Tick t_end = sim.machine->run();
    ASSERT_GT(t_end, 0u);
    sim.machine->quiesce();
    EXPECT_EQ(sim.machine->checker()->violationCount(), 0u);
    EXPECT_GT(sim.stats().txnAborts, 0u);
    EXPECT_GT(sim.stats().txnCommits, 0u);
}

TEST(ServerChecker, FullMirrorCleanOnQueueAndKv)
{
    for (const char *name : {"queue-server", "kv-store"}) {
        ServerSim::Opt o;
        o.check = check::CheckLevel::FullMirror;
        ServerSim sim(name, o);
        ASSERT_GT(sim.machine->run(), 0u) << name;
        sim.machine->quiesce();
        EXPECT_EQ(sim.machine->checker()->violationCount(), 0u) << name;
        EXPECT_GT(sim.stats().requests, 0u) << name;
    }
}

TEST(ServerChecker, ProgressProbeCatchesLostWakeup)
{
    // The deliberate bug: one producer skips its slot publish, so the
    // consumer that claimed that ticket spins forever on its locally
    // cached line. No MSHR ever ages — the transaction watchdog is
    // structurally blind to this wedge — so only the workload progress
    // probe can flag it.
    ServerSim::Opt o;
    o.check = check::CheckLevel::Asserts;
    o.abortOnViolation = false; // report, don't panic
    o.watchdogMaxAge = 200 * tickPerUs;
    o.injectLostWakeup = true;
    ServerSim sim("queue-server", o);

    // The wedged workload never finishes, so advance in bounded
    // slices until the watchdog fires (the chaos-harness idiom).
    auto &eq = sim.machine->eventQueue();
    const Tick deadline = 20 * tickPerMs;
    const Tick slice = tickPerMs / 10;
    while (eq.curTick() < deadline &&
           sim.machine->checker()->violationCount() == 0) {
        Tick target = std::min(deadline, eq.curTick() + slice);
        if (sim.machine->runUntil(target))
            break;
        if (eq.curTick() < target)
            break; // wedged with idle queues; nothing left to run
    }

    ASSERT_GT(sim.machine->checker()->violationCount(), 0u);
    bool probe_flagged = false;
    for (const std::string &v : sim.machine->checker()->violations())
        if (v.find("progress probe") != std::string::npos)
            probe_flagged = true;
    EXPECT_TRUE(probe_flagged);
    EXPECT_FALSE(sim.stats().done());
}

TEST(ServerChecker, ProbeStaysQuietOnHealthyRun)
{
    // Same tight watchdog, no bug: the probe must never fire on a
    // healthy run, including across the done() transition at the end.
    ServerSim::Opt o;
    o.check = check::CheckLevel::Asserts;
    o.watchdogMaxAge = 200 * tickPerUs;
    ServerSim sim("queue-server", o);
    ASSERT_GT(sim.machine->run(), 0u);
    sim.machine->quiesce();
    EXPECT_EQ(sim.machine->checker()->violationCount(), 0u);
}

TEST(ServerTrace, WorkloadEventsRecorded)
{
    // attachTrace wires per-node "wl" buffers; retires and txn
    // outcomes must land in them. Scientific-app runs never call
    // attachTrace, so this is also the proof the category is opt-in.
    for (const char *name : {"queue-server", "spec-txn"}) {
        ServerSim::Opt o;
        o.traced = true;
        ServerSim sim(name, o);
        ASSERT_GT(sim.machine->run(), 0u) << name;
        std::uint64_t wl_events = 0;
        for (const auto &buf : sim.machine->traceManager()->buffers())
            if (buf->category() == trace::Category::Workload)
                wl_events += buf->recorded();
        EXPECT_GT(wl_events, 0u) << name;
    }
}

TEST(ServerTrace, TracedExportsAreExecModeInvariant)
{
    // Workload telemetry rides the same simulated-event rules as every
    // other category: a traced parallel run exports byte-identical
    // buffers to the serial reference.
    ServerSim::Opt o;
    o.traced = true;
    ServerSim ref("queue-server", o);
    Tick t_ref = ref.machine->run();
    o.exec = par(4);
    ServerSim sim("queue-server", o);
    EXPECT_EQ(sim.machine->run(), t_ref);
    EXPECT_EQ(fingerprint(sim, t_ref), fingerprint(ref, t_ref));
}

} // namespace
} // namespace smtp
