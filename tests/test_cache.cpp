/**
 * @file
 * Unit tests for the coherent cache hierarchy: hit/miss timing, MSHR
 * coalescing, the store upgrade path, eviction/writeback ordering,
 * probe semantics (invalidations, interventions, writeback races,
 * deferral), fill poisoning, and the SMTp bypass buffers.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/hierarchy.hpp"
#include "protocol/directory.hpp"

namespace smtp
{
namespace
{

using proto::Message;
using proto::MsgType;

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : clock(2000), cache(eq, clock, 0, makeParams())
    {
        cache.connect(
            [this](const Message &m) {
                if (lmiFull)
                    return false;
                lmi.push_back(m);
                return true;
            },
            [this](Addr a, bool write, EventQueue::Callback fn) {
                bypassOps.push_back({a, write});
                if (fn)
                    eq.scheduleIn(80 * tickPerNs, std::move(fn));
            });
        cache.setInvalHook([this](Addr a) { invalidated.push_back(a); });
    }

    static CacheParams
    makeParams()
    {
        CacheParams p;
        // Small caches so tests can exercise evictions cheaply.
        p.l1iBytes = 2 * 1024;
        p.l1dBytes = 1 * 1024;
        p.l2Bytes = 16 * 1024; // 16 sets x 8 ways x 128 B
        p.enableBypass = true;
        return p;
    }

    /** Issue an access; returns sequence id used to check completion. */
    int
    issue(MemCmd cmd, Addr addr)
    {
        int id = nextId++;
        MemReq req;
        req.cmd = cmd;
        req.addr = addr;
        req.done = [this, id] { completed.push_back(id); };
        lastOutcome = cache.access(req);
        return id;
    }

    bool
    isDone(int id) const
    {
        for (int c : completed)
            if (c == id)
                return true;
        return false;
    }

    /** Pop the next LMI message, asserting its type. */
    Message
    expectLmi(MsgType t)
    {
        EXPECT_FALSE(lmi.empty()) << "expected " << proto::msgTypeName(t);
        Message m = lmi.front();
        lmi.erase(lmi.begin());
        EXPECT_EQ(m.type, t);
        return m;
    }

    void
    fill(const Message &req, MsgType fill_type)
    {
        Message f;
        f.type = fill_type;
        f.addr = req.addr;
        f.mshr = req.mshr;
        ASSERT_TRUE(cache.deliverFill(f));
    }

    EventQueue eq;
    ClockDomain clock;
    CacheHierarchy cache;
    std::vector<Message> lmi;
    std::vector<std::pair<Addr, bool>> bypassOps;
    std::vector<Addr> invalidated;
    std::vector<int> completed;
    bool lmiFull = false;
    int nextId = 0;
    CacheHierarchy::Outcome lastOutcome{};
};

TEST_F(CacheTest, LoadMissFillHit)
{
    int id = issue(MemCmd::Load, 0x10000);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Pending);
    eq.run();
    EXPECT_FALSE(isDone(id));
    auto req = expectLmi(MsgType::PiGet);
    EXPECT_EQ(req.addr, 0x10000u);

    fill(req, MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_EQ(cache.l2State(0x10000), LineState::Sh);
    EXPECT_TRUE(cache.inL1d(0x10000));

    // Second access is an L1 hit completing in one cycle.
    Tick t0 = eq.curTick();
    int id2 = issue(MemCmd::Load, 0x10008);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Done);
    eq.run();
    EXPECT_TRUE(isDone(id2));
    EXPECT_EQ(eq.curTick() - t0, clock.cyclesToTicks(1));
    EXPECT_EQ(cache.l1dHits.value(), 1u);
}

TEST_F(CacheTest, L1MissL2HitTiming)
{
    int id = issue(MemCmd::Load, 0x10000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    ASSERT_TRUE(isDone(id));

    // A different 32 B sub-line of the same 128 B L2 line: L1 miss, L2 hit.
    Tick t0 = eq.curTick();
    int id2 = issue(MemCmd::Load, 0x10000 + 64);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Pending);
    eq.run();
    EXPECT_TRUE(isDone(id2));
    EXPECT_EQ(eq.curTick() - t0, clock.cyclesToTicks(9));
}

TEST_F(CacheTest, MshrCoalescing)
{
    int a = issue(MemCmd::Load, 0x20000);
    int b = issue(MemCmd::Load, 0x20040); // same 128 B line
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Pending);
    EXPECT_EQ(cache.mshrsInUse(), 1u);
    auto req = expectLmi(MsgType::PiGet);
    EXPECT_TRUE(lmi.empty()) << "coalesced miss must not re-request";
    fill(req, MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(isDone(a));
    EXPECT_TRUE(isDone(b));
    EXPECT_EQ(cache.mshrsInUse(), 0u);
}

TEST_F(CacheTest, StoreMissRequestsExclusive)
{
    int id = issue(MemCmd::Store, 0x30000);
    auto req = expectLmi(MsgType::PiGetx);
    fill(req, MsgType::CcFillEx);
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_EQ(cache.l2State(0x30000), LineState::Mod);
}

TEST_F(CacheTest, EagerExclusiveFillLeavesCleanLine)
{
    issue(MemCmd::Load, 0x30000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillEx);
    eq.run();
    EXPECT_EQ(cache.l2State(0x30000), LineState::Ex);
    // A later store hits locally with no protocol traffic.
    int id = issue(MemCmd::Store, 0x30000);
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_TRUE(lmi.empty());
    EXPECT_EQ(cache.l2State(0x30000), LineState::Mod);
}

TEST_F(CacheTest, StoreOnSharedLineUpgrades)
{
    issue(MemCmd::Load, 0x40000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    ASSERT_EQ(cache.l2State(0x40000), LineState::Sh);

    int id = issue(MemCmd::Store, 0x40000);
    auto up = expectLmi(MsgType::PiUpgrade);
    EXPECT_FALSE(isDone(id));
    Message g;
    g.type = MsgType::CcUpgradeGrant;
    g.addr = up.addr;
    g.mshr = up.mshr;
    ASSERT_TRUE(cache.deliverFill(g));
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_EQ(cache.l2State(0x40000), LineState::Mod);
}

TEST_F(CacheTest, StoreArrivingOnSharedMissUpgradesAfterFill)
{
    int ld = issue(MemCmd::Load, 0x50000);
    auto req = expectLmi(MsgType::PiGet);
    int st = issue(MemCmd::Store, 0x50010); // same line, while in flight
    EXPECT_EQ(cache.mshrsInUse(), 1u);

    fill(req, MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(isDone(ld));
    EXPECT_FALSE(isDone(st)) << "store needs the upgrade";
    auto up = expectLmi(MsgType::PiUpgrade);
    Message g;
    g.type = MsgType::CcUpgradeGrant;
    g.addr = up.addr;
    g.mshr = up.mshr;
    ASSERT_TRUE(cache.deliverFill(g));
    eq.run();
    EXPECT_TRUE(isDone(st));
    EXPECT_EQ(cache.l2State(0x50000), LineState::Mod);
}

TEST_F(CacheTest, StoreCoalescedOntoExclusiveMissCompletesWithFill)
{
    int st1 = issue(MemCmd::Store, 0x60000);
    auto req = expectLmi(MsgType::PiGetx);
    int st2 = issue(MemCmd::Store, 0x60020);
    fill(req, MsgType::CcFillEx);
    eq.run();
    EXPECT_TRUE(isDone(st1));
    EXPECT_TRUE(isDone(st2));
}

TEST_F(CacheTest, DirtyEvictionEmitsPutAndTracksRace)
{
    // Fill 9 distinct lines mapping to the same L2 set (16 sets x 128 B
    // stride = 2 KB). The 9th fill evicts the LRU (first) line.
    std::vector<Message> reqs;
    for (int i = 0; i < 9; ++i) {
        issue(i == 0 ? MemCmd::Store : MemCmd::Load,
              0x100000 + static_cast<Addr>(i) * 16 * 128);
        reqs.push_back(lmi.back());
        lmi.pop_back();
        fill(reqs.back(), i == 0 ? MsgType::CcFillEx : MsgType::CcFillSh);
        eq.run();
    }
    auto put = expectLmi(MsgType::PiPut);
    EXPECT_EQ(put.addr, 0x100000u);
    EXPECT_TRUE(put.carriesData());
    EXPECT_TRUE(cache.wbPending(0x100000));
    EXPECT_EQ(cache.l2State(0x100000), LineState::Inv);
    cache.clearWbPending(0x100000);
    EXPECT_FALSE(cache.wbPending(0x100000));
}

TEST_F(CacheTest, CleanExclusiveEvictionEmitsPutClean)
{
    std::vector<Message> reqs;
    for (int i = 0; i < 9; ++i) {
        issue(MemCmd::Load, 0x100000 + static_cast<Addr>(i) * 16 * 128);
        reqs.push_back(lmi.back());
        lmi.pop_back();
        // First line granted eager-exclusive but never written.
        fill(reqs.back(), i == 0 ? MsgType::CcFillEx : MsgType::CcFillSh);
        eq.run();
    }
    auto put = expectLmi(MsgType::PiPutClean);
    EXPECT_EQ(put.addr, 0x100000u);
    EXPECT_FALSE(put.carriesData());
}

TEST_F(CacheTest, SharedEvictionIsSilent)
{
    for (int i = 0; i < 9; ++i) {
        issue(MemCmd::Load, 0x100000 + static_cast<Addr>(i) * 16 * 128);
        auto req = expectLmi(MsgType::PiGet);
        fill(req, MsgType::CcFillSh);
        eq.run();
    }
    EXPECT_TRUE(lmi.empty()) << "shared evictions must not emit messages";
}

TEST_F(CacheTest, EvictionOrderedBeforeReRequest)
{
    // Fill the set, dirty the first line, then trigger eviction and
    // immediately re-request the evicted line: the Put must be enqueued
    // to the LMI before the new Get.
    lmiFull = true; // Hold everything in the cache-side FIFO.
    std::vector<Message> pending;
    lmiFull = false;
    std::vector<Message> reqs;
    for (int i = 0; i < 8; ++i) {
        issue(i == 0 ? MemCmd::Store : MemCmd::Load,
              0x100000 + static_cast<Addr>(i) * 16 * 128);
        reqs.push_back(lmi.back());
        lmi.pop_back();
        fill(reqs.back(), i == 0 ? MsgType::CcFillEx : MsgType::CcFillSh);
        eq.run();
    }
    lmiFull = true;
    issue(MemCmd::Load, 0x100000 + 8 * 16 * 128); // queued in cache FIFO
    auto req9 = Message{};
    eq.run(eq.curTick() + 10 * tickPerNs);
    // Deliver the 9th fill while the LMI refuses; eviction Put and a
    // re-request of the victim line both queue behind the Get.
    // First release the LMI and drain.
    lmiFull = false;
    eq.run(eq.curTick() + 10 * tickPerNs);
    ASSERT_FALSE(lmi.empty());
    req9 = expectLmi(MsgType::PiGet);
    fill(req9, MsgType::CcFillSh);
    eq.run();
    auto put = expectLmi(MsgType::PiPut);
    EXPECT_EQ(put.addr, 0x100000u);
    // Now re-request the evicted line: Get must follow the Put.
    issue(MemCmd::Load, 0x100000);
    auto get = expectLmi(MsgType::PiGet);
    EXPECT_EQ(get.addr, 0x100000u);
}

TEST_F(CacheTest, InvalProbeInvalidatesAndHooksReplay)
{
    issue(MemCmd::Load, 0x70000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    ASSERT_TRUE(cache.inL1d(0x70000));

    auto out = cache.applyProbe(MsgType::CcInval, 0x70000);
    EXPECT_TRUE(out.hit);
    EXPECT_EQ(cache.l2State(0x70000), LineState::Inv);
    EXPECT_FALSE(cache.inL1d(0x70000));
    ASSERT_EQ(invalidated.size(), 1u);
    EXPECT_EQ(invalidated[0], 0x70000u);
}

TEST_F(CacheTest, InvalProbeOnAbsentLineMisses)
{
    auto out = cache.applyProbe(MsgType::CcInval, 0x71000);
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(invalidated.empty());
}

TEST_F(CacheTest, IntervShDowngradesDirtyLine)
{
    issue(MemCmd::Store, 0x72000);
    fill(expectLmi(MsgType::PiGetx), MsgType::CcFillEx);
    eq.run();
    ASSERT_EQ(cache.l2State(0x72000), LineState::Mod);

    auto out = cache.applyProbe(MsgType::CcIntervSh, 0x72000);
    EXPECT_TRUE(out.hit);
    EXPECT_TRUE(out.dirty);
    EXPECT_EQ(cache.l2State(0x72000), LineState::Sh);
    EXPECT_TRUE(invalidated.empty()) << "downgrade keeps read permission";
}

TEST_F(CacheTest, IntervExInvalidatesAndReportsClean)
{
    issue(MemCmd::Load, 0x73000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillEx);
    eq.run();
    ASSERT_EQ(cache.l2State(0x73000), LineState::Ex);

    auto out = cache.applyProbe(MsgType::CcIntervEx, 0x73000);
    EXPECT_TRUE(out.hit);
    EXPECT_FALSE(out.dirty);
    EXPECT_EQ(cache.l2State(0x73000), LineState::Inv);
    EXPECT_EQ(invalidated.size(), 1u);
}

TEST_F(CacheTest, InterventionDuringWritebackRaceMisses)
{
    // Dirty a line, evict it (Put outstanding), then intervene.
    issue(MemCmd::Store, 0x100000);
    fill(expectLmi(MsgType::PiGetx), MsgType::CcFillEx);
    eq.run();
    for (int i = 1; i < 9; ++i) {
        issue(MemCmd::Load, 0x100000 + static_cast<Addr>(i) * 16 * 128);
        fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
        eq.run();
    }
    expectLmi(MsgType::PiPut);
    ASSERT_TRUE(cache.wbPending(0x100000));
    EXPECT_FALSE(cache.probeWouldDefer(0x100000));
    auto out = cache.applyProbe(MsgType::CcIntervSh, 0x100000);
    EXPECT_FALSE(out.hit) << "writeback race must answer IntervMiss";
}

TEST_F(CacheTest, InterventionChasingExclusiveGrantDefers)
{
    issue(MemCmd::Store, 0x74000);
    expectLmi(MsgType::PiGetx);
    // Fill not yet delivered: an intervention for this line must wait.
    EXPECT_TRUE(cache.probeWouldDefer(0x74000));
}

TEST_F(CacheTest, PoisonedSharedFillInstallsNothing)
{
    int id = issue(MemCmd::Load, 0x75000);
    auto req = expectLmi(MsgType::PiGet);
    // Invalidation chases the future fill.
    auto out = cache.applyProbe(MsgType::CcInval, 0x75000);
    EXPECT_FALSE(out.hit);
    fill(req, MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(isDone(id)) << "data is delivered exactly once";
    EXPECT_EQ(cache.l2State(0x75000), LineState::Inv);
    EXPECT_EQ(cache.fillsPoisoned.value(), 1u);
}

TEST_F(CacheTest, UpgradeGrantOnVanishedLineReleasesThenReissuesGetx)
{
    issue(MemCmd::Load, 0x76000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    int st = issue(MemCmd::Store, 0x76000);
    auto up = expectLmi(MsgType::PiUpgrade);
    // The shared copy vanishes while the upgrade is in flight.
    cache.applyProbe(MsgType::CcInval, 0x76000);
    Message g;
    g.type = MsgType::CcUpgradeGrant;
    g.addr = up.addr;
    g.mshr = up.mshr;
    ASSERT_TRUE(cache.deliverFill(g));
    // The grant recorded this node as exclusive owner at the home, so
    // the unusable ownership must be released ahead of the re-request
    // (same FIFO) or the home would NAK the GETX as stale forever.
    auto put = expectLmi(MsgType::PiPutClean);
    EXPECT_EQ(put.addr, 0x76000u);
    EXPECT_TRUE(cache.wbPending(0x76000));
    cache.clearWbPending(0x76000); // the home's RplWbAck
    auto getx = expectLmi(MsgType::PiGetx);
    EXPECT_EQ(getx.addr, 0x76000u);
    fill(getx, MsgType::CcFillEx);
    eq.run();
    EXPECT_TRUE(isDone(st));
    EXPECT_EQ(cache.l2State(0x76000), LineState::Mod);
}

TEST_F(CacheTest, PrefetchAllocatesMshrWithoutBlocking)
{
    int id = issue(MemCmd::Prefetch, 0x77000);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Done);
    eq.run();
    EXPECT_TRUE(isDone(id)) << "prefetch completes immediately";
    auto req = expectLmi(MsgType::PiGet);
    EXPECT_TRUE(req.flags & proto::flagPrefetch);

    // A demand load on the in-flight prefetch coalesces and is counted.
    int ld = issue(MemCmd::Load, 0x77000);
    fill(req, MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(isDone(ld));
    EXPECT_EQ(cache.prefetchesUseful.value(), 1u);
}

TEST_F(CacheTest, PrefetchDroppedWhenMshrsFull)
{
    for (unsigned i = 0; i < 16; ++i)
        issue(MemCmd::Load, 0x200000 + static_cast<Addr>(i) * 0x1000);
    EXPECT_EQ(cache.mshrsInUse(), 16u);
    issue(MemCmd::Prefetch, 0x300000);
    EXPECT_EQ(cache.prefetchesDropped.value(), 1u);
    EXPECT_EQ(cache.mshrsInUse(), 16u);
}

TEST_F(CacheTest, DemandLoadRetriesWhenMshrsFull)
{
    for (unsigned i = 0; i < 16; ++i)
        issue(MemCmd::Load, 0x200000 + static_cast<Addr>(i) * 0x1000);
    issue(MemCmd::Load, 0x300000);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Retry);
}

TEST_F(CacheTest, ReservedStoreMshrKeepsStoresDraining)
{
    for (unsigned i = 0; i < 16; ++i)
        issue(MemCmd::Load, 0x200000 + static_cast<Addr>(i) * 0x1000);
    issue(MemCmd::Store, 0x300000);
    EXPECT_EQ(lastOutcome, CacheHierarchy::Outcome::Pending)
        << "the 17th (store-reserved) MSHR must accept a retiring store";
    EXPECT_EQ(cache.mshrsInUse(), 17u);
}

TEST_F(CacheTest, ProtocolAccessesBypassLmi)
{
    using proto::protoDirBase;
    int id = issue(MemCmd::ProtoLoad, protoDirBase + 0x40);
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_TRUE(lmi.empty()) << "protocol misses bypass the LMI";
    ASSERT_EQ(bypassOps.size(), 1u);
    EXPECT_FALSE(bypassOps[0].second);
    EXPECT_EQ(cache.protoL2Misses.value(), 1u);

    // Now an L1 hit.
    int id2 = issue(MemCmd::ProtoLoad, protoDirBase + 0x48);
    eq.run();
    EXPECT_TRUE(isDone(id2));
    EXPECT_EQ(cache.protoL1dHits.value(), 1u);
}

TEST_F(CacheTest, ProtocolStoreDirtiesAndEvictionWritesBack)
{
    using proto::protoDirBase;
    // Dirty one protocol line, then displace it with app lines.
    int id = issue(MemCmd::ProtoStore, protoDirBase);
    eq.run();
    ASSERT_TRUE(isDone(id));
    EXPECT_EQ(cache.l2State(protoDirBase), LineState::Mod);
    bypassOps.clear();

    for (int i = 0; i < 8; ++i) {
        Addr a = 0x100000 + static_cast<Addr>(i) * 16 * 128 +
                 (protoDirBase & 0x780ULL); // same set as the proto line
        issue(MemCmd::Load, a);
        auto req = expectLmi(MsgType::PiGet);
        fill(req, MsgType::CcFillSh);
        eq.run();
    }
    // The dirty protocol victim went back over the bypass bus.
    bool wrote = false;
    for (auto &[a, w] : bypassOps)
        wrote |= w && a == protoDirBase;
    EXPECT_TRUE(wrote);
}

TEST_F(CacheTest, BypassBufferAbsorbsConflictingProtocolFill)
{
    using proto::protoDirBase;
    // Fill an L2 set completely with application lines and keep one
    // in-flight miss mapping there, then take a protocol miss to the
    // same set: it must land in the bypass buffer, not evict.
    Addr set_off = protoDirBase & (15ULL * 128); // set index of the target
    for (int i = 0; i < 8; ++i) {
        Addr a = 0x400000 + static_cast<Addr>(i) * 16 * 128 + set_off;
        issue(MemCmd::Load, a);
        fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
        eq.run();
    }
    issue(MemCmd::Load, 0x500000 + set_off); // in-flight, same set
    expectLmi(MsgType::PiGet);

    issue(MemCmd::ProtoLoad, protoDirBase);
    eq.run();
    EXPECT_GE(cache.bypassAllocs.value(), 1u);
    // All 8 application lines still resident.
    for (int i = 0; i < 8; ++i) {
        Addr a = 0x400000 + static_cast<Addr>(i) * 16 * 128 + set_off;
        EXPECT_EQ(cache.l2State(a), LineState::Sh);
    }
    // And the protocol line is accessible (bypass lookup).
    EXPECT_EQ(cache.l2State(protoDirBase), LineState::Ex);
}

TEST_F(CacheTest, ConcurrentProtoMissesCoalesce)
{
    using proto::protoPendBase;
    int a = issue(MemCmd::ProtoLoad, protoPendBase);
    int b = issue(MemCmd::ProtoLoad, protoPendBase + 8);
    eq.run();
    EXPECT_TRUE(isDone(a));
    EXPECT_TRUE(isDone(b));
    EXPECT_EQ(bypassOps.size(), 1u) << "one bus access per line";
}

TEST_F(CacheTest, QuiescenceReflectsOutstandingWork)
{
    EXPECT_TRUE(cache.quiescent());
    issue(MemCmd::Load, 0x80000);
    EXPECT_FALSE(cache.quiescent());
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(cache.quiescent());
}

TEST_F(CacheTest, InclusionMaintainedOnL2Eviction)
{
    issue(MemCmd::Load, 0x100000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    ASSERT_TRUE(cache.inL1d(0x100000));
    for (int i = 1; i < 9; ++i) {
        issue(MemCmd::Load, 0x100000 + static_cast<Addr>(i) * 16 * 128);
        fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
        eq.run();
    }
    EXPECT_EQ(cache.l2State(0x100000), LineState::Inv);
    EXPECT_FALSE(cache.inL1d(0x100000)) << "inclusion violated";
}

TEST_F(CacheTest, IFetchFillsL1I)
{
    issue(MemCmd::IFetch, 0x90000);
    fill(expectLmi(MsgType::PiGet), MsgType::CcFillSh);
    eq.run();
    EXPECT_TRUE(cache.inL1i(0x90000));
    EXPECT_FALSE(cache.inL1d(0x90000));
    int id = issue(MemCmd::IFetch, 0x90010);
    eq.run();
    EXPECT_TRUE(isDone(id));
    EXPECT_EQ(cache.l1iHits.value(), 1u);
}

TEST_F(CacheTest, DeathOnInterventionWithNoOwnershipHistory)
{
    EXPECT_DEATH(cache.applyProbe(MsgType::CcIntervSh, 0xAB000),
                 "intervention");
}

} // namespace
} // namespace smtp
