/**
 * @file
 * Protocol transition-table tests: each home-side handler is executed
 * directly (functional executor + mock environment) against every
 * relevant directory state, asserting the new entry and the exact
 * outgoing messages. This pins the protocol's transition table
 * independently of any timing model — the protocol analogue of an ISA
 * golden-model test.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "protocol/directory.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"

namespace smtp::proto
{
namespace
{

constexpr NodeId homeNode = 2;
constexpr Addr line = 0x40000; // arbitrary line-aligned address

class TableEnv : public ExecEnv
{
  public:
    std::uint64_t
    protoLoad(Addr a, unsigned bytes) override
    {
        auto it = ram.find(a & ~7ULL);
        std::uint64_t v = it == ram.end() ? 0 : it->second;
        if (bytes == 4)
            return (v >> ((a & 4) ? 32 : 0)) & 0xffffffffULL;
        return v;
    }

    void
    protoStore(Addr a, std::uint64_t v, unsigned bytes) override
    {
        Addr w = a & ~7ULL;
        if (bytes == 8) {
            ram[w] = v;
            return;
        }
        std::uint64_t cur = ram[w];
        unsigned shift = (a & 4) ? 32 : 0;
        cur &= ~(0xffffffffULL << shift);
        cur |= (v & 0xffffffffULL) << shift;
        ram[w] = cur;
    }

    Addr dirAddrOf(Addr l) override { return protoDirBase + (l >> 7) * 8; }
    NodeId homeOf(Addr) override { return homeNode; }
    std::uint64_t probeResult() override { return probe; }

    std::unordered_map<Addr, std::uint64_t> ram;
    std::uint64_t probe = 1; // hit, clean
};

class TransitionTest : public ::testing::Test
{
  protected:
    TransitionTest()
        : fmt(DirFormat::forNodes(16)), image(buildHandlerImage(fmt)),
          ex(image, env)
    {
        ex.boot(homeNode);
    }

    void
    setEntry(std::uint64_t e)
    {
        env.protoStore(env.dirAddrOf(line), e, fmt.entryBytes);
    }

    std::uint64_t entry() { return env.protoLoad(env.dirAddrOf(line),
                                                 fmt.entryBytes); }

    HandlerTrace
    deliver(MsgType t, NodeId src, NodeId requester, std::uint8_t mshr = 5,
            std::uint16_t acks = 0)
    {
        Message m;
        m.type = t;
        m.addr = line;
        m.src = src;
        m.dest = homeNode;
        m.requester = requester;
        m.mshr = mshr;
        m.ackCount = acks;
        if (typeCarriesData(t))
            m.flags |= flagDataCarried;
        return ex.run(m);
    }

    /** Outgoing network messages of a trace, in order. */
    static std::vector<Message>
    netSends(const HandlerTrace &tr)
    {
        std::vector<Message> out;
        for (const auto &s : tr.sends)
            if (s.target == SendTarget::Network)
                out.push_back(s.msg);
        return out;
    }

    static unsigned
    memWrites(const HandlerTrace &tr)
    {
        unsigned n = 0;
        for (const auto &s : tr.sends)
            n += s.target == SendTarget::MemWrite;
        return n;
    }

    DirFormat fmt;
    HandlerImage image;
    TableEnv env;
    Executor ex;
};

// ----------------------------------------------------------- ReqGet

TEST_F(TransitionTest, GetAtUnownedGrantsEagerExclusive)
{
    setEntry(0);
    auto tr = deliver(MsgType::ReqGet, 4, 4);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirExclusive);
    EXPECT_EQ(fmt.owner(e), 4);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplDataEx);
    EXPECT_EQ(out[0].dest, 4);
    EXPECT_EQ(out[0].mshr, 5);
    EXPECT_EQ(out[0].ackCount, 0);
    // Data comes from the speculative memory read.
    EXPECT_EQ(tr.sends[0].dataSrc, DataSrc::Memory);
}

TEST_F(TransitionTest, GetAtSharedAddsSharer)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 0b1001);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGet, 5, 5);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirShared);
    EXPECT_EQ(fmt.vector(e), 0b101001u);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplDataSh);
}

TEST_F(TransitionTest, GetAtExclusiveIntervenesThreeHop)
{
    std::uint64_t e0 = fmt.setState(0, dirExclusive);
    e0 = fmt.setVector(e0, 1u << 7);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGet, 4, 4, 9);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirBusySh);
    EXPECT_EQ(fmt.pendingReq(e), 4);
    EXPECT_EQ(fmt.pendingMshr(e), 9);
    EXPECT_FALSE(fmt.pendingGetx(e));
    EXPECT_EQ(fmt.vector(e), 1u << 7) << "owner bit preserved";
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::FwdIntervSh);
    EXPECT_EQ(out[0].dest, 7);
    EXPECT_EQ(out[0].requester, 4);
}

TEST_F(TransitionTest, GetAtBusyNaks)
{
    std::uint64_t e0 = fmt.setState(0, dirBusySh);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGet, 4, 4);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplNak);
    EXPECT_EQ(out[0].dest, 4);
    EXPECT_EQ(fmt.state(entry()), dirBusySh) << "entry untouched";
}

TEST_F(TransitionTest, GetAtStaleSharedNaks)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 0b10);
    e0 = fmt.setStale(e0, true);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGet, 4, 4);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplNak);
}

// ----------------------------------------------------------- ReqGetx

TEST_F(TransitionTest, GetxAtSharedInvalidatesEveryOtherSharer)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 0b1011011); // nodes 0,1,3,4,6
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGetx, 3, 3, 2);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirExclusive);
    EXPECT_EQ(fmt.owner(e), 3);
    auto out = netSends(tr);
    // 4 invalidations + the data reply.
    ASSERT_EQ(out.size(), 5u);
    std::uint64_t inval_dests = 0;
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(out[i].type, MsgType::FwdInval);
        EXPECT_EQ(out[i].requester, 3) << "acks go to the requester";
        inval_dests |= 1ULL << out[i].dest;
    }
    EXPECT_EQ(inval_dests, 0b1010011u) << "everyone but the requester";
    EXPECT_EQ(out[4].type, MsgType::RplDataEx);
    EXPECT_EQ(out[4].ackCount, 4);
}

TEST_F(TransitionTest, GetxAtUnowned)
{
    setEntry(0);
    auto tr = deliver(MsgType::ReqGetx, 6, 6);
    EXPECT_EQ(fmt.state(entry()), dirExclusive);
    EXPECT_EQ(fmt.owner(entry()), 6);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplDataEx);
    EXPECT_EQ(out[0].ackCount, 0);
}

TEST_F(TransitionTest, GetxAtExclusiveForwardsOwnershipIntervention)
{
    std::uint64_t e0 = fmt.setState(0, dirExclusive);
    e0 = fmt.setVector(e0, 1u << 1);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqGetx, 4, 4, 11);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirBusyEx);
    EXPECT_TRUE(fmt.pendingGetx(e));
    EXPECT_EQ(fmt.pendingReq(e), 4);
    EXPECT_EQ(fmt.pendingMshr(e), 11);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::FwdIntervEx);
    EXPECT_EQ(out[0].dest, 1);
}

// --------------------------------------------------------- ReqUpgrade

TEST_F(TransitionTest, UpgradeGrantedWhenStillSharer)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 0b11000);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqUpgrade, 3, 3);
    EXPECT_EQ(fmt.state(entry()), dirExclusive);
    EXPECT_EQ(fmt.owner(entry()), 3);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, MsgType::FwdInval);
    EXPECT_EQ(out[0].dest, 4);
    EXPECT_EQ(out[1].type, MsgType::RplUpgradeAck);
    EXPECT_EQ(out[1].ackCount, 1);
}

TEST_F(TransitionTest, UpgradeNakedWhenInvalidatedMeanwhile)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 0b10000); // node 4 only; requester 3 gone
    setEntry(e0);
    auto tr = deliver(MsgType::ReqUpgrade, 3, 3);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplNak);
    EXPECT_EQ(fmt.vector(entry()), 0b10000u) << "entry untouched";
}

TEST_F(TransitionTest, UpgradeNakedWhenExclusiveElsewhere)
{
    std::uint64_t e0 = fmt.setState(0, dirExclusive);
    e0 = fmt.setVector(e0, 1u << 9);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqUpgrade, 3, 3);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplNak);
}

// ---------------------------------------------------------- writebacks

TEST_F(TransitionTest, PutFromOwnerRetiresLine)
{
    std::uint64_t e0 = fmt.setState(0, dirExclusive);
    e0 = fmt.setVector(e0, 1u << 6);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqPut, 6, 6);
    EXPECT_EQ(entry(), 0u) << "entry returns to Unowned";
    EXPECT_EQ(memWrites(tr), 1u) << "dirty data written to memory";
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplWbAck);
    EXPECT_EQ(out[0].dest, 6);
}

TEST_F(TransitionTest, PutCleanSkipsMemoryWrite)
{
    std::uint64_t e0 = fmt.setState(0, dirExclusive);
    e0 = fmt.setVector(e0, 1u << 6);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqPutClean, 6, 6);
    EXPECT_EQ(entry(), 0u);
    EXPECT_EQ(memWrites(tr), 0u);
}

TEST_F(TransitionTest, PutRacingBusyShSatisfiesParkedRequester)
{
    // Owner 6 wrote back while the home waits for its SharingWb.
    std::uint64_t e0 = fmt.setState(0, dirBusySh);
    e0 = fmt.setVector(e0, 1u << 6);
    e0 = fmt.setPendingReq(e0, 4);
    e0 = fmt.setPendingMshr(e0, 13);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqPut, 6, 6);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirShared);
    EXPECT_TRUE(fmt.stale(e)) << "the intervention is still in flight";
    EXPECT_EQ(fmt.vector(e), 1u << 4) << "only the parked requester";
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, MsgType::RplDataSh);
    EXPECT_EQ(out[0].dest, 4);
    EXPECT_EQ(out[0].mshr, 13);
    EXPECT_EQ(out[1].type, MsgType::RplWbBusyAck)
        << "busy flavour keeps the race tracker armed";
    EXPECT_EQ(memWrites(tr), 1u);
}

TEST_F(TransitionTest, PutAfterIntervMissGrantsWithoutStale)
{
    std::uint64_t e0 = fmt.setState(0, dirBusyExWaitPut);
    e0 = fmt.setVector(e0, 1u << 6);
    e0 = fmt.setPendingReq(e0, 4);
    e0 = fmt.setPendingMshr(e0, 1);
    e0 = fmt.setPendingGetx(e0, true);
    setEntry(e0);
    auto tr = deliver(MsgType::ReqPut, 6, 6);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirExclusive);
    EXPECT_FALSE(fmt.stale(e)) << "IntervMiss already consumed";
    EXPECT_EQ(fmt.owner(e), 4);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, MsgType::RplDataEx);
    EXPECT_EQ(out[0].dest, 4);
}

// ------------------------------------------------------ revision msgs

TEST_F(TransitionTest, SharingWbResolvesBusySh)
{
    std::uint64_t e0 = fmt.setState(0, dirBusySh);
    e0 = fmt.setVector(e0, 1u << 6);
    e0 = fmt.setPendingReq(e0, 4);
    setEntry(e0);
    auto tr = deliver(MsgType::RplSharingWb, 6, 4);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirShared);
    EXPECT_EQ(fmt.vector(e), (1u << 6) | (1u << 4))
        << "old owner and requester share";
    EXPECT_EQ(memWrites(tr), 1u);
    EXPECT_TRUE(netSends(tr).empty())
        << "data went owner->requester directly (three-hop)";
}

TEST_F(TransitionTest, OwnershipXferResolvesBusyEx)
{
    std::uint64_t e0 = fmt.setState(0, dirBusyEx);
    e0 = fmt.setVector(e0, 1u << 6);
    e0 = fmt.setPendingReq(e0, 4);
    e0 = fmt.setPendingGetx(e0, true);
    setEntry(e0);
    auto tr = deliver(MsgType::RplOwnershipXfer, 6, 4);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirExclusive);
    EXPECT_EQ(fmt.owner(e), 4);
    EXPECT_EQ(memWrites(tr), 0u) << "memory stays stale; line is dirty";
}

TEST_F(TransitionTest, IntervMissPutsBusyStatesIntoWaitPut)
{
    std::uint64_t e0 = fmt.setState(0, dirBusySh);
    e0 = fmt.setVector(e0, 1u << 6);
    e0 = fmt.setPendingReq(e0, 4);
    setEntry(e0);
    deliver(MsgType::RplIntervMiss, 6, 4);
    EXPECT_EQ(fmt.state(entry()), dirBusyShWaitPut);

    e0 = fmt.setState(e0, dirBusyEx);
    setEntry(e0);
    deliver(MsgType::RplIntervMiss, 6, 4);
    EXPECT_EQ(fmt.state(entry()), dirBusyExWaitPut);
}

TEST_F(TransitionTest, IntervMissClearsStaleFlag)
{
    std::uint64_t e0 = fmt.setState(0, dirShared);
    e0 = fmt.setVector(e0, 1u << 4);
    e0 = fmt.setStale(e0, true);
    setEntry(e0);
    deliver(MsgType::RplIntervMiss, 6, 4);
    auto e = entry();
    EXPECT_EQ(fmt.state(e), dirShared);
    EXPECT_FALSE(fmt.stale(e));
    EXPECT_EQ(fmt.vector(e), 1u << 4);
}

// ----------------------------------------------- owner-side handlers

TEST_F(TransitionTest, IntervShHitYieldsThreeHopDataPlusRevision)
{
    env.probe = 0b11; // hit, dirty
    auto tr = deliver(MsgType::FwdIntervSh, homeNode, 4, 13);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].type, MsgType::RplDataSh);
    EXPECT_EQ(out[0].dest, 4);
    EXPECT_EQ(out[0].mshr, 13);
    EXPECT_EQ(tr.sends[0].dataSrc, DataSrc::Probe);
    EXPECT_EQ(out[1].type, MsgType::RplSharingWb);
    EXPECT_EQ(out[1].dest, homeNode) << "revision routes to the home";
}

TEST_F(TransitionTest, IntervMissOnWritebackRace)
{
    env.probe = 0; // line gone
    auto tr = deliver(MsgType::FwdIntervEx, homeNode, 4);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplIntervMiss);
    EXPECT_EQ(out[0].dest, homeNode);
}

TEST_F(TransitionTest, InvalAlwaysAcksToRequester)
{
    auto tr = deliver(MsgType::FwdInval, homeNode, 9, 21);
    auto out = netSends(tr);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].type, MsgType::RplInvalAck);
    EXPECT_EQ(out[0].dest, 9);
    EXPECT_EQ(out[0].mshr, 21);
}

// --------------------------------------------- requester-side handlers

TEST_F(TransitionTest, DataExParksUntilAcksArrive)
{
    // Pending entry as PiGetx wrote it.
    Addr pa = pendEntryAddr(homeNode, 5);
    env.protoStore(pa, 1 | (static_cast<std::uint64_t>(MsgType::ReqGetx)
                            << pend::typeShift), 8);
    // Exclusive data with 2 acks expected: must park, no fill yet.
    auto tr = deliver(MsgType::RplDataEx, 4, homeNode, 5, 2);
    EXPECT_TRUE(tr.sends.empty());
    // First ack: still parked.
    tr = deliver(MsgType::RplInvalAck, 1, homeNode, 5);
    EXPECT_TRUE(tr.sends.empty());
    // Second ack completes the transaction with a buffered-data fill.
    tr = deliver(MsgType::RplInvalAck, 3, homeNode, 5);
    ASSERT_EQ(tr.sends.size(), 1u);
    EXPECT_EQ(tr.sends[0].msg.type, MsgType::CcFillEx);
    EXPECT_EQ(tr.sends[0].target, SendTarget::Local);
    EXPECT_EQ(tr.sends[0].dataSrc, DataSrc::Buffer);
    EXPECT_EQ(env.protoLoad(pa, 8), 0u) << "pending entry freed";
}

TEST_F(TransitionTest, AcksBeforeDataAlsoComplete)
{
    Addr pa = pendEntryAddr(homeNode, 7);
    env.protoStore(pa, 1 | (static_cast<std::uint64_t>(MsgType::ReqGetx)
                            << pend::typeShift), 8);
    auto tr = deliver(MsgType::RplInvalAck, 1, homeNode, 7);
    EXPECT_TRUE(tr.sends.empty());
    // Data arrives after the single ack: completes immediately.
    tr = deliver(MsgType::RplDataEx, 4, homeNode, 7, 1);
    ASSERT_EQ(tr.sends.size(), 1u);
    EXPECT_EQ(tr.sends[0].msg.type, MsgType::CcFillEx);
    EXPECT_EQ(tr.sends[0].dataSrc, DataSrc::Carried);
}

TEST_F(TransitionTest, UpgradeAckCompletesWithGrantNotFill)
{
    Addr pa = pendEntryAddr(homeNode, 4);
    env.protoStore(pa,
                   1 | (static_cast<std::uint64_t>(MsgType::ReqUpgrade)
                        << pend::typeShift), 8);
    auto tr = deliver(MsgType::RplUpgradeAck, 4, homeNode, 4, 1);
    EXPECT_TRUE(tr.sends.empty()) << "one ack still outstanding";
    tr = deliver(MsgType::RplInvalAck, 1, homeNode, 4);
    ASSERT_EQ(tr.sends.size(), 1u);
    EXPECT_EQ(tr.sends[0].msg.type, MsgType::CcUpgradeGrant);
    EXPECT_EQ(tr.sends[0].dataSrc, DataSrc::None);
}

TEST_F(TransitionTest, NakRetriesSameTypeWithBackoff)
{
    Addr pa = pendEntryAddr(homeNode, 6);
    env.protoStore(pa, 1 | (static_cast<std::uint64_t>(MsgType::ReqGet)
                            << pend::typeShift), 8);
    auto tr = deliver(MsgType::RplNak, 4, homeNode, 6);
    ASSERT_EQ(tr.sends.size(), 1u);
    EXPECT_EQ(tr.sends[0].msg.type, MsgType::ReqGet);
    EXPECT_TRUE(tr.sends[0].delayed) << "NAK retries back off";
    EXPECT_EQ(env.protoLoad(pa + 16, 8), 1u) << "retry counter bumped";
}

TEST_F(TransitionTest, NakedUpgradeConvertsToGetx)
{
    Addr pa = pendEntryAddr(homeNode, 6);
    env.protoStore(pa,
                   1 | (static_cast<std::uint64_t>(MsgType::ReqUpgrade)
                        << pend::typeShift), 8);
    auto tr = deliver(MsgType::RplNak, 4, homeNode, 6);
    ASSERT_EQ(tr.sends.size(), 1u);
    EXPECT_EQ(tr.sends[0].msg.type, MsgType::ReqGetx)
        << "the Shared copy may be gone: full GETX";
    // Pending type rewritten so a second NAK also retries as GETX.
    auto w0 = env.protoLoad(pa, 8);
    EXPECT_EQ((w0 >> pend::typeShift) & 0xff,
              static_cast<std::uint64_t>(MsgType::ReqGetx));
}

class LoggingTransitionTest : public ::testing::Test
{
  protected:
    LoggingTransitionTest()
        : fmt(DirFormat::forNodes(16)),
          image(buildHandlerImage(fmt, HandlerOptions{true})),
          ex(image, env)
    {
        ex.boot(homeNode);
    }

    HandlerTrace
    deliver(MsgType t, NodeId requester, Addr a)
    {
        Message m;
        m.type = t;
        m.addr = a;
        m.src = requester;
        m.dest = homeNode;
        m.requester = requester;
        m.mshr = 1;
        return ex.run(m);
    }

    DirFormat fmt;
    TableEnv env;
    HandlerImage image;
    Executor ex;
};

TEST_F(LoggingTransitionTest, OwnershipGrantsAppendToTheLog)
{
    Addr scratch = protoScratchBase +
                   static_cast<Addr>(homeNode) * protoNodeStride;
    // Three exclusive grants: eager-Get, Getx-at-unowned, Getx-at-shared.
    deliver(MsgType::ReqGet, 4, 0x10000);
    deliver(MsgType::ReqGetx, 5, 0x20000);
    env.protoStore(env.dirAddrOf(0x30000),
                   fmt.setVector(fmt.setState(0, dirShared), 0b1100), 4);
    deliver(MsgType::ReqGetx, 3, 0x30000);

    EXPECT_EQ(env.protoLoad(scratch + ownLogCountOffset, 8), 3u);
    EXPECT_EQ(env.protoLoad(scratch + ownLogBaseOffset + 0, 8), 0x10000u);
    EXPECT_EQ(env.protoLoad(scratch + ownLogBaseOffset + 8, 8), 0x20000u);
    EXPECT_EQ(env.protoLoad(scratch + ownLogBaseOffset + 16, 8),
              0x30000u);
}

TEST_F(LoggingTransitionTest, SharedGrantsDoNotLog)
{
    env.protoStore(env.dirAddrOf(0x11000),
                   fmt.setVector(fmt.setState(0, dirShared), 0b10), 4);
    deliver(MsgType::ReqGet, 4, 0x11000);
    Addr scratch = protoScratchBase +
                   static_cast<Addr>(homeNode) * protoNodeStride;
    EXPECT_EQ(env.protoLoad(scratch + ownLogCountOffset, 8), 0u);
}

TEST_F(LoggingTransitionTest, BaseImageUnchangedWithoutTheOption)
{
    auto plain = buildHandlerImage(fmt);
    EXPECT_LT(plain.code.size(), image.code.size())
        << "logging must add instructions only when requested";
}

TEST_F(TransitionTest, HandlersAreShortEnoughForTheIcacheBudget)
{
    // The paper's critical handlers are a handful of instructions; ours
    // must stay within the same order of magnitude (dynamic length of
    // the common fast paths, epilogue included).
    setEntry(0);
    auto tr = deliver(MsgType::ReqGet, 4, 4);
    EXPECT_LE(tr.insts.size(), 40u);
    auto tr2 = deliver(MsgType::RplWbAck, 4, 4);
    EXPECT_LE(tr2.insts.size(), 4u);
}

} // namespace
} // namespace smtp::proto
