/**
 * @file
 * Unit tests for the protocol ISA layer: directory entry codec,
 * assembler label resolution, and the functional executor running small
 * hand-written handler programs against a mock environment.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "protocol/assembler.hpp"
#include "protocol/directory.hpp"
#include "protocol/executor.hpp"
#include "protocol/handlers.hpp"

namespace smtp::proto
{
namespace
{

// ---------------------------------------------------------------- codec

class DirFormatTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DirFormatTest, FieldRoundTrips)
{
    auto fmt = DirFormat::forNodes(GetParam());
    std::uint64_t e = 0;
    e = fmt.setState(e, dirBusyEx);
    e = fmt.setVector(e, 0xA5A5ULL & ((1ULL << fmt.vectorBits) - 1));
    e = fmt.setStale(e, true);
    e = fmt.setPendingReq(e, static_cast<NodeId>(GetParam() - 1));
    e = fmt.setPendingMshr(e, 13);
    e = fmt.setPendingGetx(e, true);

    EXPECT_EQ(fmt.state(e), dirBusyEx);
    EXPECT_EQ(fmt.vector(e), 0xA5A5ULL & ((1ULL << fmt.vectorBits) - 1));
    EXPECT_TRUE(fmt.stale(e));
    EXPECT_EQ(fmt.pendingReq(e), GetParam() - 1);
    EXPECT_EQ(fmt.pendingMshr(e), 13);
    EXPECT_TRUE(fmt.pendingGetx(e));

    // Fields must not clobber one another.
    e = fmt.setState(e, dirShared);
    EXPECT_EQ(fmt.vector(e), 0xA5A5ULL & ((1ULL << fmt.vectorBits) - 1));
    EXPECT_EQ(fmt.pendingMshr(e), 13);
}

TEST_P(DirFormatTest, EntryFitsDeclaredWidth)
{
    auto fmt = DirFormat::forNodes(GetParam());
    std::uint64_t e = 0;
    e = fmt.setState(e, dirBusyExWaitPut);
    e = fmt.setVector(e, (1ULL << fmt.vectorBits) - 1);
    e = fmt.setStale(e, true);
    e = fmt.setPendingReq(e, static_cast<NodeId>(GetParam() - 1));
    e = fmt.setPendingMshr(e, 31);
    e = fmt.setPendingGetx(e, true);
    if (fmt.entryBytes == 4) {
        EXPECT_EQ(e >> 32, 0u) << "32-bit entry overflows its width";
    }
}

TEST_P(DirFormatTest, OwnerIsCtzOfVector)
{
    auto fmt = DirFormat::forNodes(GetParam());
    for (unsigned n = 0; n < GetParam(); ++n) {
        std::uint64_t e = fmt.setState(0, dirExclusive);
        e = fmt.setVector(e, 1ULL << n);
        EXPECT_EQ(fmt.owner(e), n);
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, DirFormatTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u));

// ------------------------------------------------------------- executor

class MockEnv : public ExecEnv
{
  public:
    std::uint64_t
    protoLoad(Addr a, unsigned) override
    {
        auto it = ram.find(a);
        return it == ram.end() ? 0 : it->second;
    }

    void
    protoStore(Addr a, std::uint64_t v, unsigned) override
    {
        ram[a] = v;
    }

    Addr
    dirAddrOf(Addr line) override
    {
        return protoDirBase + (line >> 7) * 8;
    }

    NodeId
    homeOf(Addr line) override
    {
        return static_cast<NodeId>((line >> 12) % 4);
    }

    std::uint64_t probeResult() override { return probe; }

    std::unordered_map<Addr, std::uint64_t> ram;
    std::uint64_t probe = 0;
};

HandlerImage
tinyImage(void (*body)(Assembler &))
{
    Assembler a;
    a.handler(MsgType::PiGet);
    body(a);
    a.epilogue();
    return a.finish();
}

TEST(Assembler, ForwardLabelsResolve)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    auto skip = a.label();
    a.li(preg::t0, 7);
    a.beq(preg::t0, preg::t0, skip);
    a.li(preg::t0, 99); // skipped
    a.bind(skip);
    a.epilogue();
    auto img = a.finish();
    ASSERT_TRUE(img.hasHandler[static_cast<unsigned>(MsgType::PiGet)]);
    // The branch target patched to the instruction after the skipped li.
    EXPECT_EQ(img.code[1].imm, 3);
}

TEST(AssemblerDeath, UnboundLabelPanics)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    auto l = a.label();
    a.j(l);
    EXPECT_DEATH(a.finish(), "unresolved");
}

TEST(Executor, AluBasics)
{
    auto img = tinyImage(+[](Assembler &a) {
        using namespace preg;
        a.li(t0, 10);
        a.addi(t1, t0, 5);
        a.sub(t2, t1, t0);    // 5
        a.sll(t3, t2, 4);     // 80
        a.ori(t4, t3, 0xF);   // 95
        a.popc(t5, t4);       // popcount(0x5F) = 6
        a.ctz(t6, t3);        // ctz(80=0b1010000) = 4
    });
    MockEnv env;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    m.addr = 0x1000;
    ex.run(m);
    EXPECT_EQ(ex.reg(preg::t1), 15u);
    EXPECT_EQ(ex.reg(preg::t2), 5u);
    EXPECT_EQ(ex.reg(preg::t3), 80u);
    EXPECT_EQ(ex.reg(preg::t4), 95u);
    EXPECT_EQ(ex.reg(preg::t5), 6u);
    EXPECT_EQ(ex.reg(preg::t6), 4u);
}

TEST(Executor, ZeroRegisterIsImmutable)
{
    auto img = tinyImage(+[](Assembler &a) {
        a.li(preg::zero, 42);
        a.add(preg::t0, preg::zero, preg::zero);
    });
    MockEnv env;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    ex.run(m);
    EXPECT_EQ(ex.reg(preg::zero), 0u);
    EXPECT_EQ(ex.reg(preg::t0), 0u);
}

TEST(Executor, LoadStoreRoundTrip)
{
    auto img = tinyImage(+[](Assembler &a) {
        using namespace preg;
        a.li(t0, 0x1234);
        a.st(t0, scratchBase, 16);
        a.ld(t1, scratchBase, 16);
    });
    MockEnv env;
    Executor ex(img, env);
    ex.boot(3);
    Message m;
    m.type = MsgType::PiGet;
    ex.run(m);
    EXPECT_EQ(ex.reg(preg::t1), 0x1234u);
    Addr sb = protoScratchBase + 3 * protoNodeStride;
    EXPECT_EQ(env.ram.at(sb + 16), 0x1234u);
}

TEST(Executor, BranchesAndLoops)
{
    // Sum 1..5 with a loop.
    Assembler a;
    a.handler(MsgType::PiGet);
    using namespace preg;
    auto loop = a.label();
    auto done = a.label();
    a.li(t0, 5);
    a.li(t1, 0);
    a.bind(loop);
    a.beq(t0, zero, done);
    a.add(t1, t1, t0);
    a.addi(t0, t0, -1);
    a.j(loop);
    a.bind(done);
    a.epilogue();
    auto img = a.finish();

    MockEnv env;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    ex.run(m);
    EXPECT_EQ(ex.reg(t1), 15u);
}

TEST(Executor, HeaderSeededIntoRegisters)
{
    auto img = tinyImage(+[](Assembler &) {});
    MockEnv env;
    Executor ex(img, env);
    ex.boot(2);
    Message m;
    m.type = MsgType::PiGet;
    m.addr = 0xABC00;
    m.src = 2;
    m.requester = 2;
    m.mshr = 9;
    m.ackCount = 3;
    m.flags = flagHomeLocal;
    ex.run(m);
    EXPECT_EQ(ex.reg(preg::addr), 0xABC00u);
    auto h = ex.reg(preg::hdr);
    EXPECT_EQ(h & 0xff, static_cast<unsigned>(MsgType::PiGet));
    EXPECT_EQ((h >> headerSrcShift) & 0xff, 2u);
    EXPECT_EQ((h >> headerRequesterShift) & 0xff, 2u);
    EXPECT_EQ((h >> headerMshrShift) & 0xff, 9u);
    EXPECT_EQ((h >> headerAckShift) & 0xffff, 3u);
    EXPECT_EQ((h >> headerFlagsShift) & 0xff,
              static_cast<unsigned>(flagHomeLocal));
}

TEST(Executor, SendComposesMessage)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    using namespace preg;
    // aux = requester 3, mshr 7, acks 2
    a.li(t0, (3LL << headerRequesterShift) | (7LL << headerMshrShift) |
                 (2LL << headerAckShift));
    a.li(t1, 5); // dest node
    a.send(MsgType::RplDataEx, DataSrc::Memory, SendTarget::Network, t1, t0);
    a.epilogue();
    auto img = a.finish();

    MockEnv env;
    Executor ex(img, env);
    ex.boot(1);
    Message m;
    m.type = MsgType::PiGet;
    m.addr = 0x4080;
    auto trace = ex.run(m);
    ASSERT_EQ(trace.sends.size(), 1u);
    const auto &s = trace.sends[0];
    EXPECT_EQ(s.msg.type, MsgType::RplDataEx);
    EXPECT_EQ(s.msg.dest, 5);
    EXPECT_EQ(s.msg.src, 1);
    EXPECT_EQ(s.msg.addr, 0x4080u);
    EXPECT_EQ(s.msg.requester, 3);
    EXPECT_EQ(s.msg.mshr, 7);
    EXPECT_EQ(s.msg.ackCount, 2);
    EXPECT_TRUE(s.msg.carriesData());
    EXPECT_EQ(s.dataSrc, DataSrc::Memory);
}

TEST(Executor, SendHomeRoutesByAddress)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    a.sendHome(MsgType::ReqGet, DataSrc::None);
    a.epilogue();
    auto img = a.finish();

    MockEnv env; // homeOf = (addr >> 12) % 4
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    m.addr = 3 << 12;
    auto trace = ex.run(m);
    ASSERT_EQ(trace.sends.size(), 1u);
    EXPECT_EQ(trace.sends[0].msg.dest, 3);
}

TEST(Executor, TraceRecordsDynamicPath)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    using namespace preg;
    auto skip = a.label();
    a.li(t0, 1);
    a.beq(t0, one, skip); // taken
    a.li(t1, 111);        // not executed
    a.bind(skip);
    a.li(t2, 222);
    a.epilogue();
    auto img = a.finish();

    MockEnv env;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    auto trace = ex.run(m);
    // li, beq(taken), li, switch, ldctxt = 5 dynamic instructions.
    ASSERT_EQ(trace.insts.size(), 5u);
    EXPECT_EQ(trace.insts[1].inst.op, POp::Beq);
    EXPECT_TRUE(trace.insts[1].branchTaken);
    EXPECT_EQ(trace.insts[2].inst.rd, t2);
    EXPECT_EQ(trace.insts[3].inst.op, POp::Switch);
    EXPECT_EQ(trace.insts[4].inst.op, POp::Ldctxt);
    EXPECT_EQ(ex.reg(t1), 0u);
    EXPECT_EQ(ex.reg(t2), 222u);
}

TEST(Executor, LdprobeReadsEnvironment)
{
    auto img = tinyImage(+[](Assembler &a) { a.ldprobe(preg::t0); });
    MockEnv env;
    env.probe = 0x3;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    auto trace = ex.run(m);
    EXPECT_EQ(ex.reg(preg::t0), 0x3u);
    EXPECT_TRUE(trace.usedProbe);
}

TEST(ExecutorDeath, RunawayHandlerPanics)
{
    Assembler a;
    a.handler(MsgType::PiGet);
    auto self = a.label();
    a.bind(self);
    a.j(self);
    a.epilogue();
    auto img = a.finish();
    MockEnv env;
    Executor ex(img, env);
    ex.boot(0);
    Message m;
    m.type = MsgType::PiGet;
    EXPECT_DEATH(ex.run(m), "runaway");
}

// -------------------------------------------------- full handler image

TEST(HandlerImage, BuildsForBothFormats)
{
    for (unsigned nodes : {16u, 32u}) {
        auto img = buildHandlerImage(DirFormat::forNodes(nodes));
        // Every message type the controller can dispatch has a handler.
        for (MsgType t : {MsgType::PiGet, MsgType::PiGetx, MsgType::PiUpgrade,
                          MsgType::PiPut, MsgType::PiPutClean,
                          MsgType::ReqGet, MsgType::ReqGetx,
                          MsgType::ReqUpgrade, MsgType::ReqPut,
                          MsgType::ReqPutClean, MsgType::FwdIntervSh,
                          MsgType::FwdIntervEx, MsgType::FwdInval,
                          MsgType::RplDataSh, MsgType::RplDataEx,
                          MsgType::RplUpgradeAck, MsgType::RplInvalAck,
                          MsgType::RplNak, MsgType::RplSharingWb,
                          MsgType::RplOwnershipXfer, MsgType::RplIntervMiss,
                          MsgType::RplWbAck, MsgType::RplWbBusyAck}) {
            EXPECT_TRUE(img.hasHandler[static_cast<unsigned>(t)])
                << "missing handler for " << msgTypeName(t);
        }
        // Handler code must fit comfortably in the 32 KB protocol
        // instruction cache the paper assumes (4 bytes/inst).
        EXPECT_LT(img.code.size() * 4, 32u * 1024);
    }
}

TEST(HandlerImage, DisassemblesWithoutCrashing)
{
    auto img = buildHandlerImage(DirFormat::forNodes(16));
    for (std::uint32_t pc = 0; pc < img.code.size(); ++pc)
        EXPECT_FALSE(disassemble(img.code[pc], pc).empty());
}

} // namespace
} // namespace smtp::proto
