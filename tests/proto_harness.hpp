/**
 * @file
 * Test harness: a complete multi-node coherence machine (caches, memory
 * controllers, handler programs, network) driven directly at the cache
 * interface, with an idealised protocol agent. Used by the protocol
 * system tests and the randomized coherence stress tests.
 */

#ifndef SMTP_TESTS_PROTO_HARNESS_HPP
#define SMTP_TESTS_PROTO_HARNESS_HPP

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/checker.hpp"
#include "fault/fault.hpp"
#include "mem/controller.hpp"
#include "mem/immediate_agent.hpp"
#include "network/network.hpp"
#include "protocol/handlers.hpp"
#include "protocol/variants/variants.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"

namespace smtp::testing
{

class ProtoMachine
{
  public:
    struct Options
    {
        unsigned nodes = 4;
        std::size_t l2Bytes = 16 * 1024; ///< Small: evictions are cheap.
        unsigned l2Ways = 8;
        unsigned pagesPerNode = 4;
        /** Every protocol test runs with the checker at full strength. */
        check::CheckLevel checkLevel = check::CheckLevel::FullMirror;
        bool checkAbortOnViolation = true;
        Tick watchdogMaxAge = 2 * tickPerMs;
        proto::HandlerOptions handlerOptions{};
        /**
         * Directory-protocol variant. Migratory widens the directory
         * format (its prediction bits need the 64-bit entry) and sets
         * HandlerOptions::migratory; phase-priority switches every
         * controller's request-queue discipline.
         */
        proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;
        /** Deliberate drop-starved-head bug (phase-priority only). */
        bool injectDropOnFloor = false;
        /**
         * Starvation-floor override (phase-priority only): tests drop
         * it to 1 so any head-of-queue tie trips the floor immediately.
         */
        unsigned phaseStarvationFloor = 64;
        /** Fault injection + retry policy (default: disabled / Fixed). */
        fault::FaultPlan faults{};
        fault::RetryPolicyConfig retry{};
    };

    ProtoMachine() : ProtoMachine(Options()) {}

    explicit ProtoMachine(const Options &opt)
        : fmt(proto::protocolDirFormat(opt.protocol,
                                       opt.nodes <= 16 ? 16 : 32)),
          image(proto::buildProtocolImage(opt.protocol, fmt,
                                          opt.handlerOptions)),
          clock(2000), map(opt.nodes, fmt.entryBytes)
    {
        NetworkParams np;
        np.numNodes = opt.nodes;
        net = std::make_unique<Network>(eq, np);

        if (opt.faults.enabled() || opt.faults.injectDropWithoutRetransmit) {
            faults = std::make_unique<fault::FaultInjector>(opt.faults,
                                                            opt.nodes);
            net->setFaultInjector(faults.get());
        }

        if (opt.checkLevel != check::CheckLevel::Off) {
            check::CheckerParams chp;
            chp.level = opt.checkLevel;
            chp.nodes = opt.nodes;
            chp.abortOnViolation = opt.checkAbortOnViolation;
            chp.watchdogMaxAge = opt.watchdogMaxAge;
            checker = std::make_unique<check::Checker>(eq, fmt, chp);
            auto *netp = net.get();
            checker->addDumpHook(
                "network", [netp](std::FILE *f) { netp->debugState(f); });
        }

        for (unsigned n = 0; n < opt.nodes; ++n) {
            auto node = std::make_unique<Node>();
            CacheParams cp;
            cp.l2Bytes = opt.l2Bytes;
            cp.l2Ways = opt.l2Ways;
            cp.enableBypass = true;
            node->cache = std::make_unique<CacheHierarchy>(
                eq, clock, static_cast<NodeId>(n), cp);
            McParams mp;
            mp.rngSeed = 12345 + n;
            mp.retry = opt.retry;
            if (proto::protocolUsesPhasePriority(opt.protocol)) {
                mp.phasePriority = true;
                mp.injectDropOnFloor = opt.injectDropOnFloor;
                mp.phaseStarvationFloor = opt.phaseStarvationFloor;
            }
            node->mc = std::make_unique<MemController>(
                eq, static_cast<NodeId>(n), mp, map, image, *node->cache,
                *net);
            node->agent =
                std::make_unique<ImmediateAgent>(eq, *node->mc);
            auto *mc = node->mc.get();
            if (faults)
                mc->setFaultInjector(faults.get());
            if (checker) {
                node->cache->setChecker(checker.get());
                mc->setChecker(checker.get());
                checker->addDumpHook(
                    "node" + std::to_string(n) + ".mc",
                    [mc](std::FILE *f) { mc->debugState(f); });
            }
            node->cache->connect(
                [mc](const proto::Message &m) { return mc->lmiEnqueue(m); },
                [mc](Addr a, bool w, EventQueue::Callback fn) {
                    mc->bypassAccess(a, w, std::move(fn));
                });
            net->attach(static_cast<NodeId>(n),
                        [mc](const proto::Message &m) {
                            return mc->niDeliver(m);
                        });
            nodes.push_back(std::move(node));
        }

        // Place pagesPerNode pages on each node, round robin in address
        // order starting at dataBase.
        for (unsigned n = 0; n < opt.nodes; ++n) {
            for (unsigned p = 0; p < opt.pagesPerNode; ++p) {
                Addr page = dataBase +
                            (static_cast<Addr>(p) * opt.nodes + n) *
                                pageBytes;
                map.place(page, static_cast<NodeId>(n));
            }
        }
    }

    /** An address within the p-th page homed at @p home. */
    Addr
    addrAt(NodeId home, unsigned page = 0, unsigned offset = 0) const
    {
        return dataBase +
               (static_cast<Addr>(page) * nodes.size() + home) * pageBytes +
               offset;
    }

    /** Issue a load/store from @p node, retrying while resources fill. */
    void
    issue(NodeId node, MemCmd cmd, Addr addr, EventQueue::Callback done)
    {
        MemReq req;
        req.cmd = cmd;
        req.addr = addr;
        req.done = std::move(done);
        auto outcome = nodes[node]->cache->access(req);
        if (outcome == CacheHierarchy::Outcome::Retry) {
            eq.scheduleIn(clock.period(), [this, node, cmd, addr,
                                           d = req.done]() mutable {
                issue(node, cmd, addr, std::move(d));
            });
        }
    }

    bool
    quiescent() const
    {
        if (!net->quiescent())
            return false;
        for (const auto &n : nodes) {
            if (!n->cache->quiescent() || !n->mc->quiescent())
                return false;
        }
        return true;
    }

    /** Run to completion; panic if the machine wedges past @p limit. */
    void
    settle(Tick limit = 500 * tickPerUs)
    {
        eq.run(eq.curTick() + limit);
        if (!quiescent() && checker)
            checker->reportWedge("harness failed to settle");
        SMTP_ASSERT(quiescent(),
                    "machine failed to quiesce within the time limit");
        if (checker && checker->fullMirror() &&
            checker->violationCount() == 0)
            checker->verifyQuiescent();
    }

    /** Decode the directory entry for @p addr at its home. */
    std::uint64_t
    dirEntryOf(Addr addr)
    {
        return nodes[map.homeOf(addr)]->mc->dirEntry(addr);
    }

    /** Check the global single-writer/multiple-reader invariant. */
    void
    checkLineInvariants(Addr addr) const
    {
        Addr line = lineAlign(addr);
        unsigned writable_count = 0, shared_count = 0;
        std::uint64_t sharer_bits = 0;
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            auto st = nodes[n]->cache->l2State(line);
            if (st == LineState::Ex || st == LineState::Mod)
                ++writable_count;
            if (st == LineState::Sh) {
                ++shared_count;
                sharer_bits |= 1ULL << n;
            }
        }
        SMTP_ASSERT(writable_count <= 1, "SWMR violated: two writers");
        SMTP_ASSERT(writable_count == 0 || shared_count == 0,
                    "SWMR violated: writer coexists with sharers");

        auto entry =
            const_cast<ProtoMachine *>(this)->dirEntryOf(line);
        auto state = fmt.state(entry);
        SMTP_ASSERT(!fmt.stale(entry), "stale flag left set at quiescence");
        SMTP_ASSERT(state == proto::dirUnowned ||
                        state == proto::dirShared ||
                        state == proto::dirExclusive,
                    "busy directory state left at quiescence");
        if (writable_count == 1) {
            SMTP_ASSERT(state == proto::dirExclusive,
                        "writer present but directory not Exclusive");
        }
        if (state == proto::dirExclusive) {
            NodeId owner = fmt.owner(entry);
            auto st = nodes[owner]->cache->l2State(line);
            SMTP_ASSERT(writable(st),
                        "directory owner does not hold the line");
        }
        // Every actual sharer must be in the vector (the vector may hold
        // extra, stale, silently-dropped sharers).
        if (shared_count > 0) {
            SMTP_ASSERT(state == proto::dirShared,
                        "sharers present but directory not Shared");
            std::uint64_t vec = fmt.vector(entry);
            SMTP_ASSERT((sharer_bits & ~vec) == 0,
                        "a cached sharer is missing from the vector");
        }
    }

    struct Node
    {
        std::unique_ptr<CacheHierarchy> cache;
        std::unique_ptr<MemController> mc;
        std::unique_ptr<ImmediateAgent> agent;
    };

    static constexpr Addr dataBase = 0x10000000;

    EventQueue eq;
    proto::DirFormat fmt;
    proto::HandlerImage image;
    ClockDomain clock;
    PagePlacementMap map;
    std::unique_ptr<Network> net;
    std::unique_ptr<fault::FaultInjector> faults;
    std::unique_ptr<check::Checker> checker;
    std::vector<std::unique_ptr<Node>> nodes;
};

} // namespace smtp::testing

#endif // SMTP_TESTS_PROTO_HARNESS_HPP
