/**
 * @file
 * Machine-model shape tests: small-machine versions of the paper's
 * headline qualitative results, run as regression gates. These use
 * 2-4 node machines so they stay fast; the bench binaries produce the
 * full-size versions.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "machine/machine.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

Tick
timedRun(MachineModel model, const char *app_name, unsigned nodes,
         bool las = true, bool perfect_pc = false,
         std::uint64_t freq = 2000, unsigned dcache_div = 16)
{
    MachineParams mp;
    mp.model = model;
    mp.nodes = nodes;
    mp.appThreadsPerNode = 1;
    mp.cpuFreqMHz = freq;
    mp.lookAheadScheduling = las;
    mp.perfectProtocolCaches = perfect_pc;
    mp.dirCacheDivisor = dcache_div;
    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp(app_name);
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = nodes;
    env.threadsPerNode = 1;
    env.scale = 0.5;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));
    return machine.run();
}

TEST(ModelShape, SmtpAlwaysBeatsBase)
{
    // The paper's Section 4 headline: "SMTp is always faster than Base".
    for (const char *app : {"FFT", "Ocean", "Radix"}) {
        Tick base = timedRun(MachineModel::Base, app, 4);
        Tick smtp = timedRun(MachineModel::SMTp, app, 4);
        EXPECT_LT(smtp, base) << app;
    }
}

TEST(ModelShape, IntPerfectBoundsTheIntegratedModels)
{
    // Nominal ordering with a timing-chaos tolerance: the paper itself
    // observes occasional inversions from "changed timing of cache
    // accesses leading to different LRU behavior" (Section 4).
    for (const char *app : {"FFT", "Radix"}) {
        double perfect = static_cast<double>(
            timedRun(MachineModel::IntPerfect, app, 4));
        double i512 = static_cast<double>(
            timedRun(MachineModel::Int512KB, app, 4));
        double i64 = static_cast<double>(
            timedRun(MachineModel::Int64KB, app, 4));
        EXPECT_LE(perfect, i512 * 1.15) << app;
        EXPECT_LE(i512, i64 * 1.05) << app
            << ": a smaller directory cache cannot help";
    }
}

TEST(ModelShape, SmtpTracksInt512KB)
{
    // "always within 6% and mostly within 3% of ... Int512KB" (we allow
    // the window on both sides: our SMTp suffers less cache pollution
    // at reduced problem scale).
    for (const char *app : {"FFT", "Ocean"}) {
        double i512 = static_cast<double>(
            timedRun(MachineModel::Int512KB, app, 4));
        double smtp = static_cast<double>(
            timedRun(MachineModel::SMTp, app, 4));
        EXPECT_LT(std::abs(smtp / i512 - 1.0), 0.20) << app;
    }
}

TEST(ModelShape, ClockScalingWidensBaseGap)
{
    // Figures 10-11: at 4 GHz the integrated advantage over Base grows.
    double base2 =
        static_cast<double>(timedRun(MachineModel::Base, "FFT", 2));
    double smtp2 =
        static_cast<double>(timedRun(MachineModel::SMTp, "FFT", 2));
    double base4 = static_cast<double>(
        timedRun(MachineModel::Base, "FFT", 2, true, false, 4000));
    double smtp4 = static_cast<double>(
        timedRun(MachineModel::SMTp, "FFT", 2, true, false, 4000));
    EXPECT_LT(smtp4, base4);
    EXPECT_GT(base4 / smtp4, base2 / smtp2)
        << "the processor-memory gap must widen Base's deficit";
    EXPECT_LT(smtp4, smtp2) << "4 GHz must be absolutely faster";
}

TEST(ModelShape, LasAblationIsSmallAndCorrect)
{
    // Section 2.3: LAS is worth a few percent; disabling it must not
    // break anything. At the scaled quick problem sizes its benefit
    // sits inside scheduling noise, so tolerate a small inversion
    // while still bounding the effect in both directions.
    Tick with_las = timedRun(MachineModel::SMTp, "Ocean", 4, true);
    Tick without = timedRun(MachineModel::SMTp, "Ocean", 4, false);
    EXPECT_GE(without * 100, with_las * 97);
    EXPECT_LT(static_cast<double>(without) /
                  static_cast<double>(with_las),
              1.25);
}

TEST(ModelShape, PerfectProtocolCachesDoNotHurt)
{
    Tick normal = timedRun(MachineModel::SMTp, "FFT", 4);
    Tick perfect =
        timedRun(MachineModel::SMTp, "FFT", 4, true, true);
    EXPECT_LE(perfect, normal + normal / 50)
        << "removing pollution cannot meaningfully hurt";
}

TEST(ModelShape, StatsDumpCoversTheMachine)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    Machine machine(mp);
    FuncMem mem;
    auto app = workload::makeApp("Radix");
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = 2;
    env.threadsPerNode = 1;
    env.scale = 0.25;
    app->build(env);
    machine.setGlobalSource(0, app->thread(0));
    machine.setGlobalSource(1, app->thread(1));
    machine.run();
    std::ostringstream os;
    machine.dumpStats(os);
    auto text = os.str();
    for (const char *key :
         {"machine.SMTp", "execTimeUs", "node0", "node1", "l2Misses",
          "handlers", "ptHandlers", "ptPeakIntRegs", "sdramReads",
          "netMsgs", "handlerLatency"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

} // namespace
} // namespace smtp
