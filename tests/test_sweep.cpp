/**
 * @file
 * Tests for the parallel sweep harness (SweepPool) and the determinism
 * contracts it relies on: a work-stealing parallelFor must run every
 * index exactly once, results must not depend on the worker count, and
 * whole-machine simulations must be bit-identical across both thread
 * counts and event-kernel choices.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "machine/machine.hpp"
#include "sim/sweep.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

TEST(SweepPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        SweepPool pool(jobs);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i
                                         << " with jobs=" << jobs;
    }
}

TEST(SweepPool, EmptyAndSingleElementRanges)
{
    SweepPool pool(4);
    int ran = 0;
    pool.parallelFor(0, [&ran](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    std::atomic<int> one{0};
    pool.parallelFor(1, [&one](std::size_t) { ++one; });
    EXPECT_EQ(one.load(), 1);
}

TEST(SweepPool, ReusableAcrossBatches)
{
    SweepPool pool(3);
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&sum](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99u * 100u / 2);
    }
}

TEST(SweepPool, DefaultJobsHonorsEnv)
{
    ::setenv("SMTP_SWEEP_JOBS", "3", 1);
    EXPECT_EQ(SweepPool::defaultJobs(), 3u);
    ::unsetenv("SMTP_SWEEP_JOBS");
    EXPECT_GE(SweepPool::defaultJobs(), 1u);
}

// --------------------------------------------- machine determinism

/** Build and run one small machine; return its reported exec time. */
Tick
runMachine(EventQueue::Kernel kernel)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    mp.appThreadsPerNode = 1;
    mp.eventKernel = kernel;
    Machine machine(mp);

    auto app = workload::makeApp("fft");
    FuncMem mem;
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = mp.nodes;
    env.threadsPerNode = 1;
    env.scale = 0.1;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));
    machine.run();
    return machine.execTime();
}

TEST(SweepDeterminism, HeapAndWheelKernelsAgreeOnWholeMachines)
{
    EXPECT_EQ(runMachine(EventQueue::Kernel::Wheel),
              runMachine(EventQueue::Kernel::Heap));
}

TEST(SweepDeterminism, ResultsIndependentOfWorkerCount)
{
    // The same four cells swept serially and by a contended pool must
    // produce identical per-cell results, collected in index order.
    auto sweep = [](unsigned jobs) {
        SweepPool pool(jobs);
        std::vector<Tick> out(4);
        pool.parallelFor(out.size(), [&out](std::size_t i) {
            out[i] = runMachine(i % 2 == 0 ? EventQueue::Kernel::Wheel
                                           : EventQueue::Kernel::Heap);
        });
        return out;
    };
    std::vector<Tick> serial = sweep(1);
    std::vector<Tick> parallel = sweep(4);
    EXPECT_EQ(serial, parallel);
    // And the two kernels agree cell-by-cell on top.
    EXPECT_EQ(serial[0], serial[1]);
    EXPECT_EQ(serial[2], serial[3]);
}

} // namespace
} // namespace smtp
