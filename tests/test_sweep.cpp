/**
 * @file
 * Tests for the parallel sweep harness (SweepPool) and the determinism
 * contracts it relies on: a work-stealing parallelFor must run every
 * index exactly once, results must not depend on the worker count, and
 * whole-machine simulations must be bit-identical across both thread
 * counts and event-kernel choices.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "machine/machine.hpp"
#include "sim/sweep.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

TEST(SweepPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        SweepPool pool(jobs);
        constexpr std::size_t n = 1000;
        std::vector<std::atomic<int>> hits(n);
        pool.parallelFor(n, [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i
                                         << " with jobs=" << jobs;
    }
}

TEST(SweepPool, EmptyAndSingleElementRanges)
{
    SweepPool pool(4);
    int ran = 0;
    pool.parallelFor(0, [&ran](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    std::atomic<int> one{0};
    pool.parallelFor(1, [&one](std::size_t) { ++one; });
    EXPECT_EQ(one.load(), 1);
}

TEST(SweepPool, ReusableAcrossBatches)
{
    SweepPool pool(3);
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(100, [&sum](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 99u * 100u / 2);
    }
}

TEST(SweepPool, DefaultJobsHonorsEnv)
{
    ::setenv("SMTP_SWEEP_JOBS", "3", 1);
    EXPECT_EQ(SweepPool::defaultJobs(), 3u);
    ::unsetenv("SMTP_SWEEP_JOBS");
    EXPECT_GE(SweepPool::defaultJobs(), 1u);
}

// --------------------------------------------- machine determinism

/** Build and run one small machine; return its reported exec time. */
Tick
runMachine(EventQueue::Kernel kernel)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    mp.appThreadsPerNode = 1;
    mp.eventKernel = kernel;
    Machine machine(mp);

    auto app = workload::makeApp("fft");
    FuncMem mem;
    workload::WorkloadEnv env;
    env.mem = &mem;
    env.map = &machine.addressMap();
    env.nodes = mp.nodes;
    env.threadsPerNode = 1;
    env.scale = 0.1;
    app->build(env);
    for (unsigned t = 0; t < env.totalThreads(); ++t)
        machine.setGlobalSource(t, app->thread(t));
    machine.run();
    return machine.execTime();
}

TEST(SweepService, RunsEveryTaskOnceAndDrains)
{
    SweepPool pool(3);
    constexpr std::size_t n = 200;
    std::vector<std::atomic<int>> hits(n);
    for (std::size_t i = 0; i < n; ++i)
        pool.enqueue(0, [&hits, i] {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
    pool.drainService();
    EXPECT_EQ(pool.serviceQueued(), 0u);
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(SweepService, HigherPriorityStartsFirstWithinOneWorker)
{
    // A jobs=1 pool has exactly one service worker, so the start order
    // IS the queue order: block it, queue low then high, and the high
    // task must start before the low one.
    SweepPool pool(1);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::vector<int> order;
    pool.enqueue(0, [&] {
        std::unique_lock<std::mutex> lk(m);
        cv.wait(lk, [&] { return release; });
    });
    // The gate task may still be queued (not yet picked up); either
    // way the next three are ordered strictly behind it.
    pool.enqueue(1, [&] {
        std::lock_guard<std::mutex> lk(m);
        order.push_back(1);
    });
    pool.enqueue(5, [&] {
        std::lock_guard<std::mutex> lk(m);
        order.push_back(5);
    });
    pool.enqueue(1, [&] {
        std::lock_guard<std::mutex> lk(m);
        order.push_back(100);
    });
    {
        std::lock_guard<std::mutex> lk(m);
        release = true;
    }
    cv.notify_all();
    pool.drainService();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 5);   // priority 5 jumps the earlier 1s
    EXPECT_EQ(order[1], 1);   // FIFO within priority 1
    EXPECT_EQ(order[2], 100);
}

TEST(SweepService, SingleJobPoolStillServicesOffThread)
{
    // jobs==1 has no batch workers (parallelFor degenerates inline),
    // but service mode must still run tasks on a worker thread: an
    // event-loop caller enqueues and returns immediately.
    SweepPool pool(1);
    std::thread::id svc_tid;
    pool.enqueue(0, [&] { svc_tid = std::this_thread::get_id(); });
    pool.drainService();
    EXPECT_NE(svc_tid, std::this_thread::get_id());
}

TEST(SweepService, CoexistsWithParallelForBatches)
{
    SweepPool pool(4);
    std::atomic<int> svc{0}, batch{0};
    for (int i = 0; i < 50; ++i)
        pool.enqueue(i % 3, [&svc] { ++svc; });
    pool.parallelFor(100, [&batch](std::size_t) { ++batch; });
    pool.drainService();
    EXPECT_EQ(svc.load(), 50);
    EXPECT_EQ(batch.load(), 100);
}

TEST(SweepDeterminism, HeapAndWheelKernelsAgreeOnWholeMachines)
{
    EXPECT_EQ(runMachine(EventQueue::Kernel::Wheel),
              runMachine(EventQueue::Kernel::Heap));
}

TEST(SweepDeterminism, ResultsIndependentOfWorkerCount)
{
    // The same four cells swept serially and by a contended pool must
    // produce identical per-cell results, collected in index order.
    auto sweep = [](unsigned jobs) {
        SweepPool pool(jobs);
        std::vector<Tick> out(4);
        pool.parallelFor(out.size(), [&out](std::size_t i) {
            out[i] = runMachine(i % 2 == 0 ? EventQueue::Kernel::Wheel
                                           : EventQueue::Kernel::Heap);
        });
        return out;
    };
    std::vector<Tick> serial = sweep(1);
    std::vector<Tick> parallel = sweep(4);
    EXPECT_EQ(serial, parallel);
    // And the two kernels agree cell-by-cell on top.
    EXPECT_EQ(serial[0], serial[1]);
    EXPECT_EQ(serial[2], serial[3]);
}

} // namespace
} // namespace smtp
