/**
 * @file
 * The snapshot subsystem's core contract, end to end: run N ticks,
 * save, restore into a fresh machine, run to completion — the final
 * execution time, committed instruction counts, the full stats dump,
 * and exported telemetry must be byte-identical to an uninterrupted
 * twin. Checked on all five machine models, across event kernels
 * (save under wheel, restore under heap, and vice versa), with
 * multiple app threads per node, and under an active fault plan.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "machine/machine.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

struct ResumeSim
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    std::unique_ptr<FuncMem> mem;

    ResumeSim(MachineModel model, bool heap_kernel, unsigned ways = 1,
              const fault::FaultPlan *faults = nullptr,
              bool traced = false, double scale = 0.25)
    {
        MachineParams mp;
        mp.model = model;
        mp.nodes = 2;
        mp.appThreadsPerNode = ways;
        mp.eventKernel = heap_kernel ? EventQueue::Kernel::Heap
                                     : EventQueue::Kernel::Wheel;
        if (faults != nullptr)
            mp.faults = *faults;
        mp.trace.enabled = traced;
        machine = std::make_unique<Machine>(mp);
        mem = std::make_unique<FuncMem>();
        app = workload::makeApp("FFT");
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = 2;
        env.threadsPerNode = ways;
        env.scale = scale;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
    }
};

std::string
statsOf(Machine &m)
{
    std::ostringstream os;
    m.dumpStats(os);
    return os.str();
}

/**
 * The twin experiment: an uninterrupted run vs. run-to-N / save /
 * restore-into-fresh-machine / run-to-completion. Everything
 * observable must match exactly.
 */
void
expectResumeIdentical(MachineModel model, bool save_heap,
                      bool restore_heap, unsigned ways = 1,
                      const fault::FaultPlan *faults = nullptr)
{
    ResumeSim twin(model, save_heap, ways, faults);
    Tick t_end = twin.machine->run();
    ASSERT_GT(t_end, 0u);
    std::string golden = statsOf(*twin.machine);

    ResumeSim part(model, save_heap, ways, faults);
    part.machine->runUntil(t_end / 2);
    ASSERT_GT(part.machine->eventQueue().curTick(), 0u);
    auto img = part.machine->saveImage();

    ResumeSim res(model, restore_heap, ways, faults);
    std::string err;
    ASSERT_TRUE(res.machine->restoreImage(std::move(img), &err)) << err;
    Tick t_res = res.machine->run();

    EXPECT_EQ(t_res, t_end);
    EXPECT_EQ(res.machine->committedAppInsts(),
              twin.machine->committedAppInsts());
    EXPECT_EQ(statsOf(*res.machine), golden);
}

struct ModelCase
{
    MachineModel model;
    const char *name;
};

class ResumeAllModels : public ::testing::TestWithParam<ModelCase>
{
};

TEST_P(ResumeAllModels, BitIdenticalResume)
{
    expectResumeIdentical(GetParam().model, /*save_heap=*/false,
                          /*restore_heap=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    Models, ResumeAllModels,
    ::testing::Values(ModelCase{MachineModel::Base, "Base"},
                      ModelCase{MachineModel::IntPerfect, "IntPerfect"},
                      ModelCase{MachineModel::Int512KB, "Int512KB"},
                      ModelCase{MachineModel::Int64KB, "Int64KB"},
                      ModelCase{MachineModel::SMTp, "SMTp"}),
    [](const auto &info) { return info.param.name; });

// Snapshots are kernel-neutral: the event queue serializes pending
// events in deterministic order, so a wheel-kernel snapshot restores
// onto the heap kernel (and back) with identical results.
TEST(ResumeCrossKernel, WheelToHeap)
{
    expectResumeIdentical(MachineModel::SMTp, /*save_heap=*/false,
                          /*restore_heap=*/true);
}

TEST(ResumeCrossKernel, HeapToWheel)
{
    expectResumeIdentical(MachineModel::SMTp, /*save_heap=*/true,
                          /*restore_heap=*/false);
}

TEST(Resume, MultipleAppThreadsPerNode)
{
    expectResumeIdentical(MachineModel::SMTp, false, false, /*ways=*/2);
}

TEST(Resume, UnderActiveFaultPlan)
{
    // RNG streams and retransmit machinery must resume mid-plan.
    fault::FaultPlan plan;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "seed=7,drop=0.005,dup=0.005,nak=0.01", plan, &err))
        << err;
    expectResumeIdentical(MachineModel::Base, false, false, 1, &plan);
}

TEST(Resume, SaveAtManyPointsConverges)
{
    // Saving very early (before warmup effects) and very late (almost
    // done) must both resume exactly; guards the restore ordering
    // against point-in-time assumptions.
    ResumeSim twin(MachineModel::Int64KB, false);
    Tick t_end = twin.machine->run();
    std::string golden = statsOf(*twin.machine);

    for (double frac : {0.05, 0.95}) {
        ResumeSim part(MachineModel::Int64KB, false);
        part.machine->runUntil(
            static_cast<Tick>(static_cast<double>(t_end) * frac));
        auto img = part.machine->saveImage();
        ResumeSim res(MachineModel::Int64KB, false);
        std::string err;
        ASSERT_TRUE(res.machine->restoreImage(std::move(img), &err))
            << err << " at frac " << frac;
        EXPECT_EQ(res.machine->run(), t_end) << frac;
        EXPECT_EQ(statsOf(*res.machine), golden) << frac;
    }
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

TEST(Resume, TelemetryRidesAlong)
{
    // A traced machine snapshots its rings and interval series too:
    // the exported telemetry after resume equals the uninterrupted
    // twin's export, byte for byte.
    ResumeSim twin(MachineModel::SMTp, false, 1, nullptr, /*traced=*/true);
    Tick t_end = twin.machine->run();
    std::string tdir = ::testing::TempDir();
    std::string err;
    ASSERT_TRUE(twin.machine->writeTraceFiles(tdir + "twin", &err)) << err;

    ResumeSim part(MachineModel::SMTp, false, 1, nullptr, true);
    part.machine->runUntil(t_end / 2);
    auto img = part.machine->saveImage();
    ResumeSim res(MachineModel::SMTp, false, 1, nullptr, true);
    ASSERT_TRUE(res.machine->restoreImage(std::move(img), &err)) << err;
    EXPECT_EQ(res.machine->run(), t_end);
    ASSERT_TRUE(res.machine->writeTraceFiles(tdir + "res", &err)) << err;

    for (const char *ext : {".json", ".csv", ".smtptrace"}) {
        std::string a = slurp(tdir + "twin" + ext);
        std::string b = slurp(tdir + "res" + ext);
        ASSERT_FALSE(a.empty()) << ext;
        EXPECT_EQ(a, b) << "telemetry export differs: " << ext;
        std::filesystem::remove(tdir + "twin" + ext);
        std::filesystem::remove(tdir + "res" + ext);
    }
}

TEST(Resume, UntracedMachineRejectsTracedSnapshotMismatch)
{
    // Trace config is outside the config hash (telemetry never perturbs
    // timing), so the section-presence guard is what catches a traced
    // machine handed an untraced snapshot.
    ResumeSim part(MachineModel::Base, false, 1, nullptr, /*traced=*/false);
    part.machine->runUntil(20 * tickPerUs);
    auto img = part.machine->saveImage();

    ResumeSim res(MachineModel::Base, false, 1, nullptr, /*traced=*/true);
    std::string err;
    EXPECT_FALSE(res.machine->restoreImage(std::move(img), &err));
    EXPECT_FALSE(err.empty());
}

} // namespace
} // namespace smtp
