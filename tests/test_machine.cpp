/**
 * @file
 * Whole-machine integration tests: every application runs to completion
 * on every machine model, synchronization primitives work end-to-end on
 * real coherent machines, coherence invariants hold after quiescence,
 * and basic scaling sanity (more nodes => faster parallel section).
 */

#include <gtest/gtest.h>

#include "machine/machine.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

using workload::App;
using workload::makeApp;
using workload::WorkloadEnv;

struct SimRun
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<App> app;
    FuncMem mem;

    SimRun(MachineModel model, unsigned nodes, unsigned ways,
        std::string_view app_name, double scale = 0.25)
    {
        MachineParams mp;
        mp.model = model;
        mp.nodes = nodes;
        mp.appThreadsPerNode = ways;
        machine = std::make_unique<Machine>(mp);
        app = makeApp(app_name);
        WorkloadEnv env;
        env.mem = &mem;
        env.map = &machine->addressMap();
        env.nodes = nodes;
        env.threadsPerNode = ways;
        env.scale = scale;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
    }

    Tick
    go()
    {
        Tick t = machine->run();
        machine->quiesce();
        return t;
    }
};

/** Global SWMR + directory consistency sweep over all placed lines. */
void
checkCoherence(Machine &m, const std::vector<Addr> &sample_lines)
{
    const auto &fmt = m.dirFormat();
    for (Addr line : sample_lines) {
        unsigned writers = 0, sharers = 0;
        std::uint64_t sharer_bits = 0;
        for (unsigned n = 0; n < m.numNodes(); ++n) {
            auto st = m.node(n).cache->l2State(line);
            if (st == LineState::Ex || st == LineState::Mod)
                ++writers;
            if (st == LineState::Sh) {
                ++sharers;
                sharer_bits |= 1ULL << n;
            }
        }
        ASSERT_LE(writers, 1u) << "two writers of " << std::hex << line;
        ASSERT_TRUE(writers == 0 || sharers == 0)
            << "writer coexists with sharers on " << std::hex << line;

        NodeId home = m.addressMap().homeOf(line);
        auto entry = m.node(home).mc->dirEntry(line);
        auto state = fmt.state(entry);
        ASSERT_FALSE(fmt.stale(entry));
        ASSERT_TRUE(state == proto::dirUnowned ||
                    state == proto::dirShared ||
                    state == proto::dirExclusive)
            << "busy directory state after quiescence";
        if (writers == 1) {
            ASSERT_EQ(state, proto::dirExclusive);
            ASSERT_TRUE(writable(
                m.node(fmt.owner(entry)).cache->l2State(line)));
        }
        if (sharers > 0) {
            ASSERT_EQ(state, proto::dirShared);
            ASSERT_EQ(sharer_bits & ~fmt.vector(entry), 0u)
                << "cached sharer missing from vector";
        }
    }
}

// ----------------------------------------------------- app x model grid

struct GridCase
{
    const char *app;
    MachineModel model;
};

class AppModelTest : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(AppModelTest, CompletesOnTwoNodes)
{
    auto param = GetParam();
    SimRun run(param.model, 2, 1, param.app);
    Tick t = run.go();
    EXPECT_GT(t, 0u);
    // Every thread committed work.
    for (unsigned n = 0; n < 2; ++n) {
        EXPECT_GT(run.machine->node(n).cpu->threadStats(0)
                      .committed.value(),
                  1000u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AppModelTest,
    ::testing::Values(
        GridCase{"FFT", MachineModel::Base},
        GridCase{"FFT", MachineModel::IntPerfect},
        GridCase{"FFT", MachineModel::Int512KB},
        GridCase{"FFT", MachineModel::Int64KB},
        GridCase{"FFT", MachineModel::SMTp},
        GridCase{"FFTW", MachineModel::SMTp},
        GridCase{"FFTW", MachineModel::Base},
        GridCase{"LU", MachineModel::SMTp},
        GridCase{"LU", MachineModel::Int512KB},
        GridCase{"Radix", MachineModel::SMTp},
        GridCase{"Radix", MachineModel::Int64KB},
        GridCase{"Ocean", MachineModel::SMTp},
        GridCase{"Ocean", MachineModel::Base},
        GridCase{"Water", MachineModel::SMTp},
        GridCase{"Water", MachineModel::IntPerfect}),
    [](const ::testing::TestParamInfo<GridCase> &info) {
        return std::string(info.param.app) + "_" +
               std::string(modelName(info.param.model));
    });

// ------------------------------------------------------------ specifics

TEST(MachineTest, SingleNodeSmtpRunsFft)
{
    SimRun run(MachineModel::SMTp, 1, 1, "FFT");
    EXPECT_GT(run.go(), 0u);
}

TEST(MachineTest, FourWaySmtRunsWater)
{
    SimRun run(MachineModel::SMTp, 2, 4, "Water");
    EXPECT_GT(run.go(), 0u);
    for (unsigned slot = 0; slot < 4; ++slot) {
        EXPECT_GT(run.machine->node(0)
                      .cpu->threadStats(static_cast<ThreadId>(slot))
                      .committed.value(),
                  100u);
    }
}

TEST(MachineTest, ProtocolThreadDoesRealWork)
{
    SimRun run(MachineModel::SMTp, 2, 1, "FFT");
    run.go();
    for (unsigned n = 0; n < 2; ++n) {
        const auto &node = run.machine->node(n);
        EXPECT_GT(node.pthread->handlersStarted.value(), 50u);
        EXPECT_GT(node.pthread->busyTicks(), 0u);
        ThreadId ptid = node.cpu->protocolTid();
        EXPECT_GT(node.cpu->threadStats(ptid).committed.value(), 500u);
    }
    auto pc = run.machine->protoCharacteristics();
    EXPECT_GT(pc.retiredInstPct, 0.0);
    EXPECT_LT(pc.retiredInstPct, 0.5);
}

TEST(MachineTest, PEngineDoesRealWorkOnBase)
{
    SimRun run(MachineModel::Base, 2, 1, "FFT");
    run.go();
    for (unsigned n = 0; n < 2; ++n) {
        EXPECT_GT(run.machine->node(n).pengine->handlers.value(), 50u);
        EXPECT_GT(run.machine->node(n).pengine->busyTicks(), 0u);
    }
}

TEST(MachineTest, CoherenceInvariantsAfterOcean)
{
    SimRun run(MachineModel::SMTp, 4, 1, "Ocean");
    run.go();
    // Sample lines across the data regions of all four nodes.
    std::vector<Addr> lines;
    for (unsigned n = 0; n < 4; ++n) {
        Addr base = workload::Alloc::dataBase +
                    static_cast<Addr>(n) * workload::Alloc::nodeStride;
        for (unsigned i = 0; i < 64; ++i)
            lines.push_back(base + i * l2LineBytes);
    }
    checkCoherence(*run.machine, lines);
}

TEST(MachineTest, CoherenceInvariantsAfterRadixOnPEngine)
{
    SimRun run(MachineModel::Int64KB, 4, 1, "Radix");
    run.go();
    std::vector<Addr> lines;
    for (unsigned n = 0; n < 4; ++n) {
        Addr base = workload::Alloc::dataBase +
                    static_cast<Addr>(n) * workload::Alloc::nodeStride;
        for (unsigned i = 0; i < 64; ++i)
            lines.push_back(base + i * l2LineBytes);
    }
    checkCoherence(*run.machine, lines);
}

TEST(MachineTest, RadixActuallySorts)
{
    // After two 5-bit passes the low 10 bits must be non-decreasing in
    // rank order — the generators really execute the algorithm.
    SimRun run(MachineModel::SMTp, 2, 1, "Radix");
    run.go();
    // Keys live in the source partitions after an even number of passes.
    // Walk rank order: partition t, slot i.
    std::vector<std::uint64_t> sorted;
    for (unsigned t = 0; t < 2; ++t) {
        Addr part = workload::Alloc::dataBase +
                    static_cast<Addr>(t) * workload::Alloc::nodeStride;
        // The source partition is the first allocation in each region;
        // at scale 0.25 it holds at least 256 keys per thread, so walk
        // a fixed prefix well inside it.
        for (unsigned i = 0; i < 256; ++i)
            sorted.push_back(run.mem.read(part + i * 8) & 0x3ff);
    }
    ASSERT_EQ(sorted.size(), 512u);
    // Spot-check monotonicity of the low bits within the walked prefix.
    unsigned inversions = 0;
    for (std::size_t i = 1; i < sorted.size(); ++i)
        inversions += sorted[i - 1] > sorted[i];
    EXPECT_LT(inversions, sorted.size() / 8)
        << "radix permutation did not sort";
}

TEST(MachineTest, MoreNodesRunFasterOnOcean)
{
    // Ocean is the paper's best-scaling application (Table 5/6). Our
    // scaled-down problems show smaller speedups than the paper's
    // full-size runs (see EXPERIMENTS.md), but parallelism must pay.
    SimRun one(MachineModel::SMTp, 1, 1, "Ocean", 1.0);
    Tick t1 = one.go();
    SimRun four(MachineModel::SMTp, 4, 1, "Ocean", 1.0);
    Tick t4 = four.go();
    EXPECT_LT(t4, t1) << "no parallel speedup";
    EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t4), 1.5)
        << "speedup on 4 nodes should exceed 1.5x";
}

TEST(MachineTest, SmtpBeatsBase)
{
    SimRun base(MachineModel::Base, 4, 1, "Ocean", 0.5);
    Tick tb = base.go();
    SimRun smtp(MachineModel::SMTp, 4, 1, "Ocean", 0.5);
    Tick ts = smtp.go();
    EXPECT_LT(ts, tb) << "SMTp must outperform the off-chip Base model";
}

TEST(MachineTest, MemStallFractionIsMeaningful)
{
    SimRun run(MachineModel::Base, 2, 1, "FFT");
    run.go();
    double f = run.machine->memStallFraction();
    EXPECT_GT(f, 0.01);
    EXPECT_LT(f, 0.99);
}

TEST(MachineTest, ProtocolOccupancyOrdering)
{
    // IntPerfect's faster controller must show lower peak protocol
    // occupancy than Base's 400 MHz off-chip engine (Table 7 shape).
    SimRun base(MachineModel::Base, 2, 1, "FFT", 0.5);
    base.go();
    SimRun perfect(MachineModel::IntPerfect, 2, 1, "FFT", 0.5);
    perfect.go();
    EXPECT_LT(perfect.machine->peakProtocolOccupancy(),
              base.machine->peakProtocolOccupancy());
}

TEST(MachineTest, ClockScalingPreservesCompletion)
{
    MachineParams mp;
    mp.model = MachineModel::SMTp;
    mp.nodes = 2;
    mp.appThreadsPerNode = 1;
    mp.cpuFreqMHz = 4000;
    Machine m(mp);
    FuncMem mem;
    auto app = makeApp("FFT");
    WorkloadEnv env;
    env.mem = &mem;
    env.map = &m.addressMap();
    env.nodes = 2;
    env.threadsPerNode = 1;
    env.scale = 0.25;
    app->build(env);
    for (unsigned t = 0; t < 2; ++t)
        m.setGlobalSource(t, app->thread(t));
    EXPECT_GT(m.run(), 0u);
}

} // namespace
} // namespace smtp
