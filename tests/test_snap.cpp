/**
 * @file
 * Snapshot subsystem unit tests: Ser/Des primitive round trips and
 * bounds checking, the versioned container (SnapWriter/SnapReader)
 * including corruption and truncation rejection, round trips for every
 * stat type (the carry-over audit: min/max sentinels, histogram
 * buckets), trace ring normalization, and the machine-level guard
 * rails (config-hash mismatch, non-fresh machine, corrupt file).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <limits>

#include "machine/machine.hpp"
#include "sim/stats.hpp"
#include "snap/snap.hpp"
#include "snap/snapfile.hpp"
#include "trace/trace.hpp"
#include "workload/app.hpp"

namespace smtp
{
namespace
{

TEST(SerDes, PrimitivesRoundTrip)
{
    snap::Ser s;
    s.u8(0xab);
    s.b(true);
    s.b(false);
    s.u16(0xbeef);
    s.u32(0xdeadbeefu);
    s.u64(0x0123456789abcdefull);
    s.i8(-5);
    s.i32(-123456789);
    s.i64(-1234567890123456789ll);
    s.f64(3.14159);
    s.f64(-std::numeric_limits<double>::infinity());
    s.str("hello snapshot");
    s.str("");

    snap::Des d(s.buffer().data(), s.size());
    EXPECT_EQ(d.u8(), 0xab);
    EXPECT_TRUE(d.bl());
    EXPECT_FALSE(d.bl());
    EXPECT_EQ(d.u16(), 0xbeef);
    EXPECT_EQ(d.u32(), 0xdeadbeefu);
    EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(d.i8(), -5);
    EXPECT_EQ(d.i32(), -123456789);
    EXPECT_EQ(d.i64(), -1234567890123456789ll);
    EXPECT_EQ(d.f64(), 3.14159);
    EXPECT_EQ(d.f64(), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(d.str(), "hello snapshot");
    EXPECT_EQ(d.str(), "");
    EXPECT_TRUE(d.ok());
    EXPECT_EQ(d.remaining(), 0u);
}

TEST(SerDes, TruncatedReadSticksError)
{
    snap::Ser s;
    s.u32(42);
    snap::Des d(s.buffer().data(), s.size());
    EXPECT_EQ(d.u32(), 42u);
    // Reading past the end fails softly and stays failed; values are
    // zero, never uninitialized.
    EXPECT_EQ(d.u64(), 0u);
    EXPECT_FALSE(d.ok());
    EXPECT_EQ(d.u32(), 0u);
    EXPECT_FALSE(d.error().empty());
}

TEST(SerDes, CountGuardsAgainstAbsurdLengths)
{
    snap::Ser s;
    s.u64(std::numeric_limits<std::uint64_t>::max()); // hostile count
    snap::Des d(s.buffer().data(), s.size());
    // A count whose elements cannot possibly fit the remaining bytes
    // must fail instead of driving a giant allocation loop.
    EXPECT_EQ(d.count(8), 0u);
    EXPECT_FALSE(d.ok());
}

TEST(SerDes, StringLengthBeyondBufferRejected)
{
    snap::Ser s;
    s.u64(1000); // claims 1000 bytes follow
    s.u8('x');
    snap::Des d(s.buffer().data(), s.size());
    EXPECT_EQ(d.str(), "");
    EXPECT_FALSE(d.ok());
}

TEST(Hasher, DeterministicAndSensitive)
{
    snap::Hasher a, b, c;
    a.mix("config");
    a.mix(std::uint64_t{7});
    b.mix("config");
    b.mix(std::uint64_t{7});
    c.mix("config");
    c.mix(std::uint64_t{8});
    EXPECT_EQ(a.value(), b.value());
    EXPECT_NE(a.value(), c.value());
}

// ---- Container ------------------------------------------------------

TEST(SnapFile, ContainerRoundTrip)
{
    snap::SnapWriter w(0x1122334455667788ull);
    snap::Ser &s1 = w.beginSection("alpha");
    s1.u64(111);
    w.endSection();
    snap::Ser &s2 = w.beginSection("beta");
    s2.str("payload");
    w.endSection();

    snap::SnapReader r;
    ASSERT_TRUE(r.parse(w.finish())) << r.error();
    EXPECT_EQ(r.formatVersion(), snap::kFormatVersion);
    EXPECT_EQ(r.configHash(), 0x1122334455667788ull);
    ASSERT_EQ(r.sections().size(), 2u);
    EXPECT_TRUE(r.hasSection("alpha"));
    EXPECT_TRUE(r.hasSection("beta"));
    EXPECT_FALSE(r.hasSection("gamma"));

    snap::Des da = r.section("alpha");
    EXPECT_EQ(da.u64(), 111u);
    EXPECT_TRUE(da.ok());
    snap::Des db = r.section("beta");
    EXPECT_EQ(db.str(), "payload");
    EXPECT_TRUE(db.ok());

    snap::Des dg = r.section("gamma");
    EXPECT_FALSE(dg.ok());
}

TEST(SnapFile, RejectsBadMagic)
{
    snap::SnapWriter w(1);
    auto img = w.finish();
    img[0] = 'X';
    snap::SnapReader r;
    EXPECT_FALSE(r.parse(std::move(img)));
    EXPECT_FALSE(r.error().empty());
}

TEST(SnapFile, RejectsFutureVersion)
{
    snap::SnapWriter w(1);
    auto img = w.finish();
    img[8] = 0xff; // formatVersion low byte
    snap::SnapReader r;
    EXPECT_FALSE(r.parse(std::move(img)));
    EXPECT_NE(r.error().find("version"), std::string::npos);
}

TEST(SnapFile, RejectsTruncation)
{
    snap::SnapWriter w(1);
    snap::Ser &s = w.beginSection("data");
    for (int i = 0; i < 100; ++i)
        s.u64(i);
    w.endSection();
    auto img = w.finish();
    // Every possible truncation point must be rejected cleanly.
    for (std::size_t cut : {std::size_t{0}, std::size_t{4},
                            std::size_t{15}, std::size_t{30},
                            img.size() - 1}) {
        snap::SnapReader r;
        EXPECT_FALSE(r.parse(std::vector<std::uint8_t>(
            img.begin(), img.begin() + static_cast<std::ptrdiff_t>(cut))))
            << "cut at " << cut;
        EXPECT_FALSE(r.error().empty());
    }
}

TEST(SnapFile, RejectsCorruptSectionFraming)
{
    snap::SnapWriter w(1);
    snap::Ser &s = w.beginSection("data");
    s.u64(7);
    w.endSection();
    auto img = w.finish();
    // Blow up the section's payload length field (offset: 24-byte
    // header + u32 nameLen + 4 name bytes).
    img[24 + 4 + 4] = 0xff;
    img[24 + 4 + 5] = 0xff;
    snap::SnapReader r;
    EXPECT_FALSE(r.parse(std::move(img)));
    EXPECT_FALSE(r.error().empty());
}

TEST(SnapFile, FileRoundTripAndMissingFile)
{
    std::string path = ::testing::TempDir() + "snapfile_rt.smtpsnap";
    snap::SnapWriter w(42);
    snap::Ser &s = w.beginSection("x");
    s.u32(9);
    w.endSection();
    std::string err;
    ASSERT_TRUE(w.write(path, &err)) << err;

    snap::SnapReader r;
    ASSERT_TRUE(r.load(path)) << r.error();
    EXPECT_EQ(r.configHash(), 42u);

    snap::SnapReader r2;
    EXPECT_FALSE(r2.load(path + ".does-not-exist"));
    EXPECT_FALSE(r2.error().empty());
    std::filesystem::remove(path);
}

// ---- Stat type round trips (carry-over audit) -----------------------

template <typename T>
T
roundTrip(const T &orig)
{
    snap::Ser s;
    orig.saveState(s);
    snap::Des d(s.buffer().data(), s.size());
    T fresh;
    fresh.restoreState(d);
    EXPECT_TRUE(d.ok()) << d.error();
    EXPECT_EQ(d.remaining(), 0u);
    return fresh;
}

TEST(StatSnap, CounterRoundTrip)
{
    Counter c;
    c += 41;
    ++c;
    Counter r = roundTrip(c);
    EXPECT_EQ(r.value(), 42u);
}

TEST(StatSnap, PeakTrackerRoundTrip)
{
    PeakTracker p;
    p.observe(17);
    p.observe(5);
    PeakTracker r = roundTrip(p);
    EXPECT_EQ(r.peak(), 17u);
}

TEST(StatSnap, DistributionRoundTripWithSamples)
{
    Distribution d;
    d.sample(1.5);
    d.sample(-2.0, 3);
    d.sample(10.0);
    Distribution r = roundTrip(d);
    EXPECT_EQ(r.samples(), d.samples());
    EXPECT_EQ(r.mean(), d.mean());
    EXPECT_EQ(r.min(), d.min());
    EXPECT_EQ(r.max(), d.max());
}

TEST(StatSnap, DistributionEmptySentinelsSurvive)
{
    // The carry-over trap: an empty Distribution holds +/-inf min/max
    // sentinels. A naive restore (e.g. writing 0s) would corrupt the
    // first post-restore sample's min/max. Prove the sentinels ride
    // through and the next sample behaves exactly like on a fresh one.
    Distribution empty;
    Distribution r = roundTrip(empty);
    EXPECT_EQ(r.samples(), 0u);
    r.sample(-7.5);
    EXPECT_EQ(r.min(), -7.5);
    EXPECT_EQ(r.max(), -7.5);
}

TEST(StatSnap, DistributionHistogramBucketsSurvive)
{
    Distribution d;
    d.enableHistogram(0.0, 10.0, 5);
    d.sample(-1.0); // underflow
    d.sample(2.5);
    d.sample(2.6);
    d.sample(11.0); // overflow
    Distribution r = roundTrip(d);
    ASSERT_TRUE(r.histogramEnabled());
    EXPECT_EQ(r.histogram(), d.histogram());
    EXPECT_EQ(r.percentile(50.0), d.percentile(50.0));
    // Continued sampling must land in the same buckets as the twin.
    d.sample(9.9);
    r.sample(9.9);
    EXPECT_EQ(r.histogram(), d.histogram());
}

TEST(StatSnap, TraceRingNormalizesWrap)
{
    // Fill past capacity so the ring wraps, round-trip, and check the
    // restored ring exports the same events and keeps recording
    // identically to the original.
    trace::TraceBuffer orig("t", 0, trace::Category::Cpu, 4);
    for (std::uint64_t i = 0; i < 7; ++i)
        orig.record(i * 10, static_cast<trace::EventId>(1), i);

    snap::Ser s;
    orig.saveState(s);
    trace::TraceBuffer fresh("t", 0, trace::Category::Cpu, 4);
    snap::Des d(s.buffer().data(), s.size());
    fresh.restoreState(d);
    ASSERT_TRUE(d.ok()) << d.error();

    orig.record(99, static_cast<trace::EventId>(2), 99);
    fresh.record(99, static_cast<trace::EventId>(2), 99);
    std::vector<trace::Event> a, b;
    orig.snapshot(a);
    fresh.snapshot(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].meta, b[i].meta) << i;
        EXPECT_EQ(a[i].arg, b[i].arg) << i;
    }
    EXPECT_EQ(orig.recorded(), fresh.recorded());
}

TEST(StatSnap, TraceRingCapacityMismatchRejected)
{
    trace::TraceBuffer orig("t", 0, trace::Category::Cpu, 8);
    for (int i = 0; i < 20; ++i)
        orig.record(i, static_cast<trace::EventId>(1), 0);
    snap::Ser s;
    orig.saveState(s);
    trace::TraceBuffer fresh("t", 0, trace::Category::Cpu, 4);
    snap::Des d(s.buffer().data(), s.size());
    fresh.restoreState(d);
    EXPECT_FALSE(d.ok());
}

// ---- Machine-level guard rails --------------------------------------

struct SnapSim
{
    std::unique_ptr<Machine> machine;
    std::unique_ptr<workload::App> app;
    std::unique_ptr<FuncMem> mem;

    explicit SnapSim(MachineModel model, double scale = 0.25)
    {
        MachineParams mp;
        mp.model = model;
        mp.nodes = 2;
        mp.appThreadsPerNode = 1;
        machine = std::make_unique<Machine>(mp);
        mem = std::make_unique<FuncMem>();
        app = workload::makeApp("FFT");
        workload::WorkloadEnv env;
        env.mem = mem.get();
        env.map = &machine->addressMap();
        env.nodes = 2;
        env.threadsPerNode = 1;
        env.scale = scale;
        app->build(env);
        for (unsigned t = 0; t < env.totalThreads(); ++t)
            machine->setGlobalSource(t, app->thread(t));
        machine->setWorkloadState(app.get());
    }
};

TEST(MachineSnap, ConfigHashMismatchRejected)
{
    SnapSim a(MachineModel::Base);
    a.machine->runUntil(50 * tickPerUs);
    auto img = a.machine->saveImage();

    SnapSim b(MachineModel::SMTp);
    EXPECT_NE(a.machine->configHash(), b.machine->configHash());
    std::string err;
    EXPECT_FALSE(b.machine->restoreImage(img, &err));
    EXPECT_NE(err.find("config hash"), std::string::npos) << err;
}

TEST(MachineSnap, NonFreshMachineRejected)
{
    SnapSim a(MachineModel::Base);
    a.machine->runUntil(50 * tickPerUs);
    auto img = a.machine->saveImage();

    SnapSim b(MachineModel::Base);
    b.machine->runUntil(10 * tickPerUs); // b has already simulated
    std::string err;
    EXPECT_FALSE(b.machine->restoreImage(img, &err));
    EXPECT_FALSE(err.empty());
}

TEST(MachineSnap, CorruptAndTruncatedImagesRejected)
{
    SnapSim a(MachineModel::Base);
    a.machine->runUntil(50 * tickPerUs);
    auto img = a.machine->saveImage();

    // Truncations at many depths: container header, section table,
    // mid-payload. All must fail with a diagnostic, none may crash.
    for (double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
        auto cut = static_cast<std::size_t>(
            static_cast<double>(img.size()) * frac);
        std::vector<std::uint8_t> t(img.begin(),
                                    img.begin() +
                                        static_cast<std::ptrdiff_t>(cut));
        SnapSim b(MachineModel::Base);
        std::string err;
        EXPECT_FALSE(b.machine->restoreImage(std::move(t), &err))
            << "cut fraction " << frac;
        EXPECT_FALSE(err.empty());
    }

    // Deep-payload bitflip: framing still parses, a component's section
    // decodes garbage. Restore must fail (count/validation guards), not
    // crash. Flip a byte ~3/4 through, clear of the header.
    auto flipped = img;
    flipped[flipped.size() * 3 / 4] ^= 0xff;
    SnapSim c(MachineModel::Base);
    std::string err;
    bool ok = c.machine->restoreImage(std::move(flipped), &err);
    if (!ok) {
        EXPECT_FALSE(err.empty());
    }
    // (A flip in stats payload can decode to a legal value; rejection
    // is only guaranteed for structural fields. No-crash is the
    // contract, checked by running this test at all under ASan.)
}

TEST(MachineSnap, SaveToFileAndRestore)
{
    std::string path = ::testing::TempDir() + "machine_rt.smtpsnap";
    SnapSim a(MachineModel::Base);
    a.machine->runUntil(50 * tickPerUs);
    std::string err;
    ASSERT_TRUE(a.machine->save(path, &err)) << err;

    SnapSim b(MachineModel::Base);
    ASSERT_TRUE(b.machine->restore(path, &err)) << err;
    EXPECT_EQ(b.machine->eventQueue().curTick(),
              a.machine->eventQueue().curTick());
    EXPECT_EQ(b.machine->committedAppInsts(),
              a.machine->committedAppInsts());
    std::filesystem::remove(path);
}

} // namespace
} // namespace smtp
