/**
 * @file
 * Tests for the deterministic fault-injection subsystem (src/fault):
 * plan spec round-trips, retry-backoff boundary values, decision-stream
 * determinism, ECC accounting, and whole-protocol-machine runs under
 * every fault class — drops recovered by retransmit, duplicates
 * filtered exactly once, forced NAKs riding the retry path, the
 * starvation detector, and the deliberate drop-without-retransmit bug
 * being caught by the watchdog.
 */

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "proto_harness.hpp"

namespace smtp
{
namespace
{

using testing::ProtoMachine;

// -------------------------------------------------------- plan parsing

TEST(FaultPlan, ParseToStringRoundTrip)
{
    fault::FaultPlan p;
    std::string err;
    ASSERT_TRUE(fault::FaultPlan::parse(
        "seed=42,drop=0.01,dup=0.02,delay=0.05,delaymax=300,"
        "reorder=0.03,timeout=500,maxretx=4,flip=0.001,flip2=0.0005,"
        "nak=0.02",
        p, &err))
        << err;
    EXPECT_EQ(p.seed, 42u);
    EXPECT_DOUBLE_EQ(p.netDrop, 0.01);
    EXPECT_DOUBLE_EQ(p.netDup, 0.02);
    EXPECT_DOUBLE_EQ(p.netDelay, 0.05);
    EXPECT_EQ(p.netDelayMax, 300 * tickPerNs);
    EXPECT_DOUBLE_EQ(p.netReorder, 0.03);
    EXPECT_EQ(p.retransmitTimeout, 500 * tickPerNs);
    EXPECT_EQ(p.maxRetransmits, 4u);
    EXPECT_DOUBLE_EQ(p.memFlipSingle, 0.001);
    EXPECT_DOUBLE_EQ(p.memFlipDouble, 0.0005);
    EXPECT_DOUBLE_EQ(p.forceNak, 0.02);
    EXPECT_TRUE(p.enabled());

    // The canonical form re-parses to the same plan.
    fault::FaultPlan q;
    ASSERT_TRUE(fault::FaultPlan::parse(p.toString(), q, &err)) << err;
    EXPECT_EQ(p.toString(), q.toString());
}

TEST(FaultPlan, UnknownKeyAndMalformedValueAreErrors)
{
    fault::FaultPlan p;
    std::string err;
    EXPECT_FALSE(fault::FaultPlan::parse("bogus=1", p, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(fault::FaultPlan::parse("drop=notanumber", p, &err));
    EXPECT_FALSE(fault::FaultPlan::parse("drop", p, &err));
}

TEST(FaultPlan, DefaultIsFullyDisabled)
{
    fault::FaultPlan p;
    EXPECT_FALSE(p.enabled());
    EXPECT_FALSE(p.anyNetwork());
    EXPECT_FALSE(p.anyMem());
    EXPECT_FALSE(p.anyProtocol());
}

// ------------------------------------------------- retry-policy bounds

TEST(RetryPolicy, ImmediateIsZeroAndDrawsNothing)
{
    fault::RetryPolicyConfig cfg;
    cfg.kind = fault::RetryKind::Immediate;
    Rng a(7), b(7);
    for (unsigned k = 1; k < 10; ++k)
        EXPECT_EQ(fault::retryBackoff(cfg, k, a), 0u);
    // No jitter draw: the stream is untouched.
    EXPECT_EQ(a.below(1 << 20), b.below(1 << 20));
}

TEST(RetryPolicy, FixedMatchesHistoricalBackoffBitForBit)
{
    fault::RetryPolicyConfig cfg; // Fixed, base = 100 ns
    const Tick base = cfg.base;
    Rng a(99), b(99);
    for (unsigned k = 1; k < 20; ++k) {
        // The pre-policy controller computed nakBackoff + below(nakBackoff)
        // regardless of the retry count.
        Tick expect = base + b.below(base);
        EXPECT_EQ(fault::retryBackoff(cfg, k, a), expect) << "k=" << k;
    }
}

TEST(RetryPolicy, ExpBackoffDoublesThenCaps)
{
    fault::RetryPolicyConfig cfg;
    cfg.kind = fault::RetryKind::ExpBackoff;
    cfg.base = 100 * tickPerNs;
    cfg.cap = 6400 * tickPerNs;
    Rng rng(5);
    // k-th resend backs off base << (k-1), saturating at cap; jitter is
    // uniform in [0, base).
    for (unsigned k = 1; k <= 12; ++k) {
        Tick v = fault::retryBackoff(cfg, k, rng);
        Tick expectBase =
            std::min<Tick>(cfg.base << (k - 1), cfg.cap);
        EXPECT_GE(v, expectBase) << "k=" << k;
        EXPECT_LT(v, expectBase + cfg.base) << "k=" << k;
    }
    // Far past the cap, including shift counts that would overflow a
    // 64-bit left shift.
    for (unsigned k : {20u, 41u, 64u, 1000u}) {
        Tick v = fault::retryBackoff(cfg, k, rng);
        EXPECT_GE(v, cfg.cap) << "k=" << k;
        EXPECT_LT(v, cfg.cap + cfg.base) << "k=" << k;
    }
    // k = 0 (first send being re-paced) behaves like k = 1.
    Rng r1(11), r2(11);
    EXPECT_EQ(fault::retryBackoff(cfg, 0, r1),
              fault::retryBackoff(cfg, 1, r2));
}

TEST(RetryPolicy, SpecRoundTrip)
{
    fault::RetryPolicyConfig cfg;
    std::string err;
    ASSERT_TRUE(fault::parseRetryPolicy("immediate", cfg, &err)) << err;
    EXPECT_EQ(cfg.kind, fault::RetryKind::Immediate);
    ASSERT_TRUE(fault::parseRetryPolicy("fixed:250", cfg, &err)) << err;
    EXPECT_EQ(cfg.kind, fault::RetryKind::Fixed);
    EXPECT_EQ(cfg.base, 250 * tickPerNs);
    ASSERT_TRUE(fault::parseRetryPolicy("exp:50:3200", cfg, &err)) << err;
    EXPECT_EQ(cfg.kind, fault::RetryKind::ExpBackoff);
    EXPECT_EQ(cfg.base, 50 * tickPerNs);
    EXPECT_EQ(cfg.cap, 3200 * tickPerNs);
    EXPECT_EQ(fault::retryPolicyToString(cfg), "exp:50:3200");
    fault::RetryPolicyConfig back;
    ASSERT_TRUE(fault::parseRetryPolicy(fault::retryPolicyToString(cfg),
                                        back, &err))
        << err;
    EXPECT_EQ(back.kind, cfg.kind);
    EXPECT_EQ(back.base, cfg.base);
    EXPECT_EQ(back.cap, cfg.cap);
    EXPECT_FALSE(fault::parseRetryPolicy("warp", cfg, &err));
}

// ------------------------------------------------ injector determinism

TEST(FaultInjector, SameSeedGivesIdenticalDecisionStreams)
{
    fault::FaultPlan p;
    p.seed = 1234;
    p.netDrop = 0.1;
    p.netDup = 0.1;
    p.netDelay = 0.2;
    p.netReorder = 0.2;
    p.memFlipSingle = 0.05;
    p.memFlipDouble = 0.02;
    p.forceNak = 0.1;

    fault::FaultInjector a(p, 4), b(p, 4);
    // Interleave every hook the way a live run would: the decisions are
    // a pure function of (plan, per-stream call order), so two
    // injectors stay in lock-step. This is what makes the schedule
    // identical across sweep worker counts.
    for (unsigned i = 0; i < 5000; ++i) {
        NodeId n = static_cast<NodeId>(i % 4);
        ASSERT_EQ(a.linkRetransmits(n), b.linkRetransmits(n)) << i;
        ASSERT_EQ(a.linkDuplicate(n), b.linkDuplicate(n)) << i;
        ASSERT_EQ(a.linkExtraDelay(n), b.linkExtraDelay(n)) << i;
        ASSERT_EQ(a.landingReorder(n), b.landingReorder(n)) << i;
        ASSERT_EQ(a.sdramRead(n), b.sdramRead(n)) << i;
        ASSERT_EQ(a.forceNak(n), b.forceNak(n)) << i;
    }
    EXPECT_EQ(a.injectedTotal(), b.injectedTotal());
    EXPECT_GT(a.injectedTotal(), 0u);
}

TEST(FaultInjector, PerNodeStreamsAreIndependent)
{
    fault::FaultPlan p;
    p.seed = 9;
    p.memFlipSingle = 0.5;
    fault::FaultInjector a(p, 2), b(p, 2);
    // Consuming node 0's stream must not perturb node 1's decisions.
    for (unsigned i = 0; i < 100; ++i)
        (void)a.sdramRead(0);
    for (unsigned i = 0; i < 100; ++i)
        ASSERT_EQ(a.sdramRead(1), b.sdramRead(1)) << i;
}

TEST(FaultInjector, EccAccountingMatchesPlanFractions)
{
    fault::FaultPlan p;
    p.seed = 31;
    p.memFlipSingle = 0.2;
    p.memFlipDouble = 0.1;
    fault::FaultInjector fi(p, 1);

    const unsigned reads = 20000;
    unsigned corrected = 0, detected = 0;
    for (unsigned i = 0; i < reads; ++i) {
        switch (fi.sdramRead(0)) {
          case fault::FaultInjector::Ecc::Corrected: ++corrected; break;
          case fault::FaultInjector::Ecc::Detected: ++detected; break;
          default: break;
        }
    }
    EXPECT_EQ(fi.eccCorrected(), corrected);
    EXPECT_EQ(fi.eccDetected(), detected);
    // One demand scrub per corrected flip.
    EXPECT_EQ(fi.eccScrubs(), corrected);
    EXPECT_NEAR(static_cast<double>(corrected) / reads, 0.2, 0.02);
    EXPECT_NEAR(static_cast<double>(detected) / reads, 0.1, 0.02);
}

// -------------------------------------- whole-machine fault recovery

/** A contended cross-node mix; every line visits several caches. */
void
runMix(ProtoMachine &p, unsigned rounds = 8)
{
    const Addr a = p.addrAt(0), b = p.addrAt(1), c = p.addrAt(2),
               d = p.addrAt(3);
    for (unsigned r = 0; r < rounds; ++r) {
        p.issue(static_cast<NodeId>(r % 4), MemCmd::Store, a, [] {});
        p.issue(static_cast<NodeId>((r + 1) % 4), MemCmd::Load, a, [] {});
        p.issue(static_cast<NodeId>((r + 2) % 4), MemCmd::Load, b, [] {});
        p.issue(static_cast<NodeId>((r + 3) % 4), MemCmd::Store, c, [] {});
        p.issue(static_cast<NodeId>(r % 4), MemCmd::Load, d, [] {});
        p.settle(2 * tickPerMs);
        p.checkLineInvariants(a);
        p.checkLineInvariants(c);
    }
}

TEST(FaultRecovery, DroppedMessagesAreRetransmittedToQuiescence)
{
    ProtoMachine::Options opt;
    opt.faults.seed = 2;
    opt.faults.netDrop = 0.5; // every other transmission corrupted
    ProtoMachine p(opt);
    runMix(p);
    EXPECT_GT(p.faults->netDrops(), 0u);
    EXPECT_EQ(p.faults->netLost(), 0u);
    EXPECT_EQ(p.checker->violationCount(), 0u);
    EXPECT_TRUE(p.quiescent());
}

TEST(FaultRecovery, DuplicatesAreFilteredExactlyOnce)
{
    ProtoMachine::Options opt;
    opt.faults.seed = 3;
    opt.faults.netDup = 1.0; // duplicate every delivery
    ProtoMachine p(opt);
    runMix(p);
    EXPECT_GT(p.faults->netDups(), 0u);
    // Every injected duplicate was discarded at the landing buffer, so
    // the protocol saw each message exactly once.
    EXPECT_EQ(p.faults->netDupsFiltered(),
              p.faults->netDups());
    EXPECT_EQ(p.checker->violationCount(), 0u);
    EXPECT_TRUE(p.quiescent());
}

TEST(FaultRecovery, JitterAndReorderPreserveCoherence)
{
    ProtoMachine::Options opt;
    opt.faults.seed = 4;
    opt.faults.netDelay = 0.8;
    opt.faults.netReorder = 1.0; // swap every eligible landing pair
    ProtoMachine p(opt);
    runMix(p);
    EXPECT_GT(p.faults->netDelays(), 0u);
    EXPECT_EQ(p.checker->violationCount(), 0u);
    EXPECT_TRUE(p.quiescent());
}

TEST(FaultRecovery, DoubleBitFlipsAreRefetchedAndCostLatency)
{
    ProtoMachine::Options fopt;
    fopt.faults.seed = 5;
    fopt.faults.memFlipDouble = 1.0; // every SDRAM read detects
    ProtoMachine faulty(fopt);
    ProtoMachine clean;

    const Addr line = faulty.addrAt(1);
    Tick faultyDone = 0, cleanDone = 0;
    faulty.issue(0, MemCmd::Load, line,
                 [&] { faultyDone = faulty.eq.curTick(); });
    faulty.settle();
    clean.issue(0, MemCmd::Load, line,
                [&] { cleanDone = clean.eq.curTick(); });
    clean.settle();

    EXPECT_GT(faulty.faults->eccDetected(), 0u);
    EXPECT_EQ(faulty.faults->eccRefetches(),
              faulty.faults->eccDetected());
    EXPECT_EQ(faulty.checker->violationCount(), 0u);
    // The refetch is not free: the faulty load completes later.
    ASSERT_GT(cleanDone, 0u);
    EXPECT_GT(faultyDone, cleanDone);
}

TEST(FaultRecovery, ForcedNaksRideTheRetryPathToCompletion)
{
    ProtoMachine::Options opt;
    opt.faults.seed = 6;
    opt.faults.forceNak = 0.5;
    opt.retry.kind = fault::RetryKind::ExpBackoff;
    ProtoMachine p(opt);
    runMix(p);
    EXPECT_GT(p.faults->naksForced(), 0u);
    EXPECT_EQ(p.checker->violationCount(), 0u);
    EXPECT_TRUE(p.quiescent());
}

TEST(FaultRecovery, StarvationDetectorFlagsHeavyRetries)
{
    ProtoMachine::Options opt;
    opt.faults.seed = 7;
    opt.faults.forceNak = 0.9; // expected ~10 attempts per transaction
    opt.retry.starvationRetries = 2;
    ProtoMachine p(opt);
    const Addr line = p.addrAt(1);
    for (unsigned r = 0; r < 6; ++r) {
        p.issue(0, MemCmd::Store, line, [] {});
        p.issue(2, MemCmd::Load, line, [] {});
        p.settle(5 * tickPerMs);
    }
    std::uint64_t flags = 0;
    for (auto &n : p.nodes)
        flags += n->mc->starvationFlags.value();
    EXPECT_GT(flags, 0u);
    // Starvation is reported to the checker for the wedge report but is
    // not a violation by itself.
    EXPECT_EQ(p.checker->starvations.value(), flags);
    EXPECT_EQ(p.checker->violationCount(), 0u);
}

TEST(FaultRecovery, WholeRunIsDeterministicUnderFaults)
{
    auto run = [](std::uint64_t seed) {
        ProtoMachine::Options opt;
        opt.faults.seed = seed;
        opt.faults.netDrop = 0.2;
        opt.faults.netDup = 0.2;
        opt.faults.netDelay = 0.3;
        opt.faults.memFlipSingle = 0.1;
        opt.faults.forceNak = 0.2;
        ProtoMachine p(opt);
        runMix(p, 4);
        return std::make_tuple(p.eq.curTick(),
                               p.faults->injectedTotal(),
                               p.faults->recoveredTotal());
    };
    // Same plan -> bit-identical schedule and counters; a different
    // seed -> a different injected-fault schedule.
    EXPECT_EQ(run(8), run(8));
    EXPECT_NE(std::get<1>(run(8)), std::get<1>(run(9)));
}

// ----------------------------- the deliberate unrecovered-loss bug

TEST(FaultBug, DropWithoutRetransmitIsCaughtByTheWatchdog)
{
    ProtoMachine::Options opt;
    opt.checkAbortOnViolation = false;
    opt.watchdogMaxAge = 100 * tickPerUs;
    opt.faults.seed = 10;
    opt.faults.netDrop = 1.0;
    opt.faults.injectDropWithoutRetransmit = true;
    ProtoMachine p(opt);

    // A remote store whose request traffic is silently eaten: the
    // machine cannot settle, so pump the queue directly and let the
    // watchdog catch the wedged transaction.
    p.issue(0, MemCmd::Store, p.addrAt(1), [] {});
    p.eq.run(p.eq.curTick() + 2 * tickPerMs);

    EXPECT_GT(p.faults->netLost(), 0u);
    ASSERT_GE(p.checker->violationCount(), 1u);
    EXPECT_NE(p.checker->violations()[0].find("watchdog"),
              std::string::npos)
        << p.checker->violations()[0];
    EXPECT_FALSE(p.quiescent());
}

} // namespace
} // namespace smtp
