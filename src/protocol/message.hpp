/**
 * @file
 * Coherence transaction vocabulary.
 *
 * Every unit of work the machine moves around — processor-interface
 * requests queued at the Local Miss Interface, network transactions, and
 * controller-to-cache commands — is a Message. The directory protocol is
 * the home-based bitvector invalidation protocol of the SGI Origin 2000
 * family with eager-exclusive replies (paper Section 3): requests go to
 * the home, dirty data is forwarded three-hop from the owner, and
 * invalidation acknowledgements are collected at the requester.
 */

#ifndef SMTP_PROTOCOL_MESSAGE_HPP
#define SMTP_PROTOCOL_MESSAGE_HPP

#include <cstdint>
#include <string_view>

#include "common/types.hpp"
#include "snap/snap.hpp"

namespace smtp::proto
{

/**
 * Message types. The Pi group originates from the local cache hierarchy
 * (through the Local Miss Interface), the Req/Fwd/Rpl groups travel on
 * the network, and the Cc group holds commands from the controller back
 * into the cache hierarchy.
 */
enum class MsgType : std::uint8_t
{
    // Processor interface (local L2 miss / writeback) -> handler. The
    // dispatch unit indexes separate handlers for locally- vs
    // remotely-homed addresses (FLASH-style dispatch tables), so the
    // handlers themselves carry no home-test branch.
    PiGet,          ///< Load miss, remote home.
    PiGetx,         ///< Store miss needing exclusive ownership, remote.
    PiUpgrade,      ///< Store hit on a Shared line, remote home.
    PiPut,          ///< Dirty writeback (carries data), remote home.
    PiPutClean,     ///< Clean-exclusive eviction notice, remote home.
    PiGetLocal,     ///< Load miss homed at this node.
    PiGetxLocal,
    PiUpgradeLocal,
    PiPutLocal,
    PiPutCleanLocal,

    // Requests on the network (requester -> home), vnet 0.
    ReqGet,
    ReqGetx,
    ReqUpgrade,
    ReqPut,         ///< Dirty writeback to home (carries data).
    ReqPutClean,

    // Forwarded interventions (home -> owner/sharer), vnet 1.
    FwdIntervSh,    ///< Downgrade owner, forward data to requester.
    FwdIntervEx,    ///< Invalidate owner, transfer ownership to requester.
    FwdInval,       ///< Invalidate a sharer; ack goes to the requester.

    // Replies, vnet 2.
    RplDataSh,      ///< Shared data reply (carries data).
    RplDataEx,      ///< Exclusive data reply (carries data + ack count).
    RplUpgradeAck,  ///< Upgrade granted (ack count, no data).
    RplInvalAck,    ///< Invalidation ack, sharer -> requester.
    RplNak,         ///< Home busy; requester must retry.
    RplSharingWb,   ///< Owner -> home after FwdIntervSh (carries data).
    RplOwnershipXfer, ///< Owner -> home after FwdIntervEx (no data).
    RplIntervMiss,  ///< Owner no longer had the line (writeback race).
    RplWbAck,       ///< Home -> writer: writeback accepted, no race.
    RplWbBusyAck,   ///< Writeback consumed by a racing transaction; a
                    ///< stale intervention is still chasing the writer.

    // Controller -> local cache hierarchy commands.
    CcFillSh,       ///< Complete an MSHR with Shared permission.
    CcFillEx,       ///< Complete an MSHR with Exclusive permission.
    CcUpgradeGrant, ///< Upgrade an existing Shared line to Exclusive.
    CcInval,        ///< Probe: invalidate the line (if present).
    CcIntervSh,     ///< Probe: downgrade to Shared, yield data.
    CcIntervEx,     ///< Probe: invalidate, yield data.

    NumTypes
};

constexpr unsigned numMsgTypes = static_cast<unsigned>(MsgType::NumTypes);

/** Virtual networks (paper Table 3: 4 vnets, protocol uses 3). */
enum VirtualNet : std::uint8_t
{
    vnetRequest = 0,
    vnetForward = 1,
    vnetReply = 2,
    vnetIo = 3,     ///< Reserved for I/O; unused by the coherence protocol.
    numVnets = 4,
};

/** Header flag bits (mirrored into the protocol-visible header word). */
enum HeaderFlags : std::uint8_t
{
    flagHomeLocal = 0x1,   ///< Transaction address is homed at this node.
    flagDataCarried = 0x2, ///< Message arrived with a cache line of data.
    flagPrefetch = 0x4,    ///< Non-blocking prefetch request.
    /**
     * Link-layer duplicate (fault injection): this copy carries a
     * repeated link sequence number and is filtered at the landing
     * buffer before the NI — protocol handlers never see the flag.
     */
    flagLinkDup = 0x8,
};

struct Message
{
    MsgType type = MsgType::PiGet;
    Addr addr = invalidAddr;      ///< Coherence-line-aligned address.
    NodeId src = invalidNode;     ///< Sender of this message.
    NodeId dest = invalidNode;    ///< Destination node.
    NodeId requester = invalidNode; ///< Original requester of the transaction.
    std::uint8_t mshr = 0;        ///< Requester-side MSHR id (echoed around).
    std::uint16_t ackCount = 0;   ///< Invalidation acks the requester expects.
    std::uint8_t flags = 0;       ///< HeaderFlags.
    std::uint32_t traceId = 0;    ///< Telemetry id stamped at injection;
                                  ///< 0 = untraced. Fits the tail padding,
                                  ///< so sizeof(Message) is unchanged.
    /**
     * Requester barrier-phase epoch at issue time (phase-priority
     * protocol). Stamped on request-class messages by the requester's
     * controller and preserved across NAK retries, so an old request
     * keeps its age. 0 under protocols that don't use it.
     */
    std::uint32_t phase = 0;

    bool
    carriesData() const
    {
        return flags & flagDataCarried;
    }
};

/** Does this message type inherently carry a full coherence line? */
constexpr bool
typeCarriesData(MsgType t)
{
    switch (t) {
      case MsgType::PiPut:
      case MsgType::PiPutLocal:
      case MsgType::ReqPut:
      case MsgType::RplDataSh:
      case MsgType::RplDataEx:
      case MsgType::RplSharingWb:
      case MsgType::CcFillSh:
      case MsgType::CcFillEx:
        return true;
      default:
        return false;
    }
}

/** Network message header size; data messages add one coherence line. */
constexpr unsigned msgHeaderBytes = 16;

constexpr unsigned
msgBytes(MsgType t)
{
    return msgHeaderBytes + (typeCarriesData(t) ? l2LineBytes : 0);
}

/** Virtual network assignment; deadlock freedom needs req < fwd < reply. */
constexpr VirtualNet
vnetOf(MsgType t)
{
    switch (t) {
      case MsgType::ReqGet:
      case MsgType::ReqGetx:
      case MsgType::ReqUpgrade:
      case MsgType::ReqPut:
      case MsgType::ReqPutClean:
        return vnetRequest;
      case MsgType::FwdIntervSh:
      case MsgType::FwdIntervEx:
      case MsgType::FwdInval:
        return vnetForward;
      default:
        return vnetReply;
    }
}

/** Does the dispatch unit start a speculative SDRAM read for this type? */
constexpr bool
expectsMemoryData(MsgType t)
{
    switch (t) {
      case MsgType::PiGetLocal:
      case MsgType::PiGetxLocal:
      case MsgType::ReqGet:
      case MsgType::ReqGetx:
        return true;
      default:
        return false;
    }
}

/** The locally-homed dispatch-table variant of a Pi request. */
constexpr MsgType
localPiVariant(MsgType t)
{
    switch (t) {
      case MsgType::PiGet: return MsgType::PiGetLocal;
      case MsgType::PiGetx: return MsgType::PiGetxLocal;
      case MsgType::PiUpgrade: return MsgType::PiUpgradeLocal;
      case MsgType::PiPut: return MsgType::PiPutLocal;
      case MsgType::PiPutClean: return MsgType::PiPutCleanLocal;
      default: return t;
    }
}

std::string_view msgTypeName(MsgType t);

/**
 * Snapshot encoding, field by field: struct padding never reaches the
 * file, so snapshots of equal states are byte-equal (snap_tool diff).
 */
inline void
snapPut(snap::Ser &s, const Message &m)
{
    s.u8(static_cast<std::uint8_t>(m.type));
    s.u64(m.addr);
    s.u16(m.src);
    s.u16(m.dest);
    s.u16(m.requester);
    s.u8(m.mshr);
    s.u16(m.ackCount);
    s.u8(m.flags);
    s.u32(m.traceId);
    s.u32(m.phase);
}

inline Message
snapGetMessage(snap::Des &d)
{
    Message m;
    std::uint8_t type = d.u8();
    if (type >= numMsgTypes) {
        d.fail("corrupt snapshot: message type out of range");
        return m;
    }
    m.type = static_cast<MsgType>(type);
    m.addr = d.u64();
    m.src = d.u16();
    m.dest = d.u16();
    m.requester = d.u16();
    m.mshr = d.u8();
    m.ackCount = d.u16();
    m.flags = d.u8();
    m.traceId = d.u32();
    m.phase = d.u32();
    return m;
}

/**
 * Pack the fields the protocol handler reads into the 64-bit header
 * word returned by the `switch` instruction:
 *   [7:0] type, [15:8] src, [23:16] requester, [31:24] mshr,
 *   [47:32] ackCount, [55:48] flags.
 */
constexpr std::uint64_t
packHeader(const Message &m)
{
    return static_cast<std::uint64_t>(m.type) |
           (static_cast<std::uint64_t>(m.src & 0xff) << 8) |
           (static_cast<std::uint64_t>(m.requester & 0xff) << 16) |
           (static_cast<std::uint64_t>(m.mshr) << 24) |
           (static_cast<std::uint64_t>(m.ackCount) << 32) |
           (static_cast<std::uint64_t>(m.flags) << 48);
}

constexpr std::uint8_t headerTypeShift = 0;
constexpr std::uint8_t headerSrcShift = 8;
constexpr std::uint8_t headerRequesterShift = 16;
constexpr std::uint8_t headerMshrShift = 24;
constexpr std::uint8_t headerAckShift = 32;
constexpr std::uint8_t headerFlagsShift = 48;

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_MESSAGE_HPP
