/**
 * @file
 * Construction of the coherence handler image.
 *
 * The protocol is the invalidation-based bitvector protocol derived from
 * the SGI Origin 2000, run under a slightly relaxed model with eager-
 * exclusive replies (paper Section 3):
 *
 *  - requests travel to the home node; the home answers from memory or
 *    forwards a three-hop intervention to the exclusive owner;
 *  - invalidation acknowledgements are collected at the requester;
 *  - a load miss on an Unowned line is granted Exclusive eagerly;
 *  - writeback races are resolved with busy directory states, the
 *    stale-intervention flag, and IntervMiss revision messages;
 *  - a busy home NAKs conflicting requests and the requester retries
 *    (an upgrade whose line was invalidated retries as GETX).
 *
 * The same image runs on the SMTp protocol thread and on the embedded
 * dual-issue protocol processor of the conventional machine models.
 */

#ifndef SMTP_PROTOCOL_HANDLERS_HPP
#define SMTP_PROTOCOL_HANDLERS_HPP

#include "protocol/directory.hpp"
#include "protocol/isa.hpp"

namespace smtp::proto
{

/**
 * Optional protocol extensions (the paper's Section 6: the protocol
 * thread "need not be restricted to implementing basic coherence
 * protocols").
 */
struct HandlerOptions
{
    /**
     * ReVive-style ownership logging: every exclusive-ownership grant
     * appends the line address to a per-node log in protocol memory —
     * the write-history a rollback-recovery scheme replays. Costs a few
     * extra protocol instructions on the grant paths only.
     */
    bool ownershipLog = false;

    /**
     * Fault injection for checker validation only: the GETX handler
     * drops the lowest-numbered sharer from the invalidation set (and
     * from the ack count, so the protocol still completes), leaving a
     * stale Shared copy the coherence checker must catch.
     */
    bool injectSkipFirstInval = false;

    /**
     * Migratory-sharing optimization (protocol variant, ROADMAP item 4):
     * the home tracks the last writer of each line in the directory
     * entry's free bits and, once a read-then-write migration pattern is
     * observed, grants Exclusive on the next GET from a different node
     * via an ownership-transfer intervention — eliminating the upgrade
     * round-trip the migrating reader would otherwise pay. Requires the
     * 64-bit directory entry format (the 32-bit format has no free
     * bits); see src/protocol/variants/.
     */
    bool migratory = false;

    /**
     * Deliberate protocol bug (checker validation, migratory only): the
     * migratory GET path grants Exclusive straight from memory without
     * intervening at the current owner, leaving two writable copies —
     * the full-mirror checker must flag the SWMR violation.
     */
    bool injectMigratoryNoRelease = false;
};

/**
 * Assemble the full handler image for a machine whose directory entries
 * use format @p fmt.
 */
HandlerImage buildHandlerImage(const DirFormat &fmt,
                               const HandlerOptions &opts = {});

/** Scratch-space offset where handlers record impossible-case headers. */
constexpr Addr protoErrorOffset = 0;

/** Scratch-space layout of the ownership log (when enabled). */
constexpr Addr ownLogCountOffset = 8;
constexpr Addr ownLogBaseOffset = 64;
constexpr unsigned ownLogEntries = 4096; ///< Ring buffer length.

/**
 * Migratory-variant scratch counters, one 8-byte word each per node
 * (between the error word/ownership-log count and the log ring):
 * migrations detected at the home, upgrade round-trips saved by a
 * migratory Exclusive-on-read grant, and false-migration reverts.
 */
constexpr Addr migDetectOffset = 16;
constexpr Addr migSavedOffset = 24;
constexpr Addr migRevertOffset = 32;

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_HANDLERS_HPP
