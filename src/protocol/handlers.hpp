/**
 * @file
 * Construction of the coherence handler image.
 *
 * The protocol is the invalidation-based bitvector protocol derived from
 * the SGI Origin 2000, run under a slightly relaxed model with eager-
 * exclusive replies (paper Section 3):
 *
 *  - requests travel to the home node; the home answers from memory or
 *    forwards a three-hop intervention to the exclusive owner;
 *  - invalidation acknowledgements are collected at the requester;
 *  - a load miss on an Unowned line is granted Exclusive eagerly;
 *  - writeback races are resolved with busy directory states, the
 *    stale-intervention flag, and IntervMiss revision messages;
 *  - a busy home NAKs conflicting requests and the requester retries
 *    (an upgrade whose line was invalidated retries as GETX).
 *
 * The same image runs on the SMTp protocol thread and on the embedded
 * dual-issue protocol processor of the conventional machine models.
 */

#ifndef SMTP_PROTOCOL_HANDLERS_HPP
#define SMTP_PROTOCOL_HANDLERS_HPP

#include "protocol/directory.hpp"
#include "protocol/isa.hpp"

namespace smtp::proto
{

/**
 * Optional protocol extensions (the paper's Section 6: the protocol
 * thread "need not be restricted to implementing basic coherence
 * protocols").
 */
struct HandlerOptions
{
    /**
     * ReVive-style ownership logging: every exclusive-ownership grant
     * appends the line address to a per-node log in protocol memory —
     * the write-history a rollback-recovery scheme replays. Costs a few
     * extra protocol instructions on the grant paths only.
     */
    bool ownershipLog = false;

    /**
     * Fault injection for checker validation only: the GETX handler
     * drops the lowest-numbered sharer from the invalidation set (and
     * from the ack count, so the protocol still completes), leaving a
     * stale Shared copy the coherence checker must catch.
     */
    bool injectSkipFirstInval = false;
};

/**
 * Assemble the full handler image for a machine whose directory entries
 * use format @p fmt.
 */
HandlerImage buildHandlerImage(const DirFormat &fmt,
                               const HandlerOptions &opts = {});

/** Scratch-space offset where handlers record impossible-case headers. */
constexpr Addr protoErrorOffset = 0;

/** Scratch-space layout of the ownership log (when enabled). */
constexpr Addr ownLogCountOffset = 8;
constexpr Addr ownLogBaseOffset = 64;
constexpr unsigned ownLogEntries = 4096; ///< Ring buffer length.

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_HANDLERS_HPP
