#include "handlers.hpp"

#include "protocol/assembler.hpp"
#include "protocol/message.hpp"

namespace smtp::proto
{

namespace
{

/** Handler-local register conventions beyond preg::t*. */
constexpr std::uint8_t rq = 13;   ///< Requester node id.
constexpr std::uint8_t rm = 14;   ///< Requester MSHR id.
constexpr std::uint8_t rde = 15;  ///< Directory entry address.
constexpr std::uint8_t ren = 16;  ///< Directory entry value.
constexpr std::uint8_t rst = 17;  ///< Directory state field.
constexpr std::uint8_t raux = 18; ///< Composed outgoing aux header.

constexpr std::int64_t
ord(MsgType t)
{
    return static_cast<std::int64_t>(t);
}

} // namespace

HandlerImage
buildHandlerImage(const DirFormat &fmt, const HandlerOptions &opts)
{
    using namespace preg;
    Assembler a;

    const std::int64_t state_mask = 0x7;
    const std::int64_t stale_bit = 1LL << fmt.staleShift;
    const std::int64_t vec_mask =
        static_cast<std::int64_t>((fmt.vectorBits >= 64)
                                      ? ~0ULL
                                      : (1ULL << fmt.vectorBits) - 1);
    const std::int64_t vec_mask_shifted = vec_mask << fmt.vectorShift;
    const std::int64_t req_mask = (1LL << fmt.reqBits) - 1;

    SMTP_ASSERT(!opts.migratory || fmt.entryBytes == 8,
                "migratory variant needs the 64-bit directory entry "
                "format (the 32-bit format has no free bits)");
    const std::int64_t mig_bit =
        static_cast<std::int64_t>(mig::migratoryBit);
    const std::int64_t lw_valid_bit =
        static_cast<std::int64_t>(mig::lwValidBit);
    // Busy/revision entries preserve the sharer vector — and, under
    // migratory, the prediction bits riding in the free bits too.
    const std::int64_t busy_keep_mask =
        vec_mask_shifted |
        (opts.migratory ? static_cast<std::int64_t>(mig::allBitsMask) : 0);

    // Shared home-side entry points (bound below).
    auto h_get = a.label();
    auto h_getx = a.label();
    auto h_upg = a.label();
    auto h_put = a.label();
    auto h_putclean = a.label();

    // Emit "rq/rm <- header requester/mshr fields".
    auto decode_req_mshr = [&] {
        a.srl(rq, hdr, headerRequesterShift);
        a.andi(rq, rq, 0xff);
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
    };

    // Emit "raux <- rq<<16 | rm<<24".
    auto compose_aux = [&] {
        a.sll(raux, rq, headerRequesterShift);
        a.sll(t0, rm, headerMshrShift);
        a.or_(raux, raux, t0);
    };

    // Emit "t9 <- pending entry address for mshr in rm".
    auto pend_addr_t9 = [&] {
        a.sll(t9, rm, 5);
        a.add(t9, pendBase, t9);
    };

    // Emit "load directory entry: rde <- addr's entry addr, ren <- value,
    //       rst <- state field".
    auto load_dir = [&] {
        a.dira(rde, addr);
        a.ld(ren, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.andi(rst, ren, state_mask);
    };

    // Record an impossible-case header in scratch space; the controller
    // checks this word after every handler and panics on protocol bugs.
    auto record_error = [&] {
        a.st(hdr, scratchBase, protoErrorOffset);
        a.epilogue();
    };

    // ReVive-style extension: append the line address to the per-node
    // ownership log ring whenever exclusive ownership is granted.
    // Demonstrates protocol-thread programmability (paper Section 6);
    // clobbers t0/t1 only.
    auto log_ownership = [&] {
        if (!opts.ownershipLog)
            return;
        a.ld(t0, scratchBase, ownLogCountOffset);
        a.andi(t1, t0, ownLogEntries - 1);
        a.sll(t1, t1, 3);
        a.add(t1, scratchBase, t1);
        a.st(addr, t1, ownLogBaseOffset);
        a.addi(t0, t0, 1);
        a.st(t0, scratchBase, ownLogCountOffset);
    };

    // ---- Migratory-variant emitters (no-ops unless opts.migratory) ----

    // Bump the 8-byte scratch counter at @p offset; clobbers @p tmp.
    auto mig_count = [&](Addr offset, std::uint8_t tmp) {
        a.ld(tmp, scratchBase, offset);
        a.addi(tmp, tmp, 1);
        a.st(tmp, scratchBase, offset);
    };

    // Stamp "lastWriter = rq, valid" into the new-Exclusive entry being
    // built in @p entry_reg; clobbers @p tmp.
    auto mig_stamp_writer = [&](std::uint8_t entry_reg, std::uint8_t tmp) {
        if (!opts.migratory)
            return;
        a.sll(tmp, rq, mig::lastWriterShift);
        a.or_(entry_reg, entry_reg, tmp);
        a.li(tmp, lw_valid_bit);
        a.or_(entry_reg, entry_reg, tmp);
    };

    // Migration detection, emitted where a write request hits a line
    // with history (GETX/Upgrade on Shared, GETX on Exclusive): if the
    // old entry's tracked writer is valid and is not the requester, the
    // line is migrating — set the migratory bit in @p entry_reg (an
    // already-set bit is kept without recounting). Clobbers ta/tb.
    auto mig_detect = [&](std::uint8_t entry_reg, std::uint8_t ta,
                          std::uint8_t tb) {
        if (!opts.migratory)
            return;
        auto no_mig = a.label();
        auto set_bit = a.label();
        a.li(tb, mig_bit);
        a.and_(ta, ren, tb);
        a.bne(ta, zero, set_bit); // Already predicted migratory.
        a.li(tb, lw_valid_bit);
        a.and_(ta, ren, tb);
        a.beq(ta, zero, no_mig); // No history yet.
        a.srl(ta, ren, mig::lastWriterShift);
        a.andi(ta, ta, (1LL << mig::lastWriterBits) - 1);
        a.beq(ta, rq, no_mig); // Same writer again: not migrating.
        mig_count(migDetectOffset, ta);
        a.bind(set_bit);
        a.li(tb, mig_bit);
        a.or_(entry_reg, entry_reg, tb);
        a.bind(no_mig);
    };

    // ================= Processor-interface request handlers =============
    //
    // The dispatch unit indexes separate handlers for locally- and
    // remotely-homed requests (FLASH-style dispatch tables), so the
    // common paths are branch-light and predict well (paper Table 8).

    // Remote variant: allocate the pending entry, ship to the home.
    auto pi_remote = [&](MsgType pi_type, MsgType req_type) {
        a.handler(pi_type);
        decode_req_mshr();   // LMI composes requester=self, mshr.
        pend_addr_t9();
        a.li(t1, 1 | (ord(req_type) << pend::typeShift));
        a.st(t1, t9, 0);
        a.st(addr, t9, 8);
        a.st(zero, t9, 16);
        compose_aux();
        a.sendHome(req_type, DataSrc::None, raux);
        a.epilogue();
    };
    // Local variant: allocate the pending entry (NAK retries and local
    // exclusive grants with remote sharers need it), then fall straight
    // into the home-side code.
    auto pi_local = [&](MsgType pi_type, MsgType req_type,
                        Assembler::Label home_label) {
        a.handler(pi_type);
        decode_req_mshr();
        pend_addr_t9();
        a.li(t1, 1 | (ord(req_type) << pend::typeShift));
        a.st(t1, t9, 0);
        a.st(addr, t9, 8);
        a.st(zero, t9, 16);
        a.j(home_label);
    };

    pi_remote(MsgType::PiGet, MsgType::ReqGet);
    pi_remote(MsgType::PiGetx, MsgType::ReqGetx);
    pi_remote(MsgType::PiUpgrade, MsgType::ReqUpgrade);
    pi_local(MsgType::PiGetLocal, MsgType::ReqGet, h_get);
    pi_local(MsgType::PiGetxLocal, MsgType::ReqGetx, h_getx);
    pi_local(MsgType::PiUpgradeLocal, MsgType::ReqUpgrade, h_upg);

    // Writebacks: fire-and-forget, no pending entry.
    a.handler(MsgType::PiPut);
    {
        a.sendHome(MsgType::ReqPut, DataSrc::Carried);
        a.epilogue();
    }
    a.handler(MsgType::PiPutClean);
    {
        a.sendHome(MsgType::ReqPutClean, DataSrc::None);
        a.epilogue();
    }
    a.handler(MsgType::PiPutLocal);
    {
        a.j(h_put);
    }
    a.handler(MsgType::PiPutCleanLocal);
    {
        a.j(h_putclean);
    }

    // ======================= Home-side GET =============================

    a.handler(MsgType::ReqGet);
    decode_req_mshr();
    a.bind(h_get);
    {
        auto nak = a.label();
        auto unowned = a.label();
        auto shared = a.label();
        auto excl = a.label();
        auto un_self = a.label();
        auto sh_self = a.label();
        auto mig_excl = a.label();

        load_dir();
        compose_aux();
        a.andi(t1, ren, stale_bit);
        a.bne(t1, zero, nak);
        a.beq(rst, zero, unowned);
        a.li(t1, dirShared);
        a.beq(rst, t1, shared);
        a.li(t1, dirExclusive);
        a.beq(rst, t1, excl);

        a.bind(nak); // Busy or stale: requester retries.
        a.send(MsgType::RplNak, DataSrc::None, SendTarget::Network, rq, raux);
        a.epilogue();

        a.bind(unowned); // Eager-exclusive grant.
        a.sllv(t0, one, rq);
        a.sll(t0, t0, fmt.vectorShift);
        a.ori(t0, t0, dirExclusive);
        mig_stamp_writer(t0, t1);
        a.st(t0, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        log_ownership();
        a.beq(rq, nodeId, un_self);
        a.send(MsgType::RplDataEx, DataSrc::Memory, SendTarget::Network,
               rq, raux);
        a.epilogue();
        a.bind(un_self);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.send(MsgType::CcFillEx, DataSrc::Memory, SendTarget::Local,
               zero, raux);
        a.epilogue();

        a.bind(shared); // Add sharer.
        a.sllv(t0, one, rq);
        a.sll(t0, t0, fmt.vectorShift);
        a.or_(t0, ren, t0);
        a.st(t0, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.beq(rq, nodeId, sh_self);
        a.send(MsgType::RplDataSh, DataSrc::Memory, SendTarget::Network,
               rq, raux);
        a.epilogue();
        a.bind(sh_self);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.send(MsgType::CcFillSh, DataSrc::Memory, SendTarget::Local,
               zero, raux);
        a.epilogue();

        a.bind(excl); // Intervene at the owner.
        a.srl(t0, ren, fmt.vectorShift);
        a.andi(t0, t0, vec_mask);
        a.ctz(t2, t0); // owner id
        a.beq(t2, rq, nak); // Request from the listed owner: stale; retry.
        if (opts.migratory) {
            // A read on a line predicted migratory: grant Exclusive
            // instead of Shared — the requester is about to write, and
            // this saves its upgrade round-trip.
            a.li(t5, mig_bit);
            a.and_(t5, ren, t5);
            a.bne(t5, zero, mig_excl);
        }
        a.li(t3, busy_keep_mask);
        a.and_(t3, ren, t3);
        a.ori(t3, t3, dirBusySh);
        a.sll(t4, rq, fmt.reqShift);
        a.or_(t3, t3, t4);
        a.sll(t4, rm, fmt.mshrShift);
        a.or_(t3, t3, t4);
        a.st(t3, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.send(MsgType::FwdIntervSh, DataSrc::None, SendTarget::Network,
               t2, raux);
        a.epilogue();

        if (opts.migratory) {
            a.bind(mig_excl);
            mig_count(migSavedOffset, t5);
            if (opts.injectMigratoryNoRelease) {
                // Deliberate protocol bug (checker validation): hand the
                // requester Exclusive straight from memory without
                // intervening at the current owner — two writable copies.
                // Guarded to remote requesters so memory data exists.
                auto no_bug = a.label();
                a.beq(rq, nodeId, no_bug);
                a.sllv(t3, one, rq);
                a.sll(t3, t3, fmt.vectorShift);
                a.ori(t3, t3, dirExclusive);
                a.st(t3, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
                a.send(MsgType::RplDataEx, DataSrc::Memory,
                       SendTarget::Network, rq, raux);
                a.epilogue();
                a.bind(no_bug);
            }
            // Exclusive-on-read: same busy transaction as the GETX
            // exclusive arm — the pendGetx bit routes the owner's
            // RplOwnershipXfer resolution, and the owner-side
            // FwdIntervEx invalidates its copy (SWMR preserved).
            a.li(t3, busy_keep_mask);
            a.and_(t3, ren, t3);
            a.ori(t3, t3, dirBusyEx);
            a.sll(t4, rq, fmt.reqShift);
            a.or_(t3, t3, t4);
            a.sll(t4, rm, fmt.mshrShift);
            a.or_(t3, t3, t4);
            a.li(t4, 1LL << fmt.pendGetxShift);
            a.or_(t3, t3, t4);
            a.st(t3, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
            a.send(MsgType::FwdIntervEx, DataSrc::None, SendTarget::Network,
                   t2, raux);
            a.epilogue();
        }
    }

    // ======================= Home-side GETX ============================

    a.handler(MsgType::ReqGetx);
    decode_req_mshr();
    a.bind(h_getx);
    {
        auto nak = a.label();
        auto unowned = a.label();
        auto shared = a.label();
        auto excl = a.label();
        auto un_self = a.label();
        auto inv_loop = a.label();
        auto reply = a.label();
        auto self_reply = a.label();
        auto self_done = a.label();

        load_dir();
        compose_aux();
        a.andi(t1, ren, stale_bit);
        a.bne(t1, zero, nak);
        a.beq(rst, zero, unowned);
        a.li(t1, dirShared);
        a.beq(rst, t1, shared);
        a.li(t1, dirExclusive);
        a.beq(rst, t1, excl);

        a.bind(nak);
        a.send(MsgType::RplNak, DataSrc::None, SendTarget::Network, rq, raux);
        a.epilogue();

        a.bind(unowned);
        a.sllv(t0, one, rq);
        a.sll(t0, t0, fmt.vectorShift);
        a.ori(t0, t0, dirExclusive);
        mig_stamp_writer(t0, t1);
        a.st(t0, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        log_ownership();
        a.beq(rq, nodeId, un_self);
        a.send(MsgType::RplDataEx, DataSrc::Memory, SendTarget::Network,
               rq, raux);
        a.epilogue();
        a.bind(un_self);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.send(MsgType::CcFillEx, DataSrc::Memory, SendTarget::Local,
               zero, raux);
        a.epilogue();

        a.bind(shared);
        a.sllv(t0, one, rq);              // requester bit (unshifted)
        a.srl(t1, ren, fmt.vectorShift);
        a.andi(t1, t1, vec_mask);         // current sharers
        a.xori(t2, t0, -1);
        a.and_(t1, t1, t2);               // others = sharers & ~rqbit
        if (opts.injectSkipFirstInval) {
            // Deliberate protocol bug (checker validation): drop the
            // lowest sharer from the invalidation set; it keeps a stale
            // Shared copy while the requester goes Exclusive.
            a.addi(t7, t1, -1);
            a.and_(t1, t1, t7);
        }
        a.popc(t4, t1);                   // invalidation count
        a.sll(t5, t0, fmt.vectorShift);
        a.ori(t5, t5, dirExclusive);
        mig_detect(t5, t2, t3);
        mig_stamp_writer(t5, t2);
        a.st(t5, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        log_ownership();
        a.bind(inv_loop);
        a.beq(t1, zero, reply);
        a.ctz(t6, t1);
        a.send(MsgType::FwdInval, DataSrc::None, SendTarget::Network,
               t6, raux);
        a.addi(t7, t1, -1);
        a.and_(t1, t1, t7);
        a.j(inv_loop);
        a.bind(reply);
        a.beq(rq, nodeId, self_reply);
        a.sll(t7, t4, headerAckShift);
        a.or_(t7, raux, t7);
        a.send(MsgType::RplDataEx, DataSrc::Memory, SendTarget::Network,
               rq, t7);
        a.epilogue();
        a.bind(self_reply);
        a.beq(t4, zero, self_done);
        // Park: pending <- valid | Getx | acksExpected | data | excl.
        a.li(t8, 1 | (ord(MsgType::ReqGetx) << pend::typeShift) |
                     (1LL << pend::dataShift) | (1LL << pend::exclShift));
        a.sll(t7, t4, pend::acksExpShift);
        a.or_(t8, t8, t7);
        pend_addr_t9();
        a.st(t8, t9, 0);
        a.epilogue();
        a.bind(self_done);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.send(MsgType::CcFillEx, DataSrc::Memory, SendTarget::Local,
               zero, raux);
        a.epilogue();

        a.bind(excl);
        a.srl(t0, ren, fmt.vectorShift);
        a.andi(t0, t0, vec_mask);
        a.ctz(t2, t0);
        a.beq(t2, rq, nak);
        a.li(t3, busy_keep_mask);
        a.and_(t3, ren, t3);
        a.ori(t3, t3, dirBusyEx);
        a.sll(t4, rq, fmt.reqShift);
        a.or_(t3, t3, t4);
        a.sll(t4, rm, fmt.mshrShift);
        a.or_(t3, t3, t4);
        a.li(t4, 1LL << fmt.pendGetxShift);
        a.or_(t3, t3, t4);
        mig_detect(t3, t5, t6);
        a.st(t3, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.send(MsgType::FwdIntervEx, DataSrc::None, SendTarget::Network,
               t2, raux);
        a.epilogue();
    }

    // ====================== Home-side UPGRADE ==========================

    a.handler(MsgType::ReqUpgrade);
    decode_req_mshr();
    a.bind(h_upg);
    {
        auto nak = a.label();
        auto shared = a.label();
        auto inv_loop = a.label();
        auto reply = a.label();
        auto self_reply = a.label();
        auto self_done = a.label();

        load_dir();
        compose_aux();
        a.andi(t1, ren, stale_bit);
        a.bne(t1, zero, nak);
        a.li(t1, dirShared);
        a.beq(rst, t1, shared);

        a.bind(nak); // Not Shared (or stale): requester retries as GETX.
        a.send(MsgType::RplNak, DataSrc::None, SendTarget::Network, rq, raux);
        a.epilogue();

        a.bind(shared);
        a.sllv(t0, one, rq);
        a.srl(t1, ren, fmt.vectorShift);
        a.andi(t1, t1, vec_mask);
        a.and_(t2, t1, t0);
        a.beq(t2, zero, nak); // Requester no longer a sharer: retry as GETX.
        a.xori(t2, t0, -1);
        a.and_(t1, t1, t2);   // others
        a.popc(t4, t1);
        a.sll(t5, t0, fmt.vectorShift);
        a.ori(t5, t5, dirExclusive);
        mig_detect(t5, t2, t3);
        mig_stamp_writer(t5, t2);
        a.st(t5, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.bind(inv_loop);
        a.beq(t1, zero, reply);
        a.ctz(t6, t1);
        a.send(MsgType::FwdInval, DataSrc::None, SendTarget::Network,
               t6, raux);
        a.addi(t7, t1, -1);
        a.and_(t1, t1, t7);
        a.j(inv_loop);
        a.bind(reply);
        a.beq(rq, nodeId, self_reply);
        a.sll(t7, t4, headerAckShift);
        a.or_(t7, raux, t7);
        a.send(MsgType::RplUpgradeAck, DataSrc::None, SendTarget::Network,
               rq, t7);
        a.epilogue();
        a.bind(self_reply);
        a.beq(t4, zero, self_done);
        a.li(t8, 1 | (ord(MsgType::ReqUpgrade) << pend::typeShift) |
                     (1LL << pend::dataShift) | (1LL << pend::exclShift));
        a.sll(t7, t4, pend::acksExpShift);
        a.or_(t8, t8, t7);
        pend_addr_t9();
        a.st(t8, t9, 0);
        a.epilogue();
        a.bind(self_done);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.send(MsgType::CcUpgradeGrant, DataSrc::None, SendTarget::Local,
               zero, raux);
        a.epilogue();
    }

    // ====================== Home-side writebacks =======================
    //
    // Emits the handler body for ReqPut (dirty=true) or ReqPutClean.
    // In busy states the racing Put supplies (or, for PutClean, memory
    // supplies) the data for the parked requester; the directory entry is
    // released with the stale-intervention flag when the forwarded
    // intervention is still in flight.
    auto emit_home_put = [&](bool dirty) {
        auto on_excl = a.label();
        auto done = a.label();
        auto err = a.label();
        auto busy_sh = a.label();
        auto busy_ex = a.label();
        auto wait_sh = a.label();
        auto wait_ex = a.label();

        // Writer node id.
        a.srl(rq, hdr, headerSrcShift);
        a.andi(rq, rq, 0xff);
        load_dir();
        a.li(t1, dirExclusive);
        a.beq(rst, t1, on_excl);
        a.li(t1, dirBusySh);
        a.beq(rst, t1, busy_sh);
        a.li(t1, dirBusyEx);
        a.beq(rst, t1, busy_ex);
        a.li(t1, dirBusyShWaitPut);
        a.beq(rst, t1, wait_sh);
        a.li(t1, dirBusyExWaitPut);
        a.beq(rst, t1, wait_ex);
        a.j(err);

        a.bind(on_excl); // Normal writeback.
        a.st(zero, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        if (dirty) {
            a.send(MsgType::ReqPut, DataSrc::Carried, SendTarget::MemWrite);
        }
        // Acknowledged even to the local writer (loopback) so the
        // writeback-race tracker is always released by the same path.
        a.send(MsgType::RplWbAck, DataSrc::None, SendTarget::Network,
               rq, zero);
        a.bind(done);
        a.epilogue();

        // Put raced with an intervention. Satisfy the parked requester
        // from the Put (dirty) or from memory (clean eviction).
        // @param to_shared grant Shared vs Exclusive.
        // @param stale the intervention is still in flight.
        auto resolve = [&](bool to_shared, bool stale) {
            auto self_fill = a.label();
            auto after_fill = a.label();

            // Parked requester/mshr from the entry.
            a.srl(t2, ren, fmt.reqShift);
            a.andi(t2, t2, req_mask);
            a.srl(t3, ren, fmt.mshrShift);
            a.andi(t3, t3, 0x1f);
            // New entry: granted state with only the requester.
            a.sllv(t4, one, t2);
            a.sll(t4, t4, fmt.vectorShift);
            std::int64_t state_bits =
                (to_shared ? dirShared : dirExclusive) |
                (stale ? stale_bit : 0);
            a.ori(t4, t4, state_bits);
            a.st(t4, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
            if (dirty) {
                a.send(MsgType::ReqPut, DataSrc::Carried,
                       SendTarget::MemWrite);
            }
            // aux for the grant.
            a.sll(t5, t2, headerRequesterShift);
            a.sll(t6, t3, headerMshrShift);
            a.or_(t5, t5, t6);
            DataSrc grant_src = dirty ? DataSrc::Carried : DataSrc::Memory;
            a.beq(t2, nodeId, self_fill);
            a.send(to_shared ? MsgType::RplDataSh : MsgType::RplDataEx,
                   grant_src, SendTarget::Network, t2, t5);
            a.j(after_fill);
            a.bind(self_fill);
            a.sll(t7, t3, 5);
            a.add(t7, pendBase, t7);
            a.st(zero, t7, 0);
            a.send(to_shared ? MsgType::CcFillSh : MsgType::CcFillEx,
                   grant_src, SendTarget::Local, zero, t5);
            a.bind(after_fill);
            // Busy ack: the writer must keep its race tracker until the
            // stale intervention reaches it (it must answer IntervMiss).
            a.send(MsgType::RplWbBusyAck, DataSrc::None,
                   SendTarget::Network, rq, zero);
            a.epilogue();
        };

        a.bind(busy_sh);
        resolve(true, true);
        a.bind(busy_ex);
        resolve(false, true);
        a.bind(wait_sh);
        resolve(true, false);
        a.bind(wait_ex);
        resolve(false, false);

        a.bind(err);
        record_error();
    };

    a.handler(MsgType::ReqPut);
    a.bind(h_put);
    emit_home_put(true);

    a.handler(MsgType::ReqPutClean);
    a.bind(h_putclean);
    emit_home_put(false);

    // ================== Home-side revision messages ====================

    a.handler(MsgType::RplSharingWb);
    {
        auto err = a.label();
        load_dir();
        a.li(t1, dirBusySh);
        a.bne(rst, t1, err);
        // New vector = old owner bit | requester bit.
        a.srl(t2, ren, fmt.reqShift);
        a.andi(t2, t2, req_mask);
        a.sllv(t3, one, t2);
        a.sll(t3, t3, fmt.vectorShift);
        a.li(t4, busy_keep_mask);
        a.and_(t4, ren, t4);
        a.or_(t4, t4, t3);
        a.ori(t4, t4, dirShared);
        a.st(t4, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.send(MsgType::ReqPut, DataSrc::Carried, SendTarget::MemWrite);
        a.epilogue();
        a.bind(err);
        record_error();
    }

    a.handler(MsgType::RplOwnershipXfer);
    {
        auto err = a.label();
        load_dir();
        a.li(t1, dirBusyEx);
        a.bne(rst, t1, err);
        a.srl(t2, ren, fmt.reqShift);
        a.andi(t2, t2, req_mask);
        a.sllv(t3, one, t2);
        a.sll(t3, t3, fmt.vectorShift);
        a.ori(t3, t3, dirExclusive);
        if (opts.migratory) {
            // Ownership arrived at the parked requester. If the old
            // owner's copy was still clean (ack bit 0 of the revision
            // header, set by the FwdIntervEx handler), the migration
            // prediction was false — the predicted writer never wrote —
            // so revert it; otherwise carry the migratory bit forward.
            auto no_revert = a.label();
            auto merged = a.label();
            a.li(t4, mig_bit);
            a.and_(t4, ren, t4); // old prediction bit
            a.srl(t5, hdr, headerAckShift);
            a.andi(t5, t5, 1);   // clean-transfer flag
            a.beq(t5, zero, no_revert);
            a.beq(t4, zero, merged);
            mig_count(migRevertOffset, t6);
            a.mov(t4, zero);
            a.bind(no_revert);
            a.bind(merged);
            a.or_(t3, t3, t4);
            // New tracked writer: the node just granted Exclusive.
            a.sll(t4, t2, mig::lastWriterShift);
            a.or_(t3, t3, t4);
            a.li(t4, lw_valid_bit);
            a.or_(t3, t3, t4);
        }
        a.st(t3, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.epilogue();
        a.bind(err);
        record_error();
    }

    a.handler(MsgType::RplIntervMiss);
    {
        auto stale = a.label();
        auto was_sh = a.label();
        auto err = a.label();
        load_dir();
        a.andi(t1, ren, stale_bit);
        a.bne(t1, zero, stale);
        a.li(t1, dirBusySh);
        a.beq(rst, t1, was_sh);
        a.li(t1, dirBusyEx);
        a.bne(rst, t1, err);
        // BusyEx -> BusyExWaitPut (state field 4 -> 6).
        a.xori(t2, ren, dirBusyEx ^ dirBusyExWaitPut);
        a.st(t2, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.epilogue();
        a.bind(was_sh); // BusySh -> BusyShWaitPut (3 -> 5).
        a.xori(t2, ren, dirBusySh ^ dirBusyShWaitPut);
        a.st(t2, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.epilogue();
        a.bind(stale); // The racing Put already resolved the transaction.
        a.li(t2, ~stale_bit);
        a.and_(t2, ren, t2);
        a.st(t2, rde, 0, static_cast<std::uint8_t>(fmt.entryBytes));
        a.epilogue();
        a.bind(err);
        record_error();
    }

    // =================== Owner/sharer-side probes ======================

    a.handler(MsgType::FwdIntervSh);
    {
        auto miss = a.label();
        decode_req_mshr();
        compose_aux();
        a.ldprobe(t1);
        a.andi(t2, t1, 1);
        a.beq(t2, zero, miss);
        a.send(MsgType::RplDataSh, DataSrc::Probe, SendTarget::Network,
               rq, raux);
        a.sendHome(MsgType::RplSharingWb, DataSrc::Probe);
        a.epilogue();
        a.bind(miss);
        a.sendHome(MsgType::RplIntervMiss, DataSrc::None);
        a.epilogue();
    }

    a.handler(MsgType::FwdIntervEx);
    {
        auto miss = a.label();
        decode_req_mshr();
        compose_aux();
        a.ldprobe(t1);
        a.andi(t2, t1, 1);
        a.beq(t2, zero, miss);
        a.send(MsgType::RplDataEx, DataSrc::Probe, SendTarget::Network,
               rq, raux);
        if (opts.migratory) {
            // Revision carries "copy was still clean" in ack bit 0 so
            // the home can revert a false migration prediction (probe
            // result bit 1 = dirty).
            a.srl(t3, t1, 1);
            a.andi(t3, t3, 1);
            a.xori(t3, t3, 1);
            a.sll(t3, t3, headerAckShift);
            a.sendHome(MsgType::RplOwnershipXfer, DataSrc::None, t3);
        } else {
            a.sendHome(MsgType::RplOwnershipXfer, DataSrc::None);
        }
        a.epilogue();
        a.bind(miss);
        a.sendHome(MsgType::RplIntervMiss, DataSrc::None);
        a.epilogue();
    }

    a.handler(MsgType::FwdInval);
    {
        // Probe applied by the dispatch hardware; always acknowledge.
        decode_req_mshr();
        compose_aux();
        a.send(MsgType::RplInvalAck, DataSrc::None, SendTarget::Network,
               rq, raux);
        a.epilogue();
    }

    // ==================== Requester-side replies =======================

    a.handler(MsgType::RplDataSh);
    {
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
        pend_addr_t9();
        a.st(zero, t9, 0);
        a.sll(t1, rm, headerMshrShift);
        a.send(MsgType::CcFillSh, DataSrc::Carried, SendTarget::Local,
               zero, t1);
        a.epilogue();
    }

    a.handler(MsgType::RplDataEx);
    {
        auto complete = a.label();
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
        pend_addr_t9();
        a.ld(t2, t9, 0);
        a.srl(t3, hdr, headerAckShift);
        a.andi(t3, t3, 0xffff);          // acks expected (from home)
        a.srl(t4, t2, pend::acksRcvShift);
        a.andi(t4, t4, 0xffff);          // acks already received
        a.beq(t4, t3, complete);
        // Park: record expectation, data-arrived, exclusive.
        a.sll(t5, t3, pend::acksExpShift);
        a.or_(t2, t2, t5);
        a.li(t6, (1LL << pend::dataShift) | (1LL << pend::exclShift));
        a.or_(t2, t2, t6);
        a.st(t2, t9, 0);
        a.epilogue();
        a.bind(complete);
        a.st(zero, t9, 0);
        a.sll(t5, rm, headerMshrShift);
        a.send(MsgType::CcFillEx, DataSrc::Carried, SendTarget::Local,
               zero, t5);
        a.epilogue();
    }

    a.handler(MsgType::RplUpgradeAck);
    {
        auto complete = a.label();
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
        pend_addr_t9();
        a.ld(t2, t9, 0);
        a.srl(t3, hdr, headerAckShift);
        a.andi(t3, t3, 0xffff);
        a.srl(t4, t2, pend::acksRcvShift);
        a.andi(t4, t4, 0xffff);
        a.beq(t4, t3, complete);
        a.sll(t5, t3, pend::acksExpShift);
        a.or_(t2, t2, t5);
        a.li(t6, 1LL << pend::dataShift);
        a.or_(t2, t2, t6);
        a.st(t2, t9, 0);
        a.epilogue();
        a.bind(complete);
        a.st(zero, t9, 0);
        a.sll(t5, rm, headerMshrShift);
        a.send(MsgType::CcUpgradeGrant, DataSrc::None, SendTarget::Local,
               zero, t5);
        a.epilogue();
    }

    a.handler(MsgType::RplInvalAck);
    {
        auto park = a.label();
        auto upgrade = a.label();
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
        pend_addr_t9();
        a.ld(t2, t9, 0);
        a.srl(t4, t2, pend::acksRcvShift);
        a.addi(t4, t4, 1);
        // Mask after the increment, not before: masking first would let
        // the +1 escape the 16-bit field, failing the acksExp compare
        // and, on the park path, corrupting the data-arrived bit when
        // shifted back into place.
        a.andi(t4, t4, 0xffff);
        a.srl(t3, t2, pend::acksExpShift);
        a.andi(t3, t3, 0xffff);
        a.srl(t5, t2, pend::dataShift);
        a.andi(t5, t5, 1);
        a.beq(t5, zero, park);     // Data not here yet.
        a.bne(t4, t3, park);       // Still waiting for more acks.
        // Complete; grant depends on the original request type.
        a.srl(t6, t2, pend::typeShift);
        a.andi(t6, t6, 0xff);
        a.li(t7, ord(MsgType::ReqUpgrade));
        a.st(zero, t9, 0);
        a.sll(t8, rm, headerMshrShift);
        a.beq(t6, t7, upgrade);
        a.send(MsgType::CcFillEx, DataSrc::Buffer, SendTarget::Local,
               zero, t8);
        a.epilogue();
        a.bind(upgrade);
        a.send(MsgType::CcUpgradeGrant, DataSrc::None, SendTarget::Local,
               zero, t8);
        a.epilogue();
        a.bind(park); // Record the new ack count.
        a.li(t6, ~(0xffffLL << pend::acksRcvShift));
        a.and_(t2, t2, t6);
        a.sll(t6, t4, pend::acksRcvShift);
        a.or_(t2, t2, t6);
        a.st(t2, t9, 0);
        a.epilogue();
    }

    a.handler(MsgType::RplNak);
    {
        auto send_get = a.label();
        auto send_getx = a.label();
        a.srl(rm, hdr, headerMshrShift);
        a.andi(rm, rm, 0xff);
        pend_addr_t9();
        a.ld(t2, t9, 0);
        a.ld(t3, t9, 16);
        a.addi(t3, t3, 1);
        a.st(t3, t9, 16);          // retry count
        a.srl(t4, t2, pend::typeShift);
        a.andi(t4, t4, 0xff);
        // aux = self<<16 | mshr<<24.
        a.sll(t7, nodeId, headerRequesterShift);
        a.sll(t8, rm, headerMshrShift);
        a.or_(t7, t7, t8);
        a.li(t5, ord(MsgType::ReqGet));
        a.beq(t4, t5, send_get);
        a.li(t5, ord(MsgType::ReqUpgrade));
        a.bne(t4, t5, send_getx);
        // A NAKed upgrade retries as GETX (the line may be gone).
        a.li(t6, ~(0xffLL << pend::typeShift));
        a.and_(t2, t2, t6);
        a.ori(t2, t2, ord(MsgType::ReqGetx) << pend::typeShift);
        a.st(t2, t9, 0);
        a.bind(send_getx);
        a.sendHome(MsgType::ReqGetx, DataSrc::None, t7, true);
        a.epilogue();
        a.bind(send_get);
        a.sendHome(MsgType::ReqGet, DataSrc::None, t7, true);
        a.epilogue();
    }

    a.handler(MsgType::RplWbAck);
    {
        // Writeback-buffer release is a dispatch-hardware action; the
        // handler merely pays the dispatch occupancy.
        a.epilogue();
    }

    a.handler(MsgType::RplWbBusyAck);
    {
        // The race tracker stays armed; the stale intervention's probe
        // releases it. Handler pays occupancy only.
        a.epilogue();
    }

    return a.finish();
}

} // namespace smtp::proto
