/**
 * @file
 * Functional executor for protocol handler programs.
 *
 * A handler's architectural effects (directory reads/writes, pending-
 * table bookkeeping, outgoing messages) are computed here, at dispatch
 * time, against the node's protocol state. The executor returns a
 * HandlerTrace — the exact dynamic instruction sequence — which the two
 * timing models replay: the SMTp protocol thread injects it into the
 * out-of-order pipeline as micro-ops, and the embedded dual-issue
 * protocol processor charges its own pipeline/cache timing over it.
 * Message sends recorded in the trace are *released* by the timing model
 * when the corresponding SendG instruction executes non-speculatively.
 *
 * Handlers at one node are serialized (a single protocol thread/PP per
 * node), so executing them functionally in dispatch order is exactly the
 * architectural order.
 */

#ifndef SMTP_PROTOCOL_EXECUTOR_HPP
#define SMTP_PROTOCOL_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "protocol/directory.hpp"
#include "protocol/isa.hpp"
#include "protocol/message.hpp"
#include "snap/snap.hpp"

namespace smtp::proto
{

/**
 * Services the executor needs from the surrounding node. Implemented by
 * the memory controller (production) and by mock harnesses (tests).
 */
class ExecEnv
{
  public:
    virtual ~ExecEnv() = default;

    /** Protocol data space access (directory, pending table, scratch). */
    virtual std::uint64_t protoLoad(Addr a, unsigned bytes) = 0;
    virtual void protoStore(Addr a, std::uint64_t v, unsigned bytes) = 0;

    /** The Dira instruction: directory entry address for a line. */
    virtual Addr dirAddrOf(Addr line_addr) = 0;

    /** Home node of a line (used to route by-address sends). */
    virtual NodeId homeOf(Addr line_addr) = 0;

    /**
     * Result of the architectural L2 probe launched by the dispatch unit
     * for forwarded interventions. Bit 0: line was present with
     * ownership (hit); bit 1: it was dirty.
     */
    virtual std::uint64_t probeResult() = 0;
};

/** One recorded outgoing message. */
struct SendRec
{
    Message msg;
    DataSrc dataSrc;
    SendTarget target;
    bool delayed;       ///< NAK-retry backoff requested by the handler.
};

/** One dynamically executed protocol instruction. */
struct ExecInst
{
    std::uint32_t pc;           ///< Instruction index in the image.
    PInst inst;
    Addr memAddr = invalidAddr; ///< Effective address for Ld/St.
    bool branchTaken = false;
    std::int32_t sendIdx = -1;  ///< Into HandlerTrace::sends for SendG.
};

struct HandlerTrace
{
    std::vector<ExecInst> insts;
    std::vector<SendRec> sends;
    bool usedProbe = false;
};

// ---- Snapshot codecs (in-flight handler traces survive checkpoints) ----

inline void
snapPut(snap::Ser &s, const PInst &i)
{
    s.u8(static_cast<std::uint8_t>(i.op));
    s.u8(i.rd);
    s.u8(i.rs1);
    s.u8(i.rs2);
    s.i64(i.imm);
    s.u8(i.memBytes);
    s.u8(static_cast<std::uint8_t>(i.sendType));
    s.u8(static_cast<std::uint8_t>(i.dataSrc));
    s.u8(static_cast<std::uint8_t>(i.target));
    s.b(i.toHome);
    s.b(i.delayed);
}

inline PInst
snapGetPInst(snap::Des &d)
{
    PInst i;
    std::uint8_t op = d.u8();
    if (op > static_cast<std::uint8_t>(POp::Ldprobe)) {
        d.fail("corrupt snapshot: protocol opcode out of range");
        return i;
    }
    i.op = static_cast<POp>(op);
    i.rd = d.u8();
    i.rs1 = d.u8();
    i.rs2 = d.u8();
    i.imm = d.i64();
    i.memBytes = d.u8();
    std::uint8_t st = d.u8();
    std::uint8_t ds = d.u8();
    std::uint8_t tg = d.u8();
    if (st >= numMsgTypes ||
        ds > static_cast<std::uint8_t>(DataSrc::Buffer) ||
        tg > static_cast<std::uint8_t>(SendTarget::MemWrite)) {
        d.fail("corrupt snapshot: send descriptor out of range");
        return i;
    }
    i.sendType = static_cast<MsgType>(st);
    i.dataSrc = static_cast<DataSrc>(ds);
    i.target = static_cast<SendTarget>(tg);
    i.toHome = d.bl();
    i.delayed = d.bl();
    return i;
}

inline void
snapPut(snap::Ser &s, const HandlerTrace &t)
{
    s.seq(t.insts, [](snap::Ser &o, const ExecInst &e) {
        o.u32(e.pc);
        snapPut(o, e.inst);
        o.u64(e.memAddr);
        o.b(e.branchTaken);
        o.i32(e.sendIdx);
    });
    s.seq(t.sends, [](snap::Ser &o, const SendRec &r) {
        snapPut(o, r.msg);
        o.u8(static_cast<std::uint8_t>(r.dataSrc));
        o.u8(static_cast<std::uint8_t>(r.target));
        o.b(r.delayed);
    });
    s.b(t.usedProbe);
}

inline HandlerTrace
snapGetTrace(snap::Des &d)
{
    HandlerTrace t;
    std::uint64_t ni = d.count(20);
    t.insts.reserve(ni);
    for (std::uint64_t k = 0; d.ok() && k < ni; ++k) {
        ExecInst e;
        e.pc = d.u32();
        e.inst = snapGetPInst(d);
        e.memAddr = d.u64();
        e.branchTaken = d.bl();
        e.sendIdx = d.i32();
        t.insts.push_back(e);
    }
    std::uint64_t ns = d.count(8);
    t.sends.reserve(ns);
    for (std::uint64_t k = 0; d.ok() && k < ns; ++k) {
        SendRec r;
        r.msg = snapGetMessage(d);
        std::uint8_t ds = d.u8();
        std::uint8_t tg = d.u8();
        if (ds > static_cast<std::uint8_t>(DataSrc::Buffer) ||
            tg > static_cast<std::uint8_t>(SendTarget::MemWrite)) {
            d.fail("corrupt snapshot: send record out of range");
            return t;
        }
        r.dataSrc = static_cast<DataSrc>(ds);
        r.target = static_cast<SendTarget>(tg);
        r.delayed = d.bl();
        t.sends.push_back(r);
    }
    t.usedProbe = d.bl();
    return t;
}

class Executor
{
  public:
    Executor(const HandlerImage &image, ExecEnv &env)
        : image_(&image), env_(&env)
    {
    }

    /** Protocol boot sequence: initialise the persistent registers. */
    void boot(NodeId self);

    /**
     * Run the handler for message @p m to completion (through its
     * `switch; ldctxt` epilogue) and return the dynamic trace.
     */
    HandlerTrace run(const Message &m);

    /** Register file inspection, for tests. */
    std::uint64_t reg(unsigned idx) const { return regs_[idx]; }

    /** The persistent register file is the executor's only mutable state. */
    void
    saveState(snap::Ser &out) const
    {
        for (std::uint64_t r : regs_)
            out.u64(r);
    }

    void
    restoreState(snap::Des &in)
    {
        for (std::uint64_t &r : regs_)
            r = in.u64();
    }

    const HandlerImage &image() const { return *image_; }

  private:
    static constexpr unsigned maxSteps = 4096;

    const HandlerImage *image_;
    ExecEnv *env_;
    std::uint64_t regs_[numPRegs] = {};
    NodeId self_ = invalidNode;
};

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_EXECUTOR_HPP
