/**
 * @file
 * Functional executor for protocol handler programs.
 *
 * A handler's architectural effects (directory reads/writes, pending-
 * table bookkeeping, outgoing messages) are computed here, at dispatch
 * time, against the node's protocol state. The executor returns a
 * HandlerTrace — the exact dynamic instruction sequence — which the two
 * timing models replay: the SMTp protocol thread injects it into the
 * out-of-order pipeline as micro-ops, and the embedded dual-issue
 * protocol processor charges its own pipeline/cache timing over it.
 * Message sends recorded in the trace are *released* by the timing model
 * when the corresponding SendG instruction executes non-speculatively.
 *
 * Handlers at one node are serialized (a single protocol thread/PP per
 * node), so executing them functionally in dispatch order is exactly the
 * architectural order.
 */

#ifndef SMTP_PROTOCOL_EXECUTOR_HPP
#define SMTP_PROTOCOL_EXECUTOR_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "protocol/directory.hpp"
#include "protocol/isa.hpp"
#include "protocol/message.hpp"

namespace smtp::proto
{

/**
 * Services the executor needs from the surrounding node. Implemented by
 * the memory controller (production) and by mock harnesses (tests).
 */
class ExecEnv
{
  public:
    virtual ~ExecEnv() = default;

    /** Protocol data space access (directory, pending table, scratch). */
    virtual std::uint64_t protoLoad(Addr a, unsigned bytes) = 0;
    virtual void protoStore(Addr a, std::uint64_t v, unsigned bytes) = 0;

    /** The Dira instruction: directory entry address for a line. */
    virtual Addr dirAddrOf(Addr line_addr) = 0;

    /** Home node of a line (used to route by-address sends). */
    virtual NodeId homeOf(Addr line_addr) = 0;

    /**
     * Result of the architectural L2 probe launched by the dispatch unit
     * for forwarded interventions. Bit 0: line was present with
     * ownership (hit); bit 1: it was dirty.
     */
    virtual std::uint64_t probeResult() = 0;
};

/** One recorded outgoing message. */
struct SendRec
{
    Message msg;
    DataSrc dataSrc;
    SendTarget target;
    bool delayed;       ///< NAK-retry backoff requested by the handler.
};

/** One dynamically executed protocol instruction. */
struct ExecInst
{
    std::uint32_t pc;           ///< Instruction index in the image.
    PInst inst;
    Addr memAddr = invalidAddr; ///< Effective address for Ld/St.
    bool branchTaken = false;
    std::int32_t sendIdx = -1;  ///< Into HandlerTrace::sends for SendG.
};

struct HandlerTrace
{
    std::vector<ExecInst> insts;
    std::vector<SendRec> sends;
    bool usedProbe = false;
};

class Executor
{
  public:
    Executor(const HandlerImage &image, ExecEnv &env)
        : image_(&image), env_(&env)
    {
    }

    /** Protocol boot sequence: initialise the persistent registers. */
    void boot(NodeId self);

    /**
     * Run the handler for message @p m to completion (through its
     * `switch; ldctxt` epilogue) and return the dynamic trace.
     */
    HandlerTrace run(const Message &m);

    /** Register file inspection, for tests. */
    std::uint64_t reg(unsigned idx) const { return regs_[idx]; }

    const HandlerImage &image() const { return *image_; }

  private:
    static constexpr unsigned maxSteps = 4096;

    const HandlerImage *image_;
    ExecEnv *env_;
    std::uint64_t regs_[numPRegs] = {};
    NodeId self_ = invalidNode;
};

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_EXECUTOR_HPP
