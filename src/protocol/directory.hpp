/**
 * @file
 * Directory entry encoding.
 *
 * One entry per 128-byte coherence line, held in the home node's memory:
 * 32 bits wide up to 16 nodes and 64 bits at 32 nodes (paper Section 3).
 * The entry packs the stable state, the sharer bitvector (which doubles
 * as the owner id when Exclusive), and — while a transaction is in
 * flight — the pending requester and its MSHR id so the home can answer
 * when the owner's revision message arrives.
 *
 * Protocol handlers manipulate entries with plain ALU instructions; this
 * header is the single source of truth for the field layout, consumed
 * both by the handler assembler (as immediates) and by tests.
 */

#ifndef SMTP_PROTOCOL_DIRECTORY_HPP
#define SMTP_PROTOCOL_DIRECTORY_HPP

#include <cstdint>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/types.hpp"

namespace smtp::proto
{

/** Directory states (3-bit field). */
enum DirState : std::uint8_t
{
    dirUnowned = 0,
    dirShared = 1,
    dirExclusive = 2,
    /** Intervention-shared outstanding; waiting for SharingWb. */
    dirBusySh = 3,
    /** Intervention-exclusive outstanding; waiting for OwnershipXfer. */
    dirBusyEx = 4,
    /** Owner evicted (IntervMiss seen); waiting for the racing Put. */
    dirBusyShWaitPut = 5,
    dirBusyExWaitPut = 6,
};

/**
 * Field layout for one directory entry format. Everything the handler
 * programs need is expressed through these shifts/masks so the same
 * handler source assembles for both the 16-node (32-bit) and 32-node
 * (64-bit) formats.
 */
struct DirFormat
{
    unsigned entryBytes;     ///< 4 (<=16 nodes) or 8 (32 nodes).
    unsigned vectorBits;     ///< Sharer bitvector width (16 or 32).
    unsigned stateShift;     ///< Always 0, 3 bits.
    unsigned staleShift;     ///< 1 bit: intervention still in flight.
    unsigned vectorShift;
    unsigned reqShift;       ///< Pending requester node id.
    unsigned reqBits;
    unsigned mshrShift;      ///< Pending requester MSHR id (5 bits).
    unsigned pendGetxShift;  ///< 1 bit: pending transaction wants Exclusive.

    static constexpr DirFormat
    forNodes(unsigned nodes)
    {
        if (nodes <= 16) {
            // 32-bit entry: [2:0] state [3] stale [19:4] vector
            //               [23:20] req [28:24] mshr [29] pendGetx
            return DirFormat{4, 16, 0, 3, 4, 20, 4, 24, 29};
        }
        // 64-bit entry: [2:0] state [3] stale [35:4] vector
        //               [43:36] req [48:44] mshr [49] pendGetx
        return DirFormat{8, 32, 0, 3, 4, 36, 8, 44, 49};
    }

    std::uint64_t
    stateMask() const
    {
        return 0x7ULL << stateShift;
    }

    std::uint64_t
    vectorMask() const
    {
        return ((vectorBits >= 64 ? ~0ULL : (1ULL << vectorBits) - 1))
               << vectorShift;
    }

    DirState
    state(std::uint64_t e) const
    {
        return static_cast<DirState>(bits(e, stateShift + 2, stateShift));
    }

    std::uint64_t
    setState(std::uint64_t e, DirState s) const
    {
        return insertBits(e, stateShift + 2, stateShift, s);
    }

    std::uint64_t
    vector(std::uint64_t e) const
    {
        return bits(e, vectorShift + vectorBits - 1, vectorShift);
    }

    std::uint64_t
    setVector(std::uint64_t e, std::uint64_t v) const
    {
        return insertBits(e, vectorShift + vectorBits - 1, vectorShift, v);
    }

    /** Owner id when state is Exclusive (vector holds 1 << owner). */
    NodeId
    owner(std::uint64_t e) const
    {
        std::uint64_t v = vector(e);
        SMTP_ASSERT(v != 0,
            "DirFormat::owner on entry %llx with empty vector",
            static_cast<unsigned long long>(e));
        return static_cast<NodeId>(countTrailingZeros(v));
    }

    bool stale(std::uint64_t e) const { return bits(e, staleShift,
                                                    staleShift); }

    std::uint64_t
    setStale(std::uint64_t e, bool v) const
    {
        return insertBits(e, staleShift, staleShift, v);
    }

    NodeId
    pendingReq(std::uint64_t e) const
    {
        return static_cast<NodeId>(bits(e, reqShift + reqBits - 1, reqShift));
    }

    std::uint64_t
    setPendingReq(std::uint64_t e, NodeId n) const
    {
        return insertBits(e, reqShift + reqBits - 1, reqShift, n);
    }

    std::uint8_t
    pendingMshr(std::uint64_t e) const
    {
        return static_cast<std::uint8_t>(bits(e, mshrShift + 4, mshrShift));
    }

    std::uint64_t
    setPendingMshr(std::uint64_t e, std::uint8_t m) const
    {
        return insertBits(e, mshrShift + 4, mshrShift, m);
    }

    bool
    pendingGetx(std::uint64_t e) const
    {
        return bits(e, pendGetxShift, pendGetxShift);
    }

    std::uint64_t
    setPendingGetx(std::uint64_t e, bool v) const
    {
        return insertBits(e, pendGetxShift, pendGetxShift, v);
    }
};

/**
 * Migratory-sharing variant: per-line migration-prediction state kept
 * in the free high bits of the 64-bit directory entry format (bits
 * 63:50 — the 32-bit format has no free bits, so the variant forces
 * the wide format at any node count). `lastWriter` tracks the node
 * most recently granted Exclusive (the potential writer, under this
 * protocol's eager-exclusive replies), `lwValid` qualifies it, and
 * `migratory` marks a line on which the home has observed the
 * read-then-write migration pattern: a node other than the tracked
 * writer asked for write permission. While migratory, a GET from a
 * third node is answered with an ownership-transfer intervention
 * (Exclusive-on-read), saving that node's upgrade round-trip; a clean
 * ownership transfer (the predicted writer never dirtied the line)
 * reverts the prediction.
 */
namespace mig
{
constexpr unsigned lastWriterShift = 50;
constexpr unsigned lastWriterBits = 6;
constexpr std::uint64_t lastWriterMask = 0x3fULL << lastWriterShift;
constexpr std::uint64_t lwValidBit = 1ULL << 56;
constexpr std::uint64_t migratoryBit = 1ULL << 57;
constexpr std::uint64_t allBitsMask =
    lastWriterMask | lwValidBit | migratoryBit;

inline NodeId
lastWriter(std::uint64_t e)
{
    return static_cast<NodeId>((e >> lastWriterShift) &
                               ((1ULL << lastWriterBits) - 1));
}

inline bool lwValid(std::uint64_t e) { return (e & lwValidBit) != 0; }
inline bool migratory(std::uint64_t e) { return (e & migratoryBit) != 0; }
} // namespace mig

/**
 * Requester-side pending-transaction table entry layout. One 32-byte
 * entry per MSHR, living in the node's protocol data region and updated
 * by the reply handlers (this is the data structure whose cache
 * behaviour the paper's Section 4 discusses as "L1 data cache
 * pollution").
 *
 * word 0: [0] valid  [7:1] spare  [15:8] original request type
 *         [31:16] acks expected  [47:32] acks received
 *         [48] data arrived      [49] exclusive grant
 * word 1: line address
 * word 2: retry count
 */
namespace pend
{
constexpr unsigned entryBytes = 32;
constexpr unsigned validShift = 0;
constexpr unsigned typeShift = 8;
constexpr unsigned acksExpShift = 16;
constexpr unsigned acksRcvShift = 32;
constexpr unsigned dataShift = 48;
constexpr unsigned exclShift = 49;
} // namespace pend

/** Node-local protocol address regions (unmapped physical space). */
constexpr Addr protoRegionBase = 0xF000'0000'0000ULL;
constexpr Addr protoDirBase = 0xF100'0000'0000ULL;
constexpr Addr protoPendBase = 0xF200'0000'0000ULL;
constexpr Addr protoScratchBase = 0xF300'0000'0000ULL;
constexpr Addr protoCodeBase = 0xF400'0000'0000ULL;
constexpr Addr protoNodeStride = 1ULL << 32;

constexpr bool
isProtocolAddr(Addr a)
{
    return a >= protoRegionBase;
}

constexpr Addr
pendEntryAddr(NodeId node, std::uint8_t mshr)
{
    return protoPendBase + static_cast<Addr>(node) * protoNodeStride +
           static_cast<Addr>(mshr) * pend::entryBytes;
}

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_DIRECTORY_HPP
