/**
 * @file
 * The protocol instruction set.
 *
 * A small RISC ISA in which the coherence handlers are written. It is
 * deliberately MIPS-flavoured (the simulated processor ISA, paper
 * Section 3) plus the "special ALU instructions that carry out bit
 * manipulations common in protocol code" (popcount, count-trailing-
 * zeros) and the uncached operations of Section 2.1: `switch`, `ldctxt`,
 * `send` (modelled as its two uncached stores, SendH + SendG), and
 * `ldprobe`, which waits on the outcome of a cache probe launched by the
 * handler dispatch unit.
 *
 * The same handler image is executed by (a) the SMTp protocol thread on
 * the main out-of-order pipeline and (b) the embedded dual-issue
 * protocol processor of the non-SMTp machine models.
 */

#ifndef SMTP_PROTOCOL_ISA_HPP
#define SMTP_PROTOCOL_ISA_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "protocol/directory.hpp"
#include "protocol/message.hpp"

namespace smtp::proto
{

enum class POp : std::uint8_t
{
    Nop,
    // ALU register-register / register-immediate.
    Add, Addi, Sub, And, Andi, Or, Ori, Xor, Xori,
    Sll, Srl,      ///< Shift by immediate.
    Sllv, Srlv,    ///< Shift by register.
    Sltu, Sltiu,   ///< Set-if-less-than (unsigned).
    Popc, Ctz,     ///< The protocol bit-manipulation assists.
    Lui,           ///< Load upper immediate (imm << 32 here; 64-bit regs).
    // Memory (protocol data space: directory, pending table, scratch).
    Ld, St,
    // Control.
    Beq, Bne, J,
    // Special / uncached.
    Dira,          ///< rd = directory entry address of line address in rs1.
    SendH,         ///< Uncached store: stage outgoing header from rs2.
    SendG,         ///< Uncached store: stage dest from rs1 and fire.
    Switch,        ///< Uncached load: header of next request (stalls).
    Ldctxt,        ///< Uncached load: address of next request; completes
                   ///< the handler and hands control back to dispatch.
    Ldprobe,       ///< Uncached load: result of the outstanding L2 probe.
};

/** Where an outgoing message's data payload comes from (SendG immediate). */
enum class DataSrc : std::uint8_t
{
    None,      ///< Header-only message.
    Memory,    ///< SDRAM line fetched in parallel by the dispatch unit.
    Probe,     ///< Line yielded by the L2 probe of this transaction.
    Carried,   ///< Line that arrived with the incoming message.
    Buffer,    ///< Line staged earlier in the per-MSHR data buffer.
};

/** Where a SendG directs the message. */
enum class SendTarget : std::uint8_t
{
    Network,   ///< To the node in rs1 via the network interface.
    Local,     ///< To this node's cache hierarchy (fills, probes).
    MemWrite,  ///< Commit the carried data line to local SDRAM.
};

struct PInst
{
    POp op = POp::Nop;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;      ///< ALU immediate, memory offset, or
                               ///< branch/jump target (instruction index).
    std::uint8_t memBytes = 8; ///< Footprint of Ld/St (4 for dir entries).
    // SendG payload description.
    MsgType sendType = MsgType::PiGet;
    DataSrc dataSrc = DataSrc::None;
    SendTarget target = SendTarget::Network;
    bool toHome = false;   ///< Route to home(addr) instead of rs1's node.
    bool delayed = false;  ///< Apply the NAK-retry backoff before sending.
};

/** Number of protocol logical registers (all kept mapped; Section 2.2). */
constexpr unsigned numPRegs = 32;

/** Conventional register assignments used by the handler programs. */
namespace preg
{
constexpr std::uint8_t zero = 0;   ///< Hardwired zero.
constexpr std::uint8_t hdr = 1;    ///< Header of the current request.
constexpr std::uint8_t addr = 2;   ///< Line address of the current request.
// r3..r15: handler scratch.
constexpr std::uint8_t t0 = 3, t1 = 4, t2 = 5, t3 = 6, t4 = 7, t5 = 8;
constexpr std::uint8_t t6 = 9, t7 = 10, t8 = 11, t9 = 12;
// Persistent environment, initialised by the protocol boot sequence.
constexpr std::uint8_t nodeId = 26;   ///< This node's id.
constexpr std::uint8_t nodeBit = 27;  ///< 1 << nodeId.
constexpr std::uint8_t pendBase = 28; ///< Pending-table base address.
constexpr std::uint8_t scratchBase = 29;
constexpr std::uint8_t one = 30;      ///< Constant 1.
constexpr std::uint8_t lineMask = 31; ///< ~(l2LineBytes - 1).
} // namespace preg

/**
 * A fully assembled handler image: the flat instruction array plus the
 * dispatch table mapping incoming message types to entry PCs.
 * PCs are instruction indices; the byte address of instruction i is
 * protoCodeBase + 4 * i (handlers share the L1 I-cache in SMTp).
 */
struct HandlerImage
{
    std::vector<PInst> code;
    std::uint32_t entry[numMsgTypes] = {};
    bool hasHandler[numMsgTypes] = {};

    Addr
    byteAddrOf(std::uint32_t pc) const
    {
        return protoCodeBase + 4ULL * pc;
    }
};

const char *popName(POp op);

/** One-line disassembly, for tests and the protocol_inspector example. */
std::string disassemble(const PInst &inst, std::uint32_t pc);

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_ISA_HPP
