#include "assembler.hpp"

#include <algorithm>
#include <cstdio>

namespace smtp::proto
{

std::string
Assembler::diagContext(std::uint32_t pc) const
{
    // handlerStarts_ is in emission order, hence sorted by pc; the
    // containing handler is the last one starting at or before pc.
    const HandlerStart *owner = nullptr;
    for (const auto &hs : handlerStarts_) {
        if (hs.pc > pc)
            break;
        owner = &hs;
    }
    char buf[96];
    if (owner == nullptr) {
        std::snprintf(buf, sizeof(buf), "before any handler (pc %u)", pc);
        return buf;
    }
    std::snprintf(buf, sizeof(buf), "handler '%s' line %u (pc %u)",
                  std::string(msgTypeName(owner->type)).c_str(),
                  pc - owner->pc, pc);
    return buf;
}

void
Assembler::diagDuplicateLabel(std::uint32_t id) const
{
    SMTP_PANIC("assembler: label #%u already bound at %s; "
               "rebinding at %s",
               id, diagContext(labels_[id]).c_str(),
               diagContext(here()).c_str());
}

void
Assembler::diagDuplicateHandler(MsgType t) const
{
    auto idx = static_cast<unsigned>(t);
    SMTP_PANIC("assembler: duplicate handler for %s: first defined at "
               "%s, redefined at %s",
               std::string(msgTypeName(t)).c_str(),
               diagContext(image_.entry[idx]).c_str(),
               diagContext(here()).c_str());
}

HandlerImage
Assembler::finish()
{
    for (const auto &fix : fixups_) {
        std::uint32_t target = labels_[fix.labelId];
        if (target == unbound)
            SMTP_PANIC("assembler: unresolved label #%u referenced by "
                       "branch at %s",
                       fix.labelId, diagContext(fix.pos).c_str());
        image_.code[fix.pos].imm = target;
    }
    fixups_.clear();

    // Every handler must be reachable and the image must end with an
    // epilogue; per-handler epilogue checking happens structurally: the
    // executor panics if it runs off the end of the code.
    SMTP_ASSERT(!image_.code.empty(), "empty handler image");
    return std::move(image_);
}

std::string
listHandlerImage(const HandlerImage &image)
{
    // Section boundaries: handler entry pcs in ascending order. Shared
    // home-side code reached by fall-through or jump lists under the
    // handler whose entry precedes it.
    struct Entry
    {
        std::uint32_t pc;
        unsigned type;
    };
    std::vector<Entry> entries;
    for (unsigned t = 0; t < numMsgTypes; ++t)
        if (image.hasHandler[t])
            entries.push_back({image.entry[t], t});
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.pc < b.pc || (a.pc == b.pc && a.type < b.type);
              });

    std::string out;
    char buf[160];
    std::size_t next = 0;
    for (std::uint32_t pc = 0; pc < image.code.size(); ++pc) {
        while (next < entries.size() && entries[next].pc == pc) {
            std::snprintf(buf, sizeof(buf), "== %s (entry pc %u) ==\n",
                          std::string(msgTypeName(static_cast<MsgType>(
                                          entries[next].type)))
                              .c_str(),
                          pc);
            out += buf;
            ++next;
        }
        out += disassemble(image.code[pc], pc);
        out += '\n';
    }
    std::snprintf(buf, sizeof(buf), "%zu instruction(s), %zu handler(s)\n",
                  image.code.size(), entries.size());
    out += buf;
    return out;
}

const char *
popName(POp op)
{
    switch (op) {
      case POp::Nop: return "nop";
      case POp::Add: return "add";
      case POp::Addi: return "addi";
      case POp::Sub: return "sub";
      case POp::And: return "and";
      case POp::Andi: return "andi";
      case POp::Or: return "or";
      case POp::Ori: return "ori";
      case POp::Xor: return "xor";
      case POp::Xori: return "xori";
      case POp::Sll: return "sll";
      case POp::Srl: return "srl";
      case POp::Sllv: return "sllv";
      case POp::Srlv: return "srlv";
      case POp::Sltu: return "sltu";
      case POp::Sltiu: return "sltiu";
      case POp::Popc: return "popc";
      case POp::Ctz: return "ctz";
      case POp::Lui: return "lui";
      case POp::Ld: return "ld";
      case POp::St: return "st";
      case POp::Beq: return "beq";
      case POp::Bne: return "bne";
      case POp::J: return "j";
      case POp::Dira: return "dira";
      case POp::SendH: return "sendh";
      case POp::SendG: return "sendg";
      case POp::Switch: return "switch";
      case POp::Ldctxt: return "ldctxt";
      case POp::Ldprobe: return "ldprobe";
    }
    return "?";
}

std::string
disassemble(const PInst &inst, std::uint32_t pc)
{
    char buf[128];
    switch (inst.op) {
      case POp::Ld:
        std::snprintf(buf, sizeof(buf), "%4u: ld.%u   r%u, %lld(r%u)", pc,
                      inst.memBytes, inst.rd,
                      static_cast<long long>(inst.imm), inst.rs1);
        break;
      case POp::St:
        std::snprintf(buf, sizeof(buf), "%4u: st.%u   r%u, %lld(r%u)", pc,
                      inst.memBytes, inst.rs2,
                      static_cast<long long>(inst.imm), inst.rs1);
        break;
      case POp::Beq:
      case POp::Bne:
        std::snprintf(buf, sizeof(buf), "%4u: %-6s r%u, r%u, @%lld", pc,
                      popName(inst.op), inst.rs1, inst.rs2,
                      static_cast<long long>(inst.imm));
        break;
      case POp::J:
        std::snprintf(buf, sizeof(buf), "%4u: j      @%lld", pc,
                      static_cast<long long>(inst.imm));
        break;
      case POp::SendG:
        std::snprintf(buf, sizeof(buf), "%4u: sendg  %s data=%u tgt=%u "
                      "dest=r%u", pc,
                      std::string(msgTypeName(inst.sendType)).c_str(),
                      static_cast<unsigned>(inst.dataSrc),
                      static_cast<unsigned>(inst.target), inst.rs1);
        break;
      case POp::Addi:
      case POp::Andi:
      case POp::Ori:
      case POp::Xori:
      case POp::Sll:
      case POp::Srl:
      case POp::Sltiu:
        std::snprintf(buf, sizeof(buf), "%4u: %-6s r%u, r%u, %lld", pc,
                      popName(inst.op), inst.rd, inst.rs1,
                      static_cast<long long>(inst.imm));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%4u: %-6s r%u, r%u, r%u", pc,
                      popName(inst.op), inst.rd, inst.rs1, inst.rs2);
        break;
    }
    return buf;
}

std::string_view
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::PiGet: return "PiGet";
      case MsgType::PiGetx: return "PiGetx";
      case MsgType::PiUpgrade: return "PiUpgrade";
      case MsgType::PiPut: return "PiPut";
      case MsgType::PiPutClean: return "PiPutClean";
      case MsgType::PiGetLocal: return "PiGetLocal";
      case MsgType::PiGetxLocal: return "PiGetxLocal";
      case MsgType::PiUpgradeLocal: return "PiUpgradeLocal";
      case MsgType::PiPutLocal: return "PiPutLocal";
      case MsgType::PiPutCleanLocal: return "PiPutCleanLocal";
      case MsgType::ReqGet: return "ReqGet";
      case MsgType::ReqGetx: return "ReqGetx";
      case MsgType::ReqUpgrade: return "ReqUpgrade";
      case MsgType::ReqPut: return "ReqPut";
      case MsgType::ReqPutClean: return "ReqPutClean";
      case MsgType::FwdIntervSh: return "FwdIntervSh";
      case MsgType::FwdIntervEx: return "FwdIntervEx";
      case MsgType::FwdInval: return "FwdInval";
      case MsgType::RplDataSh: return "RplDataSh";
      case MsgType::RplDataEx: return "RplDataEx";
      case MsgType::RplUpgradeAck: return "RplUpgradeAck";
      case MsgType::RplInvalAck: return "RplInvalAck";
      case MsgType::RplNak: return "RplNak";
      case MsgType::RplSharingWb: return "RplSharingWb";
      case MsgType::RplOwnershipXfer: return "RplOwnershipXfer";
      case MsgType::RplIntervMiss: return "RplIntervMiss";
      case MsgType::RplWbAck: return "RplWbAck";
      case MsgType::RplWbBusyAck: return "RplWbBusyAck";
      case MsgType::CcFillSh: return "CcFillSh";
      case MsgType::CcFillEx: return "CcFillEx";
      case MsgType::CcUpgradeGrant: return "CcUpgradeGrant";
      case MsgType::CcInval: return "CcInval";
      case MsgType::CcIntervSh: return "CcIntervSh";
      case MsgType::CcIntervEx: return "CcIntervEx";
      case MsgType::NumTypes: break;
    }
    return "?";
}

} // namespace smtp::proto
