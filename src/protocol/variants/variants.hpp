/**
 * @file
 * Protocol-variant registry.
 *
 * The paper's Section 6 argues the protocol thread "need not be
 * restricted to implementing basic coherence protocols" — the handler
 * image is software, so alternative protocols are just alternative
 * handler programs assembled from the same ISA. This registry names the
 * variants the repo ships, maps names to directory formats and handler
 * images, and is the single switch the machine, the benches, the sweep
 * daemon and the comparison harness all key off:
 *
 *  - `bitvector`      — the baseline invalidation protocol (Origin-style
 *                       bitvector directory, eager-exclusive replies).
 *  - `migratory`      — bitvector plus migratory-sharing detection: the
 *                       home tracks the last exclusive holder per line
 *                       in the directory's free bits and, once a
 *                       read-then-write migration pattern is observed,
 *                       answers the next GET from a different node with
 *                       an Exclusive grant (ownership-transfer
 *                       intervention), saving the upgrade round-trip.
 *                       Forces the 64-bit directory entry format.
 *  - `phase-priority` — bitvector handlers, but the memory controller
 *                       services its request queues in barrier-phase
 *                       priority order instead of FIFO: requests carry
 *                       the requester's phase epoch, and a straggler's
 *                       (older-epoch) requests overtake queued work from
 *                       nodes that already passed the barrier, with a
 *                       starvation floor bounding the bypasses.
 */

#ifndef SMTP_PROTOCOL_VARIANTS_VARIANTS_HPP
#define SMTP_PROTOCOL_VARIANTS_VARIANTS_HPP

#include <array>
#include <string_view>

#include "protocol/directory.hpp"
#include "protocol/handlers.hpp"
#include "protocol/isa.hpp"

namespace smtp::proto
{

enum class ProtocolKind : std::uint8_t
{
    Bitvector = 0,
    Migratory,
    PhasePriority,
};

constexpr std::array<ProtocolKind, 3> allProtocols = {
    ProtocolKind::Bitvector,
    ProtocolKind::Migratory,
    ProtocolKind::PhasePriority,
};

/** Stable CLI/JSON name ("bitvector", "migratory", "phase-priority"). */
std::string_view protocolName(ProtocolKind kind);

/**
 * Parse a protocol name; returns false (and leaves @p out untouched) on
 * an unknown name. An empty name means the default, Bitvector.
 */
bool protocolFromName(std::string_view name, ProtocolKind &out);

/** Comma-separated list of valid names, for usage/error messages. */
std::string_view protocolNameList();

/**
 * Directory entry format for @p kind at @p nodes nodes. Migratory needs
 * the free high bits of the 64-bit entry, so it uses the wide format at
 * every node count; the others pick by node count as the paper does.
 */
DirFormat protocolDirFormat(ProtocolKind kind, unsigned nodes);

/**
 * Assemble the handler image for @p kind. @p base carries the
 * orthogonal handler options (ownership log, fault hooks); the variant
 * sets its own flags on top (and asserts they weren't preset
 * inconsistently — e.g. `migratory` on a bitvector build).
 */
HandlerImage buildProtocolImage(ProtocolKind kind, const DirFormat &fmt,
                                HandlerOptions base = {});

/**
 * True when the variant's behaviour lives in the memory controller's
 * queue discipline (phase-priority) rather than the handler program.
 */
constexpr bool
protocolUsesPhasePriority(ProtocolKind kind)
{
    return kind == ProtocolKind::PhasePriority;
}

constexpr bool
protocolIsMigratory(ProtocolKind kind)
{
    return kind == ProtocolKind::Migratory;
}

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_VARIANTS_VARIANTS_HPP
