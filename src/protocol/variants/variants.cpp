#include "variants.hpp"

namespace smtp::proto
{

std::string_view
protocolName(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Bitvector: return "bitvector";
      case ProtocolKind::Migratory: return "migratory";
      case ProtocolKind::PhasePriority: return "phase-priority";
    }
    return "?";
}

bool
protocolFromName(std::string_view name, ProtocolKind &out)
{
    if (name.empty() || name == "bitvector") {
        out = ProtocolKind::Bitvector;
        return true;
    }
    if (name == "migratory") {
        out = ProtocolKind::Migratory;
        return true;
    }
    if (name == "phase-priority") {
        out = ProtocolKind::PhasePriority;
        return true;
    }
    return false;
}

std::string_view
protocolNameList()
{
    return "bitvector, migratory, phase-priority";
}

DirFormat
protocolDirFormat(ProtocolKind kind, unsigned nodes)
{
    if (kind == ProtocolKind::Migratory) {
        // The prediction bits live at entry bits 63:50; only the wide
        // format has them.
        return DirFormat::forNodes(32);
    }
    return DirFormat::forNodes(nodes);
}

HandlerImage
buildProtocolImage(ProtocolKind kind, const DirFormat &fmt,
                   HandlerOptions base)
{
    SMTP_ASSERT(!base.migratory,
                "set the protocol kind, not HandlerOptions::migratory");
    if (kind == ProtocolKind::Migratory)
        base.migratory = true;
    // Phase-priority runs the baseline handler program; its behaviour is
    // the memory controller's queue discipline.
    return buildHandlerImage(fmt, base);
}

} // namespace smtp::proto
