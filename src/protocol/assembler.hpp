/**
 * @file
 * Two-pass assembler for protocol handler programs.
 *
 * Handlers are authored as C++ builder calls (the in-repo equivalent of
 * the FLASH protocol compiler's output). Labels may be referenced before
 * they are bound; `finish()` patches every branch and verifies that all
 * labels resolved and every handler ends in the mandatory
 * `switch; ldctxt` pair (paper Section 2.1).
 */

#ifndef SMTP_PROTOCOL_ASSEMBLER_HPP
#define SMTP_PROTOCOL_ASSEMBLER_HPP

#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "protocol/isa.hpp"

namespace smtp::proto
{

class Assembler
{
  public:
    class Label
    {
        friend class Assembler;
        explicit Label(std::uint32_t id) : id_(id) {}
        std::uint32_t id_;
    };

    /** Create a fresh, unbound label. */
    Label
    label()
    {
        labels_.push_back(unbound);
        return Label(static_cast<std::uint32_t>(labels_.size() - 1));
    }

    /**
     * Bind @p l to the current position. A label may be bound exactly
     * once; rebinding reports both positions (handler + line) and
     * panics — the diagnostic names the same pc numbers the
     * `listHandlerImage` dump prints.
     */
    void
    bind(Label l)
    {
        if (labels_[l.id_] != unbound)
            diagDuplicateLabel(l.id_);
        labels_[l.id_] = here();
    }

    /** Begin the handler for message type @p t at the current position. */
    void
    handler(MsgType t)
    {
        auto idx = static_cast<unsigned>(t);
        if (image_.hasHandler[idx])
            diagDuplicateHandler(t);
        image_.hasHandler[idx] = true;
        image_.entry[idx] = here();
        handlerStarts_.push_back({here(), t});
    }

    std::uint32_t
    here() const
    {
        return static_cast<std::uint32_t>(image_.code.size());
    }

    // ---- ALU ----
    void add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Add, rd, rs1, rs2); }
    void sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Sub, rd, rs1, rs2); }
    void and_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::And, rd, rs1, rs2); }
    void or_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Or, rd, rs1, rs2); }
    void xor_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Xor, rd, rs1, rs2); }
    void sllv(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Sllv, rd, rs1, rs2); }
    void srlv(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Srlv, rd, rs1, rs2); }
    void sltu(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    { emitRRR(POp::Sltu, rd, rs1, rs2); }
    void popc(std::uint8_t rd, std::uint8_t rs1)
    { emitRRR(POp::Popc, rd, rs1, 0); }
    void ctz(std::uint8_t rd, std::uint8_t rs1)
    { emitRRR(POp::Ctz, rd, rs1, 0); }

    void addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Addi, rd, rs1, imm); }
    void andi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Andi, rd, rs1, imm); }
    void ori(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Ori, rd, rs1, imm); }
    void xori(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Xori, rd, rs1, imm); }
    void sll(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Sll, rd, rs1, imm); }
    void srl(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Srl, rd, rs1, imm); }
    void sltiu(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    { emitRRI(POp::Sltiu, rd, rs1, imm); }

    /** rd = imm (pseudo: addi rd, zero, imm; large via Lui+Ori in HW). */
    void li(std::uint8_t rd, std::int64_t imm)
    { emitRRI(POp::Addi, rd, preg::zero, imm); }
    /** rd = rs (pseudo). */
    void mov(std::uint8_t rd, std::uint8_t rs)
    { emitRRR(POp::Add, rd, rs, preg::zero); }
    void nop() { image_.code.emplace_back(); }

    // ---- Memory (protocol data space) ----
    void
    ld(std::uint8_t rd, std::uint8_t rs1, std::int64_t off,
       std::uint8_t bytes = 8)
    {
        PInst i;
        i.op = POp::Ld;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = off;
        i.memBytes = bytes;
        image_.code.push_back(i);
    }

    void
    st(std::uint8_t rs2, std::uint8_t rs1, std::int64_t off,
       std::uint8_t bytes = 8)
    {
        PInst i;
        i.op = POp::St;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = off;
        i.memBytes = bytes;
        image_.code.push_back(i);
    }

    // ---- Control ----
    void
    beq(std::uint8_t rs1, std::uint8_t rs2, Label l)
    {
        emitBranch(POp::Beq, rs1, rs2, l);
    }

    void
    bne(std::uint8_t rs1, std::uint8_t rs2, Label l)
    {
        emitBranch(POp::Bne, rs1, rs2, l);
    }

    void
    j(Label l)
    {
        emitBranch(POp::J, 0, 0, l);
    }

    // ---- Special ----
    void
    dira(std::uint8_t rd, std::uint8_t rs1)
    {
        emitRRR(POp::Dira, rd, rs1, 0);
    }

    /**
     * The full `send` idiom: two uncached stores (paper Section 2.1).
     * @param aux register holding the outgoing header auxiliary word
     *            (requester/mshr/ackCount packed in header layout).
     * @param dest register holding the destination node id (Network only).
     */
    void
    send(MsgType type, DataSrc src, SendTarget target,
         std::uint8_t dest = preg::zero, std::uint8_t aux = preg::zero,
         bool to_home = false, bool delayed = false)
    {
        PInst h;
        h.op = POp::SendH;
        h.rs2 = aux;
        image_.code.push_back(h);

        PInst g;
        g.op = POp::SendG;
        g.rs1 = dest;
        g.sendType = type;
        g.dataSrc = src;
        g.target = target;
        g.toHome = to_home;
        g.delayed = delayed;
        image_.code.push_back(g);
    }

    /** send() routed to home(addr) by the network interface. */
    void
    sendHome(MsgType type, DataSrc src, std::uint8_t aux = preg::zero,
             bool delayed = false)
    {
        send(type, src, SendTarget::Network, preg::zero, aux, true, delayed);
    }

    /** Mandatory handler epilogue: switch (header) + ldctxt (address). */
    void
    epilogue()
    {
        PInst sw;
        sw.op = POp::Switch;
        sw.rd = preg::hdr;
        image_.code.push_back(sw);

        PInst lc;
        lc.op = POp::Ldctxt;
        lc.rd = preg::addr;
        image_.code.push_back(lc);
    }

    void
    ldprobe(std::uint8_t rd)
    {
        PInst i;
        i.op = POp::Ldprobe;
        i.rd = rd;
        image_.code.push_back(i);
    }

    /** Resolve labels and hand over the finished image. */
    HandlerImage finish();

    /**
     * "handler 'X' line N (pc P)" for the instruction at @p pc — the
     * position vocabulary of every assembler diagnostic. Line numbers
     * are handler-relative so they match a listing dump of that
     * handler; pc is the absolute instruction index.
     */
    std::string diagContext(std::uint32_t pc) const;

  private:
    static constexpr std::uint32_t unbound = 0xffffffff;

    [[noreturn]] void diagDuplicateLabel(std::uint32_t id) const;
    [[noreturn]] void diagDuplicateHandler(MsgType t) const;

    void
    emitRRR(POp op, std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
    {
        PInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.rs2 = rs2;
        image_.code.push_back(i);
    }

    void
    emitRRI(POp op, std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
    {
        PInst i;
        i.op = op;
        i.rd = rd;
        i.rs1 = rs1;
        i.imm = imm;
        image_.code.push_back(i);
    }

    void
    emitBranch(POp op, std::uint8_t rs1, std::uint8_t rs2, Label l)
    {
        PInst i;
        i.op = op;
        i.rs1 = rs1;
        i.rs2 = rs2;
        i.imm = -1;
        image_.code.push_back(i);
        fixups_.push_back({here() - 1, l.id_});
    }

    struct Fixup
    {
        std::uint32_t pos;
        std::uint32_t labelId;
    };

    struct HandlerStart
    {
        std::uint32_t pc;
        MsgType type;
    };

    HandlerImage image_;
    std::vector<std::uint32_t> labels_;
    std::vector<Fixup> fixups_;
    std::vector<HandlerStart> handlerStarts_;
};

/**
 * Human-readable listing of a finished handler image: one section per
 * handler entry point (in pc order), each instruction disassembled with
 * its absolute pc and handler-relative line number. This is the
 * `--list` dump of protocol_compare, for debugging new protocol
 * variants; assembler diagnostics use the same position vocabulary.
 */
std::string listHandlerImage(const HandlerImage &image);

} // namespace smtp::proto

#endif // SMTP_PROTOCOL_ASSEMBLER_HPP
