#include "executor.hpp"

#include "common/bits.hpp"
#include "common/log.hpp"

namespace smtp::proto
{

void
Executor::boot(NodeId self)
{
    self_ = self;
    for (auto &r : regs_)
        r = 0;
    regs_[preg::nodeId] = self;
    regs_[preg::nodeBit] = 1ULL << self;
    regs_[preg::pendBase] = pendEntryAddr(self, 0);
    regs_[preg::scratchBase] =
        protoScratchBase + static_cast<Addr>(self) * protoNodeStride;
    regs_[preg::one] = 1;
    regs_[preg::lineMask] = ~static_cast<std::uint64_t>(l2LineBytes - 1);
}

HandlerTrace
Executor::run(const Message &m)
{
    SMTP_ASSERT(self_ != invalidNode, "executor not booted");
    auto type_idx = static_cast<unsigned>(m.type);
    SMTP_ASSERT(image_->hasHandler[type_idx], "no handler for %s",
                std::string(msgTypeName(m.type)).c_str());

    // The switch/ldctxt of the previous handler architecturally load the
    // new header and address; modelled by seeding the registers here.
    regs_[preg::hdr] = packHeader(m);
    regs_[preg::addr] = m.addr;

    HandlerTrace trace;
    std::uint64_t staged_aux = 0;
    std::uint32_t pc = image_->entry[type_idx];
    bool done = false;

    for (unsigned step = 0; !done; ++step) {
        SMTP_ASSERT(step < maxSteps, "runaway handler for %s at pc %u",
                    std::string(msgTypeName(m.type)).c_str(), pc);
        SMTP_ASSERT(pc < image_->code.size(),
                    "handler ran off the end of the image");

        const PInst &inst = image_->code[pc];
        ExecInst rec;
        rec.pc = pc;
        rec.inst = inst;
        std::uint32_t next_pc = pc + 1;

        auto rs1 = regs_[inst.rs1];
        auto rs2 = regs_[inst.rs2];
        std::uint64_t result = 0;
        bool write_rd = false;

        switch (inst.op) {
          case POp::Nop:
            break;
          case POp::Add: result = rs1 + rs2; write_rd = true; break;
          case POp::Sub: result = rs1 - rs2; write_rd = true; break;
          case POp::And: result = rs1 & rs2; write_rd = true; break;
          case POp::Or: result = rs1 | rs2; write_rd = true; break;
          case POp::Xor: result = rs1 ^ rs2; write_rd = true; break;
          case POp::Sllv: result = rs1 << (rs2 & 63); write_rd = true; break;
          case POp::Srlv: result = rs1 >> (rs2 & 63); write_rd = true; break;
          case POp::Sltu: result = rs1 < rs2; write_rd = true; break;
          case POp::Popc: result = popCount(rs1); write_rd = true; break;
          case POp::Ctz:
            result = countTrailingZeros(rs1);
            write_rd = true;
            break;
          case POp::Addi:
            result = rs1 + static_cast<std::uint64_t>(inst.imm);
            write_rd = true;
            break;
          case POp::Andi:
            result = rs1 & static_cast<std::uint64_t>(inst.imm);
            write_rd = true;
            break;
          case POp::Ori:
            result = rs1 | static_cast<std::uint64_t>(inst.imm);
            write_rd = true;
            break;
          case POp::Xori:
            result = rs1 ^ static_cast<std::uint64_t>(inst.imm);
            write_rd = true;
            break;
          case POp::Sll:
            result = rs1 << (inst.imm & 63);
            write_rd = true;
            break;
          case POp::Srl:
            result = rs1 >> (inst.imm & 63);
            write_rd = true;
            break;
          case POp::Sltiu:
            result = rs1 < static_cast<std::uint64_t>(inst.imm);
            write_rd = true;
            break;
          case POp::Lui:
            result = static_cast<std::uint64_t>(inst.imm) << 32;
            write_rd = true;
            break;
          case POp::Ld:
            rec.memAddr = rs1 + static_cast<std::uint64_t>(inst.imm);
            SMTP_ASSERT(isProtocolAddr(rec.memAddr),
                        "handler load from non-protocol address %llx "
                        "(pc %u)",
                        static_cast<unsigned long long>(rec.memAddr), pc);
            result = env_->protoLoad(rec.memAddr, inst.memBytes);
            write_rd = true;
            break;
          case POp::St:
            rec.memAddr = rs1 + static_cast<std::uint64_t>(inst.imm);
            SMTP_ASSERT(isProtocolAddr(rec.memAddr),
                        "handler store to non-protocol address %llx "
                        "(pc %u)",
                        static_cast<unsigned long long>(rec.memAddr), pc);
            env_->protoStore(rec.memAddr, rs2, inst.memBytes);
            break;
          case POp::Beq:
            rec.branchTaken = rs1 == rs2;
            if (rec.branchTaken)
                next_pc = static_cast<std::uint32_t>(inst.imm);
            break;
          case POp::Bne:
            rec.branchTaken = rs1 != rs2;
            if (rec.branchTaken)
                next_pc = static_cast<std::uint32_t>(inst.imm);
            break;
          case POp::J:
            rec.branchTaken = true;
            next_pc = static_cast<std::uint32_t>(inst.imm);
            break;
          case POp::Dira:
            result = env_->dirAddrOf(rs1);
            write_rd = true;
            break;
          case POp::SendH:
            staged_aux = rs2;
            break;
          case POp::SendG: {
            SendRec send;
            send.dataSrc = inst.dataSrc;
            send.target = inst.target;
            send.delayed = inst.delayed;
            Message &out = send.msg;
            out.type = inst.sendType;
            out.addr = regs_[preg::addr];
            out.src = self_;
            // Decode the staged aux word using the header layout.
            out.requester = static_cast<NodeId>(
                bits(staged_aux, headerRequesterShift + 7,
                     headerRequesterShift));
            out.mshr = static_cast<std::uint8_t>(
                bits(staged_aux, headerMshrShift + 7, headerMshrShift));
            out.ackCount = static_cast<std::uint16_t>(
                bits(staged_aux, headerAckShift + 15, headerAckShift));
            if (typeCarriesData(inst.sendType))
                out.flags |= flagDataCarried;
            if (inst.target == SendTarget::Network) {
                out.dest = inst.toHome
                               ? env_->homeOf(out.addr)
                               : static_cast<NodeId>(rs1 & 0xff);
            } else {
                out.dest = self_;
            }
            rec.sendIdx = static_cast<std::int32_t>(trace.sends.size());
            trace.sends.push_back(send);
            break;
          }
          case POp::Switch:
            // Header of the *next* request; value filled at next run().
            break;
          case POp::Ldctxt:
            done = true;
            break;
          case POp::Ldprobe:
            result = env_->probeResult();
            write_rd = true;
            trace.usedProbe = true;
            break;
        }

        if (write_rd && inst.rd != preg::zero)
            regs_[inst.rd] = result;

        trace.insts.push_back(rec);
        pc = next_pc;
    }

    return trace;
}

} // namespace smtp::proto
