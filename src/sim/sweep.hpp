/**
 * @file
 * Parallel sweep harness.
 *
 * Every paper figure is dozens of independent full-system simulations;
 * a Machine is single-threaded but shares nothing with its siblings, so
 * sweep cells are embarrassingly parallel. SweepPool runs an indexed
 * task set over a work-stealing thread pool: each worker owns a deque
 * seeded round-robin, pops its own work LIFO and steals FIFO from
 * victims when dry, so a straggler cell (a 32-node model) never idles
 * the other cores. Results are the caller's responsibility to store by
 * index, which keeps output ordering — and therefore every printed
 * table — identical to a serial run.
 *
 * Worker count: explicit argument > SMTP_SWEEP_JOBS env var > hardware
 * concurrency. jobs == 1 degenerates to an inline serial loop (no
 * threads), which the determinism tests diff against parallel runs.
 *
 * Service mode (the smtpd daemon): enqueue() adds one prioritized task
 * to a persistent queue serviced by dedicated workers — higher
 * priority first, FIFO within a priority. Service workers are spawned
 * lazily on the first enqueue (jobs_ of them, even when jobs_ == 1:
 * the batch degenerate case has no threads, but a service caller is an
 * event loop that must never simulate inline) and are independent of
 * the batch protocol, so parallelFor() batches and service traffic can
 * coexist on one pool.
 */

#ifndef SMTP_SIM_SWEEP_HPP
#define SMTP_SIM_SWEEP_HPP

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace smtp
{

class SweepPool
{
  public:
    /** @p jobs 0 resolves via defaultJobs(). */
    explicit SweepPool(unsigned jobs = 0);
    ~SweepPool();

    SweepPool(const SweepPool &) = delete;
    SweepPool &operator=(const SweepPool &) = delete;

    unsigned jobs() const { return jobs_; }

    /** SMTP_SWEEP_JOBS env override, else hardware concurrency. */
    static unsigned defaultJobs();

    /**
     * Run body(0) .. body(n-1) across the pool; blocks until all
     * complete. The body must only touch state owned by its index.
     * Exceptions escaping the body abort the process (a simulation
     * panic is fatal anyway).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    // ---- Service mode (persistent prioritized queue) -----------------

    /**
     * Queue one task. Higher @p priority runs first; equal priorities
     * run FIFO. Returns a monotonically increasing task id. The first
     * enqueue spawns the service workers (jobs() of them). @p fn runs
     * on a service worker; exceptions escaping it abort the process.
     */
    std::uint64_t enqueue(int priority, std::function<void()> fn);

    /** Block until the service queue is empty and no task is running. */
    void drainService();

    /** Tasks queued but not yet started (diagnostics). */
    std::size_t serviceQueued() const;

  private:
    struct WorkDeque
    {
        std::mutex mtx;
        std::deque<std::size_t> tasks;
    };

    void workerLoop(unsigned self);
    void runTasks(unsigned self);
    bool popOwn(unsigned self, std::size_t &task);
    bool steal(unsigned self, std::size_t &task);

    unsigned jobs_;
    std::vector<std::unique_ptr<WorkDeque>> deques_;
    std::vector<std::thread> workers_;

    std::mutex mtx_;
    std::condition_variable workCv_;   ///< Wakes workers for a batch.
    std::condition_variable doneCv_;   ///< Wakes the caller.
    const std::function<void(std::size_t)> *body_ = nullptr;
    std::uint64_t epoch_ = 0;          ///< Batch generation counter.
    std::size_t pending_ = 0;          ///< Tasks not yet finished.
    bool stop_ = false;

    // Service mode: its own lock/cv/threads so persistent traffic and
    // the batch epoch protocol never interleave on one condvar.
    void serviceLoop();

    mutable std::mutex svcMtx_;
    std::condition_variable svcCv_;     ///< Wakes service workers.
    std::condition_variable svcDoneCv_; ///< Wakes drainService().
    /** priority -> FIFO of tasks; iterated highest priority first. */
    std::map<int, std::deque<std::function<void()>>, std::greater<int>>
        svcQueue_;
    std::vector<std::thread> svcWorkers_; ///< Spawned on first enqueue.
    std::size_t svcQueued_ = 0;
    std::size_t svcRunning_ = 0;
    std::uint64_t svcNextId_ = 0;
    bool svcStop_ = false;
};

} // namespace smtp

#endif // SMTP_SIM_SWEEP_HPP
