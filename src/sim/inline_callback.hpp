/**
 * @file
 * Small-buffer-optimized callback for the event kernel.
 *
 * Every simulated cycle schedules a handful of callbacks; with
 * std::function each one whose capture exceeded the library's tiny SBO
 * (two pointers in libstdc++) cost a heap allocation on the hottest
 * path of the whole simulator. InlineCallback reserves enough inline
 * storage (64 bytes) that every scheduler in the tree — lambdas
 * capturing `this` plus a few scalars, a whole proto::Message, or a
 * forwarded callback — stays allocation-free. Oversized or
 * throwing-move captures transparently fall back to the heap, so the
 * type is a drop-in replacement; `storesInline<F>` lets hot call sites
 * static_assert that they stay on the fast path.
 *
 * Copyable (like std::function) because the cache hierarchy fans one
 * completion callback out to several waiter lists.
 */

#ifndef SMTP_SIM_INLINE_CALLBACK_HPP
#define SMTP_SIM_INLINE_CALLBACK_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace smtp::snap
{
class Ser;
}

namespace smtp
{

namespace detail
{
template <typename F, typename = void>
struct IsSnapCallback : std::false_type
{
};

template <typename F>
struct IsSnapCallback<F, std::void_t<decltype(F::kSnapId)>>
    : std::true_type
{
};
} // namespace detail

class InlineCallback
{
  public:
    /**
     * Inline capture budget; sized for the largest hot-path functor
     * (a pointer plus a whole proto::Message plus a scalar).
     */
    static constexpr std::size_t inlineBytes = 64;

    /** Does a callable of type @p F avoid the heap fallback? */
    template <typename F>
    static constexpr bool storesInline =
        sizeof(F) <= inlineBytes &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    /**
     * Is @p F a named snapshot-serializable functor (kSnapId +
     * snapEncode)? Such callbacks survive Machine::save/restore; plain
     * lambdas do not and make a containing snapshot fail loudly.
     */
    template <typename F>
    static constexpr bool isSnappable = detail::IsSnapCallback<F>::value;

    InlineCallback() noexcept = default;
    InlineCallback(std::nullptr_t) noexcept {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    InlineCallback(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (storesInline<Fn>) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(buf_) = new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    InlineCallback(InlineCallback &&other) noexcept { moveFrom(other); }

    InlineCallback(const InlineCallback &other)
    {
        if (other.ops_) {
            other.ops_->clone(buf_, other.buf_);
            ops_ = other.ops_;
        }
    }

    InlineCallback &
    operator=(InlineCallback &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineCallback &
    operator=(const InlineCallback &other)
    {
        if (this != &other) {
            InlineCallback tmp(other);
            destroy();
            moveFrom(tmp);
        }
        return *this;
    }

    InlineCallback &
    operator=(std::nullptr_t) noexcept
    {
        destroy();
        ops_ = nullptr;
        return *this;
    }

    ~InlineCallback() { destroy(); }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** Snapshot kind id; 0 for null or non-snappable callbacks. */
    std::uint32_t
    snapId() const noexcept
    {
        return ops_ ? ops_->typeId : 0;
    }

    /** Encode the payload of a snappable callback (snapId() != 0). */
    void
    snapEncode(snap::Ser &out) const
    {
        ops_->encode(buf_, out);
    }

  private:
    struct Ops
    {
        void (*invoke)(unsigned char *buf);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(unsigned char *dst, unsigned char *src);
        void (*clone)(unsigned char *dst, const unsigned char *src);
        void (*destroy)(unsigned char *buf);
        /** Snapshot support; typeId 0 / encode null when absent. */
        std::uint32_t typeId;
        void (*encode)(const unsigned char *buf, snap::Ser &out);
    };

    template <typename Fn>
    static Fn &
    inlineRef(unsigned char *buf)
    {
        return *std::launder(reinterpret_cast<Fn *>(buf));
    }

    template <typename Fn>
    static constexpr std::uint32_t
    typeIdOf()
    {
        if constexpr (isSnappable<Fn>)
            return Fn::kSnapId;
        else
            return 0;
    }

    template <typename Fn, bool Inline>
    static constexpr auto
    encodeFnOf()
    {
        if constexpr (isSnappable<Fn>) {
            return [](const unsigned char *buf, snap::Ser &out) {
                if constexpr (Inline) {
                    std::launder(reinterpret_cast<const Fn *>(buf))
                        ->snapEncode(out);
                } else {
                    (*reinterpret_cast<Fn *const *>(buf))
                        ->snapEncode(out);
                }
            };
        } else {
            return static_cast<void (*)(const unsigned char *,
                                        snap::Ser &)>(nullptr);
        }
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](unsigned char *buf) { inlineRef<Fn>(buf)(); },
        [](unsigned char *dst, unsigned char *src) {
            ::new (static_cast<void *>(dst))
                Fn(std::move(inlineRef<Fn>(src)));
            inlineRef<Fn>(src).~Fn();
        },
        [](unsigned char *dst, const unsigned char *src) {
            ::new (static_cast<void *>(dst)) Fn(*std::launder(
                reinterpret_cast<const Fn *>(src)));
        },
        [](unsigned char *buf) { inlineRef<Fn>(buf).~Fn(); },
        typeIdOf<Fn>(),
        encodeFnOf<Fn, true>(),
    };

    template <typename Fn>
    static Fn *&
    heapPtr(unsigned char *buf)
    {
        return *reinterpret_cast<Fn **>(buf);
    }

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](unsigned char *buf) { (*heapPtr<Fn>(buf))(); },
        [](unsigned char *dst, unsigned char *src) {
            heapPtr<Fn>(dst) = heapPtr<Fn>(src);
        },
        [](unsigned char *dst, const unsigned char *src) {
            *reinterpret_cast<Fn **>(dst) =
                new Fn(**reinterpret_cast<Fn *const *>(src));
        },
        [](unsigned char *buf) { delete heapPtr<Fn>(buf); },
        typeIdOf<Fn>(),
        encodeFnOf<Fn, false>(),
    };

    void
    moveFrom(InlineCallback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    void
    destroy() noexcept
    {
        if (ops_)
            ops_->destroy(buf_);
    }

    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace smtp

#endif // SMTP_SIM_INLINE_CALLBACK_HPP
