/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own their stats as plain members (cheap to bump on hot
 * paths) and register them with a StatGroup so a whole machine can be
 * dumped hierarchically at end of simulation. Three primitives cover
 * everything the paper reports:
 *
 *  - Counter       monotonically increasing event count
 *  - Distribution  running min/max/mean/samples (for occupancies)
 *  - PeakTracker   watermark of a live quantity (Table 9's peaks)
 */

#ifndef SMTP_SIM_STATS_HPP
#define SMTP_SIM_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace smtp
{

class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

class Distribution
{
  public:
    void
    sample(double v, std::uint64_t weight = 1)
    {
        if (weight == 0)
            return; // must not perturb min/max
        sum_ += v * static_cast<double>(weight);
        count_ += weight;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t samples() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Tracks the high-water mark of a live occupancy. */
class PeakTracker
{
  public:
    void
    observe(std::uint64_t level)
    {
        peak_ = std::max(peak_, level);
    }

    std::uint64_t peak() const { return peak_; }
    void reset() { peak_ = 0; }

  private:
    std::uint64_t peak_ = 0;
};

/**
 * Named collection of stats for dumping. Registration stores pointers;
 * the owning component must outlive the group (true for our machines,
 * which are torn down wholesale).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void
    add(const std::string &stat_name, const Counter *c)
    {
        counters_.push_back({stat_name, c});
    }

    void
    add(const std::string &stat_name, const Distribution *d)
    {
        dists_.push_back({stat_name, d});
    }

    void
    add(const std::string &stat_name, const PeakTracker *p)
    {
        peaks_.push_back({stat_name, p});
    }

    void addChild(StatGroup *g) { children_.push_back(g); }

    const std::string &name() const { return name_; }

    void dump(std::ostream &os, int indent = 0) const;

  private:
    template <typename T>
    struct Named
    {
        std::string name;
        const T *stat;
    };

    std::string name_;
    std::vector<Named<Counter>> counters_;
    std::vector<Named<Distribution>> dists_;
    std::vector<Named<PeakTracker>> peaks_;
    std::vector<StatGroup *> children_;
};

} // namespace smtp

#endif // SMTP_SIM_STATS_HPP
