/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own their stats as plain members (cheap to bump on hot
 * paths) and register them with a StatGroup so a whole machine can be
 * dumped hierarchically at end of simulation. Three primitives cover
 * everything the paper reports:
 *
 *  - Counter       monotonically increasing event count
 *  - Distribution  running min/max/mean/samples (for occupancies)
 *  - PeakTracker   watermark of a live quantity (Table 9's peaks)
 */

#ifndef SMTP_SIM_STATS_HPP
#define SMTP_SIM_STATS_HPP

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "snap/snap.hpp"

namespace smtp
{

class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    void saveState(snap::Ser &out) const { out.u64(value_); }
    void restoreState(snap::Des &in) { value_ = in.u64(); }

  private:
    std::uint64_t value_ = 0;
};

class Distribution
{
  public:
    void
    sample(double v, std::uint64_t weight = 1)
    {
        if (weight == 0)
            return; // must not perturb min/max
        sum_ += v * static_cast<double>(weight);
        count_ += weight;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
        if (!hist_.empty())
            hist_[bucketIndex(v)] += weight;
    }

    /**
     * Fold @p other into this distribution (per-shard slices merged
     * for reporting). Histograms merge bucket-wise when both sides
     * share a layout; a histogram-less side merges into moments only.
     */
    void
    merge(const Distribution &other)
    {
        if (other.count_ == 0)
            return;
        sum_ += other.sum_;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
        if (!hist_.empty() && hist_.size() == other.hist_.size() &&
            histLo_ == other.histLo_ && histHi_ == other.histHi_) {
            for (std::size_t i = 0; i < hist_.size(); ++i)
                hist_[i] += other.hist_[i];
        }
    }

    std::uint64_t samples() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Attach a fixed-bucket histogram covering [@p lo, @p hi) with
     * @p buckets equal-width buckets plus implicit underflow/overflow
     * buckets, enabling percentile(). Without it sample() stays two
     * adds and two compares. Clears any previously recorded counts.
     */
    void
    enableHistogram(double lo, double hi, std::size_t buckets)
    {
        histLo_ = lo;
        histHi_ = hi;
        hist_.assign(buckets + 2, 0); // [under | buckets | over]
    }

    bool histogramEnabled() const { return !hist_.empty(); }

    /** Per-bucket weights: index 0 underflow, last overflow. */
    const std::vector<std::uint64_t> &histogram() const { return hist_; }

    /**
     * Histogram-based percentile, @p p in [0, 100]: the upper edge of
     * the first bucket whose cumulative weight reaches p% of the
     * samples (conservative — the true value is <= the estimate).
     * Underflow resolves to min(), overflow to max(); edges are
     * clamped to the observed [min, max]. 0 when no histogram or no
     * samples.
     */
    double
    percentile(double p) const
    {
        if (hist_.empty() || count_ == 0)
            return 0.0;
        // Clamp p to [0, 100] and the rank to the recorded weight so a
        // tail percentile of a thin sample (p99 of 10 requests) resolves
        // to the last occupied bucket instead of running off the end.
        const double pc = std::min(std::max(p, 0.0), 100.0);
        double target = std::max(1.0, pc / 100.0 * static_cast<double>(count_));
        target = std::min(target, static_cast<double>(count_));
        std::size_t nb = hist_.size() - 2;
        double width = (histHi_ - histLo_) / static_cast<double>(nb);
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < hist_.size(); ++i) {
            cum += hist_[i];
            if (static_cast<double>(cum) >= target) {
                if (i == 0)
                    return min();
                if (i == nb + 1)
                    return max();
                double edge = histLo_ + static_cast<double>(i) * width;
                return std::min(std::max(edge, min()), max());
            }
        }
        return max(); // unreachable: cum == count_ >= target
    }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
        std::fill(hist_.begin(), hist_.end(), std::uint64_t{0});
    }

    /**
     * Full state, as raw f64 bit patterns: the +/-inf min/max
     * sentinels of a sample-free Distribution and every histogram
     * bucket round-trip exactly (no reset()-shaped gaps).
     */
    void
    saveState(snap::Ser &out) const
    {
        out.f64(sum_);
        out.u64(count_);
        out.f64(min_);
        out.f64(max_);
        out.f64(histLo_);
        out.f64(histHi_);
        out.seq(hist_,
                [](snap::Ser &s, std::uint64_t w) { s.u64(w); });
    }

    void
    restoreState(snap::Des &in)
    {
        sum_ = in.f64();
        count_ = in.u64();
        min_ = in.f64();
        max_ = in.f64();
        histLo_ = in.f64();
        histHi_ = in.f64();
        std::uint64_t n = in.count(8);
        hist_.assign(n, 0);
        for (auto &w : hist_)
            w = in.u64();
    }

  private:
    std::size_t
    bucketIndex(double v) const
    {
        std::size_t nb = hist_.size() - 2;
        if (v < histLo_)
            return 0;
        if (v >= histHi_)
            return nb + 1;
        double rel = (v - histLo_) / (histHi_ - histLo_);
        auto idx = static_cast<std::size_t>(rel * static_cast<double>(nb));
        return 1 + std::min(idx, nb - 1); // rounding guard at hi edge
    }

    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
    double histLo_ = 0.0;
    double histHi_ = 1.0;
    std::vector<std::uint64_t> hist_; ///< empty = histogram disabled
};

/** Tracks the high-water mark of a live occupancy. */
class PeakTracker
{
  public:
    void
    observe(std::uint64_t level)
    {
        peak_ = std::max(peak_, level);
    }

    std::uint64_t peak() const { return peak_; }
    void reset() { peak_ = 0; }

    void saveState(snap::Ser &out) const { out.u64(peak_); }
    void restoreState(snap::Des &in) { peak_ = in.u64(); }

  private:
    std::uint64_t peak_ = 0;
};

/**
 * Named collection of stats for dumping. Registration stores pointers;
 * the owning component must outlive the group (true for our machines,
 * which are torn down wholesale).
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void
    add(const std::string &stat_name, const Counter *c)
    {
        counters_.push_back({stat_name, c});
    }

    void
    add(const std::string &stat_name, const Distribution *d)
    {
        dists_.push_back({stat_name, d});
    }

    void
    add(const std::string &stat_name, const PeakTracker *p)
    {
        peaks_.push_back({stat_name, p});
    }

    void addChild(StatGroup *g) { children_.push_back(g); }

    const std::string &name() const { return name_; }

    void dump(std::ostream &os, int indent = 0) const;

  private:
    template <typename T>
    struct Named
    {
        std::string name;
        const T *stat;
    };

    std::string name_;
    std::vector<Named<Counter>> counters_;
    std::vector<Named<Distribution>> dists_;
    std::vector<Named<PeakTracker>> peaks_;
    std::vector<StatGroup *> children_;
};

} // namespace smtp

#endif // SMTP_SIM_STATS_HPP
