/**
 * @file
 * Node-sharded simulation kernel: conservative window-based PDES.
 *
 * A ShardSet partitions one simulated machine into per-node shards,
 * each owning a private EventQueue. Shards execute windows of
 * `lookahead` ticks independently (the network's 25 ns per-hop latency
 * guarantees every cross-shard event lands at least one window ahead),
 * then exchange mailboxes at a barrier and repeat.
 *
 * Determinism contract: results are bit-identical whether the shards
 * run on one host thread or many. Three mechanisms deliver that:
 *
 *  1. every queue keeps the kernel's (tick, priority, sequence) total
 *     order, and a shard's event stream is a pure function of its
 *     inputs;
 *  2. cross-shard events carry (due, sendTick, srcShard, srcSeq) and
 *     the barrier drains every mailbox in that sorted order, so the
 *     destination queue assigns the same local sequence numbers no
 *     matter which host thread produced the events or when;
 *  3. the host-thread count only changes which thread runs a shard's
 *     window, never the order of events inside it.
 *
 * The serial execution mode (--exec=serial) runs the *same* windowed
 * engine on one host thread — it is the reference implementation the
 * parallel mode must match bit-for-bit, exactly like the wheel/heap
 * pair in sim/eventq.hpp.
 */

#ifndef SMTP_SIM_SHARD_HPP
#define SMTP_SIM_SHARD_HPP

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "sim/eventq.hpp"
#include "sim/spsc.hpp"
#include "snap/event_codec.hpp"

namespace smtp
{

/** Execution-mode selection (--exec=serial|parallel[:T]). */
struct ExecParams
{
    enum class Mode
    {
        Serial,  ///< Windowed engine on one host thread (reference).
        Parallel ///< Windowed engine on a shard thread pool.
    };

    Mode mode = Mode::Serial;
    /** Host threads for Parallel; 0 = auto (hardware concurrency). */
    unsigned threads = 0;

    bool parallel() const { return mode == Mode::Parallel; }

    std::string
    toString() const
    {
        if (mode == Mode::Serial)
            return "serial";
        return threads == 0 ? "parallel"
                            : "parallel:" + std::to_string(threads);
    }

    /** Parse "serial" | "parallel" | "parallel:T". */
    static bool
    parse(const std::string &spec, ExecParams &out,
          std::string *err = nullptr)
    {
        if (spec == "serial") {
            out = ExecParams{};
            return true;
        }
        if (spec.rfind("parallel", 0) == 0) {
            out.mode = Mode::Parallel;
            out.threads = 0;
            if (spec.size() == 8)
                return true;
            if (spec[8] == ':') {
                char *end = nullptr;
                unsigned long t =
                    std::strtoul(spec.c_str() + 9, &end, 10);
                if (end != nullptr && *end == '\0' && t > 0 &&
                    t <= 1024) {
                    out.threads = static_cast<unsigned>(t);
                    return true;
                }
            }
        }
        if (err != nullptr)
            *err = "bad exec mode '" + spec +
                   "' (want serial | parallel[:T])";
        return false;
    }
};

/** One event in flight between shards, awaiting the barrier drain. */
struct CrossEvent
{
    Tick due = 0;
    Tick sendTick = 0;
    std::uint64_t srcSeq = 0;
    EventQueue::Callback cb;
};

/**
 * One (src, dst) shard-pair mailbox: a lock-free SPSC ring with a
 * producer-owned spill vector for growth beyond the ring capacity.
 * FIFO order survives the spill because the consumer only drains
 * between windows — once the ring fills, *all* later pushes of the
 * window go to the spill, so ring-then-spill replay is push order.
 */
class Mailbox
{
  public:
    void
    push(CrossEvent ev)
    {
        if (!ring_.tryPush(std::move(ev))) {
            ++spills_;
            spill_.push_back(std::move(ev));
        }
    }

    /** Barrier-phase drain (externally synchronized). */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        CrossEvent ev;
        while (ring_.tryPop(ev))
            fn(std::move(ev));
        for (auto &e : spill_)
            fn(std::move(e));
        spill_.clear();
    }

    /** Barrier-phase inspection without consuming (snapshots). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        ring_.forEach(fn);
        for (const auto &e : spill_)
            fn(e);
    }

    bool empty() const { return ring_.empty() && spill_.empty(); }

    std::size_t size() const { return ring_.size() + spill_.size(); }

    /** Pushes that overflowed the ring (back-pressure telemetry). */
    std::uint64_t spills() const { return spills_; }

  private:
    SpscRing<CrossEvent> ring_{256};
    std::vector<CrossEvent> spill_;
    std::uint64_t spills_ = 0;
};

/**
 * The shard partition: per-shard event queues plus the mailbox matrix.
 * Scheduling routes through the calling thread's shard context — local
 * events go straight onto the shard's queue, cross-shard events into
 * the (src, dst) mailbox.
 */
class ShardSet
{
  public:
    static constexpr unsigned noShard = ~0u;

    /** @p n owned per-shard queues on the given kernel. */
    ShardSet(EventQueue::Kernel kernel, unsigned n)
    {
        SMTP_ASSERT(n >= 1, "shard set needs at least one shard");
        owned_.reserve(n);
        queues_.reserve(n);
        for (unsigned s = 0; s < n; ++s) {
            owned_.push_back(std::make_unique<EventQueue>(kernel));
            queues_.push_back(owned_.back().get());
        }
        mail_.resize(static_cast<std::size_t>(n) * n);
        srcSeq_.assign(n, 0);
    }

    /**
     * Single-shard wrapper around an external queue: standalone
     * component tests keep constructing `Network(eq, params)` and
     * driving `eq.run()` directly; all scheduling degenerates to the
     * plain queue and the mailboxes are never touched.
     */
    explicit ShardSet(EventQueue &external)
    {
        queues_.push_back(&external);
        mail_.resize(1);
        srcSeq_.assign(1, 0);
    }

    ShardSet(const ShardSet &) = delete;
    ShardSet &operator=(const ShardSet &) = delete;

    unsigned
    count() const
    {
        return static_cast<unsigned>(queues_.size());
    }

    EventQueue &queue(unsigned s) { return *queues_[s]; }
    const EventQueue &queue(unsigned s) const { return *queues_[s]; }

    // ---- Execution context --------------------------------------------

    /**
     * Bind the calling host thread to @p shard of @p set for the
     * duration of a window (nullptr/noShard = barrier phase).
     */
    static void
    setCurrent(ShardSet *set, unsigned shard)
    {
        tlsSet_ = set;
        tlsShard_ = shard;
    }

    /** The calling thread's shard in *this* set; noShard outside one. */
    unsigned
    current() const
    {
        return tlsSet_ == this ? tlsShard_ : noShard;
    }

    // ---- Scheduling ----------------------------------------------------

    /**
     * Schedule @p cb at absolute tick @p when on shard @p dst. Same
     * shard (or barrier phase, or a single-shard set) schedules
     * directly; cross-shard posts go through the mailbox and land at
     * the next barrier. Cross-shard @p when must be at least one
     * lookahead window ahead — the network's hop latency guarantees it.
     */
    void
    schedule(unsigned dst, Tick when, EventQueue::Callback cb)
    {
        unsigned src = current();
        if (src == noShard || src == dst || count() == 1) {
            queues_[dst]->schedule(when, std::move(cb));
            return;
        }
        mail_[static_cast<std::size_t>(src) * count() + dst].push(
            CrossEvent{when, queues_[src]->curTick(), srcSeq_[src]++,
                       std::move(cb)});
    }

    // ---- Barrier phase (externally synchronized) -----------------------

    /**
     * Deliver every mailbox into its destination queue in the
     * deterministic (due, sendTick, srcShard, srcSeq) order, so local
     * sequence assignment is independent of host-thread interleaving.
     */
    void
    drainMailboxes()
    {
        struct Item
        {
            Tick due;
            Tick sendTick;
            unsigned src;
            std::uint64_t seq;
            EventQueue::Callback cb;
        };
        std::vector<Item> items;
        unsigned n = count();
        for (unsigned dst = 0; dst < n; ++dst) {
            items.clear();
            for (unsigned src = 0; src < n; ++src) {
                mail_[static_cast<std::size_t>(src) * n + dst].drain(
                    [&](CrossEvent ev) {
                        items.push_back(Item{ev.due, ev.sendTick, src,
                                             ev.srcSeq,
                                             std::move(ev.cb)});
                    });
            }
            std::sort(items.begin(), items.end(),
                      [](const Item &a, const Item &b) {
                          if (a.due != b.due)
                              return a.due < b.due;
                          if (a.sendTick != b.sendTick)
                              return a.sendTick < b.sendTick;
                          if (a.src != b.src)
                              return a.src < b.src;
                          return a.seq < b.seq;
                      });
            for (auto &it : items)
                queues_[dst]->schedule(it.due, std::move(it.cb));
        }
    }

    bool
    mailboxesEmpty() const
    {
        for (const auto &m : mail_) {
            if (!m.empty())
                return false;
        }
        return true;
    }

    /** Earliest pending tick over all queues (maxTick when idle). */
    Tick
    minPendingTick() const
    {
        Tick best = maxTick;
        for (const auto *q : queues_)
            best = std::min(best, q->nextTick());
        return best;
    }

    std::size_t
    pendingEvents() const
    {
        std::size_t n = 0;
        for (const auto *q : queues_)
            n += q->size();
        return n;
    }

    std::uint64_t
    mailboxSpills() const
    {
        std::uint64_t n = 0;
        for (const auto &m : mail_)
            n += m.spills();
        return n;
    }

    // ---- Snapshot support ----------------------------------------------
    //
    // Mailboxes are only guaranteed empty at window barriers; a save at
    // a mid-window stop (runUntil) must carry the undelivered events so
    // the resumed barrier assigns the same sequence numbers as the
    // uninterrupted one.

    void
    saveState(snap::Ser &out) const
    {
        out.u64(srcSeq_.size());
        for (std::uint64_t s : srcSeq_)
            out.u64(s);
        out.u64(mail_.size());
        for (const auto &m : mail_) {
            out.u64(m.size());
            m.forEach([&](const CrossEvent &ev) {
                out.u64(ev.due);
                out.u64(ev.sendTick);
                out.u64(ev.srcSeq);
                snap::EventCodec::encode(out, ev.cb);
            });
        }
    }

    void
    restoreState(snap::Des &in, const snap::EventCodec &codec)
    {
        if (in.u64() != srcSeq_.size()) {
            in.fail("snapshot shard count does not match machine");
            return;
        }
        for (auto &s : srcSeq_)
            s = in.u64();
        if (in.u64() != mail_.size()) {
            in.fail("snapshot mailbox count does not match machine");
            return;
        }
        for (auto &m : mail_) {
            std::uint64_t n = in.count(25);
            for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
                CrossEvent ev;
                ev.due = in.u64();
                ev.sendTick = in.u64();
                ev.srcSeq = in.u64();
                ev.cb = codec.decode(in);
                m.push(std::move(ev));
            }
        }
    }

  private:
    static inline thread_local ShardSet *tlsSet_ = nullptr;
    static inline thread_local unsigned tlsShard_ = noShard;

    std::vector<std::unique_ptr<EventQueue>> owned_;
    std::vector<EventQueue *> queues_;
    // mail_[src * count() + dst]; deque because a Mailbox (SPSC ring
    // atomics) is neither movable nor copyable.
    std::deque<Mailbox> mail_;
    std::vector<std::uint64_t> srcSeq_;
};

/**
 * Executes one window across every shard: a static contiguous
 * partition over a persistent pool of host threads, synchronized by a
 * spinning epoch barrier. With one host thread (the serial reference,
 * or a checker-forced run) no threads are spawned and the shards run
 * in index order on the caller.
 */
class ShardExecutor
{
  public:
    ShardExecutor(ShardSet &shards, unsigned host_threads)
        : shards_(shards),
          threads_(std::min(std::max(1u, host_threads), shards.count()))
    {
        busyNs_.assign(shards_.count(), 0);
        for (unsigned i = 0; i + 1 < threads_; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ShardExecutor()
    {
        stop_.store(true, std::memory_order_release);
        for (auto &w : workers_)
            w.join();
    }

    unsigned hostThreads() const { return threads_; }

    /** Measure per-shard host time (exec telemetry); off by default. */
    void setMeasure(bool on) { measure_ = on; }

    /** Per-shard host busy ns accumulated while measuring. */
    std::uint64_t busyNs(unsigned shard) const { return busyNs_[shard]; }

    /**
     * Run every shard's queue through tick @p limit (inclusive) and
     * return with all shards quiescent at the window boundary.
     */
    void
    runWindow(Tick limit)
    {
        limit_ = limit;
        if (threads_ == 1) {
            runPartition(0);
            return;
        }
        pending_.store(threads_ - 1, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        runPartition(threads_ - 1);
        while (pending_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

  private:
    void
    runPartition(unsigned index)
    {
        unsigned n = shards_.count();
        unsigned lo = index * n / threads_;
        unsigned hi = (index + 1) * n / threads_;
        for (unsigned s = lo; s < hi; ++s) {
            ShardSet::setCurrent(&shards_, s);
            if (measure_) {
                auto t0 = std::chrono::steady_clock::now();
                shards_.queue(s).run(limit_);
                auto t1 = std::chrono::steady_clock::now();
                busyNs_[s] += static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        t1 - t0)
                        .count());
            } else {
                shards_.queue(s).run(limit_);
            }
        }
        ShardSet::setCurrent(nullptr, ShardSet::noShard);
    }

    void
    workerLoop(unsigned index)
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::uint64_t e;
            while ((e = epoch_.load(std::memory_order_acquire)) ==
                   seen) {
                if (stop_.load(std::memory_order_acquire))
                    return;
                std::this_thread::yield();
            }
            seen = e;
            runPartition(index);
            pending_.fetch_sub(1, std::memory_order_release);
        }
    }

    ShardSet &shards_;
    unsigned threads_;
    Tick limit_ = 0;
    bool measure_ = false;
    std::vector<std::uint64_t> busyNs_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<unsigned> pending_{0};
    std::atomic<bool> stop_{false};
};

} // namespace smtp

#endif // SMTP_SIM_SHARD_HPP
