#include "sweep.hpp"

#include <cstdlib>

namespace smtp
{

unsigned
SweepPool::defaultJobs()
{
    if (const char *env = std::getenv("SMTP_SWEEP_JOBS")) {
        long v = std::atol(env);
        if (v >= 1)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

SweepPool::SweepPool(unsigned jobs) : jobs_(jobs != 0 ? jobs : defaultJobs())
{
    deques_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        deques_.push_back(std::make_unique<WorkDeque>());
    // Worker 0 is the calling thread; only spawn the helpers.
    for (unsigned i = 1; i < jobs_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

SweepPool::~SweepPool()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    {
        std::lock_guard<std::mutex> lk(svcMtx_);
        svcStop_ = true;
    }
    svcCv_.notify_all();
    for (auto &w : svcWorkers_)
        w.join();
}

std::uint64_t
SweepPool::enqueue(int priority, std::function<void()> fn)
{
    std::uint64_t id;
    {
        std::lock_guard<std::mutex> lk(svcMtx_);
        id = svcNextId_++;
        svcQueue_[priority].push_back(std::move(fn));
        ++svcQueued_;
        if (svcWorkers_.empty()) {
            for (unsigned i = 0; i < jobs_; ++i)
                svcWorkers_.emplace_back([this] { serviceLoop(); });
        }
    }
    svcCv_.notify_one();
    return id;
}

void
SweepPool::serviceLoop()
{
    std::unique_lock<std::mutex> lk(svcMtx_);
    while (true) {
        svcCv_.wait(lk, [&] { return svcStop_ || !svcQueue_.empty(); });
        if (svcStop_)
            return;
        auto it = svcQueue_.begin(); // Highest priority bucket.
        std::function<void()> fn = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty())
            svcQueue_.erase(it);
        --svcQueued_;
        ++svcRunning_;
        lk.unlock();
        fn();
        lk.lock();
        --svcRunning_;
        if (svcQueue_.empty() && svcRunning_ == 0)
            svcDoneCv_.notify_all();
    }
}

void
SweepPool::drainService()
{
    std::unique_lock<std::mutex> lk(svcMtx_);
    svcDoneCv_.wait(lk,
                    [&] { return svcQueue_.empty() && svcRunning_ == 0; });
}

std::size_t
SweepPool::serviceQueued() const
{
    std::lock_guard<std::mutex> lk(svcMtx_);
    return svcQueued_;
}

bool
SweepPool::popOwn(unsigned self, std::size_t &task)
{
    WorkDeque &dq = *deques_[self];
    std::lock_guard<std::mutex> lk(dq.mtx);
    if (dq.tasks.empty())
        return false;
    task = dq.tasks.back();
    dq.tasks.pop_back();
    return true;
}

bool
SweepPool::steal(unsigned self, std::size_t &task)
{
    for (unsigned i = 1; i < jobs_; ++i) {
        WorkDeque &dq = *deques_[(self + i) % jobs_];
        std::lock_guard<std::mutex> lk(dq.mtx);
        if (!dq.tasks.empty()) {
            task = dq.tasks.front();
            dq.tasks.pop_front();
            return true;
        }
    }
    return false;
}

void
SweepPool::runTasks(unsigned self)
{
    const std::function<void(std::size_t)> *body;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        body = body_;
    }
    std::size_t done = 0;
    std::size_t task;
    while (popOwn(self, task) || steal(self, task)) {
        (*body)(task);
        ++done;
    }
    if (done > 0) {
        std::lock_guard<std::mutex> lk(mtx_);
        pending_ -= done;
        if (pending_ == 0)
            doneCv_.notify_all();
    }
}

void
SweepPool::workerLoop(unsigned self)
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mtx_);
            workCv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
            if (stop_)
                return;
            seen = epoch_;
        }
        runTasks(self);
    }
}

void
SweepPool::parallelFor(std::size_t n,
                       const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs_ == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    for (std::size_t i = 0; i < n; ++i) {
        WorkDeque &dq = *deques_[i % jobs_];
        std::lock_guard<std::mutex> lk(dq.mtx);
        dq.tasks.push_back(i);
    }
    {
        std::lock_guard<std::mutex> lk(mtx_);
        body_ = &body;
        pending_ = n;
        ++epoch_;
    }
    workCv_.notify_all();
    runTasks(0); // The caller works too.
    std::unique_lock<std::mutex> lk(mtx_);
    doneCv_.wait(lk, [&] { return pending_ == 0; });
    body_ = nullptr;
}

} // namespace smtp
