/**
 * @file
 * Lock-free single-producer single-consumer ring for cross-shard
 * mailboxes.
 *
 * Each shard pair (src, dst) owns one SpscRing: the producing shard
 * pushes cross-shard events during its window, the consumer drains at
 * the barrier. Push and pop never take a lock; the acquire/release
 * pairs on the head/tail indices are the only synchronization, which is
 * also what lets ThreadSanitizer prove the mailbox protocol instead of
 * just trusting it.
 *
 * The ring is bounded (tryPush reports back-pressure); the Mailbox
 * wrapper in sim/shard.hpp layers growth on top by diverting overflow
 * into a producer-owned spill vector, which preserves FIFO order
 * because the consumer only drains between windows.
 */

#ifndef SMTP_SIM_SPSC_HPP
#define SMTP_SIM_SPSC_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"

namespace smtp
{

template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity = 256)
        : slots_(roundCapacity(capacity)), mask_(slots_.size() - 1)
    {
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    std::size_t capacity() const { return slots_.size(); }

    /** Producer side: false when the ring is full (back-pressure). */
    bool
    tryPush(T v)
    {
        std::uint64_t tail = tail_.load(std::memory_order_relaxed);
        std::uint64_t head = head_.load(std::memory_order_acquire);
        if (tail - head >= slots_.size())
            return false;
        slots_[tail & mask_] = std::move(v);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        std::uint64_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return false;
        out = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /**
     * Visit every queued element oldest-first without consuming.
     * Consumer-side only (snapshots run between windows).
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint64_t head = head_.load(std::memory_order_acquire);
        std::uint64_t tail = tail_.load(std::memory_order_acquire);
        for (std::uint64_t i = head; i != tail; ++i)
            fn(slots_[i & mask_]);
    }

    /** Approximate unless the caller externally synchronizes. */
    std::size_t
    size() const
    {
        std::uint64_t head = head_.load(std::memory_order_acquire);
        std::uint64_t tail = tail_.load(std::memory_order_acquire);
        return static_cast<std::size_t>(tail - head);
    }

    bool empty() const { return size() == 0; }

  private:
    static std::size_t
    roundCapacity(std::size_t capacity)
    {
        std::size_t c = 2;
        while (c < capacity)
            c <<= 1;
        return c;
    }

    std::vector<T> slots_;
    std::size_t mask_;
    // Head/tail live on separate cache lines: the producer only stores
    // tail_ and the consumer only stores head_, so false sharing is the
    // single avoidable cost of the protocol.
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

} // namespace smtp

#endif // SMTP_SIM_SPSC_HPP
