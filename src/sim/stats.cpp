#include "stats.hpp"

#include <iomanip>

namespace smtp
{

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << name_ << "\n";
    for (const auto &[name, stat] : counters_)
        os << pad << "  " << name << " = " << stat->value() << "\n";
    for (const auto &[name, stat] : dists_) {
        os << pad << "  " << name << " = mean " << std::fixed
           << std::setprecision(3) << stat->mean() << " min " << stat->min()
           << " max " << stat->max() << " (" << stat->samples()
           << " samples)\n";
    }
    for (const auto &[name, stat] : peaks_)
        os << pad << "  " << name << " = peak " << stat->peak() << "\n";
    for (const auto *child : children_)
        child->dump(os, indent + 1);
}

} // namespace smtp
