#include "stats.hpp"

#include <iomanip>

namespace smtp
{

namespace
{

/**
 * Dump order is the registered name, not registration order, so the
 * report is stable when components reorder their add() calls and two
 * dumps can be diffed line by line.
 */
template <typename T>
std::vector<const T *>
sortedByName(const std::vector<T> &v)
{
    std::vector<const T *> out;
    out.reserve(v.size());
    for (const auto &e : v)
        out.push_back(&e);
    std::stable_sort(out.begin(), out.end(),
                     [](const T *a, const T *b) { return a->name < b->name; });
    return out;
}

} // namespace

void
StatGroup::dump(std::ostream &os, int indent) const
{
    std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << name_ << "\n";
    for (const auto *s : sortedByName(counters_))
        os << pad << "  " << s->name << " = " << s->stat->value() << "\n";
    for (const auto *s : sortedByName(dists_)) {
        os << pad << "  " << s->name << " = mean " << std::fixed
           << std::setprecision(3) << s->stat->mean() << " min "
           << s->stat->min() << " max " << s->stat->max() << " ("
           << s->stat->samples() << " samples)\n";
    }
    for (const auto *s : sortedByName(peaks_))
        os << pad << "  " << s->name << " = peak " << s->stat->peak() << "\n";
    auto kids = children_;
    std::stable_sort(kids.begin(), kids.end(),
                     [](const StatGroup *a, const StatGroup *b) {
                         return a->name() < b->name();
                     });
    for (const auto *child : kids)
        child->dump(os, indent + 1);
}

} // namespace smtp
