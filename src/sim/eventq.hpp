/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue per simulated machine orders callbacks by
 * (tick, priority, insertion sequence). Insertion-order tie-breaking makes
 * whole-machine runs deterministic: two events at the same tick always run
 * in the order they were scheduled, independent of heap internals.
 */

#ifndef SMTP_SIM_EVENTQ_HPP
#define SMTP_SIM_EVENTQ_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace smtp
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Relative ordering of events scheduled for the same tick.
     * Lower runs first.
     */
    enum Priority : std::int8_t
    {
        prioEarly = -1,   ///< e.g. link deliveries feeding this cycle
        prioDefault = 0,
        prioLate = 1,     ///< e.g. end-of-cycle bookkeeping
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Tick curTick() const { return curTick_; }

    /** Schedule @p cb to run at absolute tick @p when (>= curTick). */
    void
    schedule(Tick when, Callback cb, Priority prio = prioDefault)
    {
        SMTP_ASSERT(when >= curTick_,
                    "scheduling event in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(curTick_));
        heap_.push(Entry{when, prio, seq_++, std::move(cb)});
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, Priority prio = prioDefault)
    {
        schedule(curTick_ + delta, std::move(cb), prio);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the next pending event; maxTick when empty. */
    Tick
    nextTick() const
    {
        return heap_.empty() ? maxTick : heap_.top().when;
    }

    /**
     * Pop and run the single earliest event.
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        curTick_ = e.when;
        ++executed_;
        e.cb();
        return true;
    }

    /** Run events until the queue drains or @p limit is passed. */
    void
    run(Tick limit = maxTick)
    {
        while (!heap_.empty() && heap_.top().when <= limit)
            runOne();
        if (curTick_ < limit && limit != maxTick)
            curTick_ = limit;
    }

    /** Number of events executed so far (a cheap progress metric). */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick curTick_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace smtp

#endif // SMTP_SIM_EVENTQ_HPP
