/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global EventQueue per simulated machine orders callbacks by
 * (tick, priority, insertion sequence). Insertion-order tie-breaking makes
 * whole-machine runs deterministic: two events at the same tick always run
 * in the order they were scheduled, independent of container internals.
 *
 * Two interchangeable kernels implement that contract:
 *
 *  - Kernel::Wheel (default): a calendar/timing wheel of 1024 slots of
 *    512 ticks each (~one 2 GHz cycle per slot, ~524 ns horizon) absorbs
 *    the short-delta events that dominate a run — link deliveries,
 *    pipeline stages, SDRAM callbacks — with O(1) insertion into a
 *    per-slot min-heap that is tiny in practice. Events beyond the
 *    horizon overflow into a binary heap and migrate into the wheel as
 *    the cursor advances.
 *  - Kernel::Heap: the single binary heap, kept as the reference
 *    implementation for cross-kernel equivalence tests.
 *
 * Both kernels pop the global minimum under the same strict total order,
 * so simulations are bit-identical across kernels; tests/test_sim.cpp
 * asserts this on randomized near/far/same-tick mixes. Entries carry an
 * InlineCallback, so scheduling a lambda with a small capture never
 * touches the heap once the slot/heap vectors are warm.
 */

#ifndef SMTP_SIM_EVENTQ_HPP
#define SMTP_SIM_EVENTQ_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "sim/inline_callback.hpp"
#include "snap/event_codec.hpp"

namespace smtp
{

class EventQueue
{
  public:
    using Callback = InlineCallback;

    /**
     * Relative ordering of events scheduled for the same tick.
     * Lower runs first.
     */
    enum Priority : std::int8_t
    {
        prioEarly = -1,   ///< e.g. link deliveries feeding this cycle
        prioDefault = 0,
        prioLate = 1,     ///< e.g. end-of-cycle bookkeeping
    };

    /** Which pending-event container the queue runs on. */
    enum class Kernel
    {
        Wheel, ///< Timing wheel + far-future overflow heap (fast path).
        Heap,  ///< Single binary heap (reference implementation).
    };

    explicit EventQueue(Kernel kernel = Kernel::Wheel) : kernel_(kernel)
    {
        if (kernel_ == Kernel::Wheel)
            slots_.resize(slotCount);
    }

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    Kernel kernel() const { return kernel_; }
    Tick curTick() const { return curTick_; }

    /** Schedule @p cb to run at absolute tick @p when (>= curTick). */
    void
    schedule(Tick when, Callback cb, Priority prio = prioDefault)
    {
        SMTP_ASSERT(when >= curTick_,
                    "scheduling event in the past (%llu < %llu)",
                    static_cast<unsigned long long>(when),
                    static_cast<unsigned long long>(curTick_));
        Entry e{when, prio, seq_++, std::move(cb)};
        if (kernel_ == Kernel::Wheel && when >= base_ &&
            when - base_ < span) {
            slotPush(std::move(e));
        } else {
            heapPush(far_, std::move(e));
        }
    }

    /** Schedule @p cb @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, Priority prio = prioDefault)
    {
        schedule(curTick_ + delta, std::move(cb), prio);
    }

    bool empty() const { return wheelCount_ == 0 && far_.empty(); }
    std::size_t size() const { return wheelCount_ + far_.size(); }

    /** Tick of the next pending event; maxTick when empty. */
    Tick
    nextTick() const
    {
        Tick best = far_.empty() ? maxTick : far_.front().when;
        if (wheelCount_ > 0) {
            // The first non-empty slot in cursor order holds the wheel
            // minimum: slots partition [base_, base_ + span) in time
            // order and every wheel entry lies in that window.
            for (std::size_t i = 0; i < slotCount; ++i) {
                const auto &s = slots_[(cursor_ + i) & slotMask];
                if (!s.empty())
                    return std::min(best, s.front().when);
            }
        }
        return best;
    }

    /**
     * Pop and run the single earliest event.
     * @return false when the queue was empty.
     */
    bool
    runOne()
    {
        std::vector<Entry> *src = findMin();
        if (src == nullptr)
            return false;
        Entry e = heapPop(*src);
        if (src != &far_)
            --wheelCount_;
        curTick_ = e.when;
        ++executed_;
        e.cb();
        return true;
    }

    /** Run events until the queue drains or @p limit is passed. */
    void
    run(Tick limit = maxTick)
    {
        while (true) {
            std::vector<Entry> *src = findMin();
            if (src == nullptr || src->front().when > limit)
                break;
            Entry e = heapPop(*src);
            if (src != &far_)
                --wheelCount_;
            curTick_ = e.when;
            ++executed_;
            e.cb();
        }
        if (curTick_ < limit && limit != maxTick)
            curTick_ = limit;
    }

    /** Number of events executed so far (a cheap progress metric). */
    std::uint64_t executedCount() const { return executed_; }

    // ---- Snapshot support --------------------------------------------
    //
    // Both kernels serialize to the same kernel-neutral form: entries
    // sorted ascending under the (when, prio, seq) total order, with
    // their *original* sequence numbers. Restoring preserves those
    // seqs, so same-tick tie-breaking — and therefore the entire
    // event schedule — is bit-identical to the uninterrupted run,
    // regardless of which kernel saved and which restores.

    void
    saveState(snap::Ser &out) const
    {
        out.u64(curTick_);
        out.u64(seq_);
        out.u64(executed_);
        std::vector<const Entry *> all;
        all.reserve(size());
        auto keep = [&](const Entry &e) {
            // Watchdog self-events are re-armed by the restoring
            // machine (when checking is on there), not replayed: they
            // are pure observers and only exist in debug-checked runs.
            if (e.cb.snapId() != snap::evWatchdog)
                all.push_back(&e);
        };
        for (const auto &slot : slots_)
            for (const Entry &e : slot)
                keep(e);
        for (const Entry &e : far_)
            keep(e);
        std::sort(all.begin(), all.end(),
                  [](const Entry *a, const Entry *b) {
                      return Later{}(*b, *a);
                  });
        out.u64(all.size());
        for (const Entry *e : all) {
            out.u64(e->when);
            out.i8(static_cast<std::int8_t>(e->prio));
            out.u64(e->seq);
            snap::EventCodec::encode(out, e->cb);
        }
    }

    void
    restoreState(snap::Des &in, const snap::EventCodec &codec)
    {
        for (auto &slot : slots_)
            slot.clear();
        far_.clear();
        wheelCount_ = 0;
        curTick_ = in.u64();
        seq_ = in.u64();
        executed_ = in.u64();
        // Re-center the wheel on the restored tick; entry placement
        // below then mirrors schedule()'s slot/overflow decision.
        base_ = (curTick_ >> slotShift) << slotShift;
        cursor_ = slotOf(curTick_);
        std::uint64_t n = in.count(8 + 1 + 8 + 4);
        for (std::uint64_t i = 0; i < n && in.ok(); ++i) {
            Entry e;
            e.when = in.u64();
            e.prio = static_cast<Priority>(in.i8());
            e.seq = in.u64();
            e.cb = codec.decode(in);
            if (!in.ok())
                break;
            if (e.when < curTick_ || e.seq >= seq_) {
                in.fail("corrupt snapshot: event entry out of range");
                break;
            }
            if (kernel_ == Kernel::Wheel && e.when >= base_ &&
                e.when - base_ < span) {
                slotPush(std::move(e));
            } else {
                heapPush(far_, std::move(e));
            }
        }
    }

  private:
    struct Entry
    {
        Tick when;
        Priority prio;
        std::uint64_t seq;
        Callback cb;
    };

    /** Strict total order; a after b means b runs first. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    static constexpr unsigned slotShift = 9;          ///< 512 ticks/slot.
    static constexpr std::size_t slotCount = 1024;
    static constexpr std::size_t slotMask = slotCount - 1;
    static constexpr Tick span = static_cast<Tick>(slotCount) << slotShift;

    static std::size_t
    slotOf(Tick when)
    {
        return (when >> slotShift) & slotMask;
    }

    static void
    heapPush(std::vector<Entry> &heap, Entry e)
    {
        heap.push_back(std::move(e));
        std::push_heap(heap.begin(), heap.end(), Later{});
    }

    /** Extract the heap minimum without casting away constness. */
    static Entry
    heapPop(std::vector<Entry> &heap)
    {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        Entry e = std::move(heap.back());
        heap.pop_back();
        return e;
    }

    void
    slotPush(Entry e)
    {
        heapPush(slots_[slotOf(e.when)], std::move(e));
        ++wheelCount_;
    }

    /** Pull far-heap events that now fall inside the wheel window. */
    void
    migrate()
    {
        while (!far_.empty() && far_.front().when >= base_ &&
               far_.front().when - base_ < span) {
            Entry e = heapPop(far_);
            heapPush(slots_[slotOf(e.when)], std::move(e));
            ++wheelCount_;
        }
    }

    /**
     * Locate the container holding the globally-earliest event,
     * advancing the wheel cursor past empty slots (and migrating
     * far-future events into the window) along the way. Returns nullptr
     * when the queue is empty. The returned vector's front() is the
     * minimum under the (when, prio, seq) order.
     */
    std::vector<Entry> *
    findMin()
    {
        if (kernel_ == Kernel::Heap)
            return far_.empty() ? nullptr : &far_;
        if (wheelCount_ == 0) {
            if (far_.empty())
                return nullptr;
            // Re-center the (empty) wheel on the next far event so its
            // neighbourhood migrates back to the fast path.
            base_ = (far_.front().when >> slotShift) << slotShift;
            cursor_ = slotOf(far_.front().when);
            migrate();
        }
        if (wheelCount_ == 0)
            return &far_; // All remaining events precede the window.
        while (slots_[cursor_].empty()) {
            cursor_ = (cursor_ + 1) & slotMask;
            base_ += Tick{1} << slotShift;
            migrate();
        }
        // An out-of-window far event (scheduled behind a cursor that
        // ran ahead under run(limit)) can still precede the wheel head.
        std::vector<Entry> *slot = &slots_[cursor_];
        if (!far_.empty() && Later{}(slot->front(), far_.front()))
            return &far_;
        return slot;
    }

    Kernel kernel_;
    std::vector<std::vector<Entry>> slots_; ///< Per-slot min-heaps.
    std::size_t wheelCount_ = 0;
    std::size_t cursor_ = 0; ///< Slot index covering base_.
    Tick base_ = 0;          ///< Start tick of the cursor slot.
    std::vector<Entry> far_; ///< Overflow heap (whole queue in Heap mode).
    Tick curTick_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace smtp

#endif // SMTP_SIM_EVENTQ_HPP
