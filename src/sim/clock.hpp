/**
 * @file
 * Clock domains. The machine mixes 400 MHz (off-chip controller), half-CPU
 * (integrated controllers), and 2/4 GHz (pipelines), so components convert
 * between cycles and ticks through an explicit ClockDomain.
 */

#ifndef SMTP_SIM_CLOCK_HPP
#define SMTP_SIM_CLOCK_HPP

#include "common/log.hpp"
#include "common/types.hpp"

namespace smtp
{

class ClockDomain
{
  public:
    /** @param freq_mhz must evenly divide 1 THz (i.e. divide 1e6). */
    explicit ClockDomain(std::uint64_t freq_mhz = 2000)
    {
        setFrequencyMHz(freq_mhz);
    }

    void
    setFrequencyMHz(std::uint64_t freq_mhz)
    {
        SMTP_ASSERT(freq_mhz > 0 && 1000000 % freq_mhz == 0,
                    "frequency %llu MHz does not divide 1 THz",
                    static_cast<unsigned long long>(freq_mhz));
        freqMHz_ = freq_mhz;
        period_ = 1000000 / freq_mhz;
    }

    std::uint64_t frequencyMHz() const { return freqMHz_; }

    /** Ticks per cycle of this domain. */
    Tick period() const { return period_; }

    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /** Full cycles elapsed by tick @p t (floor). */
    Cycles ticksToCycles(Tick t) const { return t / period_; }

    /** The first tick >= @p t that lies on a cycle boundary. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + period_ - 1) / period_) * period_;
    }

    /** The first cycle boundary strictly after @p t. */
    Tick
    edgeAfter(Tick t) const
    {
        return (t / period_ + 1) * period_;
    }

  private:
    std::uint64_t freqMHz_ = 2000;
    Tick period_ = 500;
};

} // namespace smtp

#endif // SMTP_SIM_CLOCK_HPP
