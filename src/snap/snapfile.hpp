/**
 * @file
 * Versioned snapshot container: header + named, length-prefixed
 * per-component sections.
 *
 * Layout (all little-endian; docs/checkpointing.md is the normative
 * spec):
 *
 *   offset 0   "SMTPSNAP"            8-byte magic
 *          8   u32 formatVersion     currently kFormatVersion
 *         12   u32 sectionCount
 *         16   u64 configHash        state-affecting config fingerprint
 *         24   sections...
 *
 *   section:   u32 nameLen, name bytes, u64 payloadLen, payload bytes
 *
 * Readers validate the magic, version, section framing and total length
 * before any component sees a byte, so truncation/corruption fails with
 * a diagnostic instead of UB. The config hash gates restore: a snapshot
 * is only loadable into a machine whose state-affecting parameters hash
 * identically.
 */

#ifndef SMTP_SNAP_SNAPFILE_HPP
#define SMTP_SNAP_SNAPFILE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "snap/snap.hpp"

namespace smtp::snap
{

// v2: the workload resume log carries barrier-clock tick epochs (server
// workload request stamps); v1 images are rejected cleanly.
// v3: messages carry the requester's barrier-phase epoch (phase-priority
// directory protocol) and the controller serializes its per-MSHR phase
// stamps and request-arrival queues; older images are rejected cleanly.
constexpr std::uint32_t kFormatVersion = 3;
constexpr char kMagic[8] = {'S', 'M', 'T', 'P', 'S', 'N', 'A', 'P'};

/** Builds a snapshot in memory, then writes it atomically. */
class SnapWriter
{
  public:
    explicit SnapWriter(std::uint64_t config_hash);

    /** Open a named section; write its payload into the returned Ser. */
    Ser &beginSection(std::string_view name);
    void endSection();

    /** Convenience: one Snapshottable per section. */
    void
    section(std::string_view name, const Snapshottable &s)
    {
        s.saveState(beginSection(name));
        endSection();
    }

    /**
     * Write the finished snapshot to @p path (tmp file + rename, so a
     * concurrent reader never sees a torn file).
     * @return false (with @p err) on I/O failure.
     */
    bool write(const std::string &path, std::string *err = nullptr);

    /** The serialized image (tests, in-memory round trips). */
    std::vector<std::uint8_t> finish();

  private:
    Ser ser_;
    std::uint32_t sectionCount_ = 0;
    std::size_t payloadLenPos_ = 0;
    std::size_t payloadStart_ = 0;
    bool inSection_ = false;
};

/** Parses and validates a snapshot image; hands out per-section Des. */
class SnapReader
{
  public:
    struct Section
    {
        std::string name;
        std::size_t offset; ///< Payload offset into the image.
        std::size_t length;
    };

    /** Load from file. @return false (with error()) on any problem. */
    bool load(const std::string &path);

    /** Parse an in-memory image (tests). */
    bool parse(std::vector<std::uint8_t> image);

    const std::string &error() const { return err_; }
    std::uint32_t formatVersion() const { return version_; }
    std::uint64_t configHash() const { return configHash_; }
    const std::vector<Section> &sections() const { return sections_; }

    bool hasSection(std::string_view name) const;

    /**
     * Deserializer over a named section's payload. Fails the returned
     * Des immediately when the section is missing.
     */
    Des section(std::string_view name) const;

  private:
    std::vector<std::uint8_t> image_;
    std::vector<Section> sections_;
    std::uint32_t version_ = 0;
    std::uint64_t configHash_ = 0;
    std::string err_;
};

} // namespace smtp::snap

#endif // SMTP_SNAP_SNAPFILE_HPP
