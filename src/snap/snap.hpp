/**
 * @file
 * Deterministic snapshot primitives: the byte-level Serializer /
 * Deserializer pair every Snapshottable component encodes itself with.
 *
 * Encoding rules (docs/checkpointing.md):
 *  - all integers little-endian, fixed width;
 *  - doubles as raw IEEE-754 bit patterns (bit-identical restore even
 *    for the +/-inf sentinels the stats keep);
 *  - containers length-prefixed with a u64 count;
 *  - associative containers written in sorted key order so a snapshot
 *    of a given machine state is itself deterministic (snap_tool diff
 *    compares files, not just semantics).
 *
 * The Deserializer never trusts its input: every read is bounds-checked
 * and failure latches a sticky error instead of invoking UB, so a
 * truncated or corrupted snapshot is reported, not executed.
 */

#ifndef SMTP_SNAP_SNAP_HPP
#define SMTP_SNAP_SNAP_HPP

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace smtp::snap
{

class Ser
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    u16(std::uint16_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u32(std::uint32_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    u64(std::uint64_t v)
    {
        raw(&v, sizeof(v));
    }

    void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /** Raw IEEE-754 bits: restores inf/nan sentinels exactly. */
    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    /** u64 count followed by per-element @p fn. */
    template <typename C, typename Fn>
    void
    seq(const C &c, Fn &&fn)
    {
        u64(static_cast<std::uint64_t>(c.size()));
        for (const auto &e : c)
            fn(*this, e);
    }

    /** Sparse u64->u64 map in sorted key order (FuncMem, ProtocolRam). */
    void
    wordMap(const std::unordered_map<std::uint64_t, std::uint64_t> &m)
    {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(
            m.begin(), m.end());
        std::sort(sorted.begin(), sorted.end());
        u64(sorted.size());
        for (const auto &[k, v] : sorted) {
            u64(k);
            u64(v);
        }
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    /** Patch a previously written u64 at @p pos (section lengths). */
    void
    patchU64(std::size_t pos, std::uint64_t v)
    {
        std::memcpy(buf_.data() + pos, &v, sizeof(v));
    }

  private:
    std::vector<std::uint8_t> buf_;
};

class Des
{
  public:
    Des(const std::uint8_t *data, std::size_t size)
        : p_(data), size_(size)
    {
    }

    explicit Des(const std::vector<std::uint8_t> &v)
        : Des(v.data(), v.size())
    {
    }

    bool ok() const { return ok_; }
    const std::string &error() const { return err_; }
    std::size_t pos() const { return pos_; }
    std::size_t size() const { return size_; }
    std::size_t remaining() const { return size_ - pos_; }

    void
    fail(std::string why)
    {
        if (ok_) {
            ok_ = false;
            err_ = std::move(why);
        }
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        read(&v, sizeof(v));
        return v;
    }

    bool bl() { return u8() != 0; }

    std::uint16_t
    u16()
    {
        std::uint16_t v = 0;
        read(&v, sizeof(v));
        return v;
    }

    std::uint32_t
    u32()
    {
        std::uint32_t v = 0;
        read(&v, sizeof(v));
        return v;
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        read(&v, sizeof(v));
        return v;
    }

    std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        if (!checkAvail(n, "string"))
            return {};
        std::string s(reinterpret_cast<const char *>(p_ + pos_), n);
        pos_ += n;
        return s;
    }

    void
    skip(std::size_t n)
    {
        if (checkAvail(n, "skipped bytes"))
            pos_ += n;
    }

    void
    read(void *out, std::size_t n)
    {
        if (!checkAvail(n, "scalar")) {
            std::memset(out, 0, n);
            return;
        }
        std::memcpy(out, p_ + pos_, n);
        pos_ += n;
    }

    /**
     * Read a u64 element count, sanity-bounded: a corrupted count must
     * not drive a multi-gigabyte allocation. @p min_elem_bytes is the
     * smallest possible encoding of one element.
     */
    std::uint64_t
    count(std::size_t min_elem_bytes = 1)
    {
        std::uint64_t n = u64();
        if (ok_ && min_elem_bytes > 0 &&
            n > remaining() / min_elem_bytes) {
            fail("element count exceeds remaining snapshot bytes");
            return 0;
        }
        return n;
    }

    void
    wordMap(std::unordered_map<std::uint64_t, std::uint64_t> &m)
    {
        m.clear();
        std::uint64_t n = count(16);
        m.reserve(n);
        for (std::uint64_t i = 0; ok_ && i < n; ++i) {
            std::uint64_t k = u64();
            std::uint64_t v = u64();
            m.emplace(k, v);
        }
    }

  private:
    bool
    checkAvail(std::size_t n, const char *what)
    {
        if (!ok_)
            return false;
        if (n > size_ - pos_) {
            fail(std::string("truncated snapshot: reading ") + what +
                 " past end of section");
            return false;
        }
        return true;
    }

    const std::uint8_t *p_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::string err_;
};

/** A component whose complete mutable state round-trips through Ser/Des. */
class Snapshottable
{
  public:
    virtual ~Snapshottable() = default;
    virtual void saveState(Ser &out) const = 0;
    virtual void restoreState(Des &in) = 0;
};

/** FNV-1a based config hasher for the snapshot-compatibility key. */
class Hasher
{
  public:
    void
    mix(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xff;
            h_ *= 0x100000001b3ULL;
        }
    }

    void
    mix(std::string_view s)
    {
        mix(static_cast<std::uint64_t>(s.size()));
        for (char c : s) {
            h_ ^= static_cast<std::uint8_t>(c);
            h_ *= 0x100000001b3ULL;
        }
    }

    void
    mixF(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        mix(bits);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

} // namespace smtp::snap

#endif // SMTP_SNAP_SNAP_HPP
