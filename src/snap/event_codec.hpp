/**
 * @file
 * Serializable-event machinery.
 *
 * Closures cannot be serialized, so every callback that can be *stored*
 * across a snapshot point — event-queue entries, MSHR waiter lists,
 * pending protocol completions — is a named functor struct with
 *
 *   static constexpr std::uint32_t kSnapId = snap::ev...;
 *   void operator()() const;              // the behaviour
 *   void snapEncode(snap::Ser &) const;   // POD payload (uids, msgs)
 *
 * InlineCallback detects kSnapId/snapEncode and exposes them through
 * its vtable; EventCodec maps the ids back to decoders registered by
 * Machine::restore against the freshly constructed component graph.
 * Saving a machine whose queues hold a *non*-snappable callback fails
 * loudly — silent state loss is the one bug a checkpoint subsystem must
 * never have.
 */

#ifndef SMTP_SNAP_EVENT_CODEC_HPP
#define SMTP_SNAP_EVENT_CODEC_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/log.hpp"
#include "sim/inline_callback.hpp"
#include "snap/snap.hpp"

namespace smtp::snap
{

/**
 * Stable event-kind ids (part of the snapshot format; append-only —
 * renumbering is a format version bump).
 */
enum EventId : std::uint32_t
{
    evNull = 0, ///< Empty InlineCallback.

    // Network.
    evNetLand = 1,
    evNetHop = 2,
    evNetRetry = 3,

    // Cache hierarchy.
    evCacheDrainOutQ = 10,
    evCacheBypassFill = 11,

    // Memory controller.
    evMcPoke = 20,
    evMcDispatchPoll = 21,
    evMcCtxMemDone = 22,
    evMcDeliverLocal = 23,
    evMcNetDeliver = 24,
    evMcDrainNiOut = 25,
    evMcPendingSend = 26,
    evMcBypassDone = 27,
    evMcMemWrite = 28,

    // SMT CPU.
    evCpuTick = 40,
    evCpuCompleteInst = 41,
    evCpuFetchDone = 42,
    evCpuLoadStages = 43,
    evCpuTlbRetry = 44,
    evCpuSbDrain = 45,
    evCpuProtoSbDrain = 46,
    evCpuLoadFill = 47,
    evCpuStoreFill = 48,
    evCpuIFill = 49,
    evCpuExecDone = 50,

    // Protocol engine (embedded PP models).
    evPeIcacheFill = 60,
    evPeDcacheFill = 61,
    evPeSendRelease = 62,
    evPeHandlerDone = 63,

    // Machine-level (re-armed, not replayed, on restore).
    evWatchdog = 80,
};

/**
 * Decoder registry: Machine::restore registers one decoder per event
 * kind, closed over the freshly constructed component graph, then the
 * event queue and every waiter list decode their callbacks through it.
 */
class EventCodec
{
  public:
    using Decoder = std::function<InlineCallback(Des &)>;

    void
    add(std::uint32_t id, Decoder d)
    {
        decoders_[id] = std::move(d);
    }

    /**
     * Write @p cb as id + payload. Fatal on a non-snappable callback:
     * that is a missing conversion at a schedule site, a programming
     * error, never a data error.
     */
    static void
    encode(Ser &out, const InlineCallback &cb)
    {
        if (!cb) {
            out.u32(evNull);
            return;
        }
        std::uint32_t id = cb.snapId();
        SMTP_ASSERT(id != evNull,
                    "cannot snapshot: a pending callback has no snap "
                    "id (unconverted schedule site)");
        out.u32(id);
        cb.snapEncode(out);
    }

    /** Read one id + payload back into a live callback. */
    InlineCallback
    decode(Des &in) const
    {
        std::uint32_t id = in.u32();
        if (!in.ok() || id == evNull)
            return {};
        auto it = decoders_.find(id);
        if (it == decoders_.end()) {
            in.fail("no decoder for event kind " + std::to_string(id));
            return {};
        }
        return it->second(in);
    }

  private:
    std::unordered_map<std::uint32_t, Decoder> decoders_;
};

} // namespace smtp::snap

#endif // SMTP_SNAP_EVENT_CODEC_HPP
