#include "snap/snapfile.hpp"

#include <cstdio>
#include <cstring>

#include "common/log.hpp"

namespace smtp::snap
{

SnapWriter::SnapWriter(std::uint64_t config_hash)
{
    ser_.raw(kMagic, sizeof(kMagic));
    ser_.u32(kFormatVersion);
    ser_.u32(0); // section count, patched in finish()
    ser_.u64(config_hash);
}

Ser &
SnapWriter::beginSection(std::string_view name)
{
    SMTP_ASSERT(!inSection_, "nested snapshot section");
    inSection_ = true;
    ++sectionCount_;
    ser_.str(name);
    payloadLenPos_ = ser_.size();
    ser_.u64(0); // payload length, patched in endSection()
    payloadStart_ = ser_.size();
    return ser_;
}

void
SnapWriter::endSection()
{
    SMTP_ASSERT(inSection_, "endSection outside a section");
    inSection_ = false;
    ser_.patchU64(payloadLenPos_, ser_.size() - payloadStart_);
}

std::vector<std::uint8_t>
SnapWriter::finish()
{
    SMTP_ASSERT(!inSection_, "finish() with an open section");
    std::uint32_t count = sectionCount_;
    // Patch the u32 section count at offset 8 (after the magic).
    std::vector<std::uint8_t> image = ser_.take();
    std::memcpy(image.data() + sizeof(kMagic) + sizeof(std::uint32_t),
                &count, sizeof(count));
    return image;
}

bool
SnapWriter::write(const std::string &path, std::string *err)
{
    std::vector<std::uint8_t> image = finish();
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (err)
            *err = "cannot open '" + tmp + "' for writing";
        return false;
    }
    bool ok = std::fwrite(image.data(), 1, image.size(), f) ==
              image.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        if (err)
            *err = "short write to '" + tmp + "'";
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (err)
            *err = "cannot rename '" + tmp + "' to '" + path + "'";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
SnapReader::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        err_ = "cannot open '" + path + "'";
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> image(len > 0 ? static_cast<std::size_t>(len)
                                            : 0);
    bool ok = image.empty() ||
              std::fread(image.data(), 1, image.size(), f) == image.size();
    std::fclose(f);
    if (!ok) {
        err_ = "short read from '" + path + "'";
        return false;
    }
    return parse(std::move(image));
}

bool
SnapReader::parse(std::vector<std::uint8_t> image)
{
    image_ = std::move(image);
    sections_.clear();
    Des d(image_);
    char magic[8] = {};
    d.read(magic, sizeof(magic));
    if (!d.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        err_ = "not a snapshot file (bad magic)";
        return false;
    }
    version_ = d.u32();
    if (version_ != kFormatVersion) {
        err_ = "unsupported snapshot format version " +
               std::to_string(version_) + " (this build reads " +
               std::to_string(kFormatVersion) + ")";
        return false;
    }
    std::uint32_t count = d.u32();
    configHash_ = d.u64();
    if (!d.ok()) {
        err_ = "corrupt snapshot: truncated header";
        return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        Section s;
        s.name = d.str();
        std::uint64_t len = d.u64();
        if (!d.ok() || len > d.remaining()) {
            err_ = "corrupt snapshot: section " + std::to_string(i) +
                   " overruns the file";
            return false;
        }
        s.offset = d.pos();
        s.length = static_cast<std::size_t>(len);
        sections_.push_back(std::move(s));
        d.skip(s.length);
    }
    if (!d.ok()) {
        err_ = "corrupt snapshot: " + d.error();
        return false;
    }
    return true;
}

bool
SnapReader::hasSection(std::string_view name) const
{
    for (const auto &s : sections_)
        if (s.name == name)
            return true;
    return false;
}

Des
SnapReader::section(std::string_view name) const
{
    for (const auto &s : sections_)
        if (s.name == name)
            return Des(image_.data() + s.offset, s.length);
    Des d(nullptr, 0);
    d.fail("missing snapshot section '" + std::string(name) + "'");
    return d;
}

} // namespace smtp::snap
