/**
 * @file
 * Checkpoint library: a directory of machine snapshots keyed by the
 * cell's full deterministic identity (machine config hash mixed with
 * the workload identity and the snapshot point), shared by sweep
 * workers and across bench invocations.
 *
 * Warmup sharing (docs/checkpointing.md): every sweep cell that shares
 * a (config, workload, warmup-length) prefix simulates that prefix
 * once; later runs — in the same sweep, a later sweep, or a sampled-
 * measurement variant whose measurement parameters are outside the
 * config hash — restore the snapshot instead. Hits and misses are
 * counted so harnesses can report cache effectiveness per cell.
 *
 * Concurrency: writers publish via tmp-file + rename (SnapWriter), so
 * a reader never observes a torn snapshot; two workers racing on the
 * same miss both simulate and both publish identical bytes — wasteful,
 * never wrong.
 */

#ifndef SMTP_SNAP_CKPT_CACHE_HPP
#define SMTP_SNAP_CKPT_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace smtp::snap
{

class CheckpointLibrary
{
  public:
    /** Opens (creating if needed) the library at @p dir. */
    explicit CheckpointLibrary(std::string dir);

    const std::string &dir() const { return dir_; }
    bool valid() const { return valid_; }
    const std::string &error() const { return err_; }

    /**
     * Canonical snapshot path for @p key (the cell hash) and @p tag
     * (the snapshot point, e.g. "w2000000" or "full").
     */
    std::string pathFor(std::uint64_t key, std::string_view tag) const;

    /** Does a snapshot exist for this key? Counts a hit or a miss. */
    bool lookup(std::uint64_t key, std::string_view tag);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    std::string dir_;
    std::string err_;
    bool valid_ = false;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace smtp::snap

#endif // SMTP_SNAP_CKPT_CACHE_HPP
