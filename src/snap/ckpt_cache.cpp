#include "snap/ckpt_cache.hpp"

#include <cstdio>
#include <filesystem>

namespace smtp::snap
{

CheckpointLibrary::CheckpointLibrary(std::string dir)
    : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        err_ = "cannot create checkpoint dir '" + dir_ +
               "': " + ec.message();
        return;
    }
    valid_ = true;
}

std::string
CheckpointLibrary::pathFor(std::uint64_t key, std::string_view tag) const
{
    char name[64];
    std::snprintf(name, sizeof(name), "ckpt_%016llx_",
                  static_cast<unsigned long long>(key));
    return dir_ + "/" + name + std::string(tag) + ".smtpsnap";
}

bool
CheckpointLibrary::lookup(std::uint64_t key, std::string_view tag)
{
    std::error_code ec;
    bool present = std::filesystem::exists(pathFor(key, tag), ec) && !ec;
    if (present)
        hits_.fetch_add(1);
    else
        misses_.fetch_add(1);
    return present;
}

} // namespace smtp::snap
