/**
 * @file
 * Whole-machine assembly: the five machine models of the paper's
 * Table 4 built from the subsystem libraries.
 *
 *   Base        off-chip PP/MC at 400 MHz, 512 KB DM directory cache
 *   IntPerfect  integrated PP/MC at processor frequency, perfect dcache
 *   Int512KB    integrated PP/MC at half frequency, 512 KB DM dcache
 *   Int64KB     integrated PP/MC at half frequency, 64 KB DM dcache
 *   SMTp        integrated standard MC at half frequency, protocol
 *               thread on the main pipeline
 *
 * The machine owns the sharded simulation kernel (one shard per node,
 * sim/shard.hpp), network, address map, handler image and one Node per
 * position; the workload layer plugs InstSources into each CPU. run()
 * advances simulation in barrier-synchronized windows of one network
 * hop latency until every application thread on every node has
 * finished, recording the parallel execution time and the paper's
 * per-run metrics. The window engine is identical under --exec=serial
 * and --exec=parallel:T — results are bit-identical for any host
 * thread count (docs/parallelism.md).
 */

#ifndef SMTP_MACHINE_MACHINE_HPP
#define SMTP_MACHINE_MACHINE_HPP

#include <memory>
#include <ostream>
#include <string_view>
#include <vector>

#include "cache/hierarchy.hpp"
#include "check/checker.hpp"
#include "core/protocol_thread.hpp"
#include "cpu/smt_cpu.hpp"
#include "fault/fault.hpp"
#include "mem/controller.hpp"
#include "network/network.hpp"
#include "pengine/pengine.hpp"
#include "protocol/handlers.hpp"
#include "protocol/variants/variants.hpp"
#include "sim/eventq.hpp"
#include "sim/shard.hpp"
#include "snap/snapfile.hpp"
#include "trace/trace.hpp"

namespace smtp
{

enum class MachineModel
{
    Base,
    IntPerfect,
    Int512KB,
    Int64KB,
    SMTp,
};

std::string_view modelName(MachineModel m);

/** Parse a model name ("Base", "SMTp", ...; case-insensitive). */
bool modelFromName(std::string_view name, MachineModel &out);

struct MachineParams;

/**
 * Machine::configHash() without building the machine: the fingerprint
 * of every state-affecting parameter, computable from params alone.
 * The daemon's dedup key uses this to recognize identical cells before
 * paying for construction.
 */
std::uint64_t machineConfigHash(const MachineParams &p);

struct MachineParams
{
    MachineModel model = MachineModel::SMTp;
    unsigned nodes = 1;
    unsigned appThreadsPerNode = 1;
    std::uint64_t cpuFreqMHz = 2000;

    // SMTp options (Section 2.3 ablations).
    bool lookAheadScheduling = true;
    bool bitAssistOps = true;
    bool perfectProtocolCaches = false;

    /**
     * Protocol extension (paper Section 6): ReVive-style ownership
     * logging by the coherence handlers.
     */
    bool ownershipLog = false;

    /**
     * Directory protocol variant (src/protocol/variants): the baseline
     * bitvector protocol, migratory-sharing detection (Exclusive on
     * the next read of a migrating line; forces the 64-bit directory
     * format), or phase-priority request servicing at the controller.
     * Bitvector reproduces the paper's machine bit for bit.
     */
    proto::ProtocolKind protocol = proto::ProtocolKind::Bitvector;

    /**
     * Deliberate protocol bugs for checker validation (tests only).
     * Each is meaningful under one variant and must make the checker
     * (or its watchdog) fire: a migratory grant without releasing the
     * owner breaks SWMR; a dropped starved request wedges.
     */
    bool injectMigratoryNoRelease = false;
    bool injectDropOnFloor = false;

    /** Scale caches down for protocol-stress tests. */
    std::size_t l2Bytes = 2 * 1024 * 1024;

    /**
     * Event-kernel selection (timing wheel vs. reference binary heap).
     * Results are bit-identical either way; the heap kernel exists for
     * cross-kernel equivalence tests and triage.
     */
    EventQueue::Kernel eventKernel = EventQueue::Kernel::Wheel;

    /**
     * Execution mode: the windowed shard engine on one host thread
     * (serial, the reference) or on a pool (parallel[:T]). Excluded
     * from configHash() — results are bit-identical across modes, so
     * snapshots restore across them.
     */
    ExecParams exec;

    /**
     * Scaled-simulation methodology: directory data caches shrink by
     * this power-of-two divisor along with the (scaled-down) problem
     * sizes, preserving the paper's directory-cache pressure ratios.
     * 1 = the paper's absolute sizes.
     */
    unsigned dirCacheDivisor = 1;

    /**
     * Coherence checker + watchdog (src/check). Off costs nothing;
     * Asserts checks SWMR on every transition — internally serialized,
     * so it runs under the full parallel shard engine. FullMirror's
     * quiescence mirrors need a globally serialized schedule and force
     * one host thread, loudly (execSerializedByChecker()).
     */
    check::CheckLevel checkLevel = check::CheckLevel::Off;
    bool checkAbortOnViolation = true;
    Tick checkWatchdogMaxAge = 2 * tickPerMs;

    /**
     * Telemetry (src/trace). Disabled costs one null-pointer test per
     * would-be event; enabled never perturbs the event schedule, so
     * simulated timing is bit-identical either way.
     */
    trace::TraceConfig trace;

    /**
     * Deterministic fault injection (src/fault). The default plan has
     * every probability at zero, no injector is constructed, and the
     * run is bit-identical to a fault-free build.
     */
    fault::FaultPlan faults;

    /** NAK retry/backoff policy applied by every node's controller. */
    fault::RetryPolicyConfig retryPolicy;

    /**
     * When non-empty and a checker is active, a watchdog trip
     * auto-saves a machine snapshot here before flagging the violation
     * (docs/debugging.md) — the wedge becomes a restorable, diffable
     * artifact instead of only a text report.
     */
    std::string wedgeSnapshotPath;
};

class Machine
{
  public:
    explicit Machine(const MachineParams &params);
    ~Machine();

    const MachineParams &params() const { return params_; }
    unsigned numNodes() const { return params_.nodes; }
    unsigned appThreads() const
    {
        return params_.nodes * params_.appThreadsPerNode;
    }

    /**
     * Attach the instruction source for (node, thread-slot). The
     * machine switches the source to buffered mode: generation happens
     * only in the single-threaded barrier phase (refill), never from a
     * shard thread.
     */
    void setSource(unsigned node, unsigned thread, InstSource *source);

    /** Global thread index -> (node, slot) attach. */
    void
    setGlobalSource(unsigned gtid, InstSource *source)
    {
        setSource(gtid / params_.appThreadsPerNode,
                  gtid % params_.appThreadsPerNode, source);
    }

    PagePlacementMap &addressMap() { return *map_; }

    /** Shard 0's queue (single-queue harness uses; see shards()). */
    EventQueue &eventQueue() { return shards_.queue(0); }

    /** The sharded kernel (one shard per node). */
    ShardSet &shards() { return shards_; }
    const ShardSet &shards() const { return shards_; }

    /** Host threads the window executor actually uses. */
    unsigned hostThreads() const { return executor_->hostThreads(); }

    /**
     * True when a parallel exec request was overridden to one host
     * thread by the FullMirror checker. Surfaced in bench JSON records
     * as "exec_serialized" so ingest never mistakes a serialized run
     * for a parallel one.
     */
    bool execSerializedByChecker() const { return execSerializedByChecker_; }

    /**
     * Run until every application thread has finished (or @p limit
     * simulated time passes, which is fatal: a deadlock).
     * @return the parallel execution time in ticks.
     */
    Tick run(Tick limit = 500 * tickPerMs);

    /**
     * Advance until the absolute tick @p when (executing every event
     * scheduled at or before it) or until the workload completes,
     * whichever is first. Unlike run(), stopping early is not an error
     * — this is the warmup/measurement-slice primitive of the
     * checkpoint and sampled-measurement paths. Resumable: call again
     * (or call run()) to continue. A mid-window stop leaves in-flight
     * cross-shard events in their mailboxes; save() carries them.
     * @return true when every application thread has finished.
     */
    bool runUntil(Tick when);

    /** Drain residual protocol traffic (after run) for checkers. */
    void quiesce(Tick limit = 10 * tickPerMs);
    bool quiescent() const;

    /** Total committed instructions over all application threads. */
    std::uint64_t committedAppInsts() const;

    Tick execTime() const { return execTime_; }

    struct Node
    {
        std::unique_ptr<CacheHierarchy> cache;
        std::unique_ptr<MemController> mc;
        std::unique_ptr<SmtCpu> cpu;
        std::unique_ptr<PEngine> pengine;        ///< Non-SMTp models.
        std::unique_ptr<ProtocolThread> pthread; ///< SMTp.

        /** Protocol agent busy time (Table 7 numerator). */
        Tick
        agentBusyTicks() const
        {
            return pengine ? pengine->busyTicks() : pthread->busyTicks();
        }
    };

    Node &node(unsigned n) { return *nodes_[n]; }
    const Node &node(unsigned n) const { return *nodes_[n]; }
    Network &network() { return *net_; }
    const proto::DirFormat &dirFormat() const { return fmt_; }
    /** nullptr when checkLevel is Off. */
    check::Checker *checker() { return checker_.get(); }

    /** nullptr when tracing is disabled. */
    trace::TraceManager *traceManager() { return traceMgr_.get(); }

    /** nullptr when the fault plan is fully disabled. */
    fault::FaultInjector *faultInjector() { return faults_.get(); }
    const fault::FaultInjector *faultInjector() const
    {
        return faults_.get();
    }

    /**
     * Snapshot the telemetry and write stem.smtptrace / stem.json
     * (Perfetto) / stem.csv. False (with @p err) when tracing is off
     * or a file cannot be written.
     */
    bool writeTraceFiles(const std::string &stem,
                         std::string *err = nullptr) const;

    // ---- Paper metrics ------------------------------------------------

    /** Mean memory-stall fraction over all application threads. */
    double memStallFraction() const;

    /** Peak protocol occupancy over nodes: busy / exec time (Table 7). */
    double peakProtocolOccupancy() const;

    /**
     * Migratory-variant prediction counters, summed over every node's
     * home-side scratch space (zero under other protocols): migrations
     * detected, upgrade round-trips saved by an Exclusive-on-read
     * grant, and false predictions reverted.
     */
    struct MigratoryCounters
    {
        std::uint64_t detected = 0;
        std::uint64_t saved = 0;
        std::uint64_t reverts = 0;
    };

    MigratoryCounters migratoryCounters() const;

    /** Aggregate protocol-thread characteristics (Table 8; SMTp only). */
    struct ProtoCharacteristics
    {
        double branchMispredictRate = 0.0;
        double squashCyclePct = 0.0;
        double retiredInstPct = 0.0;
    };

    ProtoCharacteristics protoCharacteristics() const;

    /** Hierarchical end-of-run statistics dump (gem5-style). */
    void dumpStats(std::ostream &os) const;

    // ---- Checkpoint / restore (src/snap) ------------------------------

    /**
     * Fingerprint of every state-affecting parameter. Snapshots carry
     * it and restore refuses on mismatch. Deliberately excluded:
     * eventKernel and exec (kernels and host-thread counts are
     * bit-identical — snapshots restore across them), the checker and
     * trace configs (observation-only), and wedgeSnapshotPath.
     */
    std::uint64_t configHash() const;

    /**
     * Attach the workload's snapshot delegate (the workload::App).
     * Required before save/restore of a machine with attached
     * generators; restore replays the app's coroutine resume log, so
     * the app must be freshly built with the identical name/env.
     */
    void setWorkloadState(snap::Snapshottable *w) { workloadState_ = w; }

    /**
     * Write a complete deterministic snapshot. Resuming it on an
     * identically configured machine continues bit-identically to the
     * uninterrupted run. Works after run()/runUntil() returned —
     * including mid-window runUntil stops, whose undelivered mailbox
     * events are carried by the snapshot.
     */
    bool save(const std::string &path, std::string *err = nullptr) const;

    /** In-memory save (tests, the checkpoint library). */
    std::vector<std::uint8_t> saveImage() const;

    /**
     * Restore into a *freshly constructed* machine with identical
     * state-affecting params (hash-gated), checkLevel Off (mirror
     * state is not serialized), and the workload delegate attached.
     * False with a diagnostic on any mismatch, truncation or
     * corruption — never UB.
     */
    bool restore(const std::string &path, std::string *err = nullptr);

    /** In-memory restore counterpart of saveImage(). */
    bool restoreImage(std::vector<std::uint8_t> image,
                      std::string *err = nullptr);

  private:
    void saveSections(snap::SnapWriter &w) const;
    bool restoreFrom(const snap::SnapReader &r, std::string *err);
    snap::EventCodec buildEventCodec();

    Tick curTick() const { return shards_.queue(0).curTick(); }
    bool allDone() const;

    /** First-run initialization: window origin + generator priming. */
    void prime();

    /**
     * Execute the window ending at @p end (exclusive) on every shard,
     * then the single-threaded barrier phase: mailbox exchange,
     * generator refill (gtid order), CPU wakeup, interval sampling and
     * exec telemetry.
     */
    void runWindow(Tick end);

    /**
     * Pick the next window end after a completed barrier: one
     * lookahead ahead, or further when every shard is idle until a
     * later tick (window skip). False when no work remains anywhere.
     */
    bool advanceWindow();

    MachineParams params_;
    ShardSet shards_;
    proto::DirFormat fmt_;
    proto::HandlerImage image_;
    std::unique_ptr<PagePlacementMap> map_;
    std::unique_ptr<Network> net_;
    std::unique_ptr<check::Checker> checker_;
    std::unique_ptr<fault::FaultInjector> faults_;
    std::unique_ptr<trace::TraceManager> traceMgr_;
    std::unique_ptr<ShardExecutor> executor_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<InstSource *> sources_; ///< By gtid; refill order.
    Tick lookahead_ = 0;   ///< Window length (network hop latency).
    Tick windowEnd_ = 0;   ///< Next barrier tick; 0 = never run.
    Tick execTime_ = 0;
    bool execSerializedByChecker_ = false;
    // Exec telemetry (Category::Exec, opt-in): per-shard buffers and
    // the executed-event watermark for per-window deltas.
    std::vector<trace::TraceBuffer *> execTrace_;
    std::vector<std::uint64_t> lastExecuted_;
    std::vector<std::uint64_t> lastBusyNs_;
    snap::Snapshottable *workloadState_ = nullptr;
};

} // namespace smtp

#endif // SMTP_MACHINE_MACHINE_HPP
