/**
 * @file
 * Machine-level checkpoint/restore: assembles the per-component
 * Ser/Des implementations into one versioned snapshot file
 * (docs/checkpointing.md) and rebuilds a freshly constructed machine
 * from it, bit-identically.
 *
 * Restore ordering is load-bearing:
 *
 *  1. workload  — replays the coroutine resume log, rebuilding the
 *                 generators and the functional memory;
 *  2. CPUs      — rebuild the DynInst pools and the uid resolution
 *                 maps every decoded event handle needs;
 *  3. MCs       — rebuild the transaction-context tables that protocol
 *                 engine/thread state and deferred sends resolve ids
 *                 against;
 *  4. caches    — MSHR waiter lists decode callbacks referencing CPUs
 *                 and MCs;
 *  5. protocol engines / threads, network, faults, trace;
 *  6. event queue last — its entries decode against everything above.
 */

#include "machine.hpp"

#include <string>

namespace smtp
{

namespace
{

std::string
nodeSection(unsigned n, const char *what)
{
    return "node" + std::to_string(n) + "." + what;
}

} // namespace

std::uint64_t
machineConfigHash(const MachineParams &p)
{
    snap::Hasher h;
    // v2: node-sharded windowed kernel — barrier-phase generator
    // refill changed the functional interleaving, so v1 snapshots
    // cannot resume bit-identically and are refused wholesale.
    h.mix(std::string_view("smtp-machine-config-v2"));
    h.mix(modelName(p.model));
    h.mix(p.nodes);
    h.mix(p.appThreadsPerNode);
    h.mix(p.cpuFreqMHz);
    h.mix(static_cast<std::uint64_t>(p.lookAheadScheduling));
    h.mix(static_cast<std::uint64_t>(p.bitAssistOps));
    h.mix(static_cast<std::uint64_t>(p.perfectProtocolCaches));
    h.mix(static_cast<std::uint64_t>(p.ownershipLog));
    h.mix(p.l2Bytes);
    h.mix(p.dirCacheDivisor);
    // Protocol variant: mixed only when non-default so every bitvector
    // hash (and with it the daemon's dedup/cache keys and existing
    // snapshots) is unchanged by the variant subsystem's existence.
    if (p.protocol != proto::ProtocolKind::Bitvector)
        h.mix(protocolName(p.protocol));
    if (p.injectMigratoryNoRelease)
        h.mix(std::string_view("inject-migratory-no-release"));
    if (p.injectDropOnFloor)
        h.mix(std::string_view("inject-drop-on-floor"));

    const fault::FaultPlan &fp = p.faults;
    h.mix(fp.seed);
    h.mixF(fp.netDrop);
    h.mixF(fp.netDup);
    h.mixF(fp.netDelay);
    h.mixF(fp.netReorder);
    h.mix(fp.netDelayMax);
    h.mix(fp.retransmitTimeout);
    h.mix(fp.maxRetransmits);
    h.mixF(fp.memFlipSingle);
    h.mixF(fp.memFlipDouble);
    h.mixF(fp.forceNak);
    h.mix(static_cast<std::uint64_t>(fp.injectDropWithoutRetransmit));

    const fault::RetryPolicyConfig &rp = p.retryPolicy;
    h.mix(static_cast<std::uint64_t>(rp.kind));
    h.mix(rp.base);
    h.mix(rp.cap);
    h.mix(rp.starvationRetries);
    return h.value();
}

std::uint64_t
Machine::configHash() const
{
    return machineConfigHash(params_);
}

snap::EventCodec
Machine::buildEventCodec()
{
    snap::EventCodec codec;
    net_->registerSnapEvents(codec);
    CacheHierarchy::registerSnapEvents(codec, [this](NodeId n) {
        return n < nodes_.size() ? nodes_[n]->cache.get() : nullptr;
    });
    MemController::registerSnapEvents(codec, [this](NodeId n) {
        return n < nodes_.size() ? nodes_[n]->mc.get() : nullptr;
    });
    SmtCpu::registerSnapEvents(codec, [this](NodeId n) {
        return n < nodes_.size() ? nodes_[n]->cpu.get() : nullptr;
    });
    PEngine::registerSnapEvents(codec, [this](NodeId n) -> PEngine * {
        return n < nodes_.size() ? nodes_[n]->pengine.get() : nullptr;
    });
    return codec;
}

void
Machine::saveSections(snap::SnapWriter &w) const
{
    {
        snap::Ser &out = w.beginSection("meta");
        out.str(modelName(params_.model));
        out.u32(params_.nodes);
        out.u32(params_.appThreadsPerNode);
        out.u64(execTime_);
        out.u64(windowEnd_);
        w.endSection();
    }
    if (workloadState_ != nullptr)
        w.section("workload", *workloadState_);
    for (unsigned n = 0; n < nodes_.size(); ++n) {
        const Node &node = *nodes_[n];
        node.cpu->saveState(w.beginSection(nodeSection(n, "cpu")));
        w.endSection();
        node.mc->saveState(w.beginSection(nodeSection(n, "mc")));
        w.endSection();
        node.cache->saveState(w.beginSection(nodeSection(n, "cache")));
        w.endSection();
        if (node.pengine) {
            node.pengine->saveState(w.beginSection(nodeSection(n, "pe")));
            w.endSection();
        }
        if (node.pthread) {
            node.pthread->saveState(w.beginSection(nodeSection(n, "pt")));
            w.endSection();
        }
    }
    net_->saveState(w.beginSection("net"));
    w.endSection();
    if (faults_) {
        faults_->saveState(w.beginSection("faults"));
        w.endSection();
    }
    if (traceMgr_) {
        traceMgr_->saveState(w.beginSection("trace"));
        w.endSection();
    }
    // Shard bookkeeping (sequence counters + any mailboxed events from
    // a mid-window runUntil stop), then every shard's queue. One
    // section per queue: entries decode independently and positional
    // section names catch shard-count mismatches early.
    shards_.saveState(w.beginSection("shards"));
    w.endSection();
    for (unsigned s = 0; s < shards_.count(); ++s) {
        shards_.queue(s).saveState(w.beginSection(
            "shard" + std::to_string(s) + ".eventq"));
        w.endSection();
    }
}

bool
Machine::save(const std::string &path, std::string *err) const
{
    snap::SnapWriter w(configHash());
    saveSections(w);
    return w.write(path, err);
}

std::vector<std::uint8_t>
Machine::saveImage() const
{
    snap::SnapWriter w(configHash());
    saveSections(w);
    return w.finish();
}

bool
Machine::restore(const std::string &path, std::string *err)
{
    snap::SnapReader r;
    if (!r.load(path)) {
        if (err != nullptr)
            *err = r.error();
        return false;
    }
    return restoreFrom(r, err);
}

bool
Machine::restoreImage(std::vector<std::uint8_t> image, std::string *err)
{
    snap::SnapReader r;
    if (!r.parse(std::move(image))) {
        if (err != nullptr)
            *err = r.error();
        return false;
    }
    return restoreFrom(r, err);
}

bool
Machine::restoreFrom(const snap::SnapReader &r, std::string *err)
{
    auto fail = [err](std::string why) {
        if (err != nullptr)
            *err = std::move(why);
        return false;
    };
    auto sectionFail = [&](std::string_view name, const snap::Des &in) {
        return fail("section '" + std::string(name) + "': " + in.error());
    };

    if (r.configHash() != configHash()) {
        return fail("config hash mismatch: the snapshot was taken on a "
                    "machine with different state-affecting parameters "
                    "(model/nodes/threads/frequencies/fault plan/retry "
                    "policy)");
    }
    if (checker_) {
        return fail("restore requires checkLevel=Off: the checker's "
                    "mirror state is rebuilt from observed transitions "
                    "and cannot be reconstructed mid-run");
    }
    for (unsigned s = 0; s < shards_.count(); ++s) {
        const EventQueue &q = shards_.queue(s);
        if (q.executedCount() != 0 || q.curTick() != 0) {
            return fail("restore requires a freshly constructed machine "
                        "(this one has already run)");
        }
    }

    {
        snap::Des in = r.section("meta");
        std::string model = in.str();
        std::uint32_t nodes = in.u32();
        std::uint32_t tpn = in.u32();
        Tick exec = in.u64();
        Tick window_end = in.u64();
        if (!in.ok())
            return sectionFail("meta", in);
        if (model != modelName(params_.model) ||
            nodes != params_.nodes ||
            tpn != params_.appThreadsPerNode) {
            return fail("snapshot metadata does not match this machine "
                        "(model " + model + ", " + std::to_string(nodes) +
                        " node(s))");
        }
        execTime_ = exec;
        windowEnd_ = window_end;
    }

    if (r.hasSection("workload")) {
        if (workloadState_ == nullptr) {
            return fail("snapshot carries workload state but no "
                        "delegate is attached: build the identical app "
                        "and call setWorkloadState() before restore()");
        }
        snap::Des in = r.section("workload");
        workloadState_->restoreState(in);
        if (!in.ok())
            return sectionFail("workload", in);
    } else if (workloadState_ != nullptr) {
        return fail("snapshot has no workload section but a workload "
                    "delegate is attached");
    }

    snap::EventCodec codec = buildEventCodec();

    for (unsigned n = 0; n < nodes_.size(); ++n) {
        std::string name = nodeSection(n, "cpu");
        snap::Des in = r.section(name);
        nodes_[n]->cpu->restoreState(in);
        if (!in.ok())
            return sectionFail(name, in);
    }
    for (unsigned n = 0; n < nodes_.size(); ++n) {
        std::string name = nodeSection(n, "mc");
        snap::Des in = r.section(name);
        nodes_[n]->mc->restoreState(in, codec);
        if (!in.ok())
            return sectionFail(name, in);
    }
    for (unsigned n = 0; n < nodes_.size(); ++n) {
        std::string name = nodeSection(n, "cache");
        snap::Des in = r.section(name);
        nodes_[n]->cache->restoreState(in, codec);
        if (!in.ok())
            return sectionFail(name, in);
    }
    for (unsigned n = 0; n < nodes_.size(); ++n) {
        Node &node = *nodes_[n];
        if (node.pengine) {
            std::string name = nodeSection(n, "pe");
            snap::Des in = r.section(name);
            node.pengine->restoreState(in);
            if (!in.ok())
                return sectionFail(name, in);
        }
        if (node.pthread) {
            std::string name = nodeSection(n, "pt");
            snap::Des in = r.section(name);
            node.pthread->restoreState(in);
            if (!in.ok())
                return sectionFail(name, in);
        }
    }

    {
        snap::Des in = r.section("net");
        net_->restoreState(in);
        if (!in.ok())
            return sectionFail("net", in);
    }

    if (faults_) {
        snap::Des in = r.section("faults");
        faults_->restoreState(in);
        if (!in.ok())
            return sectionFail("faults", in);
    }

    // Trace config is observation-only (outside the config hash), but a
    // resumed *traced* run can only match its uninterrupted twin if the
    // warmup's telemetry is carried over too.
    if (traceMgr_) {
        if (!r.hasSection("trace")) {
            return fail("tracing is enabled but the snapshot has no "
                        "trace section: take the snapshot with tracing "
                        "on, or restore with tracing off");
        }
        snap::Des in = r.section("trace");
        traceMgr_->restoreState(in);
        if (!in.ok())
            return sectionFail("trace", in);
    }

    {
        snap::Des in = r.section("shards");
        shards_.restoreState(in, codec);
        if (!in.ok())
            return sectionFail("shards", in);
    }
    for (unsigned s = 0; s < shards_.count(); ++s) {
        std::string name = "shard" + std::to_string(s) + ".eventq";
        snap::Des in = r.section(name);
        shards_.queue(s).restoreState(in, codec);
        if (!in.ok())
            return sectionFail(name, in);
    }
    return true;
}

} // namespace smtp
