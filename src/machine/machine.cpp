#include "machine.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "sim/stats.hpp"
#include "trace/export.hpp"

namespace smtp
{

/**
 * How often (in absolute simulated time) the run loops poll for
 * workload completion. A multiple of the window length, and
 * time-aligned so the poll schedule — and thus the tick at which a
 * finished run stops executing residual protocol events — is identical
 * however the run was sliced by runUntil().
 */
constexpr Tick kDoneCheckPeriod = 50 * tickPerNs;

/**
 * Barrier-phase generator top-up (buffered micro-ops per thread).
 * Large enough that a thread rarely drains its buffer inside one
 * window; any dry spell it does hit is a pure function of simulated
 * time, so it is identical under every exec mode and host-thread
 * count.
 */
constexpr std::size_t kRefillTarget = 512;

std::string_view
modelName(MachineModel m)
{
    switch (m) {
      case MachineModel::Base: return "Base";
      case MachineModel::IntPerfect: return "IntPerfect";
      case MachineModel::Int512KB: return "Int512KB";
      case MachineModel::Int64KB: return "Int64KB";
      case MachineModel::SMTp: return "SMTp";
    }
    return "?";
}

bool
modelFromName(std::string_view name, MachineModel &out)
{
    static constexpr MachineModel all[] = {
        MachineModel::Base, MachineModel::IntPerfect,
        MachineModel::Int512KB, MachineModel::Int64KB, MachineModel::SMTp};
    auto eq = [](std::string_view a, std::string_view b) {
        if (a.size() != b.size())
            return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            if (std::tolower(static_cast<unsigned char>(a[i])) !=
                std::tolower(static_cast<unsigned char>(b[i])))
                return false;
        }
        return true;
    };
    for (MachineModel m : all) {
        if (eq(name, modelName(m))) {
            out = m;
            return true;
        }
    }
    return false;
}

Machine::Machine(const MachineParams &params)
    : params_(params), shards_(params.eventKernel, params.nodes),
      fmt_(proto::protocolDirFormat(params.protocol,
                                    params.nodes <= 16 ? 16 : 32)),
      image_(proto::buildProtocolImage(
          params.protocol, fmt_,
          proto::HandlerOptions{params.ownershipLog, false, false,
                                params.injectMigratoryNoRelease}))
{
    SMTP_ASSERT(params.nodes >= 1 && params.nodes <= 32,
                "the study covers 1..32 nodes");
    map_ = std::make_unique<PagePlacementMap>(params.nodes,
                                              fmt_.entryBytes);
    NetworkParams np;
    np.numNodes = params.nodes;
    net_ = std::make_unique<Network>(shards_, np);
    lookahead_ = net_->lookahead();
    sources_.assign(params.nodes * params.appThreadsPerNode, nullptr);

    if (params.trace.enabled)
        traceMgr_ = std::make_unique<trace::TraceManager>(params.trace);

    if (params.faults.enabled() || params.faults.injectDropWithoutRetransmit) {
        faults_ = std::make_unique<fault::FaultInjector>(params.faults,
                                                         params.nodes);
        net_->setFaultInjector(faults_.get());
        // The fault buffers exist only when a plan is active, so traced
        // fault-free runs keep byte-identical export files. One buffer
        // per node: fault decisions execute on the owning shard.
        if (traceMgr_) {
            for (unsigned n = 0; n < params.nodes; ++n) {
                faults_->setTrace(n, traceMgr_->createBuffer(
                                         "fault", static_cast<NodeId>(n),
                                         trace::Category::Fault));
            }
        }
    }

    if (params.checkLevel != check::CheckLevel::Off) {
        check::CheckerParams chp;
        chp.level = params.checkLevel;
        chp.nodes = params.nodes;
        chp.abortOnViolation = params.checkAbortOnViolation;
        chp.watchdogMaxAge = params.checkWatchdogMaxAge;
        checker_ = std::make_unique<check::Checker>(shards_.queue(0),
                                                    fmt_, chp);
        auto *net = net_.get();
        checker_->addDumpHook(
            "network", [net](std::FILE *f) { net->debugState(f); });
        if (!params.wedgeSnapshotPath.empty()) {
            checker_->setWedgeSnapshotHook([this]() -> std::string {
                std::string serr;
                if (!save(params_.wedgeSnapshotPath, &serr)) {
                    std::fprintf(stderr, "wedge snapshot failed: %s\n",
                                 serr.c_str());
                    return {};
                }
                return params_.wedgeSnapshotPath;
            });
        }
    }

    if (checker_) {
        // Hooks run on the shard owning the reporting node; timestamps
        // must come from that shard's clock, and the watchdog must arm
        // from the single-threaded barrier phase (see checker.hpp).
        checker_->setTickSource(
            [this](NodeId n) { return shards_.queue(n).curTick(); });
        checker_->enableBarrierArming();
    }

    // Asserts-level checking is internally serialized per hook and
    // reads per-shard clocks, so it runs under the full parallel
    // engine. Only the FullMirror quiescence mirrors need a globally
    // serialized schedule; that fallback is loud (stderr + the
    // execSerializedByChecker flag in bench records), never silent.
    unsigned host_threads = 1;
    if (params.exec.parallel()) {
        if (checker_ && checker_->fullMirror()) {
            execSerializedByChecker_ = true;
            std::fprintf(stderr,
                "machine: --check=full forces one host thread "
                "(FullMirror quiescence mirrors are unsharded); "
                "requested %s ignored\n",
                params.exec.toString().c_str());
        } else {
            host_threads = params.exec.threads != 0
                               ? params.exec.threads
                               : std::thread::hardware_concurrency();
            if (host_threads == 0)
                host_threads = 1;
        }
    }
    executor_ = std::make_unique<ShardExecutor>(shards_, host_threads);

    bool smtp = params.model == MachineModel::SMTp;

    for (unsigned n = 0; n < params.nodes; ++n) {
        auto node = std::make_unique<Node>();
        EventQueue &eq = shards_.queue(n);

        CacheParams cp;
        cp.l2Bytes = params.l2Bytes;
        cp.enableBypass = smtp;
        cp.perfectProtocolCaches = smtp && params.perfectProtocolCaches;
        ClockDomain cpu_clock(params.cpuFreqMHz);
        node->cache = std::make_unique<CacheHierarchy>(
            eq, cpu_clock, static_cast<NodeId>(n), cp);

        McParams mp;
        switch (params.model) {
          case MachineModel::Base:
            mp.freqMHz = 400;
            mp.busLatency = 8 * tickPerNs; // off-chip crossing
            break;
          case MachineModel::IntPerfect:
            mp.freqMHz = params.cpuFreqMHz;
            mp.busLatency = 1 * tickPerNs;
            break;
          default:
            mp.freqMHz = params.cpuFreqMHz / 2;
            mp.busLatency = 1 * tickPerNs;
            break;
        }
        mp.probeLatency = 9 * cpu_clock.period(); // L2 round trip
        mp.retry = params.retryPolicy;
        mp.rngSeed = 1000 + n;
        if (proto::protocolUsesPhasePriority(params.protocol)) {
            mp.phasePriority = true;
            mp.injectDropOnFloor = params.injectDropOnFloor;
        }
        node->mc = std::make_unique<MemController>(
            eq, static_cast<NodeId>(n), mp, *map_, image_, *node->cache,
            *net_);

        CpuParams cpup;
        cpup.freqMHz = params.cpuFreqMHz;
        cpup.appThreads = params.appThreadsPerNode;
        cpup.protocolThread = smtp;
        // 32*(n+1)+96 registers; the non-SMTp baselines get the same
        // total with one fewer active context (paper Section 3).
        cpup.intRegs = 32 * (params.appThreadsPerNode + 1) + 96;
        cpup.fpRegs = cpup.intRegs;
        cpup.bitAssistOps = params.bitAssistOps;
        node->cpu = std::make_unique<SmtCpu>(eq, cpup, *node->cache,
                                             static_cast<NodeId>(n));

        if (smtp) {
            ProtocolThreadParams pt;
            pt.lookAheadScheduling = params.lookAheadScheduling;
            pt.bitAssistOps = params.bitAssistOps;
            node->pthread = std::make_unique<ProtocolThread>(
                eq, *node->cpu, *node->mc, pt);
        } else {
            PEngineParams pe;
            switch (params.model) {
              case MachineModel::Base:
                pe.freqMHz = 400;
                pe.dcacheBytes = 512 * 1024;
                break;
              case MachineModel::IntPerfect:
                pe.freqMHz = params.cpuFreqMHz;
                pe.perfectDcache = true;
                break;
              case MachineModel::Int512KB:
                pe.freqMHz = params.cpuFreqMHz / 2;
                pe.dcacheBytes = 512 * 1024;
                break;
              case MachineModel::Int64KB:
                pe.freqMHz = params.cpuFreqMHz / 2;
                pe.dcacheBytes = 64 * 1024;
                break;
              default:
                break;
            }
            SMTP_ASSERT(isPow2(params.dirCacheDivisor),
                        "dirCacheDivisor must be a power of two");
            pe.dcacheBytes = std::max<std::size_t>(
                pe.dcacheBytes / params.dirCacheDivisor, 2048);
            node->pengine =
                std::make_unique<PEngine>(eq, *node->mc, pe);
        }

        auto *mc = node->mc.get();
        if (faults_)
            mc->setFaultInjector(faults_.get());
        if (checker_) {
            node->cache->setChecker(checker_.get());
            mc->setChecker(checker_.get());
            checker_->addDumpHook("node" + std::to_string(n) + ".mc",
                                  [mc](std::FILE *f) { mc->debugState(f); });
        }
        node->cache->connect(
            [mc](const proto::Message &m) { return mc->lmiEnqueue(m); },
            [mc](Addr a, bool w, EventQueue::Callback fn) {
                mc->bypassAccess(a, w, std::move(fn));
            });
        net_->attach(static_cast<NodeId>(n),
                     [mc](const proto::Message &m) {
                         return mc->niDeliver(m);
                     });

        if (traceMgr_) {
            // Buffer creation order fixes the exporters' track order:
            // fault buffers first, then node-major cpu / proto / mc /
            // net, then the per-shard exec buffers.
            auto nid = static_cast<NodeId>(n);
            node->cpu->setTrace(
                traceMgr_->createBuffer("cpu", nid, trace::Category::Cpu));
            trace::TraceBuffer *pb = traceMgr_->createBuffer(
                "proto", nid, trace::Category::Protocol);
            if (node->pthread)
                node->pthread->setTrace(pb);
            else
                node->pengine->setTrace(pb);
            trace::TraceBuffer *mb =
                traceMgr_->createBuffer("mc", nid, trace::Category::Mem);
            node->mc->setTrace(mb);
            node->cache->setTrace(mb);
            net_->setTrace(nid, traceMgr_->createBuffer(
                                    "net", nid, trace::Category::Network));
        }

        nodes_.push_back(std::move(node));
    }

    if (traceMgr_) {
        // Per-shard exec telemetry (window/barrier events). Opt-in via
        // Category::Exec: BarrierWait records nondeterministic host
        // time, so the category is excluded from the default mask and
        // from telemetry bit-identity comparisons.
        bool any_exec = false;
        execTrace_.assign(params.nodes, nullptr);
        lastExecuted_.assign(params.nodes, 0);
        lastBusyNs_.assign(params.nodes, 0);
        for (unsigned s = 0; s < params.nodes; ++s) {
            execTrace_[s] = traceMgr_->createBuffer(
                "exec", static_cast<NodeId>(s), trace::Category::Exec);
            any_exec = any_exec || execTrace_[s] != nullptr;
        }
        if (any_exec)
            executor_->setMeasure(true);
        else
            execTrace_.clear();

        if (checker_)
            checker_->setTraceManager(traceMgr_.get());

        auto &sampler = traceMgr_->sampler();
        auto *net = net_.get();
        sampler.addProbe("net.msgs", [net] {
            return static_cast<double>(net->msgsInjected());
        });
        sampler.addProbe("net.bytes", [net] {
            return static_cast<double>(net->bytesInjected());
        });
        for (unsigned n = 0; n < nodes_.size(); ++n) {
            Node *node = nodes_[n].get();
            std::string p = "n" + std::to_string(n) + ".";
            unsigned app_threads = params_.appThreadsPerNode;
            sampler.addProbe(p + "l2Misses", [node] {
                return static_cast<double>(node->cache->l2Misses.value());
            });
            sampler.addProbe(p + "mshrsInUse", [node] {
                return static_cast<double>(node->cache->mshrsInUse());
            });
            sampler.addProbe(p + "handlers", [node] {
                return static_cast<double>(
                    node->mc->handlersDispatched.value());
            });
            sampler.addProbe(p + "protoBusyTicks", [node] {
                return static_cast<double>(node->agentBusyTicks());
            });
            sampler.addProbe(p + "sdramBusyTicks", [node] {
                return static_cast<double>(
                    node->mc->sdram().busyTicks.value());
            });
            sampler.addProbe(p + "memStallCycles", [node, app_threads] {
                std::uint64_t sum = 0;
                for (unsigned t = 0; t < app_threads; ++t) {
                    sum += node->cpu
                               ->threadStats(static_cast<ThreadId>(t))
                               .memStallCycles.value();
                }
                return static_cast<double>(sum);
            });
        }
        if (params.trace.intervalCycles > 0) {
            sampler.start(ClockDomain(params.cpuFreqMHz)
                              .cyclesToTicks(params.trace.intervalCycles));
        }
    }
}

Machine::~Machine() = default;

void
Machine::setSource(unsigned node, unsigned thread, InstSource *source)
{
    SMTP_ASSERT(node < nodes_.size(), "node out of range");
    SMTP_ASSERT(thread < params_.appThreadsPerNode, "thread out of range");
    nodes_[node]->cpu->setSource(static_cast<ThreadId>(thread), source);
    sources_[node * params_.appThreadsPerNode + thread] = source;
    if (source != nullptr)
        source->setBuffered(true);
}

bool
Machine::allDone() const
{
    for (const auto &node : nodes_) {
        if (!node->cpu->appThreadsDone())
            return false;
    }
    return true;
}

void
Machine::prime()
{
    if (windowEnd_ != 0)
        return;
    windowEnd_ = lookahead_;
    // First-window generation: the buffers must hold work before the
    // CPUs' first fetch. The refill schedule (here, then at every
    // barrier, in gtid order) is a pure function of simulated time, so
    // sliced and resumed runs generate in the identical global order.
    // A restored machine skips this (windowEnd_ came from the
    // snapshot): its buffers were rebuilt by the resume-log replay.
    for (InstSource *src : sources_) {
        if (src != nullptr) {
            src->setNow(0);
            src->refill(kRefillTarget);
        }
    }
}

void
Machine::runWindow(Tick end)
{
    bool measure = !execTrace_.empty();
    std::chrono::steady_clock::time_point t0;
    if (measure)
        t0 = std::chrono::steady_clock::now();

    executor_->runWindow(end - 1);

    std::uint64_t wall_ns = 0;
    if (measure) {
        wall_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }

    // ---- Single-threaded barrier phase ----
    shards_.drainMailboxes();

    // Watchdog arming deferred from shard threads (checker.hpp): the
    // scan event lands on queue 0 while nothing else runs.
    if (checker_)
        checker_->onBarrier();

    // Replenish the generators (global workload plane: functional
    // memory, sync primitives) and wake any CPU that idled on a dry
    // buffer. gtid order keeps the functional interleaving exec-mode
    // independent. The barrier clock is published first so generators
    // stamp work items (request birth/retire) with this window's tick —
    // a pure function of simulated time, hence exec-mode independent
    // and reproduced exactly by the resume-log replay on restore.
    for (InstSource *src : sources_) {
        if (src != nullptr) {
            src->setNow(end - 1);
            src->refill(kRefillTarget);
        }
    }
    for (auto &node : nodes_)
        node->cpu->poke();

    // Interval sampling happens only at true window barriers (never at
    // partial runUntil stops): the sampled state must be a pure
    // function of simulated time or a sliced-and-resumed traced run
    // would diverge from its uninterrupted twin.
    if (traceMgr_ != nullptr && traceMgr_->sampler().active())
        traceMgr_->sampler().sampleUpTo(end - 1);

    if (measure) {
        for (unsigned s = 0; s < shards_.count(); ++s) {
            trace::TraceBuffer *tb = execTrace_[s];
            if (tb == nullptr)
                continue;
            std::uint64_t ex = shards_.queue(s).executedCount();
            tb->record(end - 1, trace::EventId::WindowAdvance,
                       trace::packWindow(s, ex - lastExecuted_[s]));
            lastExecuted_[s] = ex;
            std::uint64_t busy = executor_->busyNs(s);
            std::uint64_t busy_delta = busy - lastBusyNs_[s];
            lastBusyNs_[s] = busy;
            std::uint64_t wait_ns =
                wall_ns > busy_delta ? wall_ns - busy_delta : 0;
            tb->record(end - 1, trace::EventId::BarrierWait,
                       trace::packWindow(s, wait_ns));
        }
    }
}

bool
Machine::advanceWindow()
{
    Tick m = shards_.minPendingTick();
    if (m == maxTick)
        return false;
    // Next barrier: one window ahead, or aligned past the earliest
    // pending event when every shard is idle until a later tick
    // (window skip). Events re-armed at the barrier tick itself (m ==
    // windowEnd_ - 1, from a barrier-phase poke) cap the advance to
    // exactly one window, preserving the lookahead safety argument.
    windowEnd_ = (std::max(m, windowEnd_) / lookahead_) * lookahead_ +
                 lookahead_;
    return true;
}

Tick
Machine::run(Tick limit)
{
    prime();
    for (auto &node : nodes_)
        node->cpu->start();

    Tick deadline = curTick() + limit;

    // A restored machine may already be past its workload's end (the
    // saved run had finished); exit where we stand rather than one
    // window later.
    if (allDone()) {
        execTime_ = curTick();
        return execTime_;
    }

    // The completion poll runs at barriers whose end is a multiple of
    // kDoneCheckPeriod — aligned to absolute simulated time, so the
    // loop-exit tick (and with it the final cycle counters) is
    // identical however the run was sliced by runUntil().
    while (curTick() < deadline) {
        Tick end = windowEnd_;
        runWindow(end);
        if (end % kDoneCheckPeriod == 0 && allDone())
            break;
        if (!advanceWindow())
            break;
    }
    if (!allDone() && checker_)
        checker_->reportWedge("run deadline reached with threads "
                              "unfinished");
    SMTP_ASSERT(allDone(),
                "machine did not finish within the time limit "
                "(workload deadlock?)");
    execTime_ = curTick();
    return execTime_;
}

bool
Machine::runUntil(Tick when)
{
    prime();
    for (auto &node : nodes_)
        node->cpu->start();

    // Same entry short-circuit as run(): a restored already-finished
    // machine must report done at its restored tick, not drift to the
    // next barrier.
    if (allDone()) {
        execTime_ = curTick();
        return true;
    }

    bool stopped = false;
    while (windowEnd_ - 1 <= when) {
        Tick end = windowEnd_;
        runWindow(end);
        if (end % kDoneCheckPeriod == 0 && allDone()) {
            stopped = true;
            break;
        }
        if (!advanceWindow()) {
            stopped = true;
            break;
        }
    }
    if (!stopped && curTick() < when) {
        // Partial tail window: advance every shard to `when` with no
        // barrier afterwards. No mailbox drain, no refill, no
        // sampling — those are barrier-phase actions, and running them
        // at an arbitrary slice point would make a sliced run diverge
        // from its uninterrupted twin. In-flight cross-shard events
        // stay mailboxed (save() carries them); the next
        // run()/runUntil() completes this window and drains them at
        // the real barrier.
        executor_->runWindow(when);
    }
    execTime_ = curTick();
    return allDone();
}

std::uint64_t
Machine::committedAppInsts() const
{
    std::uint64_t sum = 0;
    for (const auto &node : nodes_) {
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            sum += node->cpu->threadStats(static_cast<ThreadId>(t))
                       .committed.value();
        }
    }
    return sum;
}

bool
Machine::quiescent() const
{
    if (!net_->quiescent())
        return false;
    for (const auto &node : nodes_) {
        if (!node->cache->quiescent() || !node->mc->quiescent())
            return false;
        // A store still draining from a store buffer will create new
        // coherence work; the machine is not quiet until CPUs are.
        if (!node->cpu->idle())
            return false;
    }
    return true;
}

void
Machine::quiesce(Tick limit)
{
    if (windowEnd_ == 0)
        windowEnd_ = lookahead_;
    Tick deadline = curTick() + limit;
    // Whole windows (executor + mailbox exchange, no refill/sampling —
    // the workload is finished and quiescing is not a measured phase)
    // until quiet or out of work/time.
    while (curTick() < deadline && !quiescent()) {
        executor_->runWindow(windowEnd_ - 1);
        shards_.drainMailboxes();
        if (checker_)
            checker_->onBarrier();
        if (!advanceWindow())
            break;
    }
    if (!quiescent()) {
        if (checker_)
            checker_->reportWedge("machine failed to quiesce");
        std::fprintf(stderr, "quiesce failure: net=%d evq=%zu\n",
                     static_cast<int>(net_->quiescent()),
                     shards_.pendingEvents());
        for (unsigned n = 0; n < nodes_.size(); ++n) {
            std::fprintf(stderr, "  n%u cacheQ=%d mshr=%u mcQ=%d\n", n,
                         static_cast<int>(nodes_[n]->cache->quiescent()),
                         nodes_[n]->cache->mshrsInUse(),
                         static_cast<int>(nodes_[n]->mc->quiescent()));
            nodes_[n]->mc->debugState(stderr);
            nodes_[n]->cpu->debugDump(stderr);
        }
        SMTP_PANIC("machine failed to quiesce after the run");
    }
    if (checker_ && checker_->fullMirror())
        checker_->verifyQuiescent();
}

double
Machine::memStallFraction() const
{
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &node : nodes_) {
        Cycles cyc = node->cpu->cycles.value();
        if (cyc == 0)
            continue;
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            const auto &st =
                node->cpu->threadStats(static_cast<ThreadId>(t));
            sum += static_cast<double>(st.memStallCycles.value()) /
                   static_cast<double>(cyc);
            ++count;
        }
    }
    return count ? sum / count : 0.0;
}

double
Machine::peakProtocolOccupancy() const
{
    double peak = 0.0;
    for (const auto &node : nodes_) {
        double occ = static_cast<double>(node->agentBusyTicks()) /
                     static_cast<double>(std::max<Tick>(execTime_, 1));
        peak = std::max(peak, occ);
    }
    return peak;
}

bool
Machine::writeTraceFiles(const std::string &stem, std::string *err) const
{
    if (!traceMgr_) {
        if (err != nullptr)
            *err = "tracing not enabled on this machine";
        return false;
    }
    trace::TraceData data;
    traceMgr_->snapshot(data, execTime_, params_.nodes);
    data.protocol = std::string(proto::protocolName(params_.protocol));
    return trace::writeTraceFiles(data, stem, err);
}

Machine::MigratoryCounters
Machine::migratoryCounters() const
{
    MigratoryCounters out;
    if (!proto::protocolIsMigratory(params_.protocol))
        return out;
    for (unsigned n = 0; n < nodes_.size(); ++n) {
        Addr base = proto::protoScratchBase +
                    static_cast<Addr>(n) * proto::protoNodeStride;
        const auto &ram = nodes_[n]->mc->ram();
        out.detected += ram.read(base + proto::migDetectOffset, 8);
        out.saved += ram.read(base + proto::migSavedOffset, 8);
        out.reverts += ram.read(base + proto::migRevertOffset, 8);
    }
    return out;
}

Machine::ProtoCharacteristics
Machine::protoCharacteristics() const
{
    ProtoCharacteristics out;
    SMTP_ASSERT(params_.model == MachineModel::SMTp,
                "protocol-thread characteristics need an SMTp machine");
    std::uint64_t cond = 0, mispred = 0, squash_cycles = 0, cycles = 0;
    std::uint64_t proto_retired = 0, all_retired = 0;
    for (const auto &node : nodes_) {
        ThreadId ptid = node->cpu->protocolTid();
        const auto &ps = node->cpu->threadStats(ptid);
        cond += ps.condBranches.value();
        mispred += ps.mispredicts.value();
        squash_cycles += ps.squashCycles.value();
        cycles += node->cpu->cycles.value();
        proto_retired += ps.committed.value();
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            all_retired += node->cpu
                               ->threadStats(static_cast<ThreadId>(t))
                               .committed.value();
        }
        all_retired += ps.committed.value();
    }
    if (cond > 0)
        out.branchMispredictRate =
            static_cast<double>(mispred) / static_cast<double>(cond);
    if (cycles > 0)
        out.squashCyclePct = static_cast<double>(squash_cycles) /
                             static_cast<double>(cycles);
    if (all_retired > 0)
        out.retiredInstPct = static_cast<double>(proto_retired) /
                             static_cast<double>(all_retired);
    return out;
}

} // namespace smtp

namespace smtp
{

void
Machine::dumpStats(std::ostream &os) const
{
    // Build a transient stat hierarchy over the live counters. The
    // components outlive the dump, so registering pointers is safe;
    // per-shard sliced stats are folded into transient locals that
    // stay alive through root.dump().
    StatGroup root("machine." + std::string(modelName(params_.model)));
    std::vector<std::unique_ptr<StatGroup>> groups;
    Counter exec_us;
    exec_us += execTime_ / tickPerUs;
    root.add("execTimeUs", &exec_us);
    // Migratory prediction counters live in home-side protocol scratch
    // RAM (the handler program bumps them), so they are summed here
    // into transient stats rather than registered live.
    Counter mig_detected, mig_saved, mig_reverts;
    if (proto::protocolIsMigratory(params_.protocol)) {
        MigratoryCounters mc = migratoryCounters();
        mig_detected += mc.detected;
        mig_saved += mc.saved;
        mig_reverts += mc.reverts;
        root.add("migDetected", &mig_detected);
        root.add("migUpgradesSaved", &mig_saved);
        root.add("migReverts", &mig_reverts);
    }
    Counter net_msgs, net_bytes;
    net_msgs += net_->msgsInjected();
    net_bytes += net_->bytesInjected();
    Distribution net_hops = net_->hopDist();
    root.add("netMsgs", &net_msgs);
    root.add("netBytes", &net_bytes);
    root.add("netHops", &net_hops);

    std::unique_ptr<StatGroup> fg;
    Counter f_drops, f_dups, f_dups_filtered, f_delays, f_reorders,
        f_lost, f_ecc_c, f_ecc_d, f_ecc_s, f_ecc_r, f_naks;
    if (faults_) {
        f_drops += faults_->netDrops();
        f_dups += faults_->netDups();
        f_dups_filtered += faults_->netDupsFiltered();
        f_delays += faults_->netDelays();
        f_reorders += faults_->netReorders();
        f_lost += faults_->netLost();
        f_ecc_c += faults_->eccCorrected();
        f_ecc_d += faults_->eccDetected();
        f_ecc_s += faults_->eccScrubs();
        f_ecc_r += faults_->eccRefetches();
        f_naks += faults_->naksForced();
        fg = std::make_unique<StatGroup>("faults");
        fg->add("netDrops", &f_drops);
        fg->add("netDups", &f_dups);
        fg->add("netDupsFiltered", &f_dups_filtered);
        fg->add("netDelays", &f_delays);
        fg->add("netReorders", &f_reorders);
        fg->add("netLost", &f_lost);
        fg->add("eccCorrected", &f_ecc_c);
        fg->add("eccDetected", &f_ecc_d);
        fg->add("eccScrubs", &f_ecc_s);
        fg->add("eccRefetches", &f_ecc_r);
        fg->add("naksForced", &f_naks);
        root.addChild(fg.get());
    }

    for (unsigned n = 0; n < nodes_.size(); ++n) {
        const Node &node = *nodes_[n];
        auto g = std::make_unique<StatGroup>("node" + std::to_string(n));
        g->add("cycles", &node.cpu->cycles);
        g->add("fetched", &node.cpu->fetchedInsts);
        g->add("l1dHits", &node.cache->l1dHits);
        g->add("l1dMisses", &node.cache->l1dMisses);
        g->add("l2Hits", &node.cache->l2Hits);
        g->add("l2Misses", &node.cache->l2Misses);
        g->add("writebacksDirty", &node.cache->writebacksDirty);
        g->add("prefetchesIssued", &node.cache->prefetchesIssued);
        g->add("prefetchesUseful", &node.cache->prefetchesUseful);
        g->add("handlers", &node.mc->handlersDispatched);
        g->add("naks", &node.mc->naksSent);
        g->add("starvationFlags", &node.mc->starvationFlags);
        g->add("invalsSent", &node.mc->invalsSent);
        g->add("probesDeferred", &node.mc->probesDeferred);
        g->add("handlerLatency", &node.mc->handlerLatency);
        g->add("reqQueueDelay", &node.mc->reqQueueDelay);
        if (proto::protocolUsesPhasePriority(params_.protocol))
            g->add("phaseFloorTrips", &node.mc->phaseFloorTrips);
        g->add("sdramReads", &node.mc->sdram().reads);
        g->add("sdramWrites", &node.mc->sdram().writes);
        if (node.pengine) {
            g->add("ppInstructions", &node.pengine->instructions);
            g->add("ppPairedIssues", &node.pengine->pairedIssues);
            g->add("ppDcacheMisses", &node.pengine->dcacheMisses);
        }
        if (node.pthread) {
            g->add("ptHandlers", &node.pthread->handlersStarted);
            g->add("ptLookAheadStarts", &node.pthread->lookAheadStarts);
            g->add("ptOpsSupplied", &node.pthread->opsSupplied);
            g->add("ptPeakIntRegs", &node.cpu->protoOccupancy.intRegs);
            g->add("ptPeakIQ", &node.cpu->protoOccupancy.intQueue);
        }
        root.addChild(g.get());
        groups.push_back(std::move(g));
    }
    root.dump(os);
}

} // namespace smtp
