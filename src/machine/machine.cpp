#include "machine.hpp"

#include <cstdio>
#include <string>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "sim/stats.hpp"
#include "trace/export.hpp"

namespace smtp
{

/**
 * How often (in absolute simulated time) the run loops poll for
 * workload completion. Time-aligned so the poll schedule — and thus
 * the tick at which a finished run stops executing residual protocol
 * events — is identical however the run was sliced by runUntil().
 */
constexpr Tick kDoneCheckPeriod = 50 * tickPerNs;

std::string_view
modelName(MachineModel m)
{
    switch (m) {
      case MachineModel::Base: return "Base";
      case MachineModel::IntPerfect: return "IntPerfect";
      case MachineModel::Int512KB: return "Int512KB";
      case MachineModel::Int64KB: return "Int64KB";
      case MachineModel::SMTp: return "SMTp";
    }
    return "?";
}

Machine::Machine(const MachineParams &params)
    : params_(params), eq_(params.eventKernel),
      fmt_(proto::DirFormat::forNodes(params.nodes <= 16 ? 16 : 32)),
      image_(proto::buildHandlerImage(
          fmt_, proto::HandlerOptions{params.ownershipLog}))
{
    SMTP_ASSERT(params.nodes >= 1 && params.nodes <= 32,
                "the study covers 1..32 nodes");
    map_ = std::make_unique<PagePlacementMap>(params.nodes,
                                              fmt_.entryBytes);
    NetworkParams np;
    np.numNodes = params.nodes;
    net_ = std::make_unique<Network>(eq_, np);

    if (params.trace.enabled)
        traceMgr_ = std::make_unique<trace::TraceManager>(params.trace);

    if (params.faults.enabled() || params.faults.injectDropWithoutRetransmit) {
        faults_ = std::make_unique<fault::FaultInjector>(params.faults,
                                                         params.nodes);
        net_->setFaultInjector(faults_.get());
        // The fault buffer exists only when a plan is active, so traced
        // fault-free runs keep byte-identical export files.
        if (traceMgr_) {
            faults_->setTrace(traceMgr_->createBuffer(
                "fault", 0, trace::Category::Fault));
        }
    }

    if (params.checkLevel != check::CheckLevel::Off) {
        check::CheckerParams chp;
        chp.level = params.checkLevel;
        chp.nodes = params.nodes;
        chp.abortOnViolation = params.checkAbortOnViolation;
        chp.watchdogMaxAge = params.checkWatchdogMaxAge;
        checker_ = std::make_unique<check::Checker>(eq_, fmt_, chp);
        auto *net = net_.get();
        checker_->addDumpHook(
            "network", [net](std::FILE *f) { net->debugState(f); });
        if (!params.wedgeSnapshotPath.empty()) {
            checker_->setWedgeSnapshotHook([this]() -> std::string {
                std::string serr;
                if (!save(params_.wedgeSnapshotPath, &serr)) {
                    std::fprintf(stderr, "wedge snapshot failed: %s\n",
                                 serr.c_str());
                    return {};
                }
                return params_.wedgeSnapshotPath;
            });
        }
    }

    bool smtp = params.model == MachineModel::SMTp;

    for (unsigned n = 0; n < params.nodes; ++n) {
        auto node = std::make_unique<Node>();

        CacheParams cp;
        cp.l2Bytes = params.l2Bytes;
        cp.enableBypass = smtp;
        cp.perfectProtocolCaches = smtp && params.perfectProtocolCaches;
        ClockDomain cpu_clock(params.cpuFreqMHz);
        node->cache = std::make_unique<CacheHierarchy>(
            eq_, cpu_clock, static_cast<NodeId>(n), cp);

        McParams mp;
        switch (params.model) {
          case MachineModel::Base:
            mp.freqMHz = 400;
            mp.busLatency = 8 * tickPerNs; // off-chip crossing
            break;
          case MachineModel::IntPerfect:
            mp.freqMHz = params.cpuFreqMHz;
            mp.busLatency = 1 * tickPerNs;
            break;
          default:
            mp.freqMHz = params.cpuFreqMHz / 2;
            mp.busLatency = 1 * tickPerNs;
            break;
        }
        mp.probeLatency = 9 * cpu_clock.period(); // L2 round trip
        mp.retry = params.retryPolicy;
        mp.rngSeed = 1000 + n;
        node->mc = std::make_unique<MemController>(
            eq_, static_cast<NodeId>(n), mp, *map_, image_, *node->cache,
            *net_);

        CpuParams cpup;
        cpup.freqMHz = params.cpuFreqMHz;
        cpup.appThreads = params.appThreadsPerNode;
        cpup.protocolThread = smtp;
        // 32*(n+1)+96 registers; the non-SMTp baselines get the same
        // total with one fewer active context (paper Section 3).
        cpup.intRegs = 32 * (params.appThreadsPerNode + 1) + 96;
        cpup.fpRegs = cpup.intRegs;
        cpup.bitAssistOps = params.bitAssistOps;
        node->cpu = std::make_unique<SmtCpu>(eq_, cpup, *node->cache,
                                             static_cast<NodeId>(n));

        if (smtp) {
            ProtocolThreadParams pt;
            pt.lookAheadScheduling = params.lookAheadScheduling;
            pt.bitAssistOps = params.bitAssistOps;
            node->pthread = std::make_unique<ProtocolThread>(
                eq_, *node->cpu, *node->mc, pt);
        } else {
            PEngineParams pe;
            switch (params.model) {
              case MachineModel::Base:
                pe.freqMHz = 400;
                pe.dcacheBytes = 512 * 1024;
                break;
              case MachineModel::IntPerfect:
                pe.freqMHz = params.cpuFreqMHz;
                pe.perfectDcache = true;
                break;
              case MachineModel::Int512KB:
                pe.freqMHz = params.cpuFreqMHz / 2;
                pe.dcacheBytes = 512 * 1024;
                break;
              case MachineModel::Int64KB:
                pe.freqMHz = params.cpuFreqMHz / 2;
                pe.dcacheBytes = 64 * 1024;
                break;
              default:
                break;
            }
            SMTP_ASSERT(isPow2(params.dirCacheDivisor),
                        "dirCacheDivisor must be a power of two");
            pe.dcacheBytes = std::max<std::size_t>(
                pe.dcacheBytes / params.dirCacheDivisor, 2048);
            node->pengine =
                std::make_unique<PEngine>(eq_, *node->mc, pe);
        }

        auto *mc = node->mc.get();
        if (faults_)
            mc->setFaultInjector(faults_.get());
        if (checker_) {
            node->cache->setChecker(checker_.get());
            mc->setChecker(checker_.get());
            checker_->addDumpHook("node" + std::to_string(n) + ".mc",
                                  [mc](std::FILE *f) { mc->debugState(f); });
        }
        node->cache->connect(
            [mc](const proto::Message &m) { return mc->lmiEnqueue(m); },
            [mc](Addr a, bool w, EventQueue::Callback fn) {
                mc->bypassAccess(a, w, std::move(fn));
            });
        net_->attach(static_cast<NodeId>(n),
                     [mc](const proto::Message &m) {
                         return mc->niDeliver(m);
                     });

        if (traceMgr_) {
            // Buffer creation order fixes the exporters' track order:
            // node-major, then cpu / proto / mc / net.
            auto nid = static_cast<NodeId>(n);
            node->cpu->setTrace(
                traceMgr_->createBuffer("cpu", nid, trace::Category::Cpu));
            trace::TraceBuffer *pb = traceMgr_->createBuffer(
                "proto", nid, trace::Category::Protocol);
            if (node->pthread)
                node->pthread->setTrace(pb);
            else
                node->pengine->setTrace(pb);
            trace::TraceBuffer *mb =
                traceMgr_->createBuffer("mc", nid, trace::Category::Mem);
            node->mc->setTrace(mb);
            node->cache->setTrace(mb);
            net_->setTrace(nid, traceMgr_->createBuffer(
                                    "net", nid, trace::Category::Network));
        }

        nodes_.push_back(std::move(node));
    }

    if (traceMgr_) {
        if (checker_)
            checker_->setTraceManager(traceMgr_.get());

        auto &sampler = traceMgr_->sampler();
        auto *net = net_.get();
        sampler.addProbe("net.msgs", [net] {
            return static_cast<double>(net->msgsInjected.value());
        });
        sampler.addProbe("net.bytes", [net] {
            return static_cast<double>(net->bytesInjected.value());
        });
        for (unsigned n = 0; n < nodes_.size(); ++n) {
            Node *node = nodes_[n].get();
            std::string p = "n" + std::to_string(n) + ".";
            unsigned app_threads = params_.appThreadsPerNode;
            sampler.addProbe(p + "l2Misses", [node] {
                return static_cast<double>(node->cache->l2Misses.value());
            });
            sampler.addProbe(p + "mshrsInUse", [node] {
                return static_cast<double>(node->cache->mshrsInUse());
            });
            sampler.addProbe(p + "handlers", [node] {
                return static_cast<double>(
                    node->mc->handlersDispatched.value());
            });
            sampler.addProbe(p + "protoBusyTicks", [node] {
                return static_cast<double>(node->agentBusyTicks());
            });
            sampler.addProbe(p + "sdramBusyTicks", [node] {
                return static_cast<double>(
                    node->mc->sdram().busyTicks.value());
            });
            sampler.addProbe(p + "memStallCycles", [node, app_threads] {
                std::uint64_t sum = 0;
                for (unsigned t = 0; t < app_threads; ++t) {
                    sum += node->cpu
                               ->threadStats(static_cast<ThreadId>(t))
                               .memStallCycles.value();
                }
                return static_cast<double>(sum);
            });
        }
        if (params.trace.intervalCycles > 0) {
            sampler.start(ClockDomain(params.cpuFreqMHz)
                              .cyclesToTicks(params.trace.intervalCycles));
        }
    }
}

Machine::~Machine() = default;

void
Machine::setSource(unsigned node, unsigned thread, InstSource *source)
{
    SMTP_ASSERT(node < nodes_.size(), "node out of range");
    SMTP_ASSERT(thread < params_.appThreadsPerNode, "thread out of range");
    nodes_[node]->cpu->setSource(static_cast<ThreadId>(thread), source);
}

Tick
Machine::run(Tick limit)
{
    for (auto &node : nodes_)
        node->cpu->start();

    Tick deadline = eq_.curTick() + limit;
    auto all_done = [this] {
        for (const auto &node : nodes_) {
            if (!node->cpu->appThreadsDone())
                return false;
        }
        return true;
    };

    // Interval sampling rides the run loop rather than scheduling
    // events of its own: an eq-scheduled sampler would advance curTick
    // past the workload's natural end and perturb measured times.
    trace::IntervalSampler *sampler =
        traceMgr_ != nullptr && traceMgr_->sampler().active()
            ? &traceMgr_->sampler()
            : nullptr;

    // A restored machine may already be past its workload's end (the
    // saved run had finished); exit where we stand rather than one
    // poll period later.
    if (all_done()) {
        execTime_ = eq_.curTick();
        return execTime_;
    }

    // The completion poll is aligned to absolute simulated time, not an
    // event count: an event-count phase would make the loop-exit tick
    // (and with it the final cycle counters) depend on where the run
    // started, breaking the snapshot contract that an interrupted +
    // resumed run is bit-identical to an uninterrupted one.
    Tick next_check = ((eq_.curTick() / kDoneCheckPeriod) + 1) *
                      kDoneCheckPeriod;
    while (!eq_.empty() && eq_.curTick() < deadline) {
        eq_.runOne();
        if (sampler != nullptr)
            sampler->sampleUpTo(eq_.curTick());
        if (eq_.curTick() >= next_check) {
            next_check = ((eq_.curTick() / kDoneCheckPeriod) + 1) *
                         kDoneCheckPeriod;
            if (all_done())
                break;
        }
    }
    if (!all_done() && checker_)
        checker_->reportWedge("run deadline reached with threads "
                              "unfinished");
    SMTP_ASSERT(all_done(),
                "machine did not finish within the time limit "
                "(workload deadlock?)");
    execTime_ = eq_.curTick();
    return execTime_;
}

bool
Machine::runUntil(Tick when)
{
    for (auto &node : nodes_)
        node->cpu->start();

    auto all_done = [this] {
        for (const auto &node : nodes_) {
            if (!node->cpu->appThreadsDone())
                return false;
        }
        return true;
    };

    trace::IntervalSampler *sampler =
        traceMgr_ != nullptr && traceMgr_->sampler().active()
            ? &traceMgr_->sampler()
            : nullptr;

    // Same entry short-circuit as run(): a restored already-finished
    // machine must report done at its restored tick, not drift to the
    // next poll boundary.
    if (all_done()) {
        execTime_ = eq_.curTick();
        return true;
    }

    // Same absolute-time-aligned completion poll as run(): the exit
    // tick must not depend on how the run was sliced.
    Tick next_check = ((eq_.curTick() / kDoneCheckPeriod) + 1) *
                      kDoneCheckPeriod;
    while (!eq_.empty() && eq_.nextTick() <= when) {
        eq_.runOne();
        if (sampler != nullptr)
            sampler->sampleUpTo(eq_.curTick());
        if (eq_.curTick() >= next_check) {
            next_check = ((eq_.curTick() / kDoneCheckPeriod) + 1) *
                         kDoneCheckPeriod;
            if (all_done())
                break;
        }
    }
    execTime_ = eq_.curTick();
    return all_done();
}

std::uint64_t
Machine::committedAppInsts() const
{
    std::uint64_t sum = 0;
    for (const auto &node : nodes_) {
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            sum += node->cpu->threadStats(static_cast<ThreadId>(t))
                       .committed.value();
        }
    }
    return sum;
}

bool
Machine::quiescent() const
{
    if (!net_->quiescent())
        return false;
    for (const auto &node : nodes_) {
        if (!node->cache->quiescent() || !node->mc->quiescent())
            return false;
        // A store still draining from a store buffer will create new
        // coherence work; the machine is not quiet until CPUs are.
        if (!node->cpu->idle())
            return false;
    }
    return true;
}

void
Machine::quiesce(Tick limit)
{
    Tick deadline = eq_.curTick() + limit;
    while (!eq_.empty() && eq_.curTick() < deadline && !quiescent())
        eq_.runOne();
    // Let residual same-tick events drain.
    while (!eq_.empty() && eq_.nextTick() <= eq_.curTick())
        eq_.runOne();
    if (!quiescent()) {
        if (checker_)
            checker_->reportWedge("machine failed to quiesce");
        std::fprintf(stderr, "quiesce failure: net=%d evq=%zu\n",
                     static_cast<int>(net_->quiescent()), eq_.size());
        for (unsigned n = 0; n < nodes_.size(); ++n) {
            std::fprintf(stderr, "  n%u cacheQ=%d mshr=%u mcQ=%d\n", n,
                         static_cast<int>(nodes_[n]->cache->quiescent()),
                         nodes_[n]->cache->mshrsInUse(),
                         static_cast<int>(nodes_[n]->mc->quiescent()));
            nodes_[n]->mc->debugState(stderr);
            nodes_[n]->cpu->debugDump(stderr);
        }
        SMTP_PANIC("machine failed to quiesce after the run");
    }
    if (checker_ && checker_->fullMirror())
        checker_->verifyQuiescent();
}

double
Machine::memStallFraction() const
{
    double sum = 0.0;
    unsigned count = 0;
    for (const auto &node : nodes_) {
        Cycles cyc = node->cpu->cycles.value();
        if (cyc == 0)
            continue;
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            const auto &st =
                node->cpu->threadStats(static_cast<ThreadId>(t));
            sum += static_cast<double>(st.memStallCycles.value()) /
                   static_cast<double>(cyc);
            ++count;
        }
    }
    return count ? sum / count : 0.0;
}

double
Machine::peakProtocolOccupancy() const
{
    double peak = 0.0;
    for (const auto &node : nodes_) {
        double occ = static_cast<double>(node->agentBusyTicks()) /
                     static_cast<double>(std::max<Tick>(execTime_, 1));
        peak = std::max(peak, occ);
    }
    return peak;
}

bool
Machine::writeTraceFiles(const std::string &stem, std::string *err) const
{
    if (!traceMgr_) {
        if (err != nullptr)
            *err = "tracing not enabled on this machine";
        return false;
    }
    trace::TraceData data;
    traceMgr_->snapshot(data, execTime_, params_.nodes);
    return trace::writeTraceFiles(data, stem, err);
}

Machine::ProtoCharacteristics
Machine::protoCharacteristics() const
{
    ProtoCharacteristics out;
    SMTP_ASSERT(params_.model == MachineModel::SMTp,
                "protocol-thread characteristics need an SMTp machine");
    std::uint64_t cond = 0, mispred = 0, squash_cycles = 0, cycles = 0;
    std::uint64_t proto_retired = 0, all_retired = 0;
    for (const auto &node : nodes_) {
        ThreadId ptid = node->cpu->protocolTid();
        const auto &ps = node->cpu->threadStats(ptid);
        cond += ps.condBranches.value();
        mispred += ps.mispredicts.value();
        squash_cycles += ps.squashCycles.value();
        cycles += node->cpu->cycles.value();
        proto_retired += ps.committed.value();
        for (unsigned t = 0; t < params_.appThreadsPerNode; ++t) {
            all_retired += node->cpu
                               ->threadStats(static_cast<ThreadId>(t))
                               .committed.value();
        }
        all_retired += ps.committed.value();
    }
    if (cond > 0)
        out.branchMispredictRate =
            static_cast<double>(mispred) / static_cast<double>(cond);
    if (cycles > 0)
        out.squashCyclePct = static_cast<double>(squash_cycles) /
                             static_cast<double>(cycles);
    if (all_retired > 0)
        out.retiredInstPct = static_cast<double>(proto_retired) /
                             static_cast<double>(all_retired);
    return out;
}

} // namespace smtp

namespace smtp
{

void
Machine::dumpStats(std::ostream &os) const
{
    // Build a transient stat hierarchy over the live counters. The
    // components outlive the dump, so registering pointers is safe.
    StatGroup root("machine." + std::string(modelName(params_.model)));
    std::vector<std::unique_ptr<StatGroup>> groups;
    Counter exec_us;
    exec_us += execTime_ / tickPerUs;
    root.add("execTimeUs", &exec_us);
    root.add("netMsgs", &net_->msgsInjected);
    root.add("netBytes", &net_->bytesInjected);
    root.add("netHops", &net_->hopDist);

    std::unique_ptr<StatGroup> fg;
    if (faults_) {
        fg = std::make_unique<StatGroup>("faults");
        fg->add("netDrops", &faults_->netDrops);
        fg->add("netDups", &faults_->netDups);
        fg->add("netDupsFiltered", &faults_->netDupsFiltered);
        fg->add("netDelays", &faults_->netDelays);
        fg->add("netReorders", &faults_->netReorders);
        fg->add("netLost", &faults_->netLost);
        fg->add("eccCorrected", &faults_->eccCorrected);
        fg->add("eccDetected", &faults_->eccDetected);
        fg->add("eccScrubs", &faults_->eccScrubs);
        fg->add("eccRefetches", &faults_->eccRefetches);
        fg->add("naksForced", &faults_->naksForced);
        root.addChild(fg.get());
    }

    for (unsigned n = 0; n < nodes_.size(); ++n) {
        const Node &node = *nodes_[n];
        auto g = std::make_unique<StatGroup>("node" + std::to_string(n));
        g->add("cycles", &node.cpu->cycles);
        g->add("fetched", &node.cpu->fetchedInsts);
        g->add("l1dHits", &node.cache->l1dHits);
        g->add("l1dMisses", &node.cache->l1dMisses);
        g->add("l2Hits", &node.cache->l2Hits);
        g->add("l2Misses", &node.cache->l2Misses);
        g->add("writebacksDirty", &node.cache->writebacksDirty);
        g->add("prefetchesIssued", &node.cache->prefetchesIssued);
        g->add("prefetchesUseful", &node.cache->prefetchesUseful);
        g->add("handlers", &node.mc->handlersDispatched);
        g->add("naks", &node.mc->naksSent);
        g->add("starvationFlags", &node.mc->starvationFlags);
        g->add("probesDeferred", &node.mc->probesDeferred);
        g->add("handlerLatency", &node.mc->handlerLatency);
        g->add("sdramReads", &node.mc->sdram().reads);
        g->add("sdramWrites", &node.mc->sdram().writes);
        if (node.pengine) {
            g->add("ppInstructions", &node.pengine->instructions);
            g->add("ppPairedIssues", &node.pengine->pairedIssues);
            g->add("ppDcacheMisses", &node.pengine->dcacheMisses);
        }
        if (node.pthread) {
            g->add("ptHandlers", &node.pthread->handlersStarted);
            g->add("ptLookAheadStarts", &node.pthread->lookAheadStarts);
            g->add("ptOpsSupplied", &node.pthread->opsSupplied);
            g->add("ptPeakIntRegs", &node.cpu->protoOccupancy.intRegs);
            g->add("ptPeakIQ", &node.cpu->protoOccupancy.intQueue);
        }
        root.addChild(g.get());
        groups.push_back(std::move(g));
    }
    root.dump(os);
}

} // namespace smtp
