#include "hierarchy.hpp"

#include <algorithm>

#include "check/checker.hpp"
#include "common/log.hpp"
#include "protocol/directory.hpp"

namespace smtp
{

using proto::Message;
using proto::MsgType;

CacheHierarchy::CacheHierarchy(EventQueue &eq, const ClockDomain &clock,
                               NodeId self, const CacheParams &params)
    : eq_(&eq), clock_(clock), self_(self), params_(params),
      l1i_(params.l1iBytes, l1iLineBytes, params.l1iWays),
      l1d_(params.l1dBytes, l1dLineBytes, params.l1dWays),
      l2_(params.l2Bytes, l2LineBytes, params.l2Ways),
      bypI_(static_cast<std::size_t>(params.bypassLines) * l1iLineBytes,
            l1iLineBytes, params.bypassLines),
      bypD_(static_cast<std::size_t>(params.bypassLines) * l1dLineBytes,
            l1dLineBytes, params.bypassLines),
      byp2_(static_cast<std::size_t>(params.bypassLines) * l2LineBytes,
            l2LineBytes, params.bypassLines),
      mshrs_(params.mshrs + 1)
{
}

void
CacheHierarchy::completeAfter(EventQueue::Callback fn, Cycles c)
{
    if (!fn)
        return;
    eq_->scheduleIn(cyc(c), std::move(fn));
}

CacheHierarchy::Mshr *
CacheHierarchy::findMshr(Addr line_addr)
{
    for (auto &m : mshrs_) {
        if (m.valid && m.lineAddr == line_addr)
            return &m;
    }
    return nullptr;
}

const CacheHierarchy::Mshr *
CacheHierarchy::findMshr(Addr line_addr) const
{
    return const_cast<CacheHierarchy *>(this)->findMshr(line_addr);
}

int
CacheHierarchy::allocMshr(bool store_reserved)
{
    for (unsigned i = 0; i < params_.mshrs; ++i) {
        if (!mshrs_[i].valid)
            return static_cast<int>(i);
    }
    if (store_reserved && !mshrs_[params_.mshrs].valid)
        return static_cast<int>(params_.mshrs);
    return -1;
}

bool
CacheHierarchy::queueOut(Message msg)
{
    outQ_.push_back(msg);
    drainOutQ();
    return true;
}

void
CacheHierarchy::drainOutQ()
{
    while (!outQ_.empty() && lmiEnqueue_ && lmiEnqueue_(outQ_.front()))
        outQ_.pop_front();
    if (!outQ_.empty() && !drainScheduled_) {
        drainScheduled_ = true;
        eq_->scheduleIn(cyc(1), DrainEv{this});
    }
}

Message
CacheHierarchy::requestFor(unsigned idx) const
{
    const Mshr &m = mshrs_[idx];
    Message msg;
    msg.type = m.isUpgrade ? MsgType::PiUpgrade
               : m.wantExcl ? MsgType::PiGetx
                            : MsgType::PiGet;
    msg.addr = m.lineAddr;
    msg.src = self_;
    msg.dest = self_;
    msg.requester = self_;
    msg.mshr = static_cast<std::uint8_t>(idx);
    if (m.prefetch)
        msg.flags |= proto::flagPrefetch;
    return msg;
}

bool
CacheHierarchy::l1Lookup(CacheArray &l1, CacheArray &byp, Addr addr,
                         bool protocol_line)
{
    if (CacheLine *line = l1.find(addr)) {
        l1.touch(line);
        return true;
    }
    if (protocol_line && params_.enableBypass) {
        if (CacheLine *line = byp.find(addr)) {
            byp.touch(line);
            return true;
        }
    }
    return false;
}

void
CacheHierarchy::fillL1(CacheArray &l1, CacheArray &byp, Addr addr,
                       bool protocol_line)
{
    if (l1.find(addr) != nullptr)
        return;
    CacheArray *arr = &l1;
    if (protocol_line && params_.enableBypass &&
        l1.validAppLinesInSet(addr) == l1.numWays()) {
        arr = &byp;
        ++bypassAllocs;
    }
    CacheLine *victim = arr->victimFor(addr);
    // L1 evictions are silent: the inclusive L2 retains state and
    // (architecturally) the data.
    victim->addr = arr->align(addr);
    victim->state = LineState::Sh;
    victim->protocolLine = protocol_line;
    arr->touch(victim);
}

void
CacheHierarchy::backInvalidateL1(Addr l2_line_addr)
{
    for (Addr a = l2_line_addr; a < l2_line_addr + l2LineBytes;
         a += l1dLineBytes) {
        if (CacheLine *line = l1d_.find(a))
            line->state = LineState::Inv;
        if (params_.enableBypass) {
            if (CacheLine *line = bypD_.find(a))
                line->state = LineState::Inv;
        }
    }
    for (Addr a = l2_line_addr; a < l2_line_addr + l2LineBytes;
         a += l1iLineBytes) {
        if (CacheLine *line = l1i_.find(a))
            line->state = LineState::Inv;
        if (params_.enableBypass) {
            if (CacheLine *line = bypI_.find(a))
                line->state = LineState::Inv;
        }
    }
}

void
CacheHierarchy::evictL2Line(CacheLine &victim)
{
    backInvalidateL1(victim.addr);
    if (victim.protocolLine) {
        if (victim.state == LineState::Mod && bypassAccess_)
            bypassAccess_(victim.addr, true, {});
    } else if (victim.state == LineState::Mod) {
        Message msg;
        msg.type = MsgType::PiPut;
        msg.addr = victim.addr;
        msg.src = self_;
        msg.dest = self_;
        msg.requester = self_;
        msg.flags |= proto::flagDataCarried;
        wbPending_.insert(victim.addr);
        queueOut(msg);
        ++writebacksDirty;
    } else if (victim.state == LineState::Ex) {
        Message msg;
        msg.type = MsgType::PiPutClean;
        msg.addr = victim.addr;
        msg.src = self_;
        msg.dest = self_;
        msg.requester = self_;
        wbPending_.insert(victim.addr);
        queueOut(msg);
        ++writebacksClean;
    }
    // Shared lines are dropped silently; the directory's sharer bit goes
    // stale and is cleaned up by a future (harmless) invalidation.
    if (!victim.protocolLine)
        noteLine(victim.addr, LineState::Inv, "evict");
    victim.state = LineState::Inv;
    victim.protocolLine = false;
}

void
CacheHierarchy::installL2(Addr line_addr, LineState st, bool protocol_line)
{
    // Upgrade in place when the line is already resident (e.g. a
    // NAK-converted upgrade whose Shared copy survived until the
    // exclusive grant arrived).
    if (CacheLine *existing = l2_.find(line_addr)) {
        existing->state = st;
        existing->protocolLine = protocol_line;
        l2_.touch(existing);
        if (!protocol_line)
            noteLine(line_addr, st, "install");
        return;
    }
    if (params_.enableBypass) {
        if (CacheLine *existing = byp2_.find(line_addr)) {
            existing->state = st;
            existing->protocolLine = protocol_line;
            byp2_.touch(existing);
            if (!protocol_line)
                noteLine(line_addr, st, "install");
            return;
        }
    }
    CacheArray *arr = &l2_;
    if (protocol_line && params_.enableBypass &&
        l2_.validAppLinesInSet(line_addr) == l2_.numWays()) {
        // Section 2.2: a protocol miss conflicting with in-flight
        // application misses allocates a bypass-buffer line instead of a
        // cache frame, breaking the cache-conflict deadlock cycle.
        bool conflict = false;
        unsigned set = l2_.setIndexOf(line_addr);
        for (const auto &m : mshrs_) {
            if (m.valid && l2_.setIndexOf(m.lineAddr) == set) {
                conflict = true;
                break;
            }
        }
        if (conflict) {
            arr = &byp2_;
            ++bypassAllocs;
        }
    }
    CacheLine *victim = arr->victimFor(line_addr);
    if (victim->valid())
        evictL2Line(*victim);
    victim->addr = arr->align(line_addr);
    victim->state = st;
    victim->protocolLine = protocol_line;
    arr->touch(victim);
    if (!protocol_line)
        noteLine(victim->addr, st, "install");
}

void
CacheHierarchy::noteLine(Addr line_addr, LineState st, const char *why)
{
    if (check_ != nullptr)
        check_->onLineState(self_, lineAlign(line_addr), st, why);
}

void
CacheHierarchy::noteMshrAlloc(unsigned idx)
{
    if (check_ != nullptr)
        check_->onMshrAlloc(self_, idx, mshrs_[idx].lineAddr);
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::MshrAlloc,
                     trace::packMshr(mshrs_[idx].lineAddr, idx,
                                     mshrsInUse()));
}

void
CacheHierarchy::freeMshr(Mshr &ms, unsigned idx)
{
    if (check_ != nullptr)
        check_->onMshrFree(self_, idx);
    SMTP_TRACE_EVENT(trace_, eq_->curTick(), trace::EventId::MshrFree,
                     trace::packMshr(ms.lineAddr, idx, mshrsInUse() - 1));
    ms = Mshr{};
}

CacheHierarchy::Outcome
CacheHierarchy::protoBelowL1(const MemReq &req)
{
    Addr line = lineAlign(req.addr);
    bool is_store = req.cmd == MemCmd::ProtoStore;
    bool is_ifetch = req.cmd == MemCmd::ProtoIFetch;
    CacheArray &l1 = is_ifetch ? l1i_ : l1d_;
    CacheArray &byp = is_ifetch ? bypI_ : bypD_;

    CacheLine *l2line = l2_.find(line);
    CacheArray *l2arr = &l2_;
    if (l2line == nullptr && params_.enableBypass) {
        l2line = byp2_.find(line);
        l2arr = &byp2_;
    }
    if (l2line != nullptr) {
        ++protoL2Hits;
        l2arr->touch(l2line);
        if (is_store)
            l2line->state = LineState::Mod;
        fillL1(l1, byp, req.addr, true);
        completeAfter(req.done, params_.l2HitCycles);
        return Outcome::Pending;
    }

    ++protoL2Misses;
    auto it = protoPending_.find(line);
    if (it != protoPending_.end()) {
        it->second.push_back(req.done);
        return Outcome::Pending;
    }
    protoPending_[line] = {req.done};
    SMTP_ASSERT(bypassAccess_, "protocol bypass bus not connected");
    bypassAccess_(line, false,
                  BypassFillEv{this, line, req.addr, is_store, is_ifetch});
    return Outcome::Pending;
}

void
CacheHierarchy::protoFillArrived(Addr line, Addr demand, bool is_store,
                                 bool is_ifetch)
{
    installL2(line, is_store ? LineState::Mod : LineState::Ex, true);
    CacheArray &fl1 = is_ifetch ? l1i_ : l1d_;
    CacheArray &fbyp = is_ifetch ? bypI_ : bypD_;
    fillL1(fl1, fbyp, demand, true);
    auto node = protoPending_.extract(line);
    for (auto &fn : node.mapped()) {
        completeAfter(std::move(fn), params_.fillToUseCycles);
    }
}

CacheHierarchy::Outcome
CacheHierarchy::access(const MemReq &req)
{
    Addr line = lineAlign(req.addr);
    switch (req.cmd) {
      case MemCmd::ProtoIFetch:
      case MemCmd::ProtoLoad:
      case MemCmd::ProtoStore: {
        if (params_.perfectProtocolCaches) {
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        bool is_ifetch = req.cmd == MemCmd::ProtoIFetch;
        CacheArray &l1 = is_ifetch ? l1i_ : l1d_;
        CacheArray &byp = is_ifetch ? bypI_ : bypD_;
        if (l1Lookup(l1, byp, req.addr, true)) {
            if (!is_ifetch)
                ++protoL1dHits;
            if (req.cmd == MemCmd::ProtoStore) {
                CacheLine *l2line = l2_.find(line);
                if (l2line == nullptr && params_.enableBypass)
                    l2line = byp2_.find(line);
                SMTP_ASSERT(l2line != nullptr,
                            "L1 protocol line not backed by L2");
                l2line->state = LineState::Mod;
            }
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        if (!is_ifetch)
            ++protoL1dMisses;
        return protoBelowL1(req);
      }

      case MemCmd::IFetch: {
        if (l1Lookup(l1i_, bypI_, req.addr, false)) {
            ++l1iHits;
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        if (CacheLine *l2line = l2_.find(line)) {
            ++l1iMisses;
            ++l2Hits;
            l2_.touch(l2line);
            fillL1(l1i_, bypI_, req.addr, false);
            completeAfter(req.done, params_.l2HitCycles);
            return Outcome::Pending;
        }
        if (Mshr *m = findMshr(line)) {
            ++l1iMisses;
            ++l2Misses;
            if (m->prefetch) {
                m->prefetch = false;
                ++prefetchesUseful;
            }
            if (m->demandAddr == invalidAddr) {
                m->demandAddr = req.addr;
                m->wantsL1i = true;
            }
            m->loadWaiters.push_back(req.done);
            return Outcome::Pending;
        }
        if (outQ_.size() >= params_.outQueueDepth)
            return Outcome::Retry;
        int idx = allocMshr(false);
        if (idx < 0)
            return Outcome::Retry;
        ++l1iMisses;
        ++l2Misses;
        Mshr &m = mshrs_[idx];
        m = Mshr{};
        m.valid = true;
        m.lineAddr = line;
        m.wantsL1i = true;
        m.demandAddr = req.addr;
        m.loadWaiters.push_back(req.done);
        noteMshrAlloc(idx);
        queueOut(requestFor(idx));
        return Outcome::Pending;
      }

      case MemCmd::Load: {
        if (l1Lookup(l1d_, bypD_, req.addr, false)) {
            ++l1dHits;
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        if (CacheLine *l2line = l2_.find(line)) {
            ++l1dMisses;
            ++l2Hits;
            l2_.touch(l2line);
            fillL1(l1d_, bypD_, req.addr, false);
            completeAfter(req.done, params_.l2HitCycles);
            return Outcome::Pending;
        }
        if (Mshr *m = findMshr(line)) {
            ++l1dMisses;
            ++l2Misses;
            if (m->prefetch) {
                m->prefetch = false;
                ++prefetchesUseful;
            }
            if (m->demandAddr == invalidAddr)
                m->demandAddr = req.addr;
            m->loadWaiters.push_back(req.done);
            return Outcome::Pending;
        }
        if (outQ_.size() >= params_.outQueueDepth)
            return Outcome::Retry;
        int idx = allocMshr(false);
        if (idx < 0)
            return Outcome::Retry;
        ++l1dMisses;
        ++l2Misses;
        Mshr &m = mshrs_[idx];
        m = Mshr{};
        m.valid = true;
        m.lineAddr = line;
        m.demandAddr = req.addr;
        m.loadWaiters.push_back(req.done);
        noteMshrAlloc(idx);
        queueOut(requestFor(idx));
        return Outcome::Pending;
      }

      case MemCmd::Store: {
        CacheLine *l2line = l2_.find(line);
        if (l2line != nullptr && writable(l2line->state)) {
            bool l1hit = l1Lookup(l1d_, bypD_, req.addr, false);
            if (l1hit)
                ++l1dHits;
            else {
                ++l1dMisses;
                fillL1(l1d_, bypD_, req.addr, false);
            }
            l2line->state = LineState::Mod;
            l2_.touch(l2line);
            completeAfter(req.done, l1hit ? params_.l1HitCycles
                                          : params_.l2HitCycles);
            return Outcome::Done;
        }
        // Needs an exclusive grant.
        if (Mshr *m = findMshr(line)) {
            if (m->prefetch) {
                m->prefetch = false;
                ++prefetchesUseful;
            }
            if (!m->wantExcl)
                m->storeWaiting = true;
            m->storeWaiters.push_back(req.done);
            return Outcome::Pending;
        }
        if (outQ_.size() >= params_.outQueueDepth)
            return Outcome::Retry;
        int idx = allocMshr(true);
        if (idx < 0)
            return Outcome::Retry;
        Mshr &m = mshrs_[idx];
        m = Mshr{};
        m.valid = true;
        m.lineAddr = line;
        m.wantExcl = true;
        m.isUpgrade = l2line != nullptr; // Present Shared: upgrade in place.
        m.demandAddr = req.addr;
        m.storeWaiters.push_back(req.done);
        if (m.isUpgrade)
            ++upgradesIssued;
        noteMshrAlloc(idx);
        queueOut(requestFor(idx));
        return Outcome::Pending;
      }

      case MemCmd::Prefetch:
      case MemCmd::PrefetchEx: {
        bool want_excl = req.cmd == MemCmd::PrefetchEx;
        CacheLine *l2line = l2_.find(line);
        if (l2line != nullptr && (writable(l2line->state) || !want_excl)) {
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        if (findMshr(line) != nullptr ||
            outQ_.size() >= params_.outQueueDepth) {
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        int idx = allocMshr(false);
        if (idx < 0) {
            ++prefetchesDropped;
            completeAfter(req.done, params_.l1HitCycles);
            return Outcome::Done;
        }
        Mshr &m = mshrs_[idx];
        m = Mshr{};
        m.valid = true;
        m.lineAddr = line;
        m.wantExcl = want_excl;
        m.isUpgrade = want_excl && l2line != nullptr;
        m.prefetch = true;
        noteMshrAlloc(idx);
        queueOut(requestFor(idx));
        ++prefetchesIssued;
        completeAfter(req.done, params_.l1HitCycles);
        return Outcome::Done;
      }
    }
    SMTP_PANIC("unhandled MemCmd");
}

bool
CacheHierarchy::deliverFill(const Message &m)
{
    unsigned idx = m.mshr;
    SMTP_ASSERT(idx < mshrs_.size(), "fill for bogus MSHR %u", idx);
    Mshr &ms = mshrs_[idx];
    SMTP_ASSERT(ms.valid && ms.lineAddr == lineAlign(m.addr),
                "fill/MSHR mismatch: mshr %u", idx);

    auto complete_list = [this](std::vector<EventQueue::Callback> &fns) {
        for (auto &fn : fns)
            completeAfter(std::move(fn), params_.fillToUseCycles);
        fns.clear();
    };

    if (m.type == MsgType::CcUpgradeGrant) {
        CacheLine *line = l2_.find(ms.lineAddr);
        if (line == nullptr) {
            // A conflict eviction dropped our Shared copy after the
            // home granted the upgrade — which also recorded us as the
            // exclusive owner. Re-requesting as a plain GETX would
            // livelock (the home NAKs requests from the listed owner
            // forever), so first release the unusable ownership with a
            // clean writeback; the shared cache->LMI FIFO keeps it
            // ahead of the re-request.
            Message put;
            put.type = MsgType::PiPutClean;
            put.addr = ms.lineAddr;
            put.src = self_;
            put.dest = self_;
            put.requester = self_;
            wbPending_.insert(ms.lineAddr);
            queueOut(put);
            ++writebacksClean;
            ms.isUpgrade = false;
            ms.wantExcl = true;
            queueOut(requestFor(idx));
            return true;
        }
        SMTP_ASSERT(line->state == LineState::Sh,
                    "upgrade grant on non-shared line");
        line->state = LineState::Mod;
        l2_.touch(line);
        noteLine(ms.lineAddr, LineState::Mod, "upgrade-grant");
        complete_list(ms.loadWaiters);
        complete_list(ms.storeWaiters);
        freeMshr(ms, idx);
        return true;
    }

    if (m.type == MsgType::CcFillSh) {
        if (ms.invalPoison) {
            // The fill was chased by an invalidation: deliver the data
            // to the waiting loads exactly once, install nothing.
            ++fillsPoisoned;
            complete_list(ms.loadWaiters);
            if (ms.storeWaiting) {
                ms.invalPoison = false;
                ms.storeWaiting = false;
                ms.isUpgrade = false;
                ms.wantExcl = true;
                queueOut(requestFor(idx));
            } else {
                freeMshr(ms, idx);
            }
            return true;
        }
        installL2(ms.lineAddr, LineState::Sh, false);
        if (ms.demandAddr != invalidAddr) {
            fillL1(ms.wantsL1i ? l1i_ : l1d_, ms.wantsL1i ? bypI_ : bypD_,
                   ms.demandAddr, false);
        }
        complete_list(ms.loadWaiters);
        if (ms.storeWaiting) {
            // A store arrived while the shared request was in flight;
            // upgrade in place now that the line is here.
            ms.storeWaiting = false;
            ms.isUpgrade = true;
            ms.wantExcl = true;
            ms.prefetch = false;
            ++upgradesIssued;
            queueOut(requestFor(idx));
        } else {
            freeMshr(ms, idx);
        }
        return true;
    }

    SMTP_ASSERT(m.type == MsgType::CcFillEx, "unexpected fill type");
    // An eager-exclusive grant cannot be chased by an invalidation (the
    // home would intervene instead), so any poison flag refers to the
    // older shared epoch and is ignored.
    bool make_dirty = !ms.storeWaiters.empty();
    installL2(ms.lineAddr, make_dirty ? LineState::Mod : LineState::Ex,
              false);
    if (ms.demandAddr != invalidAddr) {
        fillL1(ms.wantsL1i ? l1i_ : l1d_, ms.wantsL1i ? bypI_ : bypD_,
               ms.demandAddr, false);
    }
    complete_list(ms.loadWaiters);
    complete_list(ms.storeWaiters);
    freeMshr(ms, idx);
    return true;
}

CacheHierarchy::ProbeOutcome
CacheHierarchy::applyProbe(MsgType kind, Addr line_addr)
{
    Addr line = lineAlign(line_addr);
    SMTP_ASSERT(!proto::isProtocolAddr(line), "probe of protocol space");
    CacheLine *l2line = l2_.find(line);

    if (kind == MsgType::CcInval) {
        bool hit = false;
        if (l2line != nullptr) {
            SMTP_ASSERT(l2line->state == LineState::Sh,
                        "invalidation hit a writable line");
            backInvalidateL1(line);
            l2line->state = LineState::Inv;
            noteLine(line, LineState::Inv, "inval");
            hit = true;
            if (invalHook_) {
                ++replayInvals;
                invalHook_(line);
            }
        }
        if (Mshr *m = findMshr(line)) {
            if (!m->wantExcl)
                m->invalPoison = true;
        }
        return {hit, false};
    }

    SMTP_ASSERT(kind == MsgType::CcIntervSh || kind == MsgType::CcIntervEx,
                "unknown probe kind");
    if (l2line != nullptr && writable(l2line->state)) {
        bool dirty = l2line->state == LineState::Mod;
        backInvalidateL1(line);
        if (kind == MsgType::CcIntervSh) {
            l2line->state = LineState::Sh;
            noteLine(line, LineState::Sh, "interv-sh");
        } else {
            l2line->state = LineState::Inv;
            noteLine(line, LineState::Inv, "interv-ex");
            if (invalHook_) {
                ++replayInvals;
                invalHook_(line);
            }
        }
        return {true, dirty};
    }
    if (wbPending_.count(line)) {
        // Writeback race: answer IntervMiss. This was the one stale
        // intervention the race could produce, so release the tracker
        // (its WbBusyAck does not).
        wbPending_.erase(line);
        return {false, false};
    }
    SMTP_PANIC("intervention found neither ownership nor a writeback race "
               "(line %llx)", static_cast<unsigned long long>(line));
}

bool
CacheHierarchy::probeWouldDefer(Addr line_addr) const
{
    Addr line = lineAlign(line_addr);
    const CacheLine *l2line = l2_.find(line);
    if (l2line != nullptr && writable(l2line->state))
        return false; // Will hit.
    if (wbPending_.count(line))
        return false; // Writeback race: reply IntervMiss.
    // The intervention chases an exclusive grant still in flight to us
    // (or a pending upgrade); replay it once the fill lands.
    return findMshr(line) != nullptr;
}

LineState
CacheHierarchy::l2State(Addr a) const
{
    const CacheLine *line = l2_.find(lineAlign(a));
    if (line == nullptr && params_.enableBypass)
        line = byp2_.find(lineAlign(a));
    return line ? line->state : LineState::Inv;
}

bool
CacheHierarchy::inL1d(Addr a) const
{
    return l1d_.find(a) != nullptr ||
           (params_.enableBypass && bypD_.find(a) != nullptr);
}

bool
CacheHierarchy::inL1i(Addr a) const
{
    return l1i_.find(a) != nullptr ||
           (params_.enableBypass && bypI_.find(a) != nullptr);
}

bool
CacheHierarchy::mshrPendingOn(Addr line_addr) const
{
    return findMshr(lineAlign(line_addr)) != nullptr;
}

unsigned
CacheHierarchy::mshrsInUse() const
{
    unsigned n = 0;
    for (const auto &m : mshrs_)
        n += m.valid;
    return n;
}

// ---- Snapshot support --------------------------------------------------

namespace
{

void
putCallbacks(snap::Ser &out, const std::vector<EventQueue::Callback> &v)
{
    out.u64(v.size());
    for (const auto &cb : v)
        snap::EventCodec::encode(out, cb);
}

void
getCallbacks(snap::Des &in, const snap::EventCodec &codec,
             std::vector<EventQueue::Callback> &v)
{
    v.clear();
    std::uint64_t n = in.count(4);
    v.reserve(n);
    for (std::uint64_t i = 0; in.ok() && i < n; ++i)
        v.push_back(codec.decode(in));
}

} // namespace

void
CacheHierarchy::saveState(snap::Ser &out) const
{
    l1i_.saveState(out);
    l1d_.saveState(out);
    l2_.saveState(out);
    bypI_.saveState(out);
    bypD_.saveState(out);
    byp2_.saveState(out);

    out.u64(mshrs_.size());
    for (const auto &m : mshrs_) {
        out.b(m.valid);
        out.u64(m.lineAddr);
        out.b(m.wantExcl);
        out.b(m.isUpgrade);
        out.b(m.prefetch);
        out.b(m.invalPoison);
        out.b(m.storeWaiting);
        out.b(m.wantsL1i);
        out.u64(m.demandAddr);
        putCallbacks(out, m.loadWaiters);
        putCallbacks(out, m.storeWaiters);
    }

    out.seq(outQ_, [](snap::Ser &s, const proto::Message &m) {
        proto::snapPut(s, m);
    });
    out.b(drainScheduled_);

    std::vector<Addr> wb(wbPending_.begin(), wbPending_.end());
    std::sort(wb.begin(), wb.end());
    out.seq(wb, [](snap::Ser &s, Addr a) { s.u64(a); });

    std::vector<Addr> pp;
    pp.reserve(protoPending_.size());
    for (const auto &[a, fns] : protoPending_)
        pp.push_back(a);
    std::sort(pp.begin(), pp.end());
    out.u64(pp.size());
    for (Addr a : pp) {
        out.u64(a);
        putCallbacks(out, protoPending_.at(a));
    }

    for (const Counter *c :
         {&l1iHits, &l1iMisses, &l1dHits, &l1dMisses, &l2Hits, &l2Misses,
          &protoL1dHits, &protoL1dMisses, &protoL2Hits, &protoL2Misses,
          &upgradesIssued, &writebacksDirty, &writebacksClean,
          &prefetchesIssued, &prefetchesDropped, &prefetchesUseful,
          &bypassAllocs, &probesDeferred, &fillsPoisoned, &replayInvals})
        c->saveState(out);
}

void
CacheHierarchy::restoreState(snap::Des &in, const snap::EventCodec &codec)
{
    l1i_.restoreState(in);
    l1d_.restoreState(in);
    l2_.restoreState(in);
    bypI_.restoreState(in);
    bypD_.restoreState(in);
    byp2_.restoreState(in);

    std::uint64_t nm = in.u64();
    if (nm != mshrs_.size()) {
        in.fail("MSHR count mismatch");
        return;
    }
    for (auto &m : mshrs_) {
        m.valid = in.bl();
        m.lineAddr = in.u64();
        m.wantExcl = in.bl();
        m.isUpgrade = in.bl();
        m.prefetch = in.bl();
        m.invalPoison = in.bl();
        m.storeWaiting = in.bl();
        m.wantsL1i = in.bl();
        m.demandAddr = in.u64();
        getCallbacks(in, codec, m.loadWaiters);
        getCallbacks(in, codec, m.storeWaiters);
    }

    outQ_.clear();
    std::uint64_t nq = in.count(8);
    for (std::uint64_t i = 0; in.ok() && i < nq; ++i)
        outQ_.push_back(proto::snapGetMessage(in));
    drainScheduled_ = in.bl();

    wbPending_.clear();
    std::uint64_t nwb = in.count(8);
    for (std::uint64_t i = 0; in.ok() && i < nwb; ++i)
        wbPending_.insert(in.u64());

    protoPending_.clear();
    std::uint64_t npp = in.count(8);
    for (std::uint64_t i = 0; in.ok() && i < npp; ++i) {
        Addr a = in.u64();
        getCallbacks(in, codec, protoPending_[a]);
    }

    for (Counter *c :
         {&l1iHits, &l1iMisses, &l1dHits, &l1dMisses, &l2Hits, &l2Misses,
          &protoL1dHits, &protoL1dMisses, &protoL2Hits, &protoL2Misses,
          &upgradesIssued, &writebacksDirty, &writebacksClean,
          &prefetchesIssued, &prefetchesDropped, &prefetchesUseful,
          &bypassAllocs, &probesDeferred, &fillsPoisoned, &replayInvals})
        c->restoreState(in);
}

void
CacheHierarchy::registerSnapEvents(
    snap::EventCodec &codec, std::function<CacheHierarchy *(NodeId)> resolve)
{
    codec.add(snap::evCacheDrainOutQ,
              [resolve](snap::Des &in) -> EventQueue::Callback {
                  NodeId n = in.u16();
                  CacheHierarchy *c = resolve(n);
                  if (c == nullptr) {
                      in.fail("cache drain event for unknown node");
                      return {};
                  }
                  return DrainEv{c};
              });
    codec.add(snap::evCacheBypassFill,
              [resolve](snap::Des &in) -> EventQueue::Callback {
                  NodeId n = in.u16();
                  CacheHierarchy *c = resolve(n);
                  Addr line = in.u64();
                  Addr demand = in.u64();
                  bool is_store = in.bl();
                  bool is_ifetch = in.bl();
                  if (c == nullptr) {
                      in.fail("bypass fill event for unknown node");
                      return {};
                  }
                  return BypassFillEv{c, line, demand, is_store, is_ifetch};
              });
}

} // namespace smtp
