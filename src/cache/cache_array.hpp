/**
 * @file
 * Generic set-associative tag array with true-LRU replacement, shared by
 * the L1 instruction cache (64 B lines), L1 data cache (32 B lines), the
 * unified L2 (128 B lines), the directory data caches of the
 * conventional machine models, and — with one set — the fully
 * associative bypass buffers of SMTp.
 */

#ifndef SMTP_CACHE_CACHE_ARRAY_HPP
#define SMTP_CACHE_CACHE_ARRAY_HPP

#include <cstdint>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "snap/snap.hpp"

namespace smtp
{

/** Line permission state; L1s only use Inv/Sh/Mod (writable == Mod). */
enum class LineState : std::uint8_t
{
    Inv,
    Sh,   ///< Read-only.
    Ex,   ///< Writable, memory up to date (eager-exclusive grant).
    Mod,  ///< Writable and dirty.
};

constexpr bool
writable(LineState s)
{
    return s == LineState::Ex || s == LineState::Mod;
}

struct CacheLine
{
    Addr addr = invalidAddr;        ///< Line-aligned address.
    LineState state = LineState::Inv;
    bool protocolLine = false;      ///< Belongs to the protocol thread.
    std::uint64_t lruStamp = 0;

    bool valid() const { return state != LineState::Inv; }
};

class CacheArray
{
  public:
    CacheArray(std::size_t size_bytes, unsigned line_bytes, unsigned ways)
        : lineBytes_(line_bytes), ways_(ways),
          sets_(static_cast<unsigned>(size_bytes / line_bytes / ways)),
          lines_(static_cast<std::size_t>(sets_) * ways)
    {
        SMTP_ASSERT(isPow2(line_bytes) && isPow2(sets_),
                    "cache geometry must be power of two");
    }

    unsigned lineBytes() const { return lineBytes_; }
    unsigned numSets() const { return sets_; }
    unsigned numWays() const { return ways_; }

    Addr
    align(Addr a) const
    {
        return a & ~static_cast<Addr>(lineBytes_ - 1);
    }

    unsigned
    setIndexOf(Addr a) const
    {
        return static_cast<unsigned>((a / lineBytes_) & (sets_ - 1));
    }

    /** Find the valid line holding @p a; nullptr on miss. No LRU touch. */
    CacheLine *
    find(Addr a)
    {
        Addr la = align(a);
        CacheLine *base = &lines_[static_cast<std::size_t>(setIndexOf(a)) *
                                  ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (base[w].valid() && base[w].addr == la)
                return &base[w];
        }
        return nullptr;
    }

    const CacheLine *
    find(Addr a) const
    {
        return const_cast<CacheArray *>(this)->find(a);
    }

    /** Mark @p line most recently used. */
    void touch(CacheLine *line) { line->lruStamp = ++stamp_; }

    /**
     * Pick the victim frame for a fill of @p a: an invalid way if one
     * exists, else the LRU line of the set. Caller handles eviction of
     * the returned line if it is valid.
     */
    CacheLine *
    victimFor(Addr a)
    {
        CacheLine *base = &lines_[static_cast<std::size_t>(setIndexOf(a)) *
                                  ways_];
        CacheLine *victim = &base[0];
        for (unsigned w = 0; w < ways_; ++w) {
            if (!base[w].valid())
                return &base[w];
            if (base[w].lruStamp < victim->lruStamp)
                victim = &base[w];
        }
        return victim;
    }

    /** Iterate all valid lines (tests, invariant checkers). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &line : lines_) {
            if (line.valid())
                fn(line);
        }
    }

    /** Number of valid application (non-protocol) lines in @p a's set. */
    unsigned
    validAppLinesInSet(Addr a) const
    {
        const CacheLine *base =
            &lines_[static_cast<std::size_t>(setIndexOf(a)) * ways_];
        unsigned n = 0;
        for (unsigned w = 0; w < ways_; ++w)
            n += base[w].valid() && !base[w].protocolLine;
        return n;
    }

    void
    invalidateAll()
    {
        for (auto &line : lines_)
            line = CacheLine{};
    }

    void
    saveState(snap::Ser &out) const
    {
        out.u64(stamp_);
        out.u64(lines_.size());
        for (const auto &l : lines_) {
            out.u64(l.addr);
            out.u8(static_cast<std::uint8_t>(l.state));
            out.b(l.protocolLine);
            out.u64(l.lruStamp);
        }
    }

    void
    restoreState(snap::Des &in)
    {
        stamp_ = in.u64();
        std::uint64_t n = in.u64();
        if (n != lines_.size()) {
            in.fail("cache geometry mismatch (config hash should have "
                    "caught this)");
            return;
        }
        for (auto &l : lines_) {
            l.addr = in.u64();
            std::uint8_t st = in.u8();
            if (st > static_cast<std::uint8_t>(LineState::Mod)) {
                in.fail("corrupt snapshot: cache line state out of range");
                return;
            }
            l.state = static_cast<LineState>(st);
            l.protocolLine = in.bl();
            l.lruStamp = in.u64();
        }
    }

  private:
    unsigned lineBytes_;
    unsigned ways_;
    unsigned sets_;
    std::vector<CacheLine> lines_;
    std::uint64_t stamp_ = 0;
};

} // namespace smtp

#endif // SMTP_CACHE_CACHE_ARRAY_HPP
