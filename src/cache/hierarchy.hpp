/**
 * @file
 * Per-node coherent cache hierarchy (paper Table 2):
 *
 *   L1I 32 KB / 64 B / 2-way          shared by application + protocol
 *   L1D 32 KB / 32 B / 2-way          threads (SMTp), LRU
 *   L2  2 MB / 128 B / 8-way, unified, inclusive; coherence unit = 128 B
 *   16 MSHRs + 1 reserved for retiring stores (+1 protocol, SMTp)
 *   16-line fully-associative I/D/L2 bypass buffers (SMTp)
 *
 * The timing plane: hits complete after 1 (L1) or 9 (L2 round-trip)
 * processor cycles; L2 misses allocate an MSHR and emit a Pi* request
 * through a FIFO towards the memory controller's Local Miss Interface —
 * the same FIFO carries evictions, which keeps the Put-before-reGet
 * ordering the directory protocol relies on.
 *
 * The architectural plane: line states here are the authoritative cache
 * states the coherence protocol probes (interventions and invalidations
 * take effect synchronously via applyProbe, so an acknowledgement is
 * never sent for a line that is still readable).
 *
 * Caches carry no data payloads: application values live in the global
 * functional memory and protocol values in the per-node protocol RAM
 * (see DESIGN.md, substitution 2).
 */

#ifndef SMTP_CACHE_HIERARCHY_HPP
#define SMTP_CACHE_HIERARCHY_HPP

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache_array.hpp"
#include "common/fixed_queue.hpp"
#include "common/types.hpp"
#include "protocol/message.hpp"
#include "sim/clock.hpp"
#include "sim/eventq.hpp"
#include "sim/stats.hpp"
#include "snap/event_codec.hpp"
#include "trace/trace.hpp"

namespace smtp::check
{
class Checker;
}

namespace smtp
{

enum class MemCmd : std::uint8_t
{
    IFetch,
    Load,
    Store,        ///< Retiring store draining from the store buffer.
    Prefetch,     ///< Non-binding shared prefetch.
    PrefetchEx,   ///< Prefetch-exclusive.
    ProtoIFetch,  ///< Protocol thread instruction fetch (SMTp).
    ProtoLoad,    ///< Protocol thread data access (SMTp).
    ProtoStore,
};

constexpr bool
isProtoCmd(MemCmd c)
{
    return c == MemCmd::ProtoIFetch || c == MemCmd::ProtoLoad ||
           c == MemCmd::ProtoStore;
}

struct MemReq
{
    MemCmd cmd;
    Addr addr;
    ThreadId tid = 0;
    EventQueue::Callback done; ///< Completion callback (may be empty).
};

struct CacheParams
{
    std::size_t l1iBytes = 32 * 1024;
    unsigned l1iWays = 2;
    std::size_t l1dBytes = 32 * 1024;
    unsigned l1dWays = 2;
    std::size_t l2Bytes = 2 * 1024 * 1024;
    unsigned l2Ways = 8;
    unsigned mshrs = 16;            ///< Plus one reserved for stores.
    Cycles l1HitCycles = 1;
    Cycles l2HitCycles = 9;         ///< Round trip.
    Cycles fillToUseCycles = 2;
    unsigned outQueueDepth = 16;    ///< Cache -> LMI FIFO.
    unsigned bypassLines = 16;      ///< Per bypass buffer (SMTp).
    bool enableBypass = false;      ///< SMTp machines turn this on.
    /**
     * Section 2.3 ablation: separate, perfect protocol instruction and
     * data caches. Protocol accesses hit in one cycle and never touch
     * (pollute) the shared arrays.
     */
    bool perfectProtocolCaches = false;
};

/**
 * Identifier of the reserved store MSHR (paper: "MSHR 16 + 1 for
 * retiring stores").
 */
constexpr unsigned storeMshrOffset = 0; // reserved entry index = mshrs.

class CacheHierarchy
{
  public:
    /** Push a Pi* message towards the LMI; false when the queue is full. */
    using LmiEnqueueFn = std::function<bool(const proto::Message &)>;
    /**
     * Protocol-space SDRAM access over the dedicated 64-bit bus
     * (Section 2.1); callback fires when the line is available.
     */
    using BypassFn =
        std::function<void(Addr, bool write, EventQueue::Callback)>;
    /** Invoked when a coherence probe invalidates a line (SC replay). */
    using InvalHookFn = std::function<void(Addr)>;

    CacheHierarchy(EventQueue &eq, const ClockDomain &clock, NodeId self,
                   const CacheParams &params);

    void
    connect(LmiEnqueueFn lmi, BypassFn bypass)
    {
        lmiEnqueue_ = std::move(lmi);
        bypassAccess_ = std::move(bypass);
    }

    void setInvalHook(InvalHookFn fn) { invalHook_ = std::move(fn); }

    /** Attach the coherence checker (nullptr => no checking overhead). */
    void setChecker(check::Checker *c) { check_ = c; }

    /** Attach the node's memory telemetry buffer (MSHR alloc/free). */
    void setTrace(trace::TraceBuffer *buf) { trace_ = buf; }

    enum class Outcome
    {
        Done,     ///< Completion callback scheduled.
        Pending,  ///< Miss outstanding; callback fires on fill.
        Retry,    ///< Resources exhausted; retry next cycle.
    };

    /** CPU-side access entry point. */
    Outcome access(const MemReq &req);

    // ---- Memory-controller-facing interface -------------------------

    /**
     * Deliver CcFillSh / CcFillEx / CcUpgradeGrant for MSHR m.mshr.
     * @return false when the eviction path is backed up; retry later.
     */
    bool deliverFill(const proto::Message &m);

    struct ProbeOutcome
    {
        bool hit = false;    ///< Line was present with ownership.
        bool dirty = false;
    };

    /**
     * Apply an invalidation or intervention architecturally (state
     * changes happen now; the controller charges the latency).
     */
    ProbeOutcome applyProbe(proto::MsgType kind, Addr line_addr);

    /**
     * True when an intervention must be replayed later: the line is in
     * flight to this node (pending MSHR) and this is not a writeback
     * race.
     */
    bool probeWouldDefer(Addr line_addr) const;

    /** Writeback acknowledged by the home; release the race tracker. */
    void clearWbPending(Addr line_addr) { wbPending_.erase(line_addr); }

    bool wbPending(Addr line_addr) const
    {
        return wbPending_.count(lineAlign(line_addr)) != 0;
    }

    // ---- Introspection (tests, invariant checkers) ------------------

    LineState l2State(Addr a) const;
    bool inL1d(Addr a) const;
    bool inL1i(Addr a) const;
    bool mshrPendingOn(Addr line_addr) const;
    unsigned mshrsInUse() const;
    bool
    quiescent() const
    {
        return mshrsInUse() == 0 && outQ_.empty();
    }

    // ---- Snapshot support --------------------------------------------

    /** Delayed cache->LMI FIFO drain retry. */
    struct DrainEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCacheDrainOutQ;
        CacheHierarchy *c;

        void
        operator()() const
        {
            c->drainScheduled_ = false;
            c->drainOutQ();
        }

        void snapEncode(snap::Ser &s) const { s.u16(c->self_); }
    };

    /** Protocol-space line arrival over the dedicated bypass bus. */
    struct BypassFillEv
    {
        static constexpr std::uint32_t kSnapId = snap::evCacheBypassFill;
        CacheHierarchy *c;
        Addr line;
        Addr demand;
        bool isStore;
        bool isIfetch;

        void
        operator()() const
        {
            c->protoFillArrived(line, demand, isStore, isIfetch);
        }

        void
        snapEncode(snap::Ser &s) const
        {
            s.u16(c->self_);
            s.u64(line);
            s.u64(demand);
            s.b(isStore);
            s.b(isIfetch);
        }
    };

    void saveState(snap::Ser &out) const;
    void restoreState(snap::Des &in, const snap::EventCodec &codec);
    static void
    registerSnapEvents(snap::EventCodec &codec,
                       std::function<CacheHierarchy *(NodeId)> resolve);

    // ---- Stats -------------------------------------------------------

    Counter l1iHits, l1iMisses;
    Counter l1dHits, l1dMisses;
    Counter l2Hits, l2Misses;
    Counter protoL1dHits, protoL1dMisses;
    Counter protoL2Hits, protoL2Misses;
    Counter upgradesIssued, writebacksDirty, writebacksClean;
    Counter prefetchesIssued, prefetchesDropped, prefetchesUseful;
    Counter bypassAllocs, probesDeferred, fillsPoisoned;
    Counter replayInvals;

  private:
    struct Mshr
    {
        bool valid = false;
        Addr lineAddr = invalidAddr;
        bool wantExcl = false;
        bool isUpgrade = false;      ///< Current outstanding request type.
        bool prefetch = false;
        bool invalPoison = false;    ///< Shared fill must install invalid.
        bool storeWaiting = false;   ///< Store arrived on a shared request.
        bool wantsL1i = false;       ///< First demand was an ifetch.
        Addr demandAddr = invalidAddr; ///< Sub-line to fill into the L1.
        std::vector<EventQueue::Callback> loadWaiters;
        std::vector<EventQueue::Callback> storeWaiters;
    };

    Tick cyc(Cycles c) const { return clock_.cyclesToTicks(c); }
    void completeAfter(EventQueue::Callback fn, Cycles c);

    Mshr *findMshr(Addr line_addr);
    const Mshr *findMshr(Addr line_addr) const;
    int allocMshr(bool store_reserved);

    /** Queue a Pi* message (requests and writebacks share the FIFO). */
    bool queueOut(proto::Message msg);
    void drainOutQ();

    /** Send the Pi* request for MSHR @p idx. */
    proto::Message requestFor(unsigned idx) const;

    /** Fill path helpers. */
    void installL2(Addr line_addr, LineState st, bool protocol_line);
    void evictL2Line(CacheLine &victim);
    void backInvalidateL1(Addr l2_line_addr);
    void fillL1(CacheArray &l1, CacheArray &byp, Addr addr,
                bool protocol_line);

    bool l1Lookup(CacheArray &l1, CacheArray &byp, Addr addr,
                  bool protocol_line);

    /** Checker notification helpers (no-ops when no checker attached). */
    void noteLine(Addr line_addr, LineState st, const char *why);
    void noteMshrAlloc(unsigned idx);
    void freeMshr(Mshr &ms, unsigned idx);

    /** Protocol access slow path below the L1s. */
    Outcome protoBelowL1(const MemReq &req);

    /** Bypass-bus fetch completed: install and release waiters. */
    void protoFillArrived(Addr line, Addr demand, bool is_store,
                          bool is_ifetch);

    EventQueue *eq_;
    ClockDomain clock_; ///< Copied: cheap and immutable after build.
    NodeId self_;
    CacheParams params_;

    CacheArray l1i_, l1d_, l2_;
    CacheArray bypI_, bypD_, byp2_;

    std::vector<Mshr> mshrs_; ///< params.mshrs + 1 reserved store entry.
    /**
     * Cache -> LMI FIFO. Requests and writebacks share it so a
     * writeback always reaches the directory before a re-request of the
     * same line. Unbounded on the cache side (the 16-entry bound is the
     * LMI queue itself); demand requests stop allocating once
     * outQueueDepth is exceeded.
     */
    std::deque<proto::Message> outQ_;
    bool drainScheduled_ = false;
    std::unordered_set<Addr> wbPending_;
    /** In-flight protocol-space line fetches over the bypass bus. */
    std::unordered_map<Addr, std::vector<EventQueue::Callback>>
        protoPending_;

    LmiEnqueueFn lmiEnqueue_;
    BypassFn bypassAccess_;
    InvalHookFn invalHook_;
    check::Checker *check_ = nullptr;
    trace::TraceBuffer *trace_ = nullptr;
};

} // namespace smtp

#endif // SMTP_CACHE_HIERARCHY_HPP
