/**
 * @file
 * Bounded FIFO with O(1) push/pop, used for every finite hardware queue
 * in the machine (decode/rename queues, NI queues, SDRAM queue, ...).
 *
 * Unlike std::queue it makes the capacity a first-class property so that
 * back-pressure — the thing the paper's queues exist to model — is
 * explicit at every call site.
 */

#ifndef SMTP_COMMON_FIXED_QUEUE_HPP
#define SMTP_COMMON_FIXED_QUEUE_HPP

#include <cstddef>
#include <deque>
#include <utility>

#include "log.hpp"

namespace smtp
{

template <typename T>
class FixedQueue
{
  public:
    explicit FixedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

    void
    setCapacity(std::size_t capacity)
    {
        SMTP_ASSERT(items_.size() <= capacity,
                    "shrinking FixedQueue below occupancy");
        capacity_ = capacity;
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }
    std::size_t freeSlots() const { return capacity_ - items_.size(); }

    /** Enqueue; caller must have checked !full(). */
    void
    push(T item)
    {
        SMTP_ASSERT(!full(), "push into full FixedQueue");
        items_.push_back(std::move(item));
    }

    /** Enqueue iff space is available. @return true on success. */
    bool
    tryPush(T item)
    {
        if (full())
            return false;
        items_.push_back(std::move(item));
        return true;
    }

    T &front() { return items_.front(); }
    const T &front() const { return items_.front(); }

    T
    pop()
    {
        SMTP_ASSERT(!items_.empty(), "pop from empty FixedQueue");
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    void clear() { items_.clear(); }

    auto begin() { return items_.begin(); }
    auto end() { return items_.end(); }
    auto begin() const { return items_.begin(); }
    auto end() const { return items_.end(); }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
};

} // namespace smtp

#endif // SMTP_COMMON_FIXED_QUEUE_HPP
