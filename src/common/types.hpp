/**
 * @file
 * Fundamental scalar types shared by every subsystem of smtp-sim.
 *
 * The simulator counts time in integer picoseconds ("ticks", gem5 style)
 * so that clock domains of 400 MHz, 1 GHz, 2 GHz and 4 GHz all divide the
 * tick evenly and cross-domain arithmetic stays exact.
 */

#ifndef SMTP_COMMON_TYPES_HPP
#define SMTP_COMMON_TYPES_HPP

#include <cstdint>
#include <limits>

namespace smtp
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A tick value that is later than any reachable simulation time. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per common wall-clock units. */
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * tickPerNs;
constexpr Tick tickPerMs = 1000 * tickPerUs;

/** Physical / virtual address within the single global DSM address space. */
using Addr = std::uint64_t;

/** An address that no allocation ever produces. */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

/** Node (processor + memory controller + router port) identifier. */
using NodeId = std::uint16_t;

constexpr NodeId invalidNode = std::numeric_limits<NodeId>::max();

/** Hardware thread context identifier within one SMT pipeline. */
using ThreadId = std::uint8_t;

constexpr ThreadId invalidThread = std::numeric_limits<ThreadId>::max();

/** Cycle count within one clock domain. */
using Cycles = std::uint64_t;

/** Coherence/cache geometry fixed by the paper's Tables 2 and 3. */
constexpr unsigned pageBytes = 4096;
constexpr unsigned l2LineBytes = 128;   ///< Also the coherence granularity.
constexpr unsigned l1dLineBytes = 32;
constexpr unsigned l1iLineBytes = 64;

/** Align @p addr down to the enclosing coherence line. */
constexpr Addr
lineAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(l2LineBytes - 1);
}

/** Align @p addr down to the enclosing page. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(pageBytes - 1);
}

} // namespace smtp

#endif // SMTP_COMMON_TYPES_HPP
