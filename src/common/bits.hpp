/**
 * @file
 * Bit-manipulation helpers used by caches, directory entries and the
 * protocol ISA (which exposes popcount / count-trailing-zeros as the
 * "special ALU instructions" of Section 2.1 of the paper).
 */

#ifndef SMTP_COMMON_BITS_HPP
#define SMTP_COMMON_BITS_HPP

#include <bit>
#include <cstdint>

#include "log.hpp"

namespace smtp
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return v == 0 ? 0 : 63 - std::countl_zero(v);
}

constexpr unsigned
ceilLog2(std::uint64_t v)
{
    return v <= 1 ? 0 : floorLog2(v - 1) + 1;
}

/** Extract bits [first, last] (inclusive, last >= first) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned last, unsigned first)
{
    unsigned nbits = last - first + 1;
    std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (v >> first) & mask;
}

/** Insert @p val into bits [first, last] of @p dst. */
constexpr std::uint64_t
insertBits(std::uint64_t dst, unsigned last, unsigned first,
           std::uint64_t val)
{
    unsigned nbits = last - first + 1;
    std::uint64_t mask =
        nbits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << nbits) - 1);
    return (dst & ~(mask << first)) | ((val & mask) << first);
}

constexpr unsigned
popCount(std::uint64_t v)
{
    return static_cast<unsigned>(std::popcount(v));
}

/** Count trailing zeros; 64 for zero input (matches the protocol ISA). */
constexpr unsigned
countTrailingZeros(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace smtp

#endif // SMTP_COMMON_BITS_HPP
