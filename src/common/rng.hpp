/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every stochastic choice in the simulator (NAK retry jitter, workload
 * key generation, random testers) draws from an explicitly-seeded Rng so
 * that whole-machine simulations are bit-reproducible run to run.
 * xoshiro256** — fast, high quality, trivially seedable.
 */

#ifndef SMTP_COMMON_RNG_HPP
#define SMTP_COMMON_RNG_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "snap/snap.hpp"

namespace smtp
{

class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-seed via splitmix64 so correlated seeds still decorrelate. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    void
    saveState(snap::Ser &out) const
    {
        for (std::uint64_t w : state_)
            out.u64(w);
    }

    void
    restoreState(snap::Des &in)
    {
        for (std::uint64_t &w : state_)
            w = in.u64();
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipf-distributed rank sampler over n ranks with exponent s:
 * P(rank k) proportional to 1 / (k+1)^s for k in [0, n). The CDF is
 * precomputed once (O(n) doubles) and each sample is a binary search
 * driven by an external Rng, so two samplers built with the same (n, s)
 * and fed the same Rng stream produce identical rank sequences. s = 0
 * degenerates to the exact uniform distribution. Used by the server
 * workload family for skewed key popularity.
 */
class ZipfGen
{
  public:
    ZipfGen(std::size_t n, double s) : cdf_(n), s_(s)
    {
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
            cdf_[k] = sum;
        }
        for (double &c : cdf_)
            c /= sum;
    }

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::size_t
    sample(Rng &rng) const
    {
        const double u = rng.uniform();
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    std::size_t ranks() const { return cdf_.size(); }
    double exponent() const { return s_; }

  private:
    std::vector<double> cdf_;
    double s_;
};

} // namespace smtp

#endif // SMTP_COMMON_RNG_HPP
