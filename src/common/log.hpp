/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — a simulator bug; something that must never happen. Aborts.
 * fatal()  — a user/configuration error the simulation cannot survive.
 * warn()   — functionality approximated well enough to continue.
 * inform() — plain status output.
 */

#ifndef SMTP_COMMON_LOG_HPP
#define SMTP_COMMON_LOG_HPP

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace smtp
{

namespace log_detail
{

[[noreturn]] void panicExit(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalExit(const char *file, int line, const std::string &msg);
void emit(const char *tag, const std::string &msg);

template <typename... Args>
std::string
format(const char *fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string(fmt);
    } else {
        int n = std::snprintf(nullptr, 0, fmt, args...);
        std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
        if (n > 0)
            std::snprintf(out.data(), out.size() + 1, fmt, args...);
        return out;
    }
}

} // namespace log_detail

template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, const char *fmt, Args &&...args)
{
    log_detail::panicExit(file, line,
                          log_detail::format(fmt,
                                             std::forward<Args>(args)...));
}

template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, const char *fmt, Args &&...args)
{
    log_detail::fatalExit(file, line,
                          log_detail::format(fmt,
                                             std::forward<Args>(args)...));
}

template <typename... Args>
void
warn(const char *fmt, Args &&...args)
{
    log_detail::emit("warn",
                     log_detail::format(fmt, std::forward<Args>(args)...));
}

template <typename... Args>
void
inform(const char *fmt, Args &&...args)
{
    log_detail::emit("info",
                     log_detail::format(fmt, std::forward<Args>(args)...));
}

} // namespace smtp

#define SMTP_PANIC(...) ::smtp::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define SMTP_FATAL(...) ::smtp::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Invariant check that survives NDEBUG builds; use for simulator bugs. */
#define SMTP_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) [[unlikely]]                                           \
            ::smtp::panicAt(__FILE__, __LINE__,                             \
                            "assertion '" #cond "' failed: " __VA_ARGS__);  \
    } while (0)

#endif // SMTP_COMMON_LOG_HPP
