#include "log.hpp"

#include <cstdio>

namespace smtp
{
namespace log_detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
panicExit(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalExit(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace log_detail
} // namespace smtp
