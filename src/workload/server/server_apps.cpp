/**
 * @file
 * Server-class workload generators (see server.hpp). Three design
 * rules keep them deterministic under every execution mode:
 *
 *  1. All randomness is drawn from per-thread Rng/ZipfGen state living
 *     in the coroutine frame, so the resume-log replay reconstructs it.
 *  2. Timestamps come from ThreadCtx::now() — the barrier clock the
 *     machine publishes before each refill. It is a pure function of
 *     simulated time (window granularity), identical across
 *     serial/parallel execution and reproduced on restore via the
 *     resume log's tick epochs.
 *  3. Blocking is always *generative* spinning (spinUntilEq /
 *     acquireLock): a blocked thread emits cached probe loads and
 *     resolves when its counterpart generates the release in a later
 *     barrier phase, exactly like the SPLASH apps' locks and barriers.
 */

#include "workload/server/server.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/log.hpp"
#include "fault/fault.hpp"
#include "trace/trace.hpp"
#include "workload/sync.hpp"

namespace smtp::workload
{

namespace
{

unsigned
scaled(double base, double scale, unsigned minimum, unsigned multiple)
{
    auto v = static_cast<unsigned>(base * scale);
    v = std::max(v, minimum);
    return static_cast<unsigned>(roundUp(v, multiple));
}

// ====================================================================
// Common scaffolding
// ====================================================================

class ServerApp : public App
{
  public:
    const ServerStats *serverStats() const override { return &stats_; }

    void
    attachTrace(
        const std::function<trace::TraceBuffer *(NodeId)> &make) override
    {
        wlTrace_.clear();
        for (unsigned n = 0; n < env_.nodes; ++n)
            wlTrace_.push_back(make(static_cast<NodeId>(n)));
    }

  protected:
    /** Request-latency histogram: 80 buckets of 250 ns up to 20 us. */
    void
    initStats(const WorkloadEnv &env)
    {
        stats_ = ServerStats{};
        stats_.reqLatency.enableHistogram(
            0.0, static_cast<double>(20 * tickPerUs), 80);
        stats_.threadsTotal = env.totalThreads();
    }

    void
    record(ThreadCtx &ctx, trace::EventId id, std::uint64_t arg)
    {
        const auto n = static_cast<std::size_t>(ctx.node());
        if (n < wlTrace_.size() && wlTrace_[n] != nullptr)
            wlTrace_[n]->record(ctx.now(), id, arg);
    }

    /** Retire one request born at @p birth (barrier-clock ticks). */
    void
    retire(ThreadCtx &ctx, trace::ReqKind kind, Tick birth)
    {
        const Tick now = ctx.now();
        const Tick lat = now >= birth ? now - birth : 0;
        ++stats_.requests;
        stats_.reqLatency.sample(static_cast<double>(lat));
        record(ctx, trace::EventId::ReqRetire,
               trace::packReq(kind, lat, ctx.node()));
    }

    ServerStats stats_;
    std::vector<trace::TraceBuffer *> wlTrace_;
};

// ====================================================================
// queue-server: contended MPMC producer/consumer work queue
// ====================================================================
//
// A Vyukov-style bounded MPMC ring. Every slot is one coherence line
// (sequence word + request payload) homed round-robin across nodes;
// the push/pop ticket counters are two dedicated hot lines bounced by
// fetch-and-add — the directory sees a steady mix of upgrade races,
// migratory ticket lines and spin/invalidate pairs on the slots.
//
// Producers stamp each request with the barrier clock at push;
// consumers retire it at pop, so the latency histogram measures real
// queueing delay (in simulated time, window granularity).

class QueueServerApp : public ServerApp
{
  public:
    std::string_view name() const override { return "queue-server"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        initStats(env);
        const unsigned p = env.totalThreads();
        // First half produce, second half consume (a lone thread
        // self-serves). Requests-per-producer scales with the problem.
        nProd_ = p >= 2 ? p / 2 : 1;
        const unsigned per = scaled(48, env.scale, 8, 4);
        total_ = static_cast<std::uint64_t>(per) * nProd_;
        capacity_ = 32;

        pushTicket_ = alloc_->allocLine(0);
        popTicket_ = alloc_->allocLine(env.nodes > 1 ? 1 : 0);
        slots_.resize(capacity_);
        for (unsigned i = 0; i < capacity_; ++i) {
            slots_[i] = alloc_->allocLine(
                static_cast<NodeId>(i % env.nodes));
            // Vyukov sequence init: slot i starts at lap-0 ticket i.
            env.mem->poke(slots_[i], i);
        }
        for (unsigned t = 0; t < p; ++t) {
            scratch_.push_back(
                alloc_->alloc(8 * 64, env.nodeOf(t), l2LineBytes));
        }
        // The deliberate lost-wakeup bug (watchdog test): drop exactly
        // one slot publish mid-run.
        lostTicket_ = env.injectLostWakeup ? total_ / 2 : ~0ULL;

        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t));
    }

  private:
    Task
    thread(ThreadCtx &ctx, unsigned tid)
    {
        const unsigned p = env_.totalThreads();
        if (p == 1) {
            const auto per = static_cast<unsigned>(total_);
            for (unsigned r = 0; r < per; ++r) {
                co_await produceOne(ctx);
                co_await consumeOne(ctx);
            }
        } else if (tid < nProd_) {
            const auto per = static_cast<unsigned>(total_ / nProd_);
            for (unsigned r = 0; r < per; ++r)
                co_await produceOne(ctx);
        } else {
            for (;;) {
                std::uint64_t t = co_await ctx.fetchAdd(popTicket_, 1);
                bool live = t < total_;
                co_await ctx.branch(live);
                if (!live)
                    break;
                co_await consumeTicket(ctx, tid, t);
            }
        }
        ++stats_.threadsFinished;
        co_await barrier_->wait(ctx, tid);
    }

    Task
    produceOne(ThreadCtx &ctx)
    {
        std::uint64_t t = co_await ctx.fetchAdd(pushTicket_, 1);
        Addr slot = slots_[t % capacity_];
        // Wait for the slot to drain from the previous lap (seq == t).
        co_await spinUntilEq(ctx, slot, t);
        co_await ctx.store(slot + 8, ctx.now()); // birth stamp
        co_await ctx.store(slot + 16, t);        // request id
        co_await ctx.intOps(4);
        if (t == lostTicket_) {
            // Lost wakeup: payload written, sequence never published.
            // The claiming consumer spins on its cached copy forever —
            // no MSHR traffic, invisible to the coherence watchdog,
            // caught only by the workload progress probe.
            co_await ctx.intOps(1);
        } else {
            co_await ctx.store(slot, t + 1); // publish
        }
    }

    Task
    consumeOne(ThreadCtx &ctx)
    {
        std::uint64_t t = co_await ctx.fetchAdd(popTicket_, 1);
        co_await consumeTicket(ctx, 0, t);
    }

    Task
    consumeTicket(ThreadCtx &ctx, unsigned tid, std::uint64_t t)
    {
        Addr slot = slots_[t % capacity_];
        co_await spinUntilEq(ctx, slot, t + 1);
        std::uint64_t birth = co_await ctx.load(slot + 8);
        co_await ctx.load(slot + 16);
        // Service the request: scratch traffic + ALU work.
        Addr scratch = scratch_[tid];
        auto lp = ctx.loopBegin();
        for (unsigned i = 0; i < 4; ++i) {
            std::uint64_t v = co_await ctx.load(scratch + 8 * i);
            co_await ctx.store(scratch + 8 * i, v + t);
            co_await ctx.intOps(8);
            co_await ctx.loopEnd(lp, i + 1 < 4);
        }
        co_await ctx.store(slot, t + capacity_); // free the slot
        retire(ctx, trace::ReqKind::Queue, birth);
    }

    unsigned nProd_ = 1;
    unsigned capacity_ = 32;
    std::uint64_t total_ = 0;
    std::uint64_t lostTicket_ = ~0ULL;
    Addr pushTicket_ = 0;
    Addr popTicket_ = 0;
    std::vector<Addr> slots_;
    std::vector<Addr> scratch_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// kv-store: read-mostly Zipf loop with hot-key write bursts
// ====================================================================
//
// Every key is one line; popularity follows Zipf(s = 1.1) so a handful
// of hot lines end up Shared by every node (the read-mostly steady
// state). Periodic write bursts to the hottest keys trigger
// invalidation storms — the directory fans out to the full sharer
// vector, exactly the occupancy stress the paper's protocol thread
// must absorb. The read/write mix and burst period are fixed knobs
// documented in docs/workloads.md.

class KvStoreApp : public ServerApp
{
  public:
    std::string_view name() const override { return "kv-store"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        initStats(env);
        const unsigned p = env.totalThreads();
        numKeys_ = scaled(64, env.scale, 16, 8);
        reqsPerThread_ = scaled(96, env.scale, 16, 8);
        keys_.resize(numKeys_);
        for (unsigned k = 0; k < numKeys_; ++k) {
            keys_[k] = alloc_->allocLine(
                static_cast<NodeId>(k % env.nodes));
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t));
    }

  private:
    /** Popularity rank -> key index, decorrelating rank from home. */
    Addr
    keyOf(std::size_t rank) const
    {
        return keys_[(rank * 11 + 3) % numKeys_];
    }

    Task
    thread(ThreadCtx &ctx, unsigned tid)
    {
        Rng rng(env_.seed * 0x9e3779b9ULL + tid * 77 + 1);
        ZipfGen zipf(numKeys_, 1.1);
        for (unsigned r = 0; r < reqsPerThread_; ++r) {
            const Tick birth = ctx.now();
            if (r % burstPeriod == burstPeriod - 1) {
                // Hot-key write burst: dirty the hottest lines back to
                // back and invalidate every sharer.
                for (unsigned h = 0; h < burstKeys; ++h) {
                    Addr key = keyOf(h);
                    std::uint64_t v = co_await ctx.load(key);
                    co_await ctx.store(key, v + 1);
                    co_await ctx.intOps(2);
                }
            } else {
                // A request is a small batch of key ops.
                for (unsigned a = 0; a < opsPerReq; ++a) {
                    Addr key = keyOf(zipf.sample(rng));
                    bool read = rng.chance(readFrac);
                    co_await ctx.branch(read);
                    if (read) {
                        co_await ctx.load(key);
                        co_await ctx.intOps(4);
                    } else {
                        std::uint64_t v = co_await ctx.load(key);
                        co_await ctx.store(key, v + 1);
                        co_await ctx.intOps(2);
                    }
                }
            }
            co_await ctx.fpOps(8);
            retire(ctx, trace::ReqKind::Kv, birth);
        }
        ++stats_.threadsFinished;
        co_await barrier_->wait(ctx, tid);
    }

    static constexpr double readFrac = 0.9;
    static constexpr unsigned opsPerReq = 4;
    static constexpr unsigned burstPeriod = 16;
    static constexpr unsigned burstKeys = 4;

    unsigned numKeys_ = 0;
    unsigned reqsPerThread_ = 0;
    std::vector<Addr> keys_;
    std::unique_ptr<TreeBarrier> barrier_;
};

// ====================================================================
// spec-txn: HTM-style speculative critical sections
// ====================================================================
//
// Software transactional sections in the TL2 spirit: objects carry a
// lock word and a version word on one line; a transaction reads its
// read set optimistically (recording versions), acquires write locks
// in sorted order by test-and-set, validates the read versions, then
// writes back and bumps versions. Any conflict — a held lock or a
// changed version — aborts: locks are rolled back, the abort counter
// bumps, and the thread retries after the NAK backoff policy's delay.
// After kFallbackAfter consecutive aborts it falls back to *pessimistic*
// acquisition (spinning in sorted order), which guarantees progress.
//
// Write sets concentrate on a small hot region so concurrent
// transactions genuinely collide; in addition, every forcedAbortPeriod-th
// transaction deterministically fails its first validation (modelling a
// remote invalidation landing mid-section) so the abort path is
// exercised at every scale and seed.

class SpecTxnApp : public ServerApp
{
  public:
    std::string_view name() const override { return "spec-txn"; }

    void
    build(const WorkloadEnv &env) override
    {
        makeThreads(env);
        initStats(env);
        const unsigned p = env.totalThreads();
        numObjs_ = scaled(32, env.scale, 8, 4);
        txnsPerThread_ = scaled(24, env.scale, 6, 2);
        hotObjs_ = std::max(2u, numObjs_ / 8);
        objs_.resize(numObjs_);
        for (unsigned o = 0; o < numObjs_; ++o) {
            objs_[o] = alloc_->allocLine(
                static_cast<NodeId>(o % env.nodes));
        }
        barrier_ = std::make_unique<TreeBarrier>(
            p, env.nodes, [&](NodeId h) { return alloc_->allocLine(h); });
        for (unsigned t = 0; t < p; ++t)
            threads_[t]->run(thread(*threads_[t], t));
    }

  private:
    // Object line layout.
    static constexpr Addr lockOff = 0;
    static constexpr Addr verOff = 8;
    static constexpr Addr dataOff = 16;

    static constexpr unsigned readSetSize = 3;
    static constexpr unsigned writeSetSize = 2;
    static constexpr unsigned kFallbackAfter = 6;
    static constexpr unsigned forcedAbortPeriod = 7;

    Task
    thread(ThreadCtx &ctx, unsigned tid)
    {
        Rng rng(env_.seed * 0x51ed2701ULL + tid * 131 + 5);
        fault::RetryPolicyConfig backoff; // ExpBackoff pacing of retries.
        backoff.kind = fault::RetryKind::ExpBackoff;
        for (unsigned n = 0; n < txnsPerThread_; ++n) {
            // Pick the sets up front; retries replay the same sets.
            unsigned rs[readSetSize];
            for (unsigned i = 0; i < readSetSize; ++i)
                rs[i] = static_cast<unsigned>(rng.below(numObjs_));
            unsigned ws[writeSetSize];
            ws[0] = static_cast<unsigned>(rng.below(hotObjs_));
            ws[1] = static_cast<unsigned>(
                hotObjs_ + rng.below(numObjs_ - hotObjs_));
            std::sort(ws, ws + writeSetSize);
            const bool forceAbort = n % forcedAbortPeriod ==
                                    forcedAbortPeriod - 1;
            const Tick birth = ctx.now();
            unsigned aborts = 0;
            for (;;) {
                if (aborts >= kFallbackAfter) {
                    co_await fallback(ctx, ws);
                    ++stats_.txnFallbacks;
                    ++stats_.txnCommits;
                    record(ctx, trace::EventId::TxnCommit,
                           trace::packTxn(ctx.node(), aborts));
                    break;
                }
                bool ok = false;
                co_await attempt(ctx, rs, ws, forceAbort && aborts == 0,
                                 &ok);
                if (ok) {
                    ++stats_.txnCommits;
                    record(ctx, trace::EventId::TxnCommit,
                           trace::packTxn(ctx.node(), aborts));
                    break;
                }
                ++aborts;
                ++stats_.txnAborts;
                record(ctx, trace::EventId::TxnAbort,
                       trace::packTxn(ctx.node(), aborts));
                // Contention backoff, converted to pause instructions.
                Tick delay = fault::retryBackoff(backoff, aborts, rng);
                auto pause = static_cast<unsigned>(
                    std::min<Tick>(delay / (4 * tickPerNs), 192));
                co_await ctx.intOps(4 + pause);
            }
            retire(ctx, trace::ReqKind::Txn, birth);
        }
        ++stats_.threadsFinished;
        co_await barrier_->wait(ctx, tid);
    }

    /** One speculative attempt; *ok = true on commit. */
    Task
    attempt(ThreadCtx &ctx, const unsigned (&rs)[readSetSize],
            const unsigned (&ws)[writeSetSize], bool force_abort,
            bool *ok)
    {
        std::uint64_t versions[readSetSize];
        bool live = true;
        // Optimistic read phase: record versions, abort on a held lock.
        for (unsigned i = 0; live && i < readSetSize; ++i) {
            Addr obj = objs_[rs[i]];
            std::uint64_t lk = co_await ctx.load(obj + lockOff);
            live = lk == 0;
            co_await ctx.branch(!live);
            if (!live)
                break;
            versions[i] = co_await ctx.load(obj + verOff);
            co_await ctx.load(obj + dataOff);
            co_await ctx.fpOps(4);
        }
        // Speculative work: long enough that sections regularly span
        // generation windows, opening real conflict windows.
        if (live) {
            co_await ctx.intOps(24);
            co_await ctx.fpOps(16);
        }
        // Acquire the write set in sorted order (test-and-set; a held
        // lock is a conflict, not a wait).
        unsigned acquired = 0;
        for (unsigned i = 0; live && i < writeSetSize; ++i) {
            std::uint64_t old =
                co_await ctx.swap(objs_[ws[i]] + lockOff, 1);
            live = old == 0;
            co_await ctx.branch(!live);
            if (live)
                ++acquired;
        }
        // Validate the read set against the recorded versions.
        for (unsigned i = 0; live && i < readSetSize; ++i) {
            std::uint64_t v = co_await ctx.load(objs_[rs[i]] + verOff);
            bool mine = false;
            for (unsigned w = 0; w < writeSetSize; ++w)
                mine = mine || ws[w] == rs[i];
            live = v == versions[i] || mine;
            co_await ctx.branch(!live);
        }
        if (live && force_abort) {
            // Deterministic conflict: model a remote invalidation
            // observed during validation.
            live = false;
            co_await ctx.branch(true);
        }
        if (live) {
            // Commit: write back, bump versions, release.
            for (unsigned i = 0; i < writeSetSize; ++i) {
                Addr obj = objs_[ws[i]];
                std::uint64_t d = co_await ctx.load(obj + dataOff);
                co_await ctx.store(obj + dataOff, d + 1);
                std::uint64_t v = co_await ctx.load(obj + verOff);
                co_await ctx.store(obj + verOff, v + 1);
            }
            for (unsigned i = writeSetSize; i-- > 0;)
                co_await ctx.store(objs_[ws[i]] + lockOff, 0);
        } else {
            // Roll back whatever was acquired.
            for (unsigned i = acquired; i-- > 0;)
                co_await ctx.store(objs_[ws[i]] + lockOff, 0);
        }
        *ok = live;
    }

    /** Pessimistic fallback: spin-acquire the write set in order. */
    Task
    fallback(ThreadCtx &ctx, const unsigned (&ws)[writeSetSize])
    {
        for (unsigned i = 0; i < writeSetSize; ++i) {
            co_await acquireLock(ctx, objs_[ws[i]] + lockOff);
        }
        co_await ctx.fpOps(8);
        for (unsigned i = 0; i < writeSetSize; ++i) {
            Addr obj = objs_[ws[i]];
            std::uint64_t d = co_await ctx.load(obj + dataOff);
            co_await ctx.store(obj + dataOff, d + 1);
            std::uint64_t v = co_await ctx.load(obj + verOff);
            co_await ctx.store(obj + verOff, v + 1);
        }
        for (unsigned i = writeSetSize; i-- > 0;)
            co_await releaseLock(ctx, objs_[ws[i]] + lockOff);
    }

    unsigned numObjs_ = 0;
    unsigned txnsPerThread_ = 0;
    unsigned hotObjs_ = 2;
    std::vector<Addr> objs_;
    std::unique_ptr<TreeBarrier> barrier_;
};

} // namespace

std::unique_ptr<App>
makeServerApp(std::string_view name)
{
    if (name == "queue-server" || name == "QueueServer")
        return std::make_unique<QueueServerApp>();
    if (name == "kv-store" || name == "KvStore")
        return std::make_unique<KvStoreApp>();
    if (name == "spec-txn" || name == "SpecTxn")
        return std::make_unique<SpecTxnApp>();
    return nullptr;
}

const std::vector<std::string> &
serverAppNames()
{
    static const std::vector<std::string> names = {
        "queue-server", "kv-store", "spec-txn",
    };
    return names;
}

} // namespace smtp::workload
