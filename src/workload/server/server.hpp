/**
 * @file
 * The server-class workload family (ROADMAP item 3): reactive
 * generators shaped like production traffic rather than SPLASH
 * kernels. See docs/workloads.md for semantics and knobs.
 *
 *   queue-server  contended producer/consumer MPMC work queue with
 *                 per-request birth/retire latency stamps
 *   kv-store      read-mostly Zipf-skewed key-value loop with hot-key
 *                 write bursts (invalidation storms)
 *   spec-txn      HTM-style speculative critical sections: software
 *                 read/write-set tracking, conflict detection,
 *                 abort/retry with the NAK backoff policies
 *
 * All three are ordinary Apps: they run on the five machine models,
 * generate bit-identically under any --exec mode, survive
 * checkpoint/restore via the resume-log replay, and publish their
 * counters through App::serverStats() for the serve runner, the
 * watchdog progress probes and trace_report.
 */

#ifndef SMTP_WORKLOAD_SERVER_SERVER_HPP
#define SMTP_WORKLOAD_SERVER_SERVER_HPP

#include <memory>
#include <string_view>

#include "workload/app.hpp"

namespace smtp::workload
{

/**
 * Factory for the server family ("queue-server", "kv-store",
 * "spec-txn", case-insensitive-ish like makeApp). Returns nullptr for
 * unknown names so makeApp() can fall through to its own error.
 */
std::unique_ptr<App> makeServerApp(std::string_view name);

} // namespace smtp::workload

#endif // SMTP_WORKLOAD_SERVER_SERVER_HPP
