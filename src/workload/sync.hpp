/**
 * @file
 * Synchronization library executed through the coherent memory system:
 * test-and-set locks with test backoff (the paper's test–lock–test–set–
 * unlock idiom) and software combining-tree barriers (the paper's
 * "software tree barriers [for] scalable synchronization").
 *
 * All primitives are coroutine Tasks that emit real loads, stores and
 * atomic swaps; spinning generates genuine coherence traffic (cached
 * probes until an invalidation, then a miss).
 */

#ifndef SMTP_WORKLOAD_SYNC_HPP
#define SMTP_WORKLOAD_SYNC_HPP

#include <vector>

#include "mem/address_map.hpp"
#include "workload/gen.hpp"

namespace smtp::workload
{

/** Spin (with a fixed-pause backoff) until mem[addr] == value. */
Task spinUntilEq(ThreadCtx &ctx, Addr addr, std::uint64_t value);

/** Test–test-and-set acquire. */
Task acquireLock(ThreadCtx &ctx, Addr lock);

Task releaseLock(ThreadCtx &ctx, Addr lock);

/**
 * Sense-reversing combining-tree barrier for @p threads participants,
 * arity 4. Tree nodes (count + sense words, one line each) are spread
 * across the machine's nodes to avoid a hot home.
 */
class TreeBarrier
{
  public:
    /**
     * @param alloc_line allocates one coherence line on a given home
     *        node and returns its address (bound to the machine's
     *        allocator by the workload environment).
     */
    template <typename AllocFn>
    TreeBarrier(unsigned threads, unsigned machine_nodes,
                AllocFn &&alloc_line)
        : threads_(threads)
    {
        unsigned level_size = threads;
        unsigned spread = 0;
        while (true) {
            Level lv;
            lv.groups = (level_size + arity - 1) / arity;
            lv.membersOfLast = level_size - (lv.groups - 1) * arity;
            for (unsigned g = 0; g < lv.groups; ++g) {
                NodeId home =
                    static_cast<NodeId>(spread++ % machine_nodes);
                lv.count.push_back(alloc_line(home));
                lv.sense.push_back(alloc_line(home));
            }
            levels_.push_back(lv);
            if (lv.groups == 1)
                break;
            level_size = lv.groups;
        }
        localSense_.assign(threads, 0);
    }

    /** The barrier-wait coroutine for global thread @p tid. */
    Task wait(ThreadCtx &ctx, unsigned tid);

    unsigned threads() const { return threads_; }

    static constexpr unsigned arity = 4;

  private:
    unsigned
    groupSize(unsigned level, unsigned group) const
    {
        const Level &lv = levels_[level];
        return group + 1 == lv.groups ? lv.membersOfLast : arity;
    }

    struct Level
    {
        unsigned groups;
        unsigned membersOfLast;
        std::vector<Addr> count;
        std::vector<Addr> sense;
    };

    unsigned threads_;
    std::vector<Level> levels_;
    std::vector<std::uint64_t> localSense_;
};

} // namespace smtp::workload

#endif // SMTP_WORKLOAD_SYNC_HPP
