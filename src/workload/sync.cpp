#include "sync.hpp"

namespace smtp::workload
{

Task
spinUntilEq(ThreadCtx &ctx, Addr addr, std::uint64_t value)
{
    auto lp = ctx.loopBegin();
    for (;;) {
        std::uint64_t cur = co_await ctx.load(addr);
        bool done = cur == value;
        co_await ctx.loopEnd(lp, !done);
        if (done)
            break;
        // Fixed-length pause keeps the spin from saturating fetch (and
        // keeps the loop's static code image stable).
        co_await ctx.intOps(8);
    }
}

Task
acquireLock(ThreadCtx &ctx, Addr lock)
{
    auto lp = ctx.loopBegin();
    for (;;) {
        // test ... (avoid bouncing the line while it is held)
        std::uint64_t v = co_await ctx.load(lock);
        bool acquired = false;
        if (v == 0) {
            // ... lock: atomic test-and-set.
            std::uint64_t old = co_await ctx.swap(lock, 1);
            acquired = old == 0;
        }
        co_await ctx.loopEnd(lp, !acquired);
        if (acquired)
            break;
        co_await ctx.intOps(8);
    }
}

Task
releaseLock(ThreadCtx &ctx, Addr lock)
{
    co_await ctx.store(lock, 0);
}

Task
TreeBarrier::wait(ThreadCtx &ctx, unsigned tid)
{
    std::uint64_t sense = localSense_[tid] ^ 1;
    localSense_[tid] = sense;

    // Climb: the last arriver at each group proceeds upward.
    std::vector<std::pair<unsigned, unsigned>> owned;
    unsigned idx = tid;
    unsigned level = 0;
    bool overall_winner = true;
    for (;;) {
        unsigned group = idx / arity;
        std::uint64_t before =
            co_await ctx.fetchAdd(levels_[level].count[group], 1);
        if (before + 1 < groupSize(level, group)) {
            // Not last: wait for this group's release.
            co_await spinUntilEq(ctx, levels_[level].sense[group], sense);
            overall_winner = false;
            break;
        }
        co_await ctx.store(levels_[level].count[group], 0);
        owned.emplace_back(level, group);
        if (level + 1 >= levels_.size())
            break; // Last thread overall.
        idx = group;
        ++level;
    }
    (void)overall_winner;

    // Release every group won, top-down.
    for (auto it = owned.rbegin(); it != owned.rend(); ++it)
        co_await ctx.store(levels_[it->first].sense[it->second], sense);
}

} // namespace smtp::workload
