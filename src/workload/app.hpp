/**
 * @file
 * Application scaffolding: the allocator with explicit page placement,
 * the workload environment, and the App interface the machine layer
 * drives. The six applications of the paper's Table 1 are produced by
 * makeApp().
 */

#ifndef SMTP_WORKLOAD_APP_HPP
#define SMTP_WORKLOAD_APP_HPP

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "mem/address_map.hpp"
#include "workload/func_mem.hpp"
#include "workload/gen.hpp"
#include "workload/sync.hpp"

namespace smtp::workload
{

/**
 * Bump allocator over per-node 1 GB regions with explicit page
 * placement — the mechanism behind the paper's "proper page placement
 * to minimize remote memory accesses".
 */
class Alloc
{
  public:
    explicit Alloc(PagePlacementMap &map) : map_(&map)
    {
        cursor_.assign(map.numNodes(), 0);
    }

    static constexpr Addr dataBase = 0x0010'0000'0000ULL;
    static constexpr Addr nodeStride = 0x4000'0000ULL; ///< 1 GB.

    /** Allocate @p bytes homed at @p node, aligned to @p align. */
    Addr
    alloc(std::size_t bytes, NodeId home, std::size_t align = l2LineBytes)
    {
        Addr base = dataBase + static_cast<Addr>(home) * nodeStride;
        Addr a = roundUp(base + cursor_[home], align);
        cursor_[home] = a + bytes - base;
        for (Addr p = pageAlign(a); p < a + bytes; p += pageBytes)
            map_->place(p, home);
        return a;
    }

    /** Allocate one coherence line (sync variables etc.). */
    Addr
    allocLine(NodeId home)
    {
        return alloc(l2LineBytes, home, l2LineBytes);
    }

  private:
    PagePlacementMap *map_;
    std::vector<Addr> cursor_;
};

struct WorkloadEnv
{
    FuncMem *mem;
    PagePlacementMap *map;
    unsigned nodes;
    unsigned threadsPerNode;
    /** Problem-size scale: 1.0 = the repo's fast defaults. */
    double scale = 1.0;
    std::uint64_t seed = 1;

    unsigned totalThreads() const { return nodes * threadsPerNode; }

    NodeId
    nodeOf(unsigned gtid) const
    {
        return static_cast<NodeId>(gtid / threadsPerNode);
    }
};

class App : public snap::Snapshottable
{
  public:
    virtual ~App() = default;

    virtual std::string_view name() const = 0;

    /** Allocate data, place pages, and spawn one Task per thread. */
    virtual void build(const WorkloadEnv &env) = 0;

    ThreadCtx *thread(unsigned gtid) { return threads_[gtid].get(); }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    // ---- Snapshot support (see ThreadCtx) -----------------------------
    //
    // Serializes the global coroutine resume log plus per-thread
    // consumption cursors. restoreState must run on a *freshly built*
    // app (same name/env, build() just called, nothing fetched yet): it
    // replays the log — re-executing every generator in the original
    // global order against the shared functional memory — then pops each
    // thread's consumed prefix and validates convergence.

    void
    saveState(snap::Ser &out) const override
    {
        out.str(name());
        out.u64(log_.size());
        for (std::uint32_t g : log_)
            out.u32(g);
        out.u64(threads_.size());
        for (const auto &t : threads_)
            t->saveState(out);
    }

    void
    restoreState(snap::Des &in) override
    {
        if (in.str() != name()) {
            in.fail("snapshot was taken with a different application");
            return;
        }
        std::uint64_t n = in.count(4);
        log_.clear();
        log_.reserve(n);
        for (std::uint64_t i = 0; in.ok() && i < n; ++i) {
            std::uint32_t g = in.u32();
            if (g >= threads_.size()) {
                in.fail("corrupt snapshot: resume log references an "
                        "out-of-range thread");
                return;
            }
            log_.push_back(g);
        }
        if (!in.ok())
            return;
        for (std::uint32_t g : log_) {
            if (!threads_[g]->replayResume()) {
                in.fail("corrupt snapshot: resume log runs past the "
                        "end of a generator");
                return;
            }
        }
        if (in.u64() != threads_.size()) {
            in.fail("corrupt snapshot: workload thread count mismatch");
            return;
        }
        for (auto &t : threads_) {
            t->restoreState(in);
            if (!in.ok())
                return;
        }
    }

  protected:
    /** Create the per-thread contexts with per-node text segments. */
    void
    makeThreads(const WorkloadEnv &env)
    {
        env_ = env;
        alloc_ = std::make_unique<Alloc>(*env.map);
        rng_.reseed(env.seed);
        for (unsigned t = 0; t < env.totalThreads(); ++t) {
            NodeId node = env.nodeOf(t);
            std::uint64_t pc_base =
                0x4000'0000ULL + static_cast<std::uint64_t>(node) *
                                     0x0100'0000ULL;
            threads_.push_back(
                std::make_unique<ThreadCtx>(*env.mem, node, pc_base));
            threads_.back()->attachResumeLog(&log_, t);
        }
        // Place per-node text pages (read mostly through the L1I).
        for (unsigned n = 0; n < env.nodes; ++n) {
            Addr text = 0x4000'0000ULL +
                        static_cast<std::uint64_t>(n) * 0x0100'0000ULL;
            for (unsigned p = 0; p < 16; ++p) {
                env.map->place(text + static_cast<Addr>(p) * pageBytes,
                               static_cast<NodeId>(n));
            }
        }
    }

    WorkloadEnv env_{};
    std::unique_ptr<Alloc> alloc_;
    Rng rng_;
    std::vector<std::unique_ptr<ThreadCtx>> threads_;
    ThreadCtx::ResumeLog log_;
};

/**
 * Factory for the paper's applications: "fft", "fftw", "lu", "radix",
 * "ocean", "water". Fatal on unknown names.
 */
std::unique_ptr<App> makeApp(std::string_view name);

/** All six application names in the paper's presentation order. */
const std::vector<std::string> &appNames();

} // namespace smtp::workload

#endif // SMTP_WORKLOAD_APP_HPP
