/**
 * @file
 * Application scaffolding: the allocator with explicit page placement,
 * the workload environment, and the App interface the machine layer
 * drives. The six applications of the paper's Table 1 are produced by
 * makeApp().
 */

#ifndef SMTP_WORKLOAD_APP_HPP
#define SMTP_WORKLOAD_APP_HPP

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "mem/address_map.hpp"
#include "sim/stats.hpp"
#include "workload/func_mem.hpp"
#include "workload/gen.hpp"
#include "workload/sync.hpp"

namespace smtp::trace
{
class TraceBuffer;
}

namespace smtp::workload
{

/**
 * Bump allocator over per-node 1 GB regions with explicit page
 * placement — the mechanism behind the paper's "proper page placement
 * to minimize remote memory accesses".
 */
class Alloc
{
  public:
    explicit Alloc(PagePlacementMap &map) : map_(&map)
    {
        cursor_.assign(map.numNodes(), 0);
    }

    static constexpr Addr dataBase = 0x0010'0000'0000ULL;
    static constexpr Addr nodeStride = 0x4000'0000ULL; ///< 1 GB.

    /** Allocate @p bytes homed at @p node, aligned to @p align. */
    Addr
    alloc(std::size_t bytes, NodeId home, std::size_t align = l2LineBytes)
    {
        Addr base = dataBase + static_cast<Addr>(home) * nodeStride;
        Addr a = roundUp(base + cursor_[home], align);
        cursor_[home] = a + bytes - base;
        for (Addr p = pageAlign(a); p < a + bytes; p += pageBytes)
            map_->place(p, home);
        return a;
    }

    /** Allocate one coherence line (sync variables etc.). */
    Addr
    allocLine(NodeId home)
    {
        return alloc(l2LineBytes, home, l2LineBytes);
    }

  private:
    PagePlacementMap *map_;
    std::vector<Addr> cursor_;
};

struct WorkloadEnv
{
    FuncMem *mem;
    PagePlacementMap *map;
    unsigned nodes;
    unsigned threadsPerNode;
    /** Problem-size scale: 1.0 = the repo's fast defaults. */
    double scale = 1.0;
    std::uint64_t seed = 1;

    /**
     * Fault-injection hook for the watchdog test: when set, the
     * queue-server producer drops exactly one slot publish (a classic
     * lost wakeup), wedging the consumer that claimed that ticket on a
     * locally cached spin with no coherence traffic. Off by default.
     */
    bool injectLostWakeup = false;

    unsigned totalThreads() const { return nodes * threadsPerNode; }

    NodeId
    nodeOf(unsigned gtid) const
    {
        return static_cast<NodeId>(gtid / threadsPerNode);
    }
};

/**
 * First-class statistics of the server workload family (queue-server,
 * kv-store, spec-txn). Recomputed for free on checkpoint restore: the
 * resume-log replay re-executes every generator, so counters and the
 * latency histogram land exactly where the snapshot left them.
 */
struct ServerStats
{
    std::uint64_t requests = 0;    ///< Retired requests.
    std::uint64_t txnCommits = 0;  ///< Committed speculative sections.
    std::uint64_t txnAborts = 0;   ///< Conflict-induced aborts.
    std::uint64_t txnFallbacks = 0; ///< Starvation fallbacks to the lock.
    /** Birth-to-retire request latency in ticks (window granularity). */
    Distribution reqLatency;
    unsigned threadsFinished = 0;
    unsigned threadsTotal = 0;

    bool done() const { return threadsFinished == threadsTotal; }
};

class App : public snap::Snapshottable
{
  public:
    virtual ~App() = default;

    virtual std::string_view name() const = 0;

    /** Allocate data, place pages, and spawn one Task per thread. */
    virtual void build(const WorkloadEnv &env) = 0;

    ThreadCtx *thread(unsigned gtid) { return threads_[gtid].get(); }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /**
     * Server workload statistics; nullptr for the scientific apps. The
     * pointer stays valid for the app's lifetime and its fields mutate
     * only during barrier-phase generation, so watchdog progress probes
     * may read it from the scan path without racing.
     */
    virtual const ServerStats *serverStats() const { return nullptr; }

    /**
     * Offer per-node trace buffers for the Workload telemetry category
     * (request retires, txn commits/aborts). Harnesses that want the
     * events call this after build() with a factory that creates one
     * buffer per node; apps without workload telemetry ignore it, so
     * plain runs allocate nothing and existing trace exports are
     * byte-identical.
     */
    virtual void
    attachTrace(const std::function<trace::TraceBuffer *(NodeId)> &)
    {
    }

    // ---- Snapshot support (see ThreadCtx) -----------------------------
    //
    // Serializes the global coroutine resume log plus per-thread
    // consumption cursors. restoreState must run on a *freshly built*
    // app (same name/env, build() just called, nothing fetched yet): it
    // replays the log — re-executing every generator in the original
    // global order against the shared functional memory — then pops each
    // thread's consumed prefix and validates convergence.

    void
    saveState(snap::Ser &out) const override
    {
        out.str(name());
        out.u64(log_.resumes.size());
        for (std::uint32_t g : log_.resumes)
            out.u32(g);
        out.u64(log_.epochs.size());
        for (const auto &e : log_.epochs) {
            out.u64(e.first);
            out.u64(e.second);
        }
        out.u64(threads_.size());
        for (const auto &t : threads_)
            t->saveState(out);
    }

    void
    restoreState(snap::Des &in) override
    {
        if (in.str() != name()) {
            in.fail("snapshot was taken with a different application");
            return;
        }
        std::uint64_t n = in.count(4);
        std::vector<std::uint32_t> resumes;
        resumes.reserve(n);
        for (std::uint64_t i = 0; in.ok() && i < n; ++i) {
            std::uint32_t g = in.u32();
            if (g >= threads_.size()) {
                in.fail("corrupt snapshot: resume log references an "
                        "out-of-range thread");
                return;
            }
            resumes.push_back(g);
        }
        if (!in.ok())
            return;
        std::uint64_t ne = in.count(16);
        std::vector<std::pair<std::uint64_t, Tick>> epochs;
        epochs.reserve(ne);
        std::uint64_t prev = 0;
        for (std::uint64_t i = 0; in.ok() && i < ne; ++i) {
            std::uint64_t at = in.u64();
            Tick t = in.u64();
            if (at > n || at < prev) {
                in.fail("corrupt snapshot: resume-log tick epochs out "
                        "of order");
                return;
            }
            prev = at;
            epochs.emplace_back(at, t);
        }
        if (!in.ok())
            return;
        // Replay, re-advancing the barrier clock at the recorded epoch
        // boundaries so every tick-stamped work item (request birth,
        // latency sample) regenerates with its original timestamp.
        log_.resumes.clear();
        log_.epochs.clear();
        log_.now = 0;
        std::size_t ei = 0;
        for (std::uint64_t i = 0; i < n; ++i) {
            while (ei < epochs.size() && epochs[ei].first <= i) {
                log_.setNow(epochs[ei].second);
                ++ei;
            }
            std::uint32_t g = resumes[i];
            log_.resumes.push_back(g);
            if (!threads_[g]->replayResume()) {
                in.fail("corrupt snapshot: resume log runs past the "
                        "end of a generator");
                return;
            }
        }
        while (ei < epochs.size()) {
            log_.setNow(epochs[ei].second);
            ++ei;
        }
        if (in.u64() != threads_.size()) {
            in.fail("corrupt snapshot: workload thread count mismatch");
            return;
        }
        for (auto &t : threads_) {
            t->restoreState(in);
            if (!in.ok())
                return;
        }
    }

  protected:
    /** Create the per-thread contexts with per-node text segments. */
    void
    makeThreads(const WorkloadEnv &env)
    {
        env_ = env;
        alloc_ = std::make_unique<Alloc>(*env.map);
        rng_.reseed(env.seed);
        for (unsigned t = 0; t < env.totalThreads(); ++t) {
            NodeId node = env.nodeOf(t);
            std::uint64_t pc_base =
                0x4000'0000ULL + static_cast<std::uint64_t>(node) *
                                     0x0100'0000ULL;
            threads_.push_back(
                std::make_unique<ThreadCtx>(*env.mem, node, pc_base));
            threads_.back()->attachResumeLog(&log_, t);
        }
        // Place per-node text pages (read mostly through the L1I).
        for (unsigned n = 0; n < env.nodes; ++n) {
            Addr text = 0x4000'0000ULL +
                        static_cast<std::uint64_t>(n) * 0x0100'0000ULL;
            for (unsigned p = 0; p < 16; ++p) {
                env.map->place(text + static_cast<Addr>(p) * pageBytes,
                               static_cast<NodeId>(n));
            }
        }
    }

    WorkloadEnv env_{};
    std::unique_ptr<Alloc> alloc_;
    Rng rng_;
    std::vector<std::unique_ptr<ThreadCtx>> threads_;
    ThreadCtx::ResumeLog log_;
};

/**
 * Factory for all applications: the paper's six ("fft", "fftw", "lu",
 * "radix", "ocean", "water") plus the server family ("queue-server",
 * "kv-store", "spec-txn"). Fatal on unknown names.
 */
std::unique_ptr<App> makeApp(std::string_view name);

/** The six paper application names in the paper's presentation order. */
const std::vector<std::string> &appNames();

/** The server-class workload family (see src/workload/server/). */
const std::vector<std::string> &serverAppNames();

} // namespace smtp::workload

#endif // SMTP_WORKLOAD_APP_HPP
